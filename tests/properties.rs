//! Property-based cross-crate tests: for arbitrary well-conditioned
//! inputs, the whole pipeline holds its invariants.

use proptest::prelude::*;
use scalable_tridiag::cpu_ref;
use scalable_tridiag::tridiag_core::{
    condition, cr, generators, hybrid, pcr, sliding_window::PcrPipeline, thomas, tiled_pcr,
    transition, Layout, Scalar, SystemBatch, TridiagonalSystem,
};
use scalable_tridiag::tridiag_gpu::solver::GpuTridiagSolver;

/// Forward-error tolerance for a solve of `system`, derived from its
/// estimated condition number: `κ_∞(A) · ε · n^{1/2} · margin`. The
/// margin absorbs the different error constants of the algorithms under
/// test (CR/PCR accumulate across log₂ n levels).
fn condition_tolerance<S: Scalar>(system: &TridiagonalSystem<S>) -> f64 {
    let kappa = condition::condition_estimate(system).unwrap_or(1e6);
    let n = system.len() as f64;
    (kappa * S::EPSILON.to_f64() * n.sqrt() * 256.0).max(S::EPSILON.to_f64() * 64.0)
}

/// Run every host algorithm on `system` and compare against the cpu-ref
/// engine, elementwise, within the condition-derived tolerance.
fn algorithms_match_cpu_ref<S: Scalar>(system: &TridiagonalSystem<S>) -> Result<(), TestCaseError> {
    let batch = SystemBatch::from_systems(vec![system.clone()]).unwrap();
    let reference = cpu_ref::solve_batch_sequential(&batch).unwrap();
    let tol = condition_tolerance(system);
    let scale = reference
        .iter()
        .map(|v| v.to_f64().abs())
        .fold(1.0f64, f64::max);

    let candidates: [(&str, Vec<S>); 4] = [
        ("thomas", thomas::solve_typed(system).unwrap()),
        ("cr", cr::solve(system).unwrap()),
        ("pcr", pcr::solve(system).unwrap()),
        (
            "hybrid",
            hybrid::solve(system, hybrid::HybridConfig::default())
                .unwrap()
                .0,
        ),
    ];
    for (name, x) in &candidates {
        prop_assert_eq!(x.len(), reference.len());
        for (i, (got, want)) in x.iter().zip(&reference).enumerate() {
            let err = (got.to_f64() - want.to_f64()).abs() / scale;
            prop_assert!(
                err < tol,
                "{} ({}) row {}: {} vs {} (rel err {:.3e}, tol {:.3e})",
                name,
                S::NAME,
                i,
                got,
                want,
                err,
                tol
            );
        }
    }
    Ok(())
}

/// A diagonally dominant Toeplitz system: constant stencil `(a, b, c)`
/// with `|b| > |a| + |c|`, random RHS.
fn toeplitz_dominant<S: Scalar>(
    n: usize,
    a: f64,
    c: f64,
    margin: f64,
    neg: bool,
    seed: u64,
) -> TridiagonalSystem<S> {
    let b = (a.abs() + c.abs() + margin) * if neg { -1.0 } else { 1.0 };
    // Cheap deterministic RHS in [-1, 1).
    let mut state = seed | 1;
    let rhs: Vec<S> = (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            S::from_f64((state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0)
        })
        .collect();
    generators::toeplitz(S::from_f64(a), S::from_f64(b), S::from_f64(c), rhs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulated GPU solves anything the host Thomas solves.
    #[test]
    fn gpu_solver_matches_thomas(
        m in 1usize..12,
        n_exp in 3u32..10,
        n_off in 0usize..5,
        seed in any::<u64>(),
    ) {
        let n = (1usize << n_exp) + n_off;
        let batch = generators::random_batch::<f64>(m, n, seed);
        let (x, report) = GpuTridiagSolver::gtx480().solve_batch(&batch).unwrap();
        prop_assert!(batch.max_relative_residual(&x).unwrap() < 1e-8);
        prop_assert!(report.total_us > 0.0);
        for sys in 0..m {
            let s = batch.system(sys).unwrap();
            let reference = thomas::solve_typed(&s).unwrap();
            for row in 0..n {
                let g = x[batch.index(sys, row)];
                prop_assert!(
                    (g - reference[row]).abs() < 1e-7 * reference[row].abs().max(1.0),
                    "sys {} row {}: {} vs {}", sys, row, g, reference[row]
                );
            }
        }
    }

    /// Streamed, partitioned and naive tiled PCR all equal monolithic
    /// reduction bit-for-bit, for arbitrary sizes and k.
    #[test]
    fn tilings_equal_monolithic(
        n in 16usize..600,
        k in 1u32..5,
        sub_tile in 1usize..40,
        parts in 1usize..6,
        seed in any::<u64>(),
    ) {
        prop_assume!((1usize << k) <= n);
        let s = generators::dominant_random::<f64>(n, seed);
        let mono = pcr::reduce(&s, k).unwrap();
        let (ma, mb, mc, md) = mono.arrays();

        let (st, _) = tiled_pcr::reduce_streamed(&s, k, sub_tile).unwrap();
        let (sa, sb, sc, sd) = st.arrays();
        prop_assert!(sa == ma && sb == mb && sc == mc && sd == md, "streamed");

        let parts = parts.min(n);
        let (pt, _) = tiled_pcr::reduce_partitioned(&s, k, parts).unwrap();
        let (pa, pb, pc, pd) = pt.arrays();
        prop_assert!(pa == ma && pb == mb && pc == mc && pd == md, "partitioned");

        let (nt, _) = tiled_pcr::reduce_naive_tiled(&s, k, sub_tile).unwrap();
        let (na, nb, nc, nd) = nt.arrays();
        prop_assert!(na == ma && nb == mb && nc == mc && nd == md, "naive");
    }

    /// Incomplete PCR + independent Thomas equals a direct solve.
    #[test]
    fn divide_and_conquer_is_exact(
        n in 8usize..500,
        k in 0u32..4,
        seed in any::<u64>(),
    ) {
        prop_assume!((1usize << k) <= n);
        let s = generators::dominant_random::<f64>(n, seed);
        let direct = thomas::solve_typed(&s).unwrap();
        let via_pcr = pcr::reduce(&s, k).unwrap().solve_subsystems_thomas().unwrap();
        for i in 0..n {
            prop_assert!((direct[i] - via_pcr[i]).abs() < 1e-7 * direct[i].abs().max(1.0));
        }
    }

    /// Layout conversion round-trips and never changes row content.
    #[test]
    fn layout_round_trip(m in 1usize..10, n in 1usize..64, seed in any::<u64>()) {
        let b = generators::random_batch::<f64>(m, n, seed);
        let i = b.to_layout(Layout::Interleaved);
        let back = i.to_layout(Layout::Contiguous);
        prop_assert_eq!(&back, &b);
        for sys in 0..m {
            for row in 0..n {
                prop_assert_eq!(b.row(sys, row), i.row(sys, row));
            }
        }
    }

    /// The sliding-window pipeline accepts any feed chunking and still
    /// produces monolithic output (chunk boundaries are invisible).
    #[test]
    fn pipeline_chunking_invariant(
        n in 16usize..300,
        k in 1u32..4,
        chunk in 1usize..23,
        seed in any::<u64>(),
    ) {
        prop_assume!((1usize << k) <= n);
        let s = generators::dominant_random::<f64>(n, seed);
        let mono = pcr::reduce(&s, k).unwrap();
        let (ma, ..) = mono.arrays();
        let mut pipe = PcrPipeline::new(n, k).unwrap();
        let mut fed = 0usize;
        while fed < n {
            let end = (fed + chunk).min(n);
            for i in fed..end {
                pipe.push(scalable_tridiag::tridiag_core::cr::Row::from_system(&s, i)).unwrap();
            }
            fed = end;
        }
        let (rows, stats) = pipe.finish().unwrap();
        prop_assert_eq!(stats.rows_loaded, n);
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(r.a, ma[i]);
        }
    }

    /// Every host algorithm (Thomas, CR, PCR, tiled-PCR + p-Thomas
    /// hybrid) agrees with the cpu-ref engine on diagonally dominant
    /// random systems, in both precisions, within a tolerance derived
    /// from the estimated condition number.
    #[test]
    fn algorithms_agree_on_dominant_systems(
        n in 4usize..300,
        seed in any::<u64>(),
    ) {
        algorithms_match_cpu_ref(&generators::dominant_random::<f64>(n, seed))?;
        algorithms_match_cpu_ref(&generators::dominant_random::<f32>(n, seed))?;
    }

    /// Same agreement on dominant Toeplitz systems (constant stencil —
    /// the PDE/spline case), including negative-diagonal stencils.
    #[test]
    fn algorithms_agree_on_toeplitz_systems(
        n in 4usize..300,
        a in -1.0f64..1.0,
        c in -1.0f64..1.0,
        margin in 0.25f64..4.0,
        neg in any::<bool>(),
        seed in any::<u64>(),
    ) {
        algorithms_match_cpu_ref(&toeplitz_dominant::<f64>(n, a, c, margin, neg, seed))?;
        algorithms_match_cpu_ref(&toeplitz_dominant::<f32>(n, a, c, margin, neg, seed))?;
    }

    /// The condition-derived tolerance is honored end-to-end by the
    /// simulated GPU solver too (both precisions, Toeplitz batch).
    #[test]
    fn gpu_solver_within_condition_tolerance(
        m in 1usize..6,
        n in 8usize..200,
        margin in 0.5f64..4.0,
        seed in any::<u64>(),
    ) {
        let sys = toeplitz_dominant::<f64>(n, -1.0, -1.0, margin, false, seed);
        let tol = condition_tolerance(&sys);
        let batch = SystemBatch::from_systems(vec![sys; m]).unwrap();
        let (x, _) = GpuTridiagSolver::gtx480().solve_batch(&batch).unwrap();
        prop_assert!(batch.max_relative_residual(&x).unwrap() < tol);
    }

    /// choose_k never returns an invalid step count.
    #[test]
    fn transition_always_valid(m in 1usize..100_000, n in 1usize..100_000) {
        for policy in [
            transition::TransitionPolicy::Gtx480Heuristic,
            transition::TransitionPolicy::CostModel { parallelism: 23040, k_max: 12 },
            transition::TransitionPolicy::Fixed(9),
        ] {
            let k = transition::choose_k(policy, m, n);
            prop_assert!((1usize << k) <= n.max(1), "policy {:?}: k={} n={}", policy, k, n);
        }
    }
}
