//! Failure injection: singular and malformed inputs must surface typed
//! errors from every engine — never panics, never silent garbage.

use scalable_tridiag::cpu_ref;
use scalable_tridiag::tridiag_core::{
    cr, generators, pcr, rd, thomas, SystemBatch, TridiagError, TridiagonalSystem,
};
use scalable_tridiag::tridiag_gpu::solver::GpuTridiagSolver;

/// A system whose very first pivot is exactly zero.
fn zero_head(n: usize) -> TridiagonalSystem<f64> {
    generators::near_singular::<f64>(n, 0, 0.0, 99)
}

#[test]
fn host_algorithms_report_zero_pivot() {
    let s = zero_head(32);
    assert!(matches!(
        thomas::solve_typed(&s).unwrap_err(),
        TridiagError::ZeroPivot { .. }
    ));
    assert!(cr::solve(&s).is_err());
    assert!(pcr::solve(&s).is_err());
    assert!(rd::solve(&s).is_err());
}

#[test]
fn cpu_batched_solvers_propagate_errors() {
    let good = generators::dominant_random::<f64>(32, 1);
    let batch = SystemBatch::from_systems(vec![good.clone(), zero_head(32), good]).unwrap();
    assert!(cpu_ref::solve_batch_sequential(&batch).is_err());
    assert!(cpu_ref::solve_batch_threaded(&batch, &cpu_ref::ThreadPool::new(4)).is_err());
}

#[test]
fn gpu_solver_faults_cleanly_on_singular_input() {
    let good = generators::dominant_random::<f64>(64, 2);
    let batch = SystemBatch::from_systems(vec![good, zero_head(64)]).unwrap();
    let err = GpuTridiagSolver::gtx480().solve_batch(&batch).unwrap_err();
    // A kernel fault, not a panic and not a wrong answer.
    assert!(matches!(err, gpu_sim::SimError::KernelFault(_)), "{err}");
}

#[test]
fn sharded_solver_faults_cleanly_on_singular_shard() {
    // Eight systems across four devices shard as [0,2) [2,4) [4,6) [6,8);
    // poisoning system 5 puts the singular system in shard 2 alone. The
    // group solve must surface the same typed kernel fault as the
    // single-device path — partial results discarded, no panic leaking
    // out of the worker thread.
    let n = 64;
    let mut systems: Vec<_> = (0..8)
        .map(|i| generators::dominant_random::<f64>(n, i as u64))
        .collect();
    systems[5] = zero_head(n);
    let batch = SystemBatch::from_systems(systems).unwrap();
    let solver = GpuTridiagSolver::gtx480();
    let group =
        gpu_sim::DeviceGroup::homogeneous(gpu_sim::DeviceSpec::gtx480(), 4).unwrap();
    let err = solver.solve_batch_group::<f64>(&group, &batch).unwrap_err();
    assert!(matches!(err, gpu_sim::SimError::KernelFault(_)), "{err}");
    // The fault is attributed to the shard that owns system 5.
    assert!(err.to_string().contains("shard 2"), "{err}");
    // A healthy batch on the same group still solves.
    let good: Vec<_> = (0..8)
        .map(|i| generators::dominant_random::<f64>(n, 100 + i as u64))
        .collect();
    let healthy = SystemBatch::from_systems(good).unwrap();
    assert!(solver.solve_batch_group::<f64>(&group, &healthy).is_ok());
}

#[test]
fn malformed_construction_is_rejected() {
    assert!(matches!(
        TridiagonalSystem::<f64>::new(vec![], vec![], vec![], vec![]).unwrap_err(),
        TridiagError::EmptySystem
    ));
    assert!(matches!(
        TridiagonalSystem::<f64>::new(vec![0.0], vec![1.0, 2.0], vec![0.0, 0.0], vec![1.0, 1.0])
            .unwrap_err(),
        TridiagError::LengthMismatch { .. }
    ));
    let s1 = generators::dominant_random::<f64>(4, 1);
    let s2 = generators::dominant_random::<f64>(5, 2);
    assert!(SystemBatch::from_systems(vec![s1, s2]).is_err());
}

#[test]
fn nan_input_is_caught_not_propagated_silently() {
    let mut s = generators::dominant_random::<f64>(16, 3);
    s.rhs_mut()[7] = f64::NAN;
    assert!(matches!(
        s.check_finite().unwrap_err(),
        TridiagError::NonFinite { row: 7 }
    ));
    // Thomas detects the NaN during the sweep.
    assert!(thomas::solve_typed(&s).is_err());
}

#[test]
fn nearly_singular_still_solves_but_residual_tells() {
    // A tiny-but-nonzero pivot: pivot-free elimination goes through;
    // the residual check is the user's guard.
    let s = generators::near_singular::<f64>(64, 20, 1e-13, 5);
    if let Ok(x) = thomas::solve_typed(&s) {
        let r = s.relative_residual(&x).unwrap();
        // Either an accurate solve or a residual loud enough to notice;
        // what must not happen is a quiet NaN.
        assert!(x.iter().all(|v| v.is_finite()) || r > 1e-6);
    }
}
