//! Cross-crate integration: every solver engine in the workspace must
//! produce the same answer on the same batch.
//!
//! Engines: host Thomas/CR/PCR/RD, the host hybrid, the simulated-GPU
//! hybrid (split and fused), the Davidson and Zhang baselines, and the
//! CPU batched solvers (sequential and thread-pooled).

use scalable_tridiag::cpu_ref;
use scalable_tridiag::tridiag_core::{
    cr, generators, hybrid, pcr, rd, thomas, Layout, Scalar, SystemBatch,
};
use scalable_tridiag::tridiag_gpu::solver::{
    GpuSolverConfig, GpuTridiagSolver, MappingVariant,
};
use scalable_tridiag::tridiag_gpu::{davidson, zhang};

fn assert_close<S: Scalar>(a: &[S], b: &[S], tol: f64, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length");
    for i in 0..a.len() {
        let d = (a[i].to_f64() - b[i].to_f64()).abs();
        let scale = a[i].to_f64().abs().max(1.0);
        assert!(d / scale < tol, "{ctx}: row {i}: {} vs {}", a[i], b[i]);
    }
}

#[test]
fn all_single_system_algorithms_agree() {
    for n in [17usize, 256, 1000, 4096] {
        let s = generators::dominant_random::<f64>(n, n as u64);
        let reference = thomas::solve_typed(&s).unwrap();
        assert_close(&cr::solve(&s).unwrap(), &reference, 1e-8, "cr");
        assert_close(&pcr::solve(&s).unwrap(), &reference, 1e-8, "pcr");
        assert_close(&rd::solve(&s).unwrap(), &reference, 1e-7, "rd");
        let (xh, _) = hybrid::solve(&s, hybrid::HybridConfig::default()).unwrap();
        assert_close(&xh, &reference, 1e-8, "host hybrid");
    }
}

#[test]
fn gpu_engines_agree_with_cpu_reference() {
    for (m, n) in [(4usize, 512usize), (64, 256), (3, 1000)] {
        let batch = generators::random_batch::<f64>(m, n, 17 + m as u64);
        let x_cpu = cpu_ref::solve_batch_sequential(&batch).unwrap();
        let x_mt =
            cpu_ref::solve_batch_threaded(&batch, &cpu_ref::ThreadPool::new(4)).unwrap();
        assert_eq!(x_cpu, x_mt, "threaded CPU must be bitwise identical");

        let (x_gpu, _) = GpuTridiagSolver::gtx480().solve_batch(&batch).unwrap();
        assert_close(&x_gpu, &x_cpu, 1e-8, &format!("gpu m={m} n={n}"));

        let (x_dav, _) = davidson::solve_batch(&gpu_sim::DeviceSpec::gtx480(), &batch).unwrap();
        assert_close(&x_dav, &x_cpu, 1e-7, &format!("davidson m={m} n={n}"));

        if n <= zhang::max_system_size(&gpu_sim::DeviceSpec::gtx480(), 8) {
            let (x_zh, _) =
                zhang::solve_batch(&gpu_sim::DeviceSpec::gtx480(), &batch, None).unwrap();
            assert_close(&x_zh, &x_cpu, 1e-7, &format!("zhang m={m} n={n}"));
        }
    }
}

#[test]
fn fused_and_split_pipelines_agree() {
    let batch = generators::random_batch::<f64>(16, 768, 23);
    let split = GpuTridiagSolver::new(gpu_sim::DeviceSpec::gtx480(), GpuSolverConfig::default());
    let fused = GpuTridiagSolver::new(
        gpu_sim::DeviceSpec::gtx480(),
        GpuSolverConfig {
            fused: true,
            mapping: MappingVariant::BlockPerSystem,
            ..Default::default()
        },
    );
    let (xs, rs) = split.solve_batch(&batch).unwrap();
    let (xf, rf) = fused.solve_batch(&batch).unwrap();
    assert!(!rs.fused && rf.fused);
    // Same arithmetic order in PCR; Thomas fold order matches too.
    assert_close(&xf, &xs, 1e-11, "fused vs split");
}

#[test]
fn all_three_mappings_agree() {
    let batch = generators::random_batch::<f64>(6, 2048, 29);
    let mut answers = Vec::new();
    for mapping in [
        MappingVariant::BlockPerSystem,
        MappingVariant::BlockGroupPerSystem(4),
        MappingVariant::MultiSystemPerBlock(2),
    ] {
        let solver = GpuTridiagSolver::new(
            gpu_sim::DeviceSpec::gtx480(),
            GpuSolverConfig {
                mapping,
                ..Default::default()
            },
        );
        let (x, report) = solver.solve_batch(&batch).unwrap();
        assert!(batch.max_relative_residual(&x).unwrap() < 1e-9, "{mapping:?}");
        answers.push((mapping, x, report));
    }
    // All mappings compute the identical reduction (bit-exact PCR), so
    // solutions agree to rounding.
    let base = &answers[0].1;
    for (mapping, x, _) in &answers[1..] {
        assert_close(x, base, 1e-11, &format!("{mapping:?}"));
    }
}

#[test]
fn layouts_do_not_change_answers() {
    let batch_c = generators::random_batch::<f64>(8, 333, 31);
    let batch_i = batch_c.to_layout(Layout::Interleaved);
    let (xc, _) = GpuTridiagSolver::gtx480().solve_batch(&batch_c).unwrap();
    let (xi, _) = GpuTridiagSolver::gtx480().solve_batch(&batch_i).unwrap();
    for sys in 0..8 {
        for row in 0..333 {
            let a = xc[batch_c.index(sys, row)];
            let b = xi[batch_i.index(sys, row)];
            assert_eq!(a, b, "sys {sys} row {row}");
        }
    }
}

#[test]
fn f32_parity_within_single_precision_tolerance() {
    let batch64 = generators::random_batch::<f64>(8, 512, 37);
    let systems32 = batch64
        .to_systems()
        .iter()
        .map(|s| s.cast::<f32>())
        .collect::<Vec<_>>();
    let batch32 = SystemBatch::from_systems(systems32).unwrap();
    let (x64, r64) = GpuTridiagSolver::gtx480().solve_batch(&batch64).unwrap();
    let (x32, r32) = GpuTridiagSolver::gtx480().solve_batch(&batch32).unwrap();
    assert_eq!(r64.precision, "f64");
    assert_eq!(r32.precision, "f32");
    for i in 0..x64.len() {
        assert!(
            (x64[i] - x32[i] as f64).abs() < 1e-2,
            "row {i}: {} vs {}",
            x64[i],
            x32[i]
        );
    }
    // f32 must be modeled faster (half the traffic).
    assert!(r32.total_us < r64.total_us);
}
