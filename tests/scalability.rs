//! Performance-model shape invariants across the paper's regimes —
//! the integration-level checks behind Figs. 12–14.

use bench::series;
use scalable_tridiag::tridiag_core::generators;
use scalable_tridiag::tridiag_gpu::solver::{GpuTridiagSolver, MappingVariant};

#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn gpu_time_is_sublinear_then_linear_in_m() {
    // Fig. 12 shape: under-filled region grows sub-linearly …
    let n = 512;
    let (t64, _) = series::ours_us::<f64>(64, n);
    let (t256, _) = series::ours_us::<f64>(256, n);
    assert!(
        t256 < 3.5 * t64,
        "sub-linear region: {t64:.1} -> {t256:.1} for 4x systems"
    );
    // … and the saturated region is ~linear.
    let (t4k, _) = series::ours_us::<f64>(4096, n);
    let (t8k, _) = series::ours_us::<f64>(8192, n);
    let ratio = t8k / t4k;
    assert!(
        (1.5..=2.6).contains(&ratio),
        "saturated region should double: {t4k:.1} -> {t8k:.1} ({ratio:.2}x)"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn gpu_beats_modeled_mkl_at_scale_loses_nothing_when_small() {
    let n = 512;
    // Large M: decisive win over both CPU baselines (Fig. 12 right side).
    let (ours, _) = series::ours_us::<f64>(8192, n);
    assert!(series::mkl_seq_us(8192, n, 8) / ours > 10.0);
    assert!(series::mkl_mt_us(8192, n, 8) / ours > 3.0);
    // Small M: "close results compared to the CPU implementations".
    let (ours_small, _) = series::ours_us::<f64>(64, n);
    let mt_small = series::mkl_mt_us(64, n, 8);
    assert!(
        ours_small < 4.0 * mt_small,
        "small-M region should be competitive: ours {ours_small:.1} vs mt {mt_small:.1}"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn single_large_system_keeps_a_healthy_lead() {
    // Fig. 13(d): even M = 1 stays well ahead of the (sequential-only)
    // CPU, via deep PCR + partitioning.
    let n = 1 << 20;
    let (ours, report) = series::ours_us::<f64>(1, n);
    assert!(report.k >= 6, "deep PCR expected, got k = {}", report.k);
    assert!(
        matches!(report.mapping, MappingVariant::BlockGroupPerSystem(_)),
        "lone system should be partitioned: {:?}",
        report.mapping
    );
    let seq = series::mkl_seq_us(1, n, 8);
    assert!(
        seq / ours > 3.0,
        "paper shows ~5.5x for M=1; got {:.1}x",
        seq / ours
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn davidson_loses_by_the_papers_margin() {
    // Section V: 2–10x across most configurations.
    for (m, n) in [(1024usize, 1024usize), (1, 1 << 19)] {
        let (ours, _) = series::ours_us::<f64>(m, n);
        let dav = series::davidson_us::<f64>(m, n);
        let ratio = dav / ours;
        assert!(
            ratio > 1.3 && ratio < 40.0,
            "M={m} N={n}: davidson/ours = {ratio:.1}"
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn f32_speedups_exceed_f64_speedups() {
    // Abstract: 12.9x/82.5x (f32) vs 8.3x/49x (f64) — single precision
    // widens the GPU's lead.
    let (m, n) = (4096usize, 512usize);
    let (ours64, _) = series::ours_us::<f64>(m, n);
    let (ours32, _) = series::ours_us::<f32>(m, n);
    let s64 = series::mkl_seq_us(m, n, 8) / ours64;
    let s32 = series::mkl_seq_us(m, n, 4) / ours32;
    assert!(
        s32 > s64,
        "f32 speedup {s32:.1} must exceed f64 speedup {s64:.1}"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn transition_staircase_visible_in_reports() {
    // Walking M across the Table III ranges changes k monotonically.
    let n = 2048;
    let mut last_k = u32::MAX;
    for m in [1usize, 16, 64, 512, 2048] {
        let batch = generators::random_batch::<f64>(m, n, 3);
        let (_, report) = GpuTridiagSolver::gtx480().solve_batch(&batch).unwrap();
        assert!(report.k <= last_k, "k must fall as M grows");
        last_k = report.k;
    }
    assert_eq!(last_k, 0, "saturated batches run pure p-Thomas");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn zhang_gate_and_tiled_pcr_scalability_claim() {
    // The conventional in-shared method dies at N > 768 (f64, GTX480);
    // the tiled hybrid does not — the paper's core scalability claim.
    assert!(series::zhang_us::<f64>(2, 768).is_some());
    assert!(series::zhang_us::<f64>(2, 1024).is_none());
    let (t, _) = series::ours_us::<f64>(2, 1024);
    assert!(t > 0.0, "tiled hybrid handles what Zhang cannot");
}
