#!/usr/bin/env bash
# Perf baseline comparison: re-measures the BENCH_solver sweep and the
# BENCH_service window sweep on the current tree and diffs them against
# the committed BENCH_solver.json / BENCH_service.json. Each run also
# appends its headline numbers to the append-only perf ledger
# (BENCH_history.jsonl, schema tridiag.bench_history/v1) and prints a
# report-only diff against the previous ledger entry, so drift that
# compounds across runs stays visible even when every step is inside
# tolerance.
#
# Report-only by default (always exits 0 so it can run as an advisory
# CI step); pass --strict to fail on drift beyond the tolerances baked
# into the baseline binaries. To accept an intentional perf change,
# regenerate the affected baseline:
#   cargo run --release -p bench --bin solver_baseline
#   cargo run --release -p bench --bin service_throughput
set -euo pipefail
cd "$(dirname "$0")/.."

mode=(--report-only)
if [[ "${1:-}" == "--strict" ]]; then
  mode=()
fi

cargo build --release -q -p bench
./target/release/solver_baseline --check BENCH_solver.json \
  --history BENCH_history.jsonl "${mode[@]}"
./target/release/service_throughput --check BENCH_service.json \
  --history BENCH_history.jsonl "${mode[@]}"
