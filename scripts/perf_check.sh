#!/usr/bin/env bash
# Perf baseline comparison: re-measures the BENCH_solver sweep on the
# current tree and diffs it against the committed BENCH_solver.json.
#
# Report-only by default (always exits 0 so it can run as an advisory
# CI step); pass --strict to fail on drift beyond the tolerance baked
# into the solver_baseline binary. To accept an intentional perf
# change, regenerate the baseline:
#   cargo run --release -p bench --bin solver_baseline
set -euo pipefail
cd "$(dirname "$0")/.."

mode=(--report-only)
if [[ "${1:-}" == "--strict" ]]; then
  mode=()
fi

cargo build --release -q -p bench
./target/release/solver_baseline --check BENCH_solver.json "${mode[@]}"
