#!/usr/bin/env bash
# Perf baseline comparison: re-measures the BENCH_solver sweep and the
# BENCH_service window sweep on the current tree and diffs them against
# the committed BENCH_solver.json / BENCH_service.json.
#
# Report-only by default (always exits 0 so it can run as an advisory
# CI step); pass --strict to fail on drift beyond the tolerances baked
# into the baseline binaries. To accept an intentional perf change,
# regenerate the affected baseline:
#   cargo run --release -p bench --bin solver_baseline
#   cargo run --release -p bench --bin service_throughput
set -euo pipefail
cd "$(dirname "$0")/.."

mode=(--report-only)
if [[ "${1:-}" == "--strict" ]]; then
  mode=()
fi

cargo build --release -q -p bench
./target/release/solver_baseline --check BENCH_solver.json "${mode[@]}"
./target/release/service_throughput --check BENCH_service.json "${mode[@]}"
