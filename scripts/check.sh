#!/usr/bin/env bash
# Repo health check: tier-1 (build + root-package tests) plus the
# sanitizer and static-lint suites. Run from anywhere; exits non-zero
# on any failure.
set -euo pipefail
cd "$(dirname "$0")/.."

# First-party crates (vendored shims under vendor/ are exempt from the
# clippy gate).
FIRST_PARTY=(-p tridiag-core -p gpu-sim -p tridiag-gpu -p cpu-ref -p tridiag-service -p tridiag-cli)

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: root-package tests =="
cargo test -q

echo "== clippy (first-party, warnings are errors) =="
cargo clippy "${FIRST_PARTY[@]}" --all-targets -- -D warnings

echo "== sanitizer: negative suite (violations must fire) =="
cargo test -q -p gpu-sim --test sanitizer_negative

echo "== lint: negative suite (every diagnostic class must fire) =="
cargo test -q -p gpu-sim --test lint_negative

echo "== sanitizer: kernel zoo must run clean =="
cargo test -q -p tridiag-gpu --test sanitizer_clean

echo "== golden counters (incl. static-vs-dynamic cross-check) =="
cargo test -q -p tridiag-gpu --test golden_counters

echo "== phase sums (per-phase counters partition kernel totals) =="
cargo test -q -p tridiag-gpu --test phase_sums

echo "== trace export (Chrome-trace schema + round-trip) =="
cargo test -q -p tridiag-gpu --test trace_roundtrip

echo "== plan snapshots (golden describe() + plan-then-execute bit-identity) =="
cargo test --release -q -p tridiag-gpu --test plan_snapshots

echo "== sharded partition properties (coverage, balance, typed degenerate errors) =="
cargo test -q -p tridiag-gpu --test sharded_partition

echo "== sharded trace merge (Chrome schema, per-device tracks, bit-exact phase sums) =="
cargo test -q -p tridiag-gpu --test sharded_trace

echo "== sharded differential harness (shard(D) . merge == single device, bit-for-bit) =="
cargo test --release -q -p tridiag-gpu --test sharded_differential

echo "== distributed partition properties (row coverage, interface bijection, mixed groups) =="
cargo test -q -p tridiag-gpu --test distributed_partition_props

echo "== distributed differential harness (split(D) . reduce . back-sub vs single device) =="
cargo test --release -q -p tridiag-gpu --test distributed_differential

echo "== service differential harness (coalesced == solo, bit-for-bit, 60 mixes) =="
cargo test --release -q -p tridiag-service --test service_differential

echo "== service plan-cache properties (hit == fresh build byte-for-byte) =="
cargo test --release -q -p tridiag-service --test plan_cache_props

echo "== service concurrency stress (bounded queue, typed overload, fault isolation) =="
cargo test --release -q -p tridiag-service --test service_stress

echo "== seed-era release suites (engine parity + scalability under --release) =="
cargo test --release -q --test engine_parity --test scalability

echo "== CLI lint over the kernel zoo (exit 0 = no findings) =="
cargo run --release -q -p tridiag-cli -- lint

echo "== CLI --check smoke (sanitizer + lint on a solve) =="
out="$(cargo run --release -q -p tridiag-cli -- solve --m 8 --n 256 --check)"
grep -q "sanitizer   : clean" <<<"$out"
grep -q "lint        : clean" <<<"$out"

echo "== CLI plan smoke (dry-run planning, schema-validated JSON, exit 2 on drift) =="
out="$(cargo run --release -q -p tridiag-cli -- plan --sweep)"
grep -q -- "--layout contiguous" <<<"$out"
grep -q -- "--layout interleaved" <<<"$out"
out="$(cargo run --release -q -p tridiag-cli -- solve --m 16 --n 1024 --dry-run)"
grep -q "dry run     : no kernels launched" <<<"$out"
out="$(cargo run --release -q -p tridiag-cli -- plan --m 64 --n 512 --json)"
grep -q "tridiag.solve_plan/v2" <<<"$out"

echo "== CLI layout smoke (forced layouts plan, solve and certify) =="
out="$(cargo run --release -q -p tridiag-cli -- plan --m 64 --n 512 --layout interleaved)"
grep -q "layout=Interleaved" <<<"$out"
out="$(cargo run --release -q -p tridiag-cli -- solve --m 64 --n 512 --layout interleaved --verify)"
grep -q "verify      : clean" <<<"$out"
out="$(cargo run --release -q -p tridiag-cli -- solve --m 64 --n 512 --layout contiguous --check)"
grep -q "sanitizer   : clean" <<<"$out"

echo "== layout acceptance gate (interleaved hits the coalesced floor exactly) =="
cargo test --release -q -p tridiag-gpu --test layout_cost

echo "== interleaved differential (GPU vs cpu-ref lane reference) =="
cargo test --release -q -p tridiag-gpu --test interleaved_differential

echo "== layout + legacy-plan properties (bijection, round-trip, golden purity) =="
cargo test -q -p tridiag-core --test layout_properties
cargo test --release -q -p tridiag-gpu --test legacy_plan_props

echo "== plan verifier: negative suite (every diagnostic class must fire) =="
cargo test -q -p tridiag-gpu --test verify_negative

echo "== plan verifier: properties (planner-built certifies clean, prediction exact) =="
cargo test --release -q -p tridiag-gpu --test verify_props

echo "== CLI verify sweep (certify + execute + exact certificate cross-check) =="
cargo run --release -q -p tridiag-cli -- verify --sweep > /dev/null
out="$(cargo run --release -q -p tridiag-cli -- verify --m 64 --n 512)"
grep -q "clean" <<<"$out"
out="$(cargo run --release -q -p tridiag-cli -- solve --m 8 --n 256 --verify)"
grep -q "verify      : clean" <<<"$out"

echo "== CLI verify negative (corruptions must exit 2 with findings) =="
set +e
cargo run --release -q -p tridiag-cli -- verify --negative > /dev/null 2>&1
rc=$?
set -e
test "$rc" -eq 2

echo "== API docs (first-party, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps \
  -p tridiag-core -p gpu-sim -p tridiag-gpu -p cpu-ref -p tridiag-service > /dev/null

echo "== CLI multi-device smoke (sharded solve + sharded plan schema) =="
out="$(cargo run --release -q -p tridiag-cli -- solve --m 8 --n 256 --devices 2)"
grep -q "devices     : 2" <<<"$out"
out="$(cargo run --release -q -p tridiag-cli -- plan --m 64 --n 512 --devices 2 --json)"
grep -q "tridiag.sharded_plan/v2" <<<"$out"

echo "== CLI distributed smoke (one system row-split, certified + solved) =="
out="$(cargo run --release -q -p tridiag-cli -- solve --split-n 4 --n 4096 --verify)"
grep -q "one system row-split" <<<"$out"
grep -q "distributed : reduced 8 unknowns" <<<"$out"
grep -q "verify      : clean" <<<"$out"
out="$(cargo run --release -q -p tridiag-cli -- plan --split-n 2 --n 16384 --json)"
grep -q "tridiag.distributed_plan/v1" <<<"$out"
out="$(cargo run --release -q -p tridiag-cli -- verify --split-n 2 --n 16384)"
grep -q "clean" <<<"$out"

echo "== CLI serve smoke (8 concurrent requests, bit-checked vs solo, exit 2 on mismatch) =="
out="$(cargo run --release -q -p tridiag-cli -- serve --requests 8 --clients 4)"
grep -q "answered 8/8 bit-identical to solo" <<<"$out"
cargo run --release -q -p tridiag-cli -- bench-service --requests 16 > /dev/null

echo "== CLI profile smoke (trace schema + phase sums, exit 2 on violation) =="
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
cargo run --release -q -p tridiag-cli -- profile --m 8 --n 256 --out "$tracedir/trace.json"
test -s "$tracedir/trace.json"
cargo run --release -q -p tridiag-cli -- profile --zoo --out "$tracedir/zoo.json" > /dev/null
test -s "$tracedir/zoo.json"

echo "== telemetry: metrics registry + event-log replay + determinism properties =="
cargo test -q -p gpu-sim --lib metrics
cargo test --release -q -p tridiag-service --test telemetry_props

echo "== CLI stats smoke (snapshot tables + every telemetry invariant, exit 2 on violation) =="
out="$(cargo run --release -q -p tridiag-cli -- stats --requests 24)"
grep -q "partitions report totals bit-exactly" <<<"$out"
grep -q "slo: target" <<<"$out"
cargo run --release -q -p tridiag-cli -- stats --requests 24 --json | grep -q "tridiag.metrics/v1"

echo "== CLI stats negative (injected replay corruptions must exit 2 with findings) =="
set +e
cargo run --release -q -p tridiag-cli -- stats --requests 8 --negative > /dev/null 2>&1
rc=$?
set -e
test "$rc" -eq 2

echo "== telemetry artifact sweep (stats --out + serve --telemetry, all schemas validated) =="
cargo run --release -q -p tridiag-cli -- stats --requests 24 --out "$tracedir/tel" > /dev/null
test -s "$tracedir/tel/metrics.json"
test -s "$tracedir/tel/events.jsonl"
test -s "$tracedir/tel/trace.json"
out="$(cargo run --release -q -p tridiag-cli -- serve --requests 8 --clients 4 --telemetry "$tracedir/tel_serve")"
grep -q "answered 8/8 bit-identical to solo" <<<"$out"
test -s "$tracedir/tel_serve/events.jsonl"

echo "all checks passed"
