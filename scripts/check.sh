#!/usr/bin/env bash
# Repo health check: tier-1 (build + root-package tests) plus the
# sanitizer suites. Run from anywhere; exits non-zero on any failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: root-package tests =="
cargo test -q

echo "== sanitizer: negative suite (violations must fire) =="
cargo test -q -p gpu-sim --test sanitizer_negative

echo "== sanitizer: kernel zoo must run clean =="
cargo test -q -p tridiag-gpu --test sanitizer_clean

echo "== golden counters =="
cargo test -q -p tridiag-gpu --test golden_counters

echo "== CLI --sanitize smoke =="
cargo run --release -q -p tridiag-cli -- solve --m 8 --n 256 --sanitize \
    | grep -q "sanitizer   : clean"

echo "all checks passed"
