//! Vectorised batched Thomas over the interleaved layout.
//!
//! The same layout insight the paper uses for GPU coalescing pays on
//! CPUs: with systems interleaved (`element (sys, row)` at
//! `row·M + sys`), the Thomas recurrence for a *lane group* of systems
//! advances through memory unit-stride, and the per-row loop body is a
//! branch-free map over adjacent lanes — exactly the shape
//! auto-vectorisers turn into SIMD (the `gtsvInterleavedBatch` trick).
//! Contrast with the contiguous layout, where each system walks its own
//! cache lines.
//!
//! This solver is observably faster than the scalar loop on wide
//! batches (see the `cpu_batched` Criterion bench) while remaining
//! bit-compatible *per system* with the scalar Thomas only up to
//! rounding — it uses the identical recurrence, so results match to
//! the last ulp in practice; the tests pin exact equality.

use tridiag_core::{Layout, Result, Scalar, SystemBatch, TridiagError};

/// Solve an interleaved batch with a vectorisable lane-parallel Thomas
/// sweep. The batch must be in [`Layout::Interleaved`]; call
/// [`SystemBatch::to_layout`] first if needed (the conversion cost is
/// what the paper's "PCR naturally produces interleaved results"
/// observation avoids on the GPU).
///
/// Returns the flat solution in interleaved order.
pub fn solve_batch_interleaved<S: Scalar>(batch: &SystemBatch<S>) -> Result<Vec<S>> {
    if batch.layout() != Layout::Interleaved {
        return Err(TridiagError::InvalidConfig(
            "solve_batch_interleaved requires Layout::Interleaved".into(),
        ));
    }
    let m = batch.num_systems();
    let n = batch.system_len();
    let (a, b, c, d) = batch.arrays();

    let mut c_prime = vec![S::ZERO; m * n];
    let mut x = vec![S::ZERO; m * n];

    // Row 0 for all lanes: c' = c/b, d' = d/b (d' stored in x).
    for lane in 0..m {
        if b[lane] == S::ZERO {
            return Err(TridiagError::ZeroPivot { row: 0 });
        }
        c_prime[lane] = c[lane] / b[lane];
        x[lane] = d[lane] / b[lane];
    }
    // Forward sweep: each row touches three unit-stride slices of width
    // m — the auto-vectoriser's favourite shape.
    for row in 1..n {
        let base = row * m;
        let prev = base - m;
        for lane in 0..m {
            let i = base + lane;
            let denom = b[i] - c_prime[prev + lane] * a[i];
            if denom == S::ZERO {
                return Err(TridiagError::ZeroPivot { row });
            }
            let inv = S::ONE / denom;
            c_prime[i] = c[i] * inv;
            x[i] = (d[i] - x[prev + lane] * a[i]) * inv;
        }
    }
    // Backward sweep.
    for row in (0..n.saturating_sub(1)).rev() {
        let base = row * m;
        let next = base + m;
        for lane in 0..m {
            let i = base + lane;
            x[i] = x[i] - c_prime[i] * x[next + lane];
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batched::solve_batch_sequential;
    use tridiag_core::generators::random_batch;

    #[test]
    fn matches_scalar_thomas_bitwise() {
        for (m, n) in [(1usize, 16usize), (7, 33), (64, 128), (33, 100)] {
            let batch = random_batch::<f64>(m, n, 5 + m as u64).to_layout(Layout::Interleaved);
            let fast = solve_batch_interleaved(&batch).unwrap();
            let scalar = solve_batch_sequential(&batch).unwrap();
            // Same recurrence, same operation order per system: the
            // floats must be identical, not merely close.
            assert_eq!(fast, scalar, "m={m} n={n}");
        }
    }

    #[test]
    fn requires_interleaved_layout() {
        let batch = random_batch::<f64>(4, 16, 1); // contiguous
        assert!(matches!(
            solve_batch_interleaved(&batch).unwrap_err(),
            TridiagError::InvalidConfig(_)
        ));
    }

    #[test]
    fn zero_pivot_detected_per_row() {
        let good = tridiag_core::generators::dominant_random::<f64>(8, 1);
        let bad = tridiag_core::generators::near_singular::<f64>(8, 0, 0.0, 2);
        let batch = SystemBatch::from_systems(vec![good, bad])
            .unwrap()
            .to_layout(Layout::Interleaved);
        assert!(matches!(
            solve_batch_interleaved(&batch).unwrap_err(),
            TridiagError::ZeroPivot { row: 0 }
        ));
    }

    #[test]
    fn f32_supported() {
        let batch = random_batch::<f32>(16, 64, 9).to_layout(Layout::Interleaved);
        let x = solve_batch_interleaved(&batch).unwrap();
        assert!(batch.max_relative_residual(&x).unwrap() < 1e-4);
    }
}
