//! CPU batched solvers — the Intel MKL `gtsv` stand-ins of Section IV.
//!
//! Two entry points mirror the paper's two CPU baselines:
//!
//! - [`solve_batch_sequential`] — one thread, Thomas per system, in
//!   batch order ("MKL (sequential)").
//! - [`solve_batch_threaded`] — Thomas per system, systems distributed
//!   over a thread pool. Mirrors the paper's footnote exactly: "the out
//!   of the box tridiagonal solver in Intel MKL does not support
//!   multi-threading. Therefore, the CPU implementation becomes
//!   multi-threaded only when there are two or more independent systems
//!   to be solved (M ≥ 2)" — a single system runs on one thread no
//!   matter the pool size.

use crate::pool::ThreadPool;
use parking_lot::Mutex;
use tridiag_core::thomas::{self, ThomasScratch};
use tridiag_core::{Result, Scalar, SystemBatch, TridiagError};

/// Solve every system sequentially with the Thomas algorithm. Returns
/// the flat solution in the batch's layout.
pub fn solve_batch_sequential<S: Scalar>(batch: &SystemBatch<S>) -> Result<Vec<S>> {
    let m = batch.num_systems();
    let n = batch.system_len();
    let mut x = vec![S::ZERO; batch.total_len()];
    let mut xs = vec![S::ZERO; n];
    let mut scratch = ThomasScratch::new(n);
    for sys in 0..m {
        let system = batch.system(sys)?;
        thomas::solve_into(&system, &mut xs, &mut scratch)?;
        for row in 0..n {
            x[batch.index(sys, row)] = xs[row];
        }
    }
    Ok(x)
}

/// Solve the batch with `pool` workers, one system per task (M ≥ 2;
/// a single-system batch runs sequentially, as MKL's `gtsv` would).
pub fn solve_batch_threaded<S: Scalar>(
    batch: &SystemBatch<S>,
    pool: &ThreadPool,
) -> Result<Vec<S>> {
    let m = batch.num_systems();
    if m < 2 || pool.workers() == 1 {
        return solve_batch_sequential(batch);
    }
    let n = batch.system_len();
    let x: Vec<Mutex<Vec<S>>> = (0..m).map(|_| Mutex::new(Vec::new())).collect();
    let first_err: Mutex<Option<TridiagError>> = Mutex::new(None);
    pool.for_each_index(m, |sys| {
        let run = || -> Result<Vec<S>> {
            let system = batch.system(sys)?;
            let mut xs = vec![S::ZERO; n];
            let mut scratch = ThomasScratch::new(n);
            thomas::solve_into(&system, &mut xs, &mut scratch)?;
            Ok(xs)
        };
        match run() {
            Ok(xs) => *x[sys].lock() = xs,
            Err(e) => {
                let mut slot = first_err.lock();
                if slot.is_none() {
                    *slot = Some(e);
                }
            }
        }
    });
    if let Some(e) = first_err.into_inner() {
        return Err(e);
    }
    let mut out = vec![S::ZERO; batch.total_len()];
    for sys in 0..m {
        let xs = x[sys].lock();
        for row in 0..n {
            out[batch.index(sys, row)] = xs[row];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::generators::{near_singular, random_batch};
    use tridiag_core::{Layout, SystemBatch};

    #[test]
    fn sequential_solves_batch() {
        let batch = random_batch::<f64>(5, 64, 1);
        let x = solve_batch_sequential(&batch).unwrap();
        assert!(batch.max_relative_residual(&x).unwrap() < 1e-11);
    }

    #[test]
    fn threaded_matches_sequential_bitwise() {
        for layout in [Layout::Contiguous, Layout::Interleaved] {
            let batch = random_batch::<f64>(33, 100, 2).to_layout(layout);
            let xs = solve_batch_sequential(&batch).unwrap();
            let xt = solve_batch_threaded(&batch, &ThreadPool::new(8)).unwrap();
            assert_eq!(xs, xt, "same algorithm, same floats, layout {layout:?}");
        }
    }

    #[test]
    fn single_system_runs_single_threaded_path() {
        let batch = random_batch::<f64>(1, 256, 3);
        let x = solve_batch_threaded(&batch, &ThreadPool::new(8)).unwrap();
        assert!(batch.max_relative_residual(&x).unwrap() < 1e-11);
    }

    #[test]
    fn errors_propagate_from_workers() {
        let bad = near_singular::<f64>(16, 0, 0.0, 7); // exact zero head pivot
        let good = tridiag_core::generators::dominant_random::<f64>(16, 8);
        let batch = SystemBatch::from_systems(vec![good.clone(), bad, good]).unwrap();
        let err = solve_batch_threaded(&batch, &ThreadPool::new(4)).unwrap_err();
        assert!(matches!(err, TridiagError::ZeroPivot { .. }));
        assert!(solve_batch_sequential(&batch).is_err());
    }

    #[test]
    fn f32_supported() {
        let batch = random_batch::<f32>(9, 128, 4);
        let x = solve_batch_threaded(&batch, &ThreadPool::new(4)).unwrap();
        assert!(batch.max_relative_residual(&x).unwrap() < 1e-4);
    }
}
