//! Analytic cost model of the paper's CPU baseline: Intel MKL `gtsv` on
//! a 3.33 GHz Core i7 975 (4 cores, 8 hyper-threads, ~25.6 GB/s DDR3).
//!
//! The figure harness compares *modeled GPU time* (from `gpu-sim`)
//! against *modeled CPU time* from this module, so both sides of every
//! figure come from the same kind of first-order model — matching the
//! task's goal of reproducing the paper's shapes, not its absolute
//! microseconds. (The real, runnable CPU implementations in
//! [`crate::batched`] are benchmarked separately with Criterion on the
//! host.)
//!
//! The model: Thomas' forward sweep is a serial division-latency chain,
//! so a core retires one row per ~`cycles_per_row` cycles; batching over
//! cores/hyper-threads divides that until DRAM bandwidth binds.
//! This reproduces the perfectly linear-in-`M·N` CPU curves of Fig. 12
//! ("an obvious relation … which is perfectly linear") and the ~6×
//! multi-threaded ceiling implied by the paper's 49×/8.3× speedup pair.

/// Analytic CPU cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Core clock (GHz).
    pub clock_ghz: f64,
    /// Cycles to retire one Thomas row (f64): division latency chain.
    pub cycles_per_row_f64: f64,
    /// Cycles per row in f32 (shorter divider pipeline).
    pub cycles_per_row_f32: f64,
    /// Effective parallel speedup with all threads (cores + SMT yield).
    pub effective_threads: f64,
    /// Sustained DRAM bandwidth, all cores (GB/s).
    pub bandwidth_gbps: f64,
    /// Sustained DRAM bandwidth, single core (GB/s).
    pub single_core_bandwidth_gbps: f64,
    /// Fixed overhead per batch call (µs).
    pub call_overhead_us: f64,
    /// Overhead per system (loop + MKL dispatch, µs).
    pub per_system_overhead_us: f64,
    /// Thread-pool fork/join overhead for the threaded path (µs).
    pub fork_join_us: f64,
}

impl CpuModel {
    /// The paper's Core i7 975 testbed.
    pub fn i7_975() -> Self {
        CpuModel {
            // MKL's ?gtsv is LAPACK Gaussian elimination *with partial
            // pivoting* — noticeably costlier per row than a textbook
            // pivot-free Thomas sweep (branches + row swaps on top of
            // the division chain). ~66 cycles/row reproduces the
            // paper's sequential baseline level; the f32 divider is
            // only slightly faster, matching the modest f32 gain the
            // paper's CPU numbers imply.
            clock_ghz: 3.33,
            cycles_per_row_f64: 66.0,
            cycles_per_row_f32: 60.0,
            effective_threads: 6.0,
            // Sustained (STREAM-like) bandwidth, not the DDR3 peak.
            bandwidth_gbps: 16.0,
            single_core_bandwidth_gbps: 9.0,
            call_overhead_us: 1.0,
            per_system_overhead_us: 0.15,
            fork_join_us: 4.0,
        }
    }

    /// Bytes a Thomas solve moves per row: read `a, b, c, d`, write
    /// `c', d'` (forward), read them back and write `x` (backward) —
    /// with the forward intermediates usually still cached, an effective
    /// ~6 element-moves per row.
    fn bytes_per_row(elem_bytes: usize) -> f64 {
        6.0 * elem_bytes as f64
    }

    fn cycles_per_row(&self, elem_bytes: usize) -> f64 {
        if elem_bytes == 4 {
            self.cycles_per_row_f32
        } else {
            self.cycles_per_row_f64
        }
    }

    /// Modeled time of the sequential baseline, µs ("MKL (sequential)").
    pub fn sequential_us(&self, m: usize, n: usize, elem_bytes: usize) -> f64 {
        let rows = (m * n) as f64;
        let compute = rows * self.cycles_per_row(elem_bytes) / (self.clock_ghz * 1e3);
        let bandwidth =
            rows * Self::bytes_per_row(elem_bytes) / (self.single_core_bandwidth_gbps * 1e3);
        self.call_overhead_us + m as f64 * self.per_system_overhead_us + compute.max(bandwidth)
    }

    /// Modeled time of the multi-threaded baseline, µs
    /// ("MKL (multithreaded)" / "MKL (8 threads)"). Only parallel for
    /// `M ≥ 2` — the paper's footnoted MKL behaviour.
    pub fn threaded_us(&self, m: usize, n: usize, elem_bytes: usize) -> f64 {
        if m < 2 {
            return self.sequential_us(m, n, elem_bytes);
        }
        let rows = (m * n) as f64;
        let par = self.effective_threads.min(m as f64);
        let compute = rows * self.cycles_per_row(elem_bytes) / (self.clock_ghz * 1e3) / par;
        let bandwidth = rows * Self::bytes_per_row(elem_bytes) / (self.bandwidth_gbps * 1e3);
        self.call_overhead_us
            + self.fork_join_us
            + m as f64 * self.per_system_overhead_us / par
            + compute.max(bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_linear_in_workload() {
        let m = CpuModel::i7_975();
        let t1 = m.sequential_us(64, 512, 8);
        let t2 = m.sequential_us(128, 512, 8);
        let t4 = m.sequential_us(256, 512, 8);
        // Slopes, net of fixed overhead.
        let d1 = t2 - t1;
        let d2 = t4 - t2;
        assert!((d2 / d1 - 2.0).abs() < 0.05, "linear growth");
        // Same total workload, same time.
        let a = m.sequential_us(64, 1024, 8);
        let b = m.sequential_us(128, 512, 8);
        assert!((a - b).abs() / a < 0.05);
    }

    #[test]
    fn threaded_speedup_saturates_near_effective_threads() {
        let m = CpuModel::i7_975();
        let seq = m.sequential_us(4096, 512, 8);
        let thr = m.threaded_us(4096, 512, 8);
        let speedup = seq / thr;
        assert!(
            speedup > 3.0 && speedup < 7.0,
            "MT speedup {speedup} should sit in the paper's ~4-6x window"
        );
    }

    #[test]
    fn single_system_gets_no_threading() {
        let m = CpuModel::i7_975();
        assert_eq!(m.threaded_us(1, 1 << 20, 8), m.sequential_us(1, 1 << 20, 8));
        assert!(m.threaded_us(2, 1 << 20, 8) < m.sequential_us(2, 1 << 20, 8));
    }

    #[test]
    fn f32_is_faster_but_not_2x_on_compute() {
        let m = CpuModel::i7_975();
        let f64t = m.sequential_us(256, 4096, 8);
        let f32t = m.sequential_us(256, 4096, 4);
        let ratio = f64t / f32t;
        assert!(ratio > 1.05 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn ballpark_matches_paper_fig12a() {
        // Fig. 12(a): N=512 — the sequential curve passes through
        // roughly 300 µs around M = 64 (log-scale reading).
        let m = CpuModel::i7_975();
        let t = m.sequential_us(64, 512, 8);
        assert!(t > 100.0 && t < 1000.0, "t = {t}");
    }
}
