//! A small fixed-size thread pool for batched CPU solves.
//!
//! Purpose-built (rayon is not on the offline dependency allowlist):
//! workers pull chunk indices from a shared atomic counter, so load
//! balances even when per-chunk cost varies. Scoped via
//! `crossbeam::thread` so tasks may borrow stack data.

use crossbeam::thread as cb_thread;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A reusable description of a worker pool (threads are spawned per
/// call — batched solves are long enough that spawn cost is noise, and
/// it keeps the pool free of lifetime gymnastics).
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// A pool with `workers` threads (minimum 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// One worker per available CPU (hyper-threads included — matching
    /// the paper's "8 threads" on the i7 975).
    pub fn per_cpu() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        )
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `task(i)` for every `i in 0..count`, work-stealing from a
    /// shared counter. `task` must be safe to call concurrently for
    /// distinct `i`.
    pub fn for_each_index<F>(&self, count: usize, task: F)
    where
        F: Fn(usize) + Sync,
    {
        if count == 0 {
            return;
        }
        let workers = self.workers.min(count);
        if workers == 1 {
            for i in 0..count {
                task(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        cb_thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    task(i);
                });
            }
        })
        .expect("worker panicked");
    }

    /// Split `data` into `count` disjoint chunks of `chunk_len` and run
    /// `task(chunk_index, chunk)` in parallel with mutable access.
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], chunk_len: usize, task: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        type Slot<'a, T> = std::sync::Mutex<Option<(usize, &'a mut [T])>>;
        assert!(chunk_len > 0, "chunk_len must be positive");
        let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
        let slots: Vec<Slot<'_, T>> =
            chunks.into_iter().map(|c| std::sync::Mutex::new(Some(c))).collect();
        self.for_each_index(slots.len(), |i| {
            let (idx, chunk) = slots[i].lock().unwrap().take().expect("chunk taken once");
            task(idx, chunk);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.for_each_index(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_worker_and_empty_cases() {
        let pool = ThreadPool::new(1);
        let counter = AtomicU64::new(0);
        pool.for_each_index(10, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        pool.for_each_index(0, |_| panic!("must not run"));
        assert_eq!(ThreadPool::new(0).workers(), 1);
    }

    #[test]
    fn chunk_iteration_writes_disjointly() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0usize; 100];
        pool.for_each_chunk_mut(&mut data, 7, |idx, chunk| {
            for v in chunk.iter_mut() {
                *v = idx + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i / 7 + 1);
        }
    }

    #[test]
    fn per_cpu_pool_has_workers() {
        assert!(ThreadPool::per_cpu().workers() >= 1);
    }
}
