//! # cpu-ref
//!
//! CPU reference solvers for the ICPP 2011 reproduction — the stand-ins
//! for the paper's Intel MKL `gtsv` baselines on a Core i7 975:
//!
//! - [`batched::solve_batch_sequential`] — "MKL (sequential)": Thomas
//!   per system on one thread.
//! - [`batched::solve_batch_threaded`] — "MKL (multithreaded)": Thomas
//!   per system across a [`pool::ThreadPool`], parallel only for
//!   `M ≥ 2` (matching MKL's footnoted behaviour in Section IV).
//! - [`cpu_model::CpuModel`] — an analytic i7-975 time model, so the
//!   figure harness can put modeled CPU curves next to modeled GPU
//!   curves.
//!
//! The runnable solvers are real and fast; Criterion benches in
//! `crates/bench` measure them on the host.

#![warn(missing_docs)]

pub mod batched;
pub mod cpu_model;
pub mod interleaved;
pub mod pool;

pub use batched::{solve_batch_sequential, solve_batch_threaded};
pub use interleaved::solve_batch_interleaved;
pub use cpu_model::CpuModel;
pub use pool::ThreadPool;
