//! End-to-end tests of the `tridiag` binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_tridiag"))
        .args(args)
        .output()
        .expect("spawn tridiag");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn solve_reports_residual_and_model_time() {
    let (ok, stdout, stderr) = run(&["solve", "--m", "4", "--n", "128", "--verbose"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("residual"), "{stdout}");
    assert!(stdout.contains("modeled time"), "{stdout}");
    assert!(stdout.contains("tiled_pcr") || stdout.contains("p_thomas"), "{stdout}");
}

#[test]
fn solve_cpu_engines_and_precisions() {
    for engine in ["cpu", "cpu-mt"] {
        let (ok, stdout, stderr) =
            run(&["solve", "--m", "3", "--n", "64", "--engine", engine]);
        assert!(ok, "{engine}: {stderr}");
        assert!(stdout.contains("residual"), "{stdout}");
    }
    let (ok, stdout, _) = run(&["solve", "--m", "2", "--n", "64", "--precision", "f32"]);
    assert!(ok);
    assert!(stdout.contains("(f32)"), "{stdout}");
}

#[test]
fn compare_lists_every_engine() {
    let (ok, stdout, stderr) = run(&["compare", "--m", "4", "--n", "128"]);
    assert!(ok, "stderr: {stderr}");
    for engine in ["cpu", "cpu-mt", "gpu", "davidson", "zhang"] {
        assert!(stdout.contains(engine), "missing {engine}: {stdout}");
    }
}

#[test]
fn info_prints_spec_for_every_device() {
    for device in ["gtx480", "gtx280", "c2050"] {
        let (ok, stdout, stderr) = run(&["info", "--device", device]);
        assert!(ok, "{device}: {stderr}");
        assert!(stdout.contains("occupancy sheet"), "{stdout}");
        assert!(stdout.contains("parallelism"), "{stdout}");
    }
}

#[test]
fn bad_input_fails_with_usage() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
    let (ok2, _, stderr2) = run(&["solve", "--engine", "abacus"]);
    assert!(!ok2);
    assert!(stderr2.contains("unknown engine"), "{stderr2}");
    let (ok3, _, stderr3) = run(&["solve", "--n", "banana"]);
    assert!(!ok3);
    assert!(stderr3.contains("cannot parse"), "{stderr3}");
}
