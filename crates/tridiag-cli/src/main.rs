//! `tridiag` — command-line front end for the scalable-tridiag
//! workspace.
//!
//! ```text
//! tridiag solve --m 256 --n 1024 [--engine gpu|cpu|cpu-mt|davidson|zhang]
//!               [--precision f64|f32] [--device gtx480|gtx280|c2050]
//!               [--seed 42] [--verbose] [--sanitize] [--lint] [--check]
//!               [--trace trace.json] [--json] [--dry-run]
//! tridiag solve --split-n 4 --n 1000000   # one huge system row-split
//!                                         # across 4 devices
//! tridiag plan --m 256 --n 1024 [--json] # print the solve plan, no execution
//! tridiag plan --sweep                   # dry-run + schema-check sweep plans
//! tridiag verify --m 256 --n 1024        # statically certify the plan
//! tridiag verify --sweep                 # certify + execute + cross-check
//! tridiag verify --negative              # corruption suite: all classes fire
//! tridiag profile --m 256 --n 1024       # per-phase profile + Chrome trace
//! tridiag profile --zoo --out zoo.json   # ...for every shipped kernel
//! tridiag compare --m 64 --n 2048        # run every engine, check parity
//! tridiag tune --n 4096 --m-list 1,16,256,1024 [--k-max 8]
//! tridiag info [--device gtx480]         # device spec + occupancy sheet
//! tridiag lint [--verbose]               # static-lint the kernel zoo
//! tridiag serve --requests 8 --clients 4 # concurrent solves through the
//!                                        # coalescing service, checked vs solo
//! tridiag bench-service --n 256 --m 2    # modeled window sweep table
//! tridiag stats --requests 48            # unified telemetry read-out:
//!                                        # metrics, SLO account, replay checks
//! ```
//!
//! Exit codes: 0 = success, 1 = usage or solve error, 2 = lint or
//! sanitizer findings (the solve itself succeeded, but a check found
//! property violations).

mod args;

use args::Args;
use gpu_sim::{DeviceGroup, DeviceSpec};
use std::process::ExitCode;
use tridiag_core::generators::random_batch;
use tridiag_core::{Layout, SystemBatch};
use tridiag_gpu::autotune;
use tridiag_gpu::solver::{GpuSolverConfig, GpuTridiagSolver, LayoutChoice};
use tridiag_gpu::{davidson, zhang};

fn device_by_name(name: &str) -> Result<DeviceSpec, String> {
    match name.to_ascii_lowercase().as_str() {
        "gtx480" => Ok(DeviceSpec::gtx480()),
        "gtx280" => Ok(DeviceSpec::gtx280()),
        "c2050" => Ok(DeviceSpec::c2050()),
        other => Err(format!(
            "unknown device {other:?} (expected gtx480, gtx280 or c2050)"
        )),
    }
}

/// Parse `--devices`: either a device count (`--devices 4` — that many
/// copies of `--device`) or a comma-separated list of device names
/// (`--devices gtx480,gtx280` — a heterogeneous group). Returns `None`
/// when the flag is absent (single-device paths unchanged).
fn device_group(a: &Args, base: &DeviceSpec) -> Result<Option<DeviceGroup>, String> {
    let Some(value) = a.get("devices") else {
        return Ok(None);
    };
    let group = if let Ok(count) = value.parse::<usize>() {
        DeviceGroup::homogeneous(base.clone(), count)
    } else {
        let specs = value
            .split(',')
            .map(device_by_name)
            .collect::<Result<Vec<_>, _>>()?;
        DeviceGroup::from_specs(specs)
    };
    group
        .map(Some)
        .map_err(|e| format!("--devices {value}: {e}"))
}

/// `--split-n`: split ONE system's rows across a device group.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SplitN {
    /// Always split across exactly this many devices.
    Count(usize),
    /// Try the single-device plan first; split only when the planner
    /// rejects the system as too large for one device.
    Auto,
}

/// Parse `--split-n`: either a device count (`--split-n 4`) or `auto`.
/// Returns `None` when the flag is absent (batch paths unchanged).
fn split_n_opt(a: &Args) -> Result<Option<SplitN>, String> {
    let Some(value) = a.get("split-n") else {
        return Ok(None);
    };
    if value == "auto" {
        return Ok(Some(SplitN::Auto));
    }
    match value.parse::<usize>() {
        Ok(d) if d > 0 => Ok(Some(SplitN::Count(d))),
        _ => Err(format!(
            "--split-n {value}: expected a device count or \"auto\""
        )),
    }
}

/// Resolve `--split-n` against one geometry: the device group to
/// row-split across, or `None` when the system should stay on one
/// device (`auto` and the single-device plan fits). `--devices`
/// supplies the group when present (its size must match an explicit
/// count); otherwise the group is homogeneous copies of `--device` —
/// `auto` doubles the count from 2 until the distributed plan fits.
fn resolve_split(
    solver: &GpuTridiagSolver,
    device: &DeviceSpec,
    group: Option<&DeviceGroup>,
    split: SplitN,
    n: usize,
    elem_bytes: usize,
) -> Result<Option<DeviceGroup>, Failure> {
    match split {
        SplitN::Count(d) => match group {
            Some(g) if g.len() == d => Ok(Some(g.clone())),
            Some(g) => Err(Failure::Error(format!(
                "--split-n {d} does not match the {}-device --devices group",
                g.len()
            ))),
            None => DeviceGroup::homogeneous(device.clone(), d)
                .map(Some)
                .map_err(|e| Failure::Error(format!("--split-n {d}: {e}"))),
        },
        SplitN::Auto => match solver.plan_geometry(1, n, elem_bytes) {
            Ok(_) => Ok(None),
            Err(gpu_sim::SimError::InvalidPlan(msg))
                if msg.contains("split across devices with a distributed plan") =>
            {
                if let Some(g) = group {
                    return Ok(Some(g.clone()));
                }
                let mut d = 2usize;
                while d <= 64 {
                    let g = DeviceGroup::homogeneous(device.clone(), d)
                        .map_err(|e| Failure::Error(e.to_string()))?;
                    if solver.plan_geometry_split(&g, n, elem_bytes).is_ok() {
                        return Ok(Some(g));
                    }
                    d *= 2;
                }
                Err(Failure::Error(format!(
                    "--split-n auto: no homogeneous group up to 64 devices fits n = {n}"
                )))
            }
            Err(e) => Err(Failure::Error(e.to_string())),
        },
    }
}

/// Resolve an explicit `--split-n` count for `plan`/`verify`: the
/// `--devices` group when given (its size must match), else that many
/// homogeneous copies of `--device`. `auto` is rejected here — it is a
/// solve-time fallback, not a plannable geometry.
fn split_count_group(
    a: &Args,
    device: &DeviceSpec,
    split: SplitN,
    m: usize,
) -> Result<DeviceGroup, Failure> {
    let SplitN::Count(d) = split else {
        return Err(Failure::Error(
            "--split-n auto is a solve-time fallback; pass an explicit device count".into(),
        ));
    };
    if m != 1 {
        return Err(Failure::Error(format!(
            "--split-n plans one system's row split (m = 1); got --m {m}"
        )));
    }
    match device_group(a, device)? {
        Some(g) if g.len() == d => Ok(g),
        Some(g) => Err(Failure::Error(format!(
            "--split-n {d} does not match the {}-device --devices group",
            g.len()
        ))),
        None => DeviceGroup::homogeneous(device.clone(), d)
            .map_err(|e| Failure::Error(format!("--split-n {d}: {e}"))),
    }
}

/// Parse `--layout`: the planner's memory-layout choice. `auto`
/// (default) lets the cost model decide; `contiguous`/`interleaved`
/// pin the device layout regardless of what the model would pick.
fn layout_choice(a: &Args) -> Result<LayoutChoice, String> {
    match a.get("layout").unwrap_or("auto") {
        "auto" => Ok(LayoutChoice::Auto),
        "contiguous" => Ok(LayoutChoice::Contiguous),
        "interleaved" => Ok(LayoutChoice::Interleaved),
        other => Err(format!(
            "unknown layout {other:?} (expected auto, contiguous or interleaved)"
        )),
    }
}

fn usage() -> &'static str {
    "usage:\n  tridiag solve   --m M --n N [--engine gpu|cpu|cpu-mt|davidson|zhang] \
     [--precision f64|f32] [--device gtx480|gtx280|c2050] [--devices G] \
     [--split-n D|auto] [--seed S] [--layout auto|contiguous|interleaved] \
     [--verbose] [--sanitize] [--lint] [--check] [--trace FILE] [--json] [--dry-run]\n  \
     tridiag plan    --m M --n N [--precision f64|f32] [--device D] [--devices G] \
     [--split-n D] [--layout L] [--json] [--verify] | --sweep [--device D]\n  \
     tridiag verify  --m M --n N [--precision f64|f32] [--device D] [--devices G] \
     [--split-n D] [--layout L] [--json] | --sweep [--device D] | --negative [--device D]\n  \
     tridiag profile --m M --n N [--precision f64|f32] [--device D] [--seed S] \
     [--out FILE] | --zoo [--out FILE]\n  \
     tridiag compare --m M --n N [--seed S]\n  \
     tridiag tune    --n N [--m-list 1,16,256] [--k-max 8] [--devices G] [--layout L]\n  \
     tridiag info    [--device gtx480]\n  \
     tridiag lint    [--verbose]\n  \
     tridiag serve   [--requests R] [--clients C] [--window US] [--depth Q] \
     [--m M] [--n N]\n  \
     \u{20}           [--precision f64|f32|mixed] [--device D] [--devices G] [--seed S]\n  \
     \u{20}           [--telemetry DIR]\n  \
     tridiag bench-service [--requests R] [--windows 0,4,16,64] [--m M] [--n N]\n  \
     \u{20}           [--precision f64|f32] [--device D] [--devices G] [--seed S]\n  \
     tridiag stats   [--requests R] [--window US] [--m M] [--n N] [--seed S]\n  \
     \u{20}           [--precision f64|f32|mixed] [--device D] [--devices G] [--top K]\n  \
     \u{20}           [--json] [--out DIR] | --negative\n\n\
     solve service:\n  \
     serve       start the threaded solve service, submit R requests from C\n  \
     \u{20}           concurrent client threads through the coalescing queue, and\n  \
     \u{20}           cross-check every answer bit-for-bit against a solo solve;\n  \
     \u{20}           exits 2 when any answer drifts or a ticket is lost;\n  \
     \u{20}           --telemetry DIR also writes metrics.json, events.jsonl and\n  \
     \u{20}           trace.json there and validates all three (violations exit 2)\n  \
     bench-service sweep the coalescing window on a modeled workload and print\n  \
     \u{20}           requests/s, p50/p99 latency, batch and cache-hit counts\n  \
     stats       run a deterministic modeled workload and print the unified\n  \
     \u{20}           telemetry read-out: counter/gauge/histogram tables (top K\n  \
     \u{20}           labels per family), latency attribution, SLO account, and\n  \
     \u{20}           the exact-partition + event-replay + request-chain checks\n  \
     \u{20}           (any violation exits 2); --json prints the raw metrics\n  \
     \u{20}           snapshot, --out DIR writes the telemetry artifact set,\n  \
     \u{20}           --negative injects log corruptions and demands the replay\n  \
     \u{20}           validator fires on each (exit 2 = all fired)\n\n\
     multi-device (gpu engine only):\n  \
     --devices G shard the batch across a device group: a count \
     (--devices 4 =\n  \
     \u{20}           four copies of --device) or a comma list of names\n  \
     \u{20}           (--devices gtx480,gtx280); systems split contiguously \u{b1}1,\n  \
     \u{20}           one worker thread per device, modeled wall-clock = max over\n  \
     \u{20}           devices; homogeneous groups are bit-identical to one device\n  \
     --split-n D split ONE system's N rows across D devices (requires m = 1):\n  \
     \u{20}           per-device partial elimination, a 2D-unknown reduced\n  \
     \u{20}           interface solve on the primary, then distributed back\n  \
     \u{20}           substitution; lets a single system too large for one\n  \
     \u{20}           device's memory solve across the group; D = 1 is the\n  \
     \u{20}           bit-identical single-device path; with --devices G the\n  \
     \u{20}           group supplies the devices (sizes must agree); solve\n  \
     \u{20}           --split-n auto splits only when the single-device planner\n  \
     \u{20}           rejects N as too large\n\n\
     layout (gpu engine only):\n  \
     --layout L  memory-layout choice for the planner: auto (default) lets the\n  \
     \u{20}           transaction cost model pick, contiguous/interleaved pin the\n  \
     \u{20}           device layout; solve --layout interleaved also hands the\n  \
     \u{20}           batch over pre-interleaved, eliding both layout conversions\n\n\
     checks (gpu engine only):\n  \
     --sanitize  run every kernel under the dynamic memory/race sanitizer\n  \
     --lint      record each kernel's affine access plan, run the static lint\n  \
     \u{20}           passes, and cross-check predicted vs measured counters\n  \
     --check     umbrella: --sanitize and --lint together\n\n\
     observability (gpu engine only):\n  \
     --trace F   write the solve's span/phase trace as Chrome trace-event JSON\n  \
     --json      print the full solve report (timings, phases, lints, plan,\n  \
     \u{20}           trace) as one JSON document instead of the human summary\n  \
     --dry-run   plan the solve (k, mapping, kernel sequence, buffer footprint)\n  \
     \u{20}           and print it without launching any kernel\n  \
     plan        build and print the solve plan for a geometry; --sweep plans\n  \
     \u{20}           the figure-sweep geometries and validates each plan's JSON\n  \
     \u{20}           against the schema, exiting 2 on drift (nothing executes);\n  \
     \u{20}           --verify also runs the static plan verifier on the plan\n  \
     verify      statically certify a plan (slot dataflow, liveness, layout\n  \
     \u{20}           pairing, exact transfer/launch/peak-memory certificate)\n  \
     \u{20}           without executing; --sweep certifies the figure-sweep and\n  \
     \u{20}           sharded geometries AND executes each, cross-checking the\n  \
     \u{20}           certificate against measured stats; --negative injects one\n  \
     \u{20}           corruption per diagnostic class and demands each fires\n  \
     \u{20}           (exit 2 = all fired, exit 1 = a diagnostic was lost)\n  \
     profile     run a solve (or, with --zoo, every zoo kernel), write the\n  \
     \u{20}           trace to --out (default trace.json) and print the per-phase\n  \
     \u{20}           profile; exits 2 on phase-sum or trace-schema violations\n\n\
     exit codes: 0 = ok, 1 = usage/solve error, 2 = lint, sanitizer, phase-sum,\n  \
     \u{20}           trace-schema, plan-schema, plan-verification or telemetry\n  \
     \u{20}           (metrics-schema, exact-partition, event-replay) findings"
}

/// A command failure, split by exit code: plain errors exit 1, check
/// findings (lint diagnostics, counter mismatches, sanitizer
/// violations) exit 2.
enum Failure {
    Error(String),
    Findings(String),
}

impl From<String> for Failure {
    fn from(e: String) -> Self {
        Failure::Error(e)
    }
}

fn cmd_solve(a: &Args) -> Result<(), Failure> {
    let split = split_n_opt(a)?;
    let m: usize = a.get_or("m", if split.is_some() { 1 } else { 64 })?;
    let n: usize = a.get_or("n", 1024)?;
    let seed: u64 = a.get_or("seed", 42u64)?;
    let engine = a.get("engine").unwrap_or("gpu");
    let precision = a.get("precision").unwrap_or("f64");
    let device = device_by_name(a.get("device").unwrap_or("gtx480"))?;
    let check = a.flag("check");
    let sanitize = a.flag("sanitize") || check;
    let lint = a.flag("lint") || check;
    let trace = a.get("trace");
    let json = a.flag("json");
    let dry_run = a.flag("dry-run");
    let verify = a.flag("verify");
    let layout = layout_choice(a)?;
    let group = device_group(a, &device)?;
    if group.is_some() && engine != "gpu" {
        return Err(Failure::Error(format!(
            "--devices only applies to the gpu engine (got {engine:?})"
        )));
    }
    if split.is_some() {
        if engine != "gpu" {
            return Err(Failure::Error(format!(
                "--split-n only applies to the gpu engine (got {engine:?})"
            )));
        }
        if m != 1 {
            return Err(Failure::Error(format!(
                "--split-n splits one system's rows across devices (m = 1); got --m {m}"
            )));
        }
    }
    if layout != LayoutChoice::Auto && engine != "gpu" {
        return Err(Failure::Error(format!(
            "--layout only applies to the gpu engine (got {engine:?})"
        )));
    }
    if (sanitize || lint || trace.is_some() || json || dry_run || verify) && engine != "gpu" {
        let flag = if check {
            "--check"
        } else if sanitize {
            "--sanitize"
        } else if lint {
            "--lint"
        } else if trace.is_some() {
            "--trace"
        } else if json {
            "--json"
        } else if dry_run {
            "--dry-run"
        } else {
            "--verify"
        };
        return Err(Failure::Error(format!(
            "{flag} only applies to the gpu engine (got {engine:?})"
        )));
    }
    let opts = SolveOpts {
        engine,
        device,
        group,
        split,
        verbose: a.flag("verbose"),
        sanitize,
        lint,
        trace,
        json,
        dry_run,
        verify,
        layout,
    };
    if precision == "f32" {
        solve_typed::<f32>(m, n, seed, &opts)
    } else {
        solve_typed::<f64>(m, n, seed, &opts)
    }
}

/// Options shared by every `tridiag solve` invocation.
struct SolveOpts<'a> {
    engine: &'a str,
    device: DeviceSpec,
    group: Option<DeviceGroup>,
    split: Option<SplitN>,
    verbose: bool,
    sanitize: bool,
    lint: bool,
    trace: Option<&'a str>,
    json: bool,
    dry_run: bool,
    verify: bool,
    layout: LayoutChoice,
}

fn solve_typed<S: tridiag_gpu::GpuScalar>(
    m: usize,
    n: usize,
    seed: u64,
    opts: &SolveOpts<'_>,
) -> Result<(), Failure> {
    let SolveOpts {
        engine,
        ref device,
        ref group,
        split,
        verbose,
        sanitize,
        lint,
        trace,
        json,
        dry_run,
        verify,
        layout,
    } = *opts;
    if dry_run {
        // Plan only: print k, mapping, kernel sequence and buffer
        // footprint without launching a single kernel.
        let config = GpuSolverConfig {
            layout,
            ..Default::default()
        };
        let solver = GpuTridiagSolver::new(device.clone(), config);
        if let Some(split) = split {
            let resolved = resolve_split(
                &solver,
                device,
                group.as_ref(),
                split,
                n,
                <S as gpu_sim::Elem>::BYTES,
            )?;
            if let Some(sgroup) = resolved {
                let plan = solver
                    .plan_geometry_split(&sgroup, n, <S as gpu_sim::Elem>::BYTES)
                    .map_err(|e| e.to_string())?;
                if json {
                    println!("{}", plan.to_json());
                } else {
                    print!("{}", plan.describe());
                    println!("dry run     : no kernels launched");
                }
                return Ok(());
            }
            // `auto` resolved to the ordinary single-device plan.
            let plan = solver
                .plan_geometry(m, n, <S as gpu_sim::Elem>::BYTES)
                .map_err(|e| e.to_string())?;
            if json {
                println!("{}", plan.to_json());
            } else {
                println!("split       : n = {n} fits on one device; no split needed");
                print!("{}", plan.describe());
                println!("dry run     : no kernels launched");
            }
            return Ok(());
        }
        if let Some(group) = group {
            let plan = solver
                .plan_geometry_group(group, m, n, <S as gpu_sim::Elem>::BYTES)
                .map_err(|e| e.to_string())?;
            if json {
                println!("{}", plan.to_json());
            } else {
                print!("{}", plan.describe());
                println!("dry run     : no kernels launched");
            }
            return Ok(());
        }
        let plan = solver
            .plan_geometry(m, n, <S as gpu_sim::Elem>::BYTES)
            .map_err(|e| e.to_string())?;
        if json {
            println!("{}", plan.to_json());
        } else {
            print!("{}", plan.describe());
            println!("dry run     : no kernels launched");
        }
        return Ok(());
    }
    let batch: SystemBatch<S> = random_batch(m, n, seed);
    // A forced interleaved layout also hands the batch over already
    // interleaved — the planner then elides both `Convert` steps, so
    // the solve exercises the conversion-free path end to end.
    let batch = if layout == LayoutChoice::Interleaved {
        batch.to_layout(Layout::Interleaved)
    } else {
        batch
    };
    let t0 = std::time::Instant::now();
    let mut sanitizer_line: Option<Result<String, String>> = None;
    let mut lint_line: Option<Result<String, String>> = None;
    let mut gpu_report = None;
    let mut split_group: Option<DeviceGroup> = None;
    let (x, modeled_us): (Vec<S>, Option<f64>) = match engine {
        "gpu" => {
            let config = GpuSolverConfig {
                exec: match (sanitize, lint) {
                    (true, true) => gpu_sim::ExecConfig::checked(),
                    (true, false) => gpu_sim::ExecConfig::sanitized(),
                    (false, true) => gpu_sim::ExecConfig::planned(),
                    (false, false) => gpu_sim::ExecConfig::default(),
                },
                layout,
                ..Default::default()
            };
            let solver = GpuTridiagSolver::new(device.clone(), config);
            let resolved_split = match split {
                Some(split) => resolve_split(
                    &solver,
                    device,
                    group.as_ref(),
                    split,
                    n,
                    <S as gpu_sim::Elem>::BYTES,
                )?,
                None => None,
            };
            let (x, report) = match (&resolved_split, group) {
                (Some(sgroup), _) => solver
                    .solve_batch_split(sgroup, &batch)
                    .map_err(|e| e.to_string())?,
                (None, Some(group)) if split.is_none() => solver
                    .solve_batch_group(group, &batch)
                    .map_err(|e| e.to_string())?,
                _ => solver.solve_batch(&batch).map_err(|e| e.to_string())?,
            };
            split_group = resolved_split;
            if verbose && !json {
                print!("{report}");
            }
            if sanitize {
                sanitizer_line = Some(if report.is_sanitizer_clean() {
                    Ok("clean (no races, OOB, uninit reads or divergent barriers)".into())
                } else {
                    Err(report
                        .violations
                        .iter()
                        .map(|v| format!("  - {v}"))
                        .collect::<Vec<_>>()
                        .join("\n"))
                });
            }
            if lint {
                lint_line = Some(if report.is_lint_clean() {
                    Ok(format!(
                        "clean ({} kernel plan(s); static transaction predictions exact)",
                        report.lints.len()
                    ))
                } else {
                    let mut lines = Vec::new();
                    for lr in &report.lints {
                        for d in &lr.diagnostics {
                            lines.push(format!("  - {d}"));
                        }
                    }
                    for mm in &report.lint_mismatches {
                        lines.push(format!("  - cross-check {mm}"));
                    }
                    Err(lines.join("\n"))
                });
            }
            let us = report.total_us;
            gpu_report = Some(report);
            (x, Some(us))
        }
        "cpu" => (
            cpu_ref::solve_batch_sequential(&batch).map_err(|e| e.to_string())?,
            None,
        ),
        "cpu-mt" => (
            cpu_ref::solve_batch_threaded(&batch, &cpu_ref::ThreadPool::per_cpu())
                .map_err(|e| e.to_string())?,
            None,
        ),
        "davidson" => {
            let (x, report) = davidson::solve_batch(device, &batch).map_err(|e| e.to_string())?;
            (x, Some(report.total_us))
        }
        "zhang" => {
            let (x, report) =
                zhang::solve_batch(device, &batch, None).map_err(|e| e.to_string())?;
            (x, Some(report.total_us))
        }
        other => return Err(Failure::Error(format!("unknown engine {other:?}"))),
    };
    let host = t0.elapsed();
    let resid = batch.max_relative_residual(&x).map_err(|e| e.to_string())?;
    if let (Some(path), Some(rep)) = (trace, &gpu_report) {
        let text = rep.trace.to_chrome_json();
        gpu_sim::validate_chrome_json(&text)
            .map_err(|p| Failure::Error(format!("trace schema: {}", p.join("; "))))?;
        std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if json {
        let rep = gpu_report
            .as_ref()
            .ok_or_else(|| Failure::Error("--json requires the gpu engine".into()))?;
        println!("{}", rep.to_json());
    } else {
        println!("engine      : {engine}");
        println!("batch       : M = {m}, N = {n} ({})", S::NAME);
        if let Some(sgroup) = &split_group {
            println!(
                "devices     : {} ({}, one system row-split)",
                sgroup.len(),
                sgroup.label()
            );
        } else if let Some(group) = group {
            println!("devices     : {} ({})", group.len(), group.label());
        } else if split.is_some() {
            println!("split       : n = {n} fits on one device; no split needed");
        }
        if let Some(ds) = gpu_report.as_ref().and_then(|r| r.distributed.as_ref()) {
            println!(
                "distributed : reduced {} unknowns (k = {}) on the primary; \
                 gather {} B, scatter {} B, back-sub {} flops",
                ds.reduced_n, ds.reduced_k, ds.gather_bytes, ds.scatter_bytes, ds.backsub_flops
            );
        }
        if let Some(us) = modeled_us {
            if group.is_some() || split_group.is_some() {
                println!("modeled time: {us:.1} us (kernel wall-clock, max over devices)");
            } else {
                println!("modeled time: {us:.1} us (simulated device)");
            }
        }
        println!("host time   : {host:?} (simulator/solver wall-clock)");
        println!("residual    : {resid:.3e}");
        if let Some(path) = trace {
            println!("trace       : wrote {path}");
        }
    }
    let mut findings = Vec::new();
    if verify {
        if let Some(rep) = &gpu_report {
            if rep.is_verify_clean() {
                if !json {
                    println!(
                        "verify      : clean (peak resident {} bytes; certificate matched \
                         measured stats exactly)",
                        rep.verify.prediction.peak_resident_bytes
                    );
                }
            } else {
                if !json {
                    println!("verify      : FINDINGS");
                }
                let mut lines: Vec<String> = rep
                    .verify
                    .findings
                    .iter()
                    .map(|f| format!("  - {f}"))
                    .collect();
                lines.extend(
                    rep.verify_mismatches
                        .iter()
                        .map(|m| format!("  - cross-check {m}")),
                );
                findings.push(format!("plan verification:\n{}", lines.join("\n")));
            }
        }
    }
    if let Some(rep) = &gpu_report {
        if !rep.is_phase_sum_clean() {
            findings.push(format!(
                "phase-sum violations:\n{}",
                rep.phase_sum_mismatches
                    .iter()
                    .map(|l| format!("  - {l}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            ));
        }
    }
    match sanitizer_line {
        Some(Ok(msg)) if !json => println!("sanitizer   : {msg}"),
        Some(Ok(_)) => {}
        Some(Err(reports)) => {
            if !json {
                println!("sanitizer   : VIOLATIONS");
            }
            findings.push(format!("sanitizer violations:\n{reports}"));
        }
        None => {}
    }
    match lint_line {
        Some(Ok(msg)) if !json => println!("lint        : {msg}"),
        Some(Ok(_)) => {}
        Some(Err(reports)) => {
            if !json {
                println!("lint        : FINDINGS");
            }
            findings.push(format!("lint findings:\n{reports}"));
        }
        None => {}
    }
    if !findings.is_empty() {
        return Err(Failure::Findings(findings.join("\n")));
    }
    if resid > tridiag_core::verify::default_tolerance::<S>() * 1e3 {
        return Err(Failure::Error(format!("residual {resid:.3e} exceeds tolerance")));
    }
    Ok(())
}

/// `tridiag plan` — build and print the declarative solve plan for a
/// geometry without launching a single kernel. With `--sweep`, plan the
/// figure-sweep geometries at both precisions (plus both forced
/// layouts at f64), round-trip each plan through the strict JSON
/// parser, and validate it against the `tridiag.solve_plan/v2`
/// schema — exit 2 on any drift.
fn cmd_plan(a: &Args) -> Result<(), Failure> {
    let device = device_by_name(a.get("device").unwrap_or("gtx480"))?;
    if a.flag("sweep") {
        return plan_sweep(&device);
    }
    let split = split_n_opt(a)?;
    let m: usize = a.get_or("m", if split.is_some() { 1 } else { 64 })?;
    let n: usize = a.get_or("n", 1024)?;
    let elem_bytes = if a.get("precision").unwrap_or("f64") == "f32" { 4 } else { 8 };
    let config = GpuSolverConfig {
        layout: layout_choice(a)?,
        ..Default::default()
    };
    let solver = GpuTridiagSolver::new(device.clone(), config);
    if let Some(split) = split {
        let group = split_count_group(a, &device, split, m)?;
        let plan = solver
            .plan_geometry_split(&group, n, elem_bytes)
            .map_err(|e| e.to_string())?;
        if a.flag("json") {
            println!("{}", plan.to_json());
        } else {
            print!("{}", plan.describe());
        }
        if a.flag("verify") {
            let report = tridiag_gpu::verify_distributed_plan(&group, &plan);
            if !a.flag("json") {
                println!("{report}");
            }
            if !report.is_clean() {
                return Err(Failure::Findings(format!(
                    "plan verification:\n  - {}",
                    report.messages().join("\n  - ")
                )));
            }
        }
        return Ok(());
    }
    if let Some(group) = device_group(a, &device)? {
        let plan = solver
            .plan_geometry_group(&group, m, n, elem_bytes)
            .map_err(|e| e.to_string())?;
        if a.flag("json") {
            println!("{}", plan.to_json());
        } else {
            print!("{}", plan.describe());
        }
        if a.flag("verify") {
            let report = tridiag_gpu::verify_sharded_plan(&group, &plan);
            if !a.flag("json") {
                println!("{report}");
            }
            if !report.is_clean() {
                return Err(Failure::Findings(format!(
                    "plan verification:\n  - {}",
                    report.messages().join("\n  - ")
                )));
            }
        }
        return Ok(());
    }
    let plan = solver
        .plan_geometry(m, n, elem_bytes)
        .map_err(|e| e.to_string())?;
    if a.flag("json") {
        println!("{}", plan.to_json());
    } else {
        print!("{}", plan.describe());
    }
    if a.flag("verify") {
        let report = tridiag_gpu::verify_plan(&device, &plan);
        if !a.flag("json") {
            println!("{report}");
        }
        if !report.is_clean() {
            let msgs: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
            return Err(Failure::Findings(format!(
                "plan verification:\n  - {}",
                msgs.join("\n  - ")
            )));
        }
    }
    Ok(())
}

/// The `plan --sweep` smoke: the Fig. 12/13 sweep geometries, planned
/// (never executed) at both scalar widths, each serialized plan
/// re-parsed and schema-checked.
fn plan_sweep(device: &DeviceSpec) -> Result<(), Failure> {
    const GEOMETRIES: &[(usize, usize)] = &[
        (64, 512),
        (256, 512),
        (1024, 512),
        (64, 2048),
        (256, 2048),
        (2048, 64),
        (256, 256),
        (16, 1024),
        (1, 16384),
    ];
    let solver = GpuTridiagSolver::new(device.clone(), GpuSolverConfig::default());
    let mut problems = Vec::new();
    let mut planned = 0usize;
    for &(m, n) in GEOMETRIES {
        for bytes in [8usize, 4] {
            let prec = if bytes == 4 { "f32" } else { "f64" };
            let plan = solver.plan_geometry(m, n, bytes).map_err(|e| e.to_string())?;
            let text = plan.to_json().to_string();
            match gpu_sim::json::parse(&text) {
                Ok(doc) => {
                    for p in tridiag_gpu::validate_plan_json(&doc) {
                        problems.push(format!("m={m} n={n} {prec}: {p}"));
                    }
                }
                Err(e) => {
                    problems.push(format!("m={m} n={n} {prec}: JSON reparse failed: {e}"))
                }
            }
            planned += 1;
            println!(
                "m={m:<5} n={n:<6} {prec}: k={} mapping={:?} fused={} layout={:?} \
                 kernels=[{}] device_bytes={}",
                plan.k,
                plan.mapping,
                plan.fused,
                plan.layout,
                plan.launches().map(|l| l.name).collect::<Vec<_>>().join(", "),
                plan.device_bytes(),
            );
        }
    }
    // Forced-layout plans: the same geometries at f64 with the device
    // layout pinned both ways — `--layout` must never produce a plan
    // the v2 schema rejects, whatever the cost model would have chosen.
    for (label, choice) in [
        ("contiguous", LayoutChoice::Contiguous),
        ("interleaved", LayoutChoice::Interleaved),
    ] {
        let config = GpuSolverConfig {
            layout: choice,
            ..Default::default()
        };
        let forced = GpuTridiagSolver::new(device.clone(), config);
        for &(m, n) in GEOMETRIES {
            let plan = forced.plan_geometry(m, n, 8).map_err(|e| e.to_string())?;
            let text = plan.to_json().to_string();
            match gpu_sim::json::parse(&text) {
                Ok(doc) => {
                    for p in tridiag_gpu::validate_plan_json(&doc) {
                        problems.push(format!("m={m} n={n} f64 --layout {label}: {p}"));
                    }
                }
                Err(e) => problems.push(format!(
                    "m={m} n={n} f64 --layout {label}: JSON reparse failed: {e}"
                )),
            }
            planned += 1;
            println!(
                "m={m:<5} n={n:<6} f64 --layout {label}: k={} layout={:?} kernels=[{}]",
                plan.k,
                plan.layout,
                plan.launches().map(|l| l.name).collect::<Vec<_>>().join(", "),
            );
        }
    }
    // Sharded plans: a representative subset of the sweep, partitioned
    // across homogeneous 2- and 4-device groups, each serialized plan
    // re-parsed and checked against the sharded-plan schema.
    const SHARDED: &[(usize, usize)] = &[(64, 512), (256, 2048), (16, 1024), (2048, 64)];
    for &devices in &[2usize, 4] {
        let group = DeviceGroup::homogeneous(device.clone(), devices)
            .map_err(|e| e.to_string())?;
        for &(m, n) in SHARDED {
            let plan = solver
                .plan_geometry_group(&group, m, n, 8)
                .map_err(|e| e.to_string())?;
            let text = plan.to_json().to_string();
            match gpu_sim::json::parse(&text) {
                Ok(doc) => {
                    for p in tridiag_gpu::validate_sharded_plan_json(&doc) {
                        problems.push(format!("m={m} n={n} f64 D={devices}: {p}"));
                    }
                }
                Err(e) => problems.push(format!(
                    "m={m} n={n} f64 D={devices}: JSON reparse failed: {e}"
                )),
            }
            planned += 1;
            println!(
                "m={m:<5} n={n:<6} f64 x{devices}: k={} shards=[{}] device_bytes={}",
                plan.reference.k,
                plan.shards
                    .iter()
                    .map(|s| s.sys_count.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                plan.device_bytes(),
            );
        }
    }
    // Distributed single-system plans: one N row-split across D ∈
    // {1, 2, 4} devices, each serialized plan re-parsed and checked
    // against the tridiag.distributed_plan/v1 schema (D = 1 is the
    // identity path).
    const SPLIT_N: &[usize] = &[512, 16384];
    for &devices in &[1usize, 2, 4] {
        let group = DeviceGroup::homogeneous(device.clone(), devices)
            .map_err(|e| e.to_string())?;
        for &n in SPLIT_N {
            let plan = solver
                .plan_geometry_split(&group, n, 8)
                .map_err(|e| e.to_string())?;
            let text = plan.to_json().to_string();
            match gpu_sim::json::parse(&text) {
                Ok(doc) => {
                    for p in tridiag_gpu::validate_distributed_plan_json(&doc) {
                        problems.push(format!("split n={n} f64 D={devices}: {p}"));
                    }
                }
                Err(e) => problems.push(format!(
                    "split n={n} f64 D={devices}: JSON reparse failed: {e}"
                )),
            }
            planned += 1;
            println!(
                "n={n:<6} f64 split x{devices}: chunks=[{}] reduced_n={} device_bytes={}",
                plan.chunks
                    .iter()
                    .map(|c| c.row_count.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                plan.reduced.as_ref().map_or(0, |r| r.n),
                plan.device_bytes(),
            );
        }
    }
    println!("{planned} plans built and schema-validated, no kernels launched");
    if !problems.is_empty() {
        return Err(Failure::Findings(format!(
            "plan schema drift:\n  - {}",
            problems.join("\n  - ")
        )));
    }
    Ok(())
}

/// `tridiag verify` — statically certify a solve plan with the plan
/// verifier ([`tridiag_gpu::verify`]): slot dataflow, liveness, layout
/// pairing and the exact resource certificate, with no kernel launched.
/// `--sweep` additionally *executes* every point and cross-checks the
/// static [`tridiag_gpu::PlanPrediction`] against the measured
/// transfer/launch/peak-memory stats — any discrepancy is a finding
/// (exit 2). `--negative` runs the canned corruption suite: every
/// diagnostic class must fire (exit 2 with the findings printed; exit 1
/// if a class fails to fire, i.e. the verifier lost a diagnostic).
fn cmd_verify(a: &Args) -> Result<(), Failure> {
    let device = device_by_name(a.get("device").unwrap_or("gtx480"))?;
    if a.flag("negative") {
        return verify_negative(&device);
    }
    if a.flag("sweep") {
        return verify_sweep(&device);
    }
    let split = split_n_opt(a)?;
    let m: usize = a.get_or("m", if split.is_some() { 1 } else { 64 })?;
    let n: usize = a.get_or("n", 1024)?;
    let elem_bytes = if a.get("precision").unwrap_or("f64") == "f32" { 4 } else { 8 };
    let config = GpuSolverConfig {
        layout: layout_choice(a)?,
        ..Default::default()
    };
    let solver = GpuTridiagSolver::new(device.clone(), config);
    if let Some(split) = split {
        let group = split_count_group(a, &device, split, m)?;
        let plan = solver
            .plan_geometry_split(&group, n, elem_bytes)
            .map_err(|e| e.to_string())?;
        let report = tridiag_gpu::verify_distributed_plan(&group, &plan);
        if a.flag("json") {
            println!("{}", report.to_json());
        } else {
            println!("{report}");
        }
        if !report.is_clean() {
            return Err(Failure::Findings(format!(
                "plan verification:\n  - {}",
                report.messages().join("\n  - ")
            )));
        }
        return Ok(());
    }
    if let Some(group) = device_group(a, &device)? {
        let plan = solver
            .plan_geometry_group(&group, m, n, elem_bytes)
            .map_err(|e| e.to_string())?;
        let report = tridiag_gpu::verify_sharded_plan(&group, &plan);
        if a.flag("json") {
            println!("{}", report.to_json());
        } else {
            println!("{report}");
        }
        if !report.is_clean() {
            return Err(Failure::Findings(format!(
                "plan verification:\n  - {}",
                report.messages().join("\n  - ")
            )));
        }
        return Ok(());
    }
    let plan = solver.plan_geometry(m, n, elem_bytes).map_err(|e| e.to_string())?;
    let report = tridiag_gpu::verify_plan(&device, &plan);
    if a.flag("json") {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
    if !report.is_clean() {
        let msgs: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
        return Err(Failure::Findings(format!(
            "plan verification:\n  - {}",
            msgs.join("\n  - ")
        )));
    }
    Ok(())
}

/// Execute a solve and return every verifier problem the run surfaced:
/// static findings on the executed plan plus prediction-vs-measured
/// cross-check mismatches. Empty = the certificate matched the run
/// exactly.
fn executed_verify_problems<S: tridiag_gpu::GpuScalar>(
    device: &DeviceSpec,
    group: Option<&DeviceGroup>,
    config: GpuSolverConfig,
    m: usize,
    n: usize,
) -> Result<Vec<String>, String> {
    let solver = GpuTridiagSolver::new(device.clone(), config);
    let batch: SystemBatch<S> = random_batch(m, n, 42);
    // Forced-interleaved runs hand the batch over pre-interleaved so
    // the executed plan is the conversion-elided one.
    let batch = if config.layout == LayoutChoice::Interleaved {
        batch.to_layout(Layout::Interleaved)
    } else {
        batch
    };
    let (_, report) = match group {
        Some(g) => solver.solve_batch_group(g, &batch),
        None => solver.solve_batch(&batch),
    }
    .map_err(|e| e.to_string())?;
    let mut problems: Vec<String> =
        report.verify.findings.iter().map(|f| f.to_string()).collect();
    problems.extend(report.verify_mismatches.iter().cloned());
    Ok(problems)
}

/// The `verify --sweep` smoke: the Fig. 12/13 sweep geometries at both
/// precisions plus sharded D ∈ {2, 4} points, each plan statically
/// certified *and* executed with the certificate cross-checked against
/// the measured stats. A final section repeats representative points
/// with the device layout force-pinned both ways (single-device and
/// sharded), so `--layout` plans carry exact certificates too.
fn verify_sweep(device: &DeviceSpec) -> Result<(), Failure> {
    const GEOMETRIES: &[(usize, usize)] = &[
        (64, 512),
        (256, 512),
        (1024, 512),
        (64, 2048),
        (256, 2048),
        (2048, 64),
        (256, 256),
        (16, 1024),
        (1, 16384),
    ];
    let solver = GpuTridiagSolver::new(device.clone(), GpuSolverConfig::default());
    let mut problems = Vec::new();
    let mut verified = 0usize;
    for &(m, n) in GEOMETRIES {
        for bytes in [8usize, 4] {
            let prec = if bytes == 4 { "f32" } else { "f64" };
            let plan = solver.plan_geometry(m, n, bytes).map_err(|e| e.to_string())?;
            let report = tridiag_gpu::verify_plan(device, &plan);
            let before = problems.len();
            for f in &report.findings {
                problems.push(format!("m={m} n={n} {prec}: {f}"));
            }
            let run = if bytes == 4 {
                executed_verify_problems::<f32>(device, None, GpuSolverConfig::default(), m, n)
            } else {
                executed_verify_problems::<f64>(device, None, GpuSolverConfig::default(), m, n)
            }
            .map_err(Failure::Error)?;
            for p in run {
                problems.push(format!("m={m} n={n} {prec} (executed): {p}"));
            }
            verified += 1;
            let launches: usize = report.prediction.launches.iter().map(|&(_, c)| c).sum();
            println!(
                "m={m:<5} n={n:<6} {prec}: peak={:>11} B  h2d={:>11} B  d2h={:>10} B  \
                 launches={launches}  {}",
                report.prediction.peak_resident_bytes,
                report.prediction.h2d_total_bytes,
                report.prediction.d2h_total_bytes,
                if problems.len() == before { "prediction=exact" } else { "FINDINGS" },
            );
        }
    }
    // Sharded points: a representative subset of the sweep across
    // homogeneous 2- and 4-device groups, every shard certified plus
    // the cross-device partition/consistency invariants, then executed
    // with per-device cross-checks.
    const SHARDED: &[(usize, usize)] = &[(64, 512), (256, 2048), (16, 1024), (2048, 64)];
    for &devices in &[2usize, 4] {
        let group =
            DeviceGroup::homogeneous(device.clone(), devices).map_err(|e| e.to_string())?;
        for &(m, n) in SHARDED {
            let plan = solver
                .plan_geometry_group(&group, m, n, 8)
                .map_err(|e| e.to_string())?;
            let report = tridiag_gpu::verify_sharded_plan(&group, &plan);
            let before = problems.len();
            for msg in report.messages() {
                problems.push(format!("m={m} n={n} f64 D={devices}: {msg}"));
            }
            let run =
                executed_verify_problems::<f64>(device, Some(&group), GpuSolverConfig::default(), m, n)
                    .map_err(Failure::Error)?;
            for p in run {
                problems.push(format!("m={m} n={n} f64 D={devices} (executed): {p}"));
            }
            verified += 1;
            println!(
                "m={m:<5} n={n:<6} f64 x{devices}: {} shard(s) certified  {}",
                report.shards.len(),
                if problems.len() == before { "prediction=exact" } else { "FINDINGS" },
            );
        }
    }
    // Forced-layout points: both pinned device layouts, certified AND
    // executed with the certificate cross-checked against measured
    // stats, single-device and sharded D ∈ {2, 4}. Interleaved points
    // execute the conversion-elided plan (the batch is handed over
    // pre-interleaved).
    const LAYOUT_POINTS: &[(usize, usize)] = &[(64, 512), (1024, 512), (2048, 64)];
    for (label, choice) in [
        ("contiguous", LayoutChoice::Contiguous),
        ("interleaved", LayoutChoice::Interleaved),
    ] {
        let config = GpuSolverConfig {
            layout: choice,
            ..Default::default()
        };
        let forced = GpuTridiagSolver::new(device.clone(), config);
        for &(m, n) in LAYOUT_POINTS {
            let before = problems.len();
            let solo = forced.plan_geometry(m, n, 8).map_err(|e| e.to_string())?;
            let report = tridiag_gpu::verify_plan(device, &solo);
            for f in &report.findings {
                problems.push(format!("m={m} n={n} f64 --layout {label}: {f}"));
            }
            let run = executed_verify_problems::<f64>(device, None, config, m, n)
                .map_err(Failure::Error)?;
            for p in run {
                problems.push(format!("m={m} n={n} f64 --layout {label} (executed): {p}"));
            }
            verified += 1;
            for &devices in &[2usize, 4] {
                let group = DeviceGroup::homogeneous(device.clone(), devices)
                    .map_err(|e| e.to_string())?;
                let sharded = forced
                    .plan_geometry_group(&group, m, n, 8)
                    .map_err(|e| e.to_string())?;
                let sreport = tridiag_gpu::verify_sharded_plan(&group, &sharded);
                for msg in sreport.messages() {
                    problems.push(format!(
                        "m={m} n={n} f64 D={devices} --layout {label}: {msg}"
                    ));
                }
                let run = executed_verify_problems::<f64>(device, Some(&group), config, m, n)
                    .map_err(Failure::Error)?;
                for p in run {
                    problems.push(format!(
                        "m={m} n={n} f64 D={devices} --layout {label} (executed): {p}"
                    ));
                }
                verified += 1;
            }
            println!(
                "m={m:<5} n={n:<6} f64 --layout {label}: layout={:?} D=1,2,4  {}",
                solo.layout,
                if problems.len() == before { "prediction=exact" } else { "FINDINGS" },
            );
        }
    }
    println!(
        "{verified} plans statically certified and executed; \
         certificates cross-checked against measured stats"
    );
    if !problems.is_empty() {
        return Err(Failure::Findings(format!(
            "verify sweep:\n  - {}",
            problems.join("\n  - ")
        )));
    }
    Ok(())
}

/// The canned corruption suite: hand-break a known-good plan one way
/// per diagnostic class and demand the verifier catches each with the
/// right [`tridiag_gpu::FindingKind`]. All classes firing is the
/// *expected* outcome (exit 2, findings printed); a missing diagnostic
/// means the verifier regressed (exit 1).
fn verify_negative(device: &DeviceSpec) -> Result<(), Failure> {
    use tridiag_gpu::plan::{BufferDecl, KernelOp, Step};
    use tridiag_gpu::FindingKind;

    let solver = GpuTridiagSolver::new(device.clone(), GpuSolverConfig::default());
    // 64 x 512 f64 plans the split (tiled-PCR + pThomas) pipeline on
    // every shipped device: 11 slots, two launches — enough structure
    // to break in every direction.
    let base = solver.plan_geometry(64, 512, 8).map_err(|e| e.to_string())?;
    if base.launches().count() != 2 {
        return Err(Failure::Error(
            "negative suite expects the split pipeline at 64x512 f64".into(),
        ));
    }
    let tiled_at = base
        .steps
        .iter()
        .position(|s| matches!(s, Step::Launch(l) if matches!(l.op, KernelOp::TiledPcr { .. })))
        .ok_or_else(|| Failure::Error("no tiled_pcr launch in the base plan".into()))?;
    let thomas_at = base
        .steps
        .iter()
        .position(|s| matches!(s, Step::Launch(l) if matches!(l.op, KernelOp::PThomas { .. })))
        .ok_or_else(|| Failure::Error("no p_thomas launch in the base plan".into()))?;

    // Each case: a label, a corrupted plan, and the diagnostic class
    // that must fire.
    let mut cases: Vec<(&str, tridiag_gpu::SolvePlan, FindingKind)> = Vec::new();

    let mut p = base.clone();
    if let Step::Launch(l) = &mut p.steps[tiled_at] {
        if let KernelOp::TiledPcr { input, .. } = &mut l.op {
            input[0] = 9; // c' scratch — allocated only after this launch
        }
    }
    cases.push(("read of a slot defined later", p, FindingKind::UseBeforeDef));

    let mut p = base.clone();
    if let Step::Launch(l) = &mut p.steps[tiled_at] {
        if let KernelOp::TiledPcr { input, .. } = &mut l.op {
            input[0] = 4; // x — allocated, but nothing has written it yet
        }
    }
    cases.push((
        "read of allocated-but-unwritten scratch",
        p,
        FindingKind::UnwrittenScratchRead,
    ));

    let mut p = base.clone();
    let x_alloc = p
        .steps
        .iter()
        .position(|s| matches!(s, Step::Alloc { slot: 4 }))
        .ok_or_else(|| Failure::Error("no Alloc{slot: 4} in the base plan".into()))?;
    p.steps.insert(x_alloc + 1, Step::Alloc { slot: 4 });
    cases.push(("second definition of a live slot", p, FindingKind::DuplicateDef));

    let mut p = base.clone();
    for s in &mut p.steps {
        if let Step::ConvertBack { from } = s {
            *from = match *from {
                tridiag_core::Layout::Contiguous => tridiag_core::Layout::Interleaved,
                tridiag_core::Layout::Interleaved => tridiag_core::Layout::Contiguous,
            };
        }
    }
    cases.push(("convert-back from the wrong layout", p, FindingKind::LayoutMismatch));

    let mut p = base.clone();
    if let Step::Launch(l) = &mut p.steps[thomas_at] {
        if let KernelOp::PThomas { a, x, .. } = &mut l.op {
            *x = *a; // output aliases an input within one launch
        }
    }
    cases.push(("kernel output aliasing an input", p, FindingKind::AliasHazard));

    let mut p = base.clone();
    p.buffers.push(BufferDecl { name: "orphan", elems: 64 });
    p.steps.insert(x_alloc, Step::Alloc { slot: p.buffers.len() - 1 });
    cases.push(("allocated slot that nothing ever uses", p, FindingKind::DanglingSlot));

    let mut p = base.clone();
    if let Some(Step::Download { slot }) =
        p.steps.iter_mut().find(|s| matches!(s, Step::Download { .. }))
    {
        *slot = 99;
    }
    cases.push(("bind of a slot beyond the buffer table", p, FindingKind::SlotOutOfRange));

    let mut findings = Vec::new();
    let mut missing = Vec::new();
    for (label, plan, kind) in &cases {
        let report = tridiag_gpu::verify_plan(device, plan);
        match report.findings.iter().find(|f| f.kind == *kind) {
            Some(f) => findings.push(format!("{label}: caught: {f}")),
            None => missing.push(format!("{label}: expected {kind}, verifier stayed clean")),
        }
    }

    // Peak-memory overflow: the certificate against a 1 KiB device.
    let mut tiny = device.clone();
    tiny.global_mem_bytes = 1024;
    let report = tridiag_gpu::verify_plan(&tiny, &base);
    match report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::PeakMemoryOverflow)
    {
        Some(f) => findings.push(format!("peak exceeding device memory: caught: {f}")),
        None => missing.push("peak exceeding device memory: expected peak-memory-overflow".into()),
    }

    // Sharded corruptions: a broken partition and a drifted pinned k.
    let group = DeviceGroup::homogeneous(device.clone(), 2).map_err(|e| e.to_string())?;
    let sharded = solver
        .plan_geometry_group(&group, 64, 512, 8)
        .map_err(|e| e.to_string())?;
    let mut p = sharded.clone();
    p.shards[1].sys_start += 1;
    let report = tridiag_gpu::verify_sharded_plan(&group, &p);
    match report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::ShardPartition)
    {
        Some(f) => findings.push(format!("gapped shard partition: caught: {f}")),
        None => missing.push("gapped shard partition: expected shard-partition".into()),
    }
    let mut p = sharded.clone();
    p.shards[0].plan.k += 1;
    let report = tridiag_gpu::verify_sharded_plan(&group, &p);
    match report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::ShardConsistency)
    {
        Some(f) => findings.push(format!("shard k drifting off the pin: caught: {f}")),
        None => missing.push("shard k drifting off the pin: expected shard-consistency".into()),
    }

    // Distributed corruptions: one per new diagnostic class, each
    // demanded to fire with chunk attribution where one applies.
    let dbase = solver
        .plan_geometry_split(&group, 512, 8)
        .map_err(|e| e.to_string())?;
    let mut p = dbase.clone();
    p.chunks[0].interior = None;
    let report = tridiag_gpu::verify_distributed_plan(&group, &p);
    match report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::InterfaceExchange && f.chunk == Some(0))
    {
        Some(f) => findings.push(format!("interface used before defined: caught: {f}")),
        None => missing.push(
            "interface used before defined: expected chunk-attributed interface-exchange".into(),
        ),
    }
    let mut p = dbase.clone();
    p.chunks[1].row_start += 1;
    let report = tridiag_gpu::verify_distributed_plan(&group, &p);
    match report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::ChunkPartition && f.chunk == Some(1))
    {
        Some(f) => findings.push(format!("gapped chunk partition: caught: {f}")),
        None => missing
            .push("gapped chunk partition: expected chunk-attributed chunk-partition".into()),
    }
    let mut p = dbase.clone();
    p.reduced = Some(
        solver
            .plan_geometry(1, 2 * group.len() - 1, 8)
            .map_err(|e| e.to_string())?,
    );
    let report = tridiag_gpu::verify_distributed_plan(&group, &p);
    match report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::ReducedSystem)
    {
        Some(f) => findings.push(format!("reduced system of the wrong size: caught: {f}")),
        None => missing.push("reduced system of the wrong size: expected reduced-system".into()),
    }

    if !missing.is_empty() {
        return Err(Failure::Error(format!(
            "verifier failed to diagnose:\n  - {}",
            missing.join("\n  - ")
        )));
    }
    println!(
        "{} corruption(s) injected, every diagnostic class fired:",
        findings.len()
    );
    Err(Failure::Findings(format!("  - {}", findings.join("\n  - "))))
}

/// Validate and write a Chrome-trace document; schema violations are
/// findings (exit 2), I/O failures are errors (exit 1).
fn write_trace(out: &str, text: &str) -> Result<(), Failure> {
    gpu_sim::validate_chrome_json(text).map_err(|p| {
        Failure::Findings(format!("trace schema violations:\n  - {}", p.join("\n  - ")))
    })?;
    std::fs::write(out, text).map_err(|e| Failure::Error(format!("writing {out}: {e}")))?;
    Ok(())
}

/// `tridiag profile` — run one solve (or, with `--zoo`, every shipped
/// kernel) and emit the observability artifacts: a Chrome trace-event
/// JSON file plus a per-phase terminal profile. Exits 2 when a phase
/// breakdown fails to sum to its kernel totals or the exported trace
/// violates the schema.
fn cmd_profile(a: &Args) -> Result<(), Failure> {
    let out = a.get("out").unwrap_or("trace.json");
    if a.flag("zoo") {
        return profile_zoo(out);
    }
    let m: usize = a.get_or("m", 64)?;
    let n: usize = a.get_or("n", 1024)?;
    let seed: u64 = a.get_or("seed", 42u64)?;
    let device = device_by_name(a.get("device").unwrap_or("gtx480"))?;
    if a.get("precision").unwrap_or("f64") == "f32" {
        profile_typed::<f32>(m, n, seed, device, out)
    } else {
        profile_typed::<f64>(m, n, seed, device, out)
    }
}

fn profile_typed<S: tridiag_gpu::GpuScalar>(
    m: usize,
    n: usize,
    seed: u64,
    device: DeviceSpec,
    out: &str,
) -> Result<(), Failure> {
    let batch: SystemBatch<S> = random_batch(m, n, seed);
    let solver = GpuTridiagSolver::new(device, GpuSolverConfig::default());
    let (x, report) = solver.solve_batch(&batch).map_err(|e| e.to_string())?;
    let resid = batch.max_relative_residual(&x).map_err(|e| e.to_string())?;
    print!("{}", report.profile_report());
    write_trace(out, &report.trace.to_chrome_json())?;
    println!("trace       : wrote {out} (open in chrome://tracing or ui.perfetto.dev)");
    println!("residual    : {resid:.3e}");
    if !report.is_phase_sum_clean() {
        return Err(Failure::Findings(format!(
            "phase-sum violations:\n  - {}",
            report.phase_sum_mismatches.join("\n  - ")
        )));
    }
    Ok(())
}

/// `tridiag profile --zoo` — profile every zoo kernel/geometry: one
/// span per entry (phase children inside), laid out sequentially on the
/// modeled-time axis, plus a top-phases table across the whole zoo.
fn profile_zoo(out: &str) -> Result<(), Failure> {
    let entries = tridiag_gpu::zoo::run_zoo().map_err(|e| e.to_string())?;
    let mut trace = gpu_sim::Trace::new("tridiag zoo profile");
    let mut cursor = 0.0f64;
    let mut rows: Vec<(String, f64, &'static str)> = Vec::new();
    let mut phase_sum_bad = Vec::new();
    for e in &entries {
        for mm in e.stats.phase_sum_mismatches() {
            phase_sum_bad.push(format!("{} [{}]: {mm}", e.kernel, e.geometry));
        }
        trace.span(
            format!("kernel:{}", e.kernel),
            "kernel",
            0,
            cursor,
            e.timing.total_us,
            vec![
                ("geometry".into(), gpu_sim::Json::str(e.geometry.clone())),
                (
                    "bound".into(),
                    gpu_sim::Json::str(format!("{:?}", e.timing.bound)),
                ),
            ],
        );
        let mut t = cursor + e.timing.launch_us;
        for p in &e.timing.phases {
            trace.span(format!("phase:{}", p.label), "phase", 0, t, p.us, Vec::new());
            rows.push((format!("{}/{}", e.kernel, p.label), p.us, p.label));
            t += p.us;
        }
        cursor += e.timing.total_us;
    }
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "zoo profile : {} kernel/geometry entries, {:.1} us modeled total",
        entries.len(),
        cursor
    );
    println!("{:<34} {:>10}", "top phases (kernel/phase)", "us");
    for (name, us, _) in rows.iter().take(12) {
        println!("{name:<34} {us:>10.3}");
    }
    write_trace(out, &trace.to_chrome_json())?;
    println!("trace       : wrote {out} (open in chrome://tracing or ui.perfetto.dev)");
    if !phase_sum_bad.is_empty() {
        return Err(Failure::Findings(format!(
            "phase-sum violations:\n  - {}",
            phase_sum_bad.join("\n  - ")
        )));
    }
    Ok(())
}

/// `tridiag lint` — run the static analyzer over the kernel zoo: every
/// shipped kernel at several launch geometries, each linted from its
/// recorded affine access plan and cross-checked against the dynamic
/// counters the same run measured.
fn cmd_lint(a: &Args) -> Result<(), Failure> {
    let verbose = a.flag("verbose");
    let entries = tridiag_gpu::zoo::run_zoo().map_err(|e| e.to_string())?;
    let mut bad = 0usize;
    for e in &entries {
        let status = if e.is_clean() {
            "clean, predictions exact".to_string()
        } else {
            bad += 1;
            format!(
                "{} diagnostic(s), {} counter mismatch(es)",
                e.report.diagnostics.len(),
                e.mismatches.len()
            )
        };
        println!("{:<18} {:<28} {status}", e.kernel, e.geometry);
        if verbose || !e.is_clean() {
            for d in &e.report.diagnostics {
                println!("    {d}");
            }
            for mm in &e.mismatches {
                println!("    cross-check {mm}");
            }
        }
        if verbose {
            println!(
                "    events={} gld_t={} gst_t={} replays={} barriers={}",
                e.report.events,
                e.report.prediction.global_load_transactions,
                e.report.prediction.global_store_transactions,
                e.report.prediction.bank_conflict_replays,
                e.report.prediction.barriers
            );
        }
    }
    println!(
        "{} kernel/geometry entries linted, {} with findings",
        entries.len(),
        bad
    );
    if bad > 0 {
        return Err(Failure::Findings(format!(
            "{bad} zoo entr{} with lint findings",
            if bad == 1 { "y" } else { "ies" }
        )));
    }
    Ok(())
}

fn cmd_compare(a: &Args) -> Result<(), String> {
    let m: usize = a.get_or("m", 16)?;
    let n: usize = a.get_or("n", 512)?;
    let seed: u64 = a.get_or("seed", 42u64)?;
    let batch: SystemBatch<f64> = random_batch(m, n, seed);
    let reference = cpu_ref::solve_batch_sequential(&batch).map_err(|e| e.to_string())?;

    println!("{:<12} {:>14} {:>14}", "engine", "max |Δ| vs cpu", "residual");
    let report = |name: &str, x: &[f64]| {
        let d = x
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let r = batch.max_relative_residual(x).expect("residual");
        println!("{name:<12} {d:>14.3e} {r:>14.3e}");
    };
    report("cpu", &reference);
    let mt = cpu_ref::solve_batch_threaded(&batch, &cpu_ref::ThreadPool::per_cpu())
        .map_err(|e| e.to_string())?;
    report("cpu-mt", &mt);
    let (g, _) = GpuTridiagSolver::gtx480()
        .solve_batch(&batch)
        .map_err(|e| e.to_string())?;
    report("gpu", &g);
    let (dv, _) =
        davidson::solve_batch(&DeviceSpec::gtx480(), &batch).map_err(|e| e.to_string())?;
    report("davidson", &dv);
    if n <= zhang::max_system_size(&DeviceSpec::gtx480(), 8) {
        let (z, _) = zhang::solve_batch(&DeviceSpec::gtx480(), &batch, None)
            .map_err(|e| e.to_string())?;
        report("zhang", &z);
    } else {
        println!("{:<12} {:>14}", "zhang", "N too large");
    }
    Ok(())
}

fn cmd_tune(a: &Args) -> Result<(), String> {
    let n: usize = a.get_or("n", 4096)?;
    let k_max: u32 = a.get_or("k-max", 8u32)?;
    let m_values = a
        .get_list("m-list")?
        .unwrap_or_else(|| vec![1, 16, 64, 256, 1024]);
    let device = device_by_name(a.get("device").unwrap_or("gtx480"))?;
    let layout = layout_choice(a)?;
    let points = if let Some(group) = device_group(a, &device)? {
        println!(
            "tuning k on simulated {} ({} device(s)) at N = {n}…",
            group.label(),
            group.len()
        );
        autotune::tune_sharded_with_layout::<f64>(&group, &m_values, n, k_max, layout)
            .map_err(|e| e.to_string())?
    } else {
        println!("tuning k on simulated {} at N = {n}…", device.name);
        autotune::tune_with_layout::<f64>(&device, &m_values, n, k_max, layout)
            .map_err(|e| e.to_string())?
    };
    println!("{:>8} {:>8} {:>12} {:>12}", "M", "best k", "best [us]", "k=0 [us]");
    for p in points {
        println!(
            "{:>8} {:>8} {:>12.1} {:>12.1}",
            p.m, p.best_k, p.best_us, p.k0_us
        );
    }
    Ok(())
}

fn cmd_info(a: &Args) -> Result<(), String> {
    let device = device_by_name(a.get("device").unwrap_or("gtx480"))?;
    println!("device              : {}", device.name);
    println!("SMs                 : {}", device.num_sms);
    println!("cores/SM            : {}", device.cores_per_sm);
    println!("clock               : {:.3} GHz", device.clock_ghz);
    println!("shared memory/SM    : {} KiB", device.shared_mem_per_sm / 1024);
    println!("max threads/SM      : {}", device.max_threads_per_sm);
    println!("DRAM bandwidth      : {:.1} GB/s", device.dram_bandwidth_gbps);
    println!("DRAM latency        : {} cycles", device.dram_latency_cycles);
    println!(
        "peak f32 / f64      : {:.0} / {:.0} GFLOP/s",
        device.peak_flops(gpu_sim::Precision::F32) / 1e9,
        device.peak_flops(gpu_sim::Precision::F64) / 1e9
    );
    println!("parallelism P       : {} resident threads", device.parallelism());
    println!();
    println!("occupancy sheet (threads/block, shared KiB -> blocks/SM):");
    for &tpb in &[64u32, 128, 256, 512] {
        let mut cells = Vec::new();
        for &kb in &[0usize, 8, 16, 32] {
            let o = gpu_sim::occupancy(&device, tpb, kb * 1024, 32)
                .map(|o| o.blocks_per_sm.to_string())
                .unwrap_or_else(|_| "-".into());
            cells.push(format!("{kb:>2}KiB:{o}"));
        }
        println!("  {tpb:>4} threads: {}", cells.join("  "));
    }
    println!();
    let solver = GpuTridiagSolver::new(device, GpuSolverConfig::default());
    println!(
        "max k (f64 window)  : {}",
        solver.max_k_for_shared(1, 8)
    );
    println!(
        "in-shared method cap: {} rows (f64) — tiled PCR has no cap",
        zhang::max_system_size(solver.spec(), 8)
    );
    Ok(())
}

/// Build the deterministic request payloads `serve`/`bench-service`
/// submit: fixed geometry, seeds derived from `--seed`, precision
/// `f64`, `f32` or `mixed` (alternating).
fn service_payloads(
    count: usize,
    m: usize,
    n: usize,
    seed: u64,
    precision: &str,
) -> Result<Vec<tridiag_service::Payload>, String> {
    use tridiag_service::Payload;
    (0..count)
        .map(|i| {
            let s = seed.wrapping_add(i as u64);
            match precision {
                "f64" => Ok(Payload::F64(random_batch::<f64>(m, n, s))),
                "f32" => Ok(Payload::F32(random_batch::<f32>(m, n, s))),
                "mixed" => Ok(if i % 2 == 0 {
                    Payload::F64(random_batch::<f64>(m, n, s))
                } else {
                    Payload::F32(random_batch::<f32>(m, n, s))
                }),
                other => Err(format!(
                    "--precision {other:?} (expected f64, f32 or mixed)"
                )),
            }
        })
        .collect()
}

fn cmd_serve(a: &Args) -> Result<(), Failure> {
    use std::sync::Arc;
    use tridiag_service::{solo_solution, ServiceConfig, ServiceError, SolveService};

    let requests: usize = a.get_or("requests", 8)?;
    let clients: usize = a.get_or("clients", 4)?;
    let window: f64 = a.get_or("window", 10.0f64)?;
    let depth: usize = a.get_or("depth", 64)?;
    let m: usize = a.get_or("m", 2)?;
    let n: usize = a.get_or("n", 256)?;
    let seed: u64 = a.get_or("seed", 42u64)?;
    let precision = a.get("precision").unwrap_or("mixed");
    if requests == 0 || clients == 0 {
        return Err(Failure::Error("--requests and --clients must be > 0".into()));
    }
    let device = device_by_name(a.get("device").unwrap_or("gtx480"))?;
    let group = device_group(a, &device)?.unwrap_or_else(|| DeviceGroup::single(device));
    let cfg = ServiceConfig {
        window_us: window,
        queue_depth: depth,
        ..ServiceConfig::default()
    };
    let payloads = service_payloads(requests, m, n, seed, precision)?;

    println!(
        "serve: {requests} requests from {clients} clients on {} \
         (window {window} us, depth {depth}, {precision})",
        group.label()
    );

    let service = Arc::new(SolveService::start(group.clone(), cfg));
    let mut handles = Vec::new();
    for c in 0..clients {
        // Client c owns payloads c, c+clients, c+2*clients, ...
        let mine: Vec<_> = payloads
            .iter()
            .skip(c)
            .step_by(clients)
            .cloned()
            .collect();
        let service = Arc::clone(&service);
        let group = group.clone();
        handles.push(std::thread::spawn(move || {
            let mut ok = 0usize;
            let mut problems = Vec::new();
            for payload in mine {
                match service.submit(payload.clone()) {
                    Ok(ticket) => {
                        let id = ticket.id;
                        let resp = ticket.wait();
                        if resp.id != id {
                            problems.push(format!(
                                "client {c}: ticket {id} answered as {}",
                                resp.id
                            ));
                            continue;
                        }
                        match resp.result {
                            Ok(sol) => match solo_solution(&group, cfg, &payload) {
                                Ok(solo) if solo.hash() == sol.hash() => ok += 1,
                                Ok(solo) => problems.push(format!(
                                    "client {c} request {id}: coalesced hash \
                                     {:016x} != solo {:016x}",
                                    sol.hash(),
                                    solo.hash()
                                )),
                                Err(e) => problems
                                    .push(format!("client {c} request {id}: solo solve: {e}")),
                            },
                            Err(ServiceError::Overloaded { depth }) => problems.push(format!(
                                "client {c} request {id}: overloaded at depth {depth}"
                            )),
                            Err(e) => problems
                                .push(format!("client {c} request {id}: solve failed: {e}")),
                        }
                    }
                    Err(e) => problems.push(format!("client {c}: admission refused: {e}")),
                }
            }
            (ok, problems)
        }));
    }

    let mut ok = 0usize;
    let mut problems = Vec::new();
    for h in handles {
        let (o, p) = h.join().expect("client thread panicked");
        ok += o;
        problems.extend(p);
    }
    let service = Arc::try_unwrap(service)
        .unwrap_or_else(|_| panic!("client threads still hold the service"));
    let stats = if let Some(dir) = a.get("telemetry") {
        let (stats, telemetry) = service.shutdown_with_telemetry();
        let (metrics, events, trace, findings) = telemetry_artifacts(&telemetry, "tridiag-serve");
        write_telemetry(dir, &metrics, &events, &trace)?;
        println!("  telemetry: wrote {dir}/metrics.json, events.jsonl, trace.json");
        problems.extend(findings);
        stats
    } else {
        service.shutdown()
    };

    println!(
        "  answered {ok}/{requests} bit-identical to solo; \
         {} batches, cache {}/{} hits, modeled makespan {:.1} us",
        stats.batches, stats.cache.hits, stats.cache.lookups, stats.clock_us
    );
    if !problems.is_empty() {
        return Err(Failure::Findings(problems.join("\n")));
    }
    if ok != requests {
        return Err(Failure::Findings(format!(
            "only {ok}/{requests} requests verified"
        )));
    }
    Ok(())
}

fn cmd_bench_service(a: &Args) -> Result<(), Failure> {
    use tridiag_service::{ServiceConfig, ServiceCore, SolveRequest};

    let requests: usize = a.get_or("requests", 48)?;
    let m: usize = a.get_or("m", 2)?;
    let n: usize = a.get_or("n", 256)?;
    let seed: u64 = a.get_or("seed", 42u64)?;
    let precision = a.get("precision").unwrap_or("f64");
    let windows = a
        .get_list("windows")?
        .unwrap_or_else(|| vec![0, 4, 16, 64]);
    let device = device_by_name(a.get("device").unwrap_or("gtx480"))?;
    let group = device_group(a, &device)?.unwrap_or_else(|| DeviceGroup::single(device));
    let payloads = service_payloads(requests, m, n, seed, precision)?;

    println!(
        "bench-service: {requests} requests of m={m} n={n} {precision} on {}, \
         arrivals 1 us apart",
        group.label()
    );
    println!(
        "  {:>9}  {:>7}  {:>7}  {:>10}  {:>9}  {:>9}  {:>11}",
        "window_us", "batches", "fused", "cache_hits", "p50_us", "p99_us", "requests/s"
    );
    for w in windows {
        let mut core = ServiceCore::new(group.clone(), ServiceConfig {
            window_us: w as f64,
            ..ServiceConfig::default()
        });
        let workload: Vec<SolveRequest> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| SolveRequest {
                id: i as u64,
                arrival_us: i as f64,
                payload: p.clone(),
            })
            .collect();
        let report = core.run_workload(workload);
        let (done, rejected, failed) = report.totals();
        if done != requests {
            return Err(Failure::Error(format!(
                "window {w}: {done}/{requests} completed ({rejected} rejected, {failed} failed)"
            )));
        }
        let fused = report
            .batches
            .iter()
            .filter(|b| b.request_ids.len() > 1)
            .count();
        println!(
            "  {:>9}  {:>7}  {:>7}  {:>10}  {:>9.2}  {:>9.2}  {:>11.0}",
            w,
            report.batches.len(),
            fused,
            report.cache.hits,
            report.p50_us,
            report.p99_us,
            report.requests_per_s
        );
    }
    Ok(())
}

/// Render the telemetry artifact set — `metrics.json`, `events.jsonl`,
/// `trace.json` — and validate each: metrics against
/// `tridiag.metrics/v1`, the event log through the lifecycle replay
/// validator, the trace against the Chrome schema plus the
/// per-request span-chain check. Returns the three texts and every
/// violation found.
fn telemetry_artifacts(
    telemetry: &tridiag_service::Telemetry,
    process: &str,
) -> (String, String, String, Vec<String>) {
    let metrics_doc = telemetry.metrics.to_json();
    let mut findings: Vec<String> = gpu_sim::validate_metrics_json(&metrics_doc)
        .into_iter()
        .map(|p| format!("metrics schema: {p}"))
        .collect();
    let events = telemetry.to_jsonl();
    if let Err(p) = tridiag_service::validate_event_log(&events) {
        findings.extend(p.into_iter().map(|p| format!("event replay: {p}")));
    }
    let trace = telemetry.to_trace(process).to_chrome_json();
    if let Err(p) = gpu_sim::validate_chrome_json(&trace) {
        findings.extend(p.into_iter().map(|p| format!("trace schema: {p}")));
    }
    if let Err(p) = tridiag_service::validate_request_chains(&trace) {
        findings.extend(p.into_iter().map(|p| format!("request chains: {p}")));
    }
    (metrics_doc.to_string(), events, trace, findings)
}

/// Write the three telemetry artifacts into `dir` (created if
/// missing). I/O failures are hard errors (exit 1); schema findings
/// are the caller's to report.
fn write_telemetry(dir: &str, metrics: &str, events: &str, trace: &str) -> Result<(), Failure> {
    let dir_path = std::path::Path::new(dir);
    std::fs::create_dir_all(dir_path)
        .map_err(|e| Failure::Error(format!("creating {dir}: {e}")))?;
    for (name, text) in [
        ("metrics.json", metrics),
        ("events.jsonl", events),
        ("trace.json", trace),
    ] {
        let path = dir_path.join(name);
        std::fs::write(&path, text)
            .map_err(|e| Failure::Error(format!("writing {}: {e}", path.display())))?;
    }
    Ok(())
}

/// `tridiag stats --negative` — inject one corruption per
/// replay-diagnostic class into a copy of a clean event log and demand
/// the validator fires on each: exit 2 = every diagnostic fired
/// (reported as findings, mirroring `verify --negative`), exit 1 = a
/// diagnostic was lost.
fn stats_negative(log: &str) -> Result<(), Failure> {
    if let Err(p) = tridiag_service::validate_event_log(log) {
        return Err(Failure::Error(format!(
            "baseline event log must replay cleanly, got:\n  - {}",
            p.join("\n  - ")
        )));
    }
    let completion = log
        .lines()
        .find(|l| l.contains("\"completion\""))
        .ok_or_else(|| Failure::Error("workload produced no completion event".into()))?;
    // A terminal for a cid far beyond any admitted id.
    let orphan = r#"{"event":"completion","t_us":99.0,"cid":1152921504606846976,"batch":null,"precision":"f64","queue_us":0,"coalesce_us":0,"kernel_us":0,"scatter_us":0,"cache_hit":false,"coalesced_with":1}"#;
    let cases = [
        ("orphan terminal", format!("{log}{orphan}\n"), "orphan"),
        (
            "duplicate terminal",
            format!("{log}{completion}\n"),
            "duplicate terminal",
        ),
    ];
    let mut fired = Vec::new();
    let mut lost = Vec::new();
    for (label, corrupted, keyword) in &cases {
        match tridiag_service::validate_event_log(corrupted) {
            Err(p) if p.iter().any(|m| m.contains(keyword)) => {
                fired.push(format!("{label}: {}", p[0]));
            }
            Err(p) => lost.push(format!(
                "{label}: validator fired without the expected diagnostic: {}",
                p.join("; ")
            )),
            Ok(_) => lost.push(format!("{label}: validator accepted the corrupted log")),
        }
    }
    if !lost.is_empty() {
        return Err(Failure::Error(format!(
            "replay validator failed to diagnose:\n  - {}",
            lost.join("\n  - ")
        )));
    }
    println!(
        "{} corruption(s) injected, every replay diagnostic fired:",
        cases.len()
    );
    Err(Failure::Findings(format!("  - {}", fired.join("\n  - "))))
}

/// `tridiag stats` — run a deterministic modeled workload through the
/// service core and print the unified telemetry read-out: counter /
/// gauge / histogram tables (top `--top` labels per family), the
/// latency-attribution partition, the SLO account, and every
/// telemetry invariant check (metrics schema, exact partition,
/// event-log replay, trace schema, request chains, report schema).
/// `--json` prints the raw `tridiag.metrics/v1` snapshot instead of
/// tables; `--out DIR` writes the telemetry artifact set. Any
/// violated invariant is a finding (exit 2).
fn cmd_stats(a: &Args) -> Result<(), Failure> {
    use tridiag_service::{ServiceConfig, ServiceCore, SolveRequest};

    let requests: usize = a.get_or("requests", 48)?;
    let m: usize = a.get_or("m", 2)?;
    let n: usize = a.get_or("n", 256)?;
    let seed: u64 = a.get_or("seed", 42u64)?;
    let window: f64 = a.get_or("window", 16.0f64)?;
    let top: usize = a.get_or("top", 8usize)?.max(1);
    let precision = a.get("precision").unwrap_or("mixed");
    let device = device_by_name(a.get("device").unwrap_or("gtx480"))?;
    let group = device_group(a, &device)?.unwrap_or_else(|| DeviceGroup::single(device));
    let payloads = service_payloads(requests, m, n, seed, precision)?;

    let mut core = ServiceCore::new(
        group.clone(),
        ServiceConfig {
            window_us: window,
            ..ServiceConfig::default()
        },
    );
    let workload: Vec<SolveRequest> = payloads
        .iter()
        .enumerate()
        .map(|(i, p)| SolveRequest {
            id: i as u64,
            arrival_us: i as f64,
            payload: p.clone(),
        })
        .collect();
    let report = core.run_workload(workload);
    let telemetry = core.telemetry();

    let (metrics, events, trace, mut findings) = telemetry_artifacts(telemetry, "tridiag-stats");
    if a.flag("negative") {
        return stats_negative(&events);
    }
    findings.extend(
        telemetry
            .cross_check(&report)
            .into_iter()
            .map(|p| format!("exact-partition: {p}")),
    );
    findings.extend(
        tridiag_service::validate_service_report_json(&report.to_json())
            .into_iter()
            .map(|p| format!("report schema: {p}")),
    );

    if a.flag("json") {
        println!("{metrics}");
    } else {
        let (done, rejected, failed) = report.totals();
        println!(
            "stats: {requests} modeled requests of m={m} n={n} {precision} on {}, \
             window {window} us",
            group.label()
        );
        println!(
            "  completed {done}, rejected {rejected}, failed {failed}; {} batches, \
             cache {}/{} hits, makespan {:.1} us, {:.0} requests/s",
            report.batches.len(),
            report.cache.hits,
            report.cache.lookups,
            report.makespan_us,
            report.requests_per_s
        );
        let att = &report.attributed;
        println!(
            "  attributed_us: queue {:.2} + coalesce {:.2} + kernel {:.2} + \
             scatter {:.2} = {:.2} (partitions report totals bit-exactly)",
            att.queue_us,
            att.coalesce_us,
            att.kernel_us,
            att.scatter_us,
            att.latency_us()
        );
        let s = &report.slo;
        println!(
            "  slo: target {:.0} us, {} violation(s) in {done} completion(s); \
             buckets {} good + {} bad = {}; budget burn {:.2} of {:.0}%",
            s.target_latency_us,
            s.violations,
            s.good_buckets,
            s.bad_buckets,
            s.buckets,
            s.budget_burn,
            s.budget_frac * 100.0
        );
        println!("\n  counters (top {top} per family):");
        for (family, labels) in telemetry.metrics.counter_families() {
            let mut points: Vec<(&str, u64)> =
                labels.iter().map(|(l, &v)| (l.as_str(), v)).collect();
            points.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            print_topk_row(
                family,
                points.iter().map(|(l, v)| format!("{l}={v}")),
                points.len(),
                top,
            );
        }
        println!("\n  gauges (top {top} per family):");
        for (family, labels) in telemetry.metrics.gauge_families() {
            let mut points: Vec<(&str, f64)> =
                labels.iter().map(|(l, &v)| (l.as_str(), v)).collect();
            points.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
            print_topk_row(
                family,
                points.iter().map(|(l, v)| format!("{l}={v:.2}")),
                points.len(),
                top,
            );
        }
        println!("\n  histograms (non-empty buckets):");
        for (family, labels) in telemetry.metrics.histogram_families() {
            for (label, h) in labels {
                let mut cells = Vec::new();
                for (i, &c) in h.counts.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    let bound = if i < h.bounds.len() {
                        format!("<={}", h.bounds[i])
                    } else {
                        format!(">{}", h.bounds.last().copied().unwrap_or(0.0))
                    };
                    cells.push(format!("{bound}:{c}"));
                }
                println!(
                    "    {:<28} n={} sum={:.1}  {}",
                    format!("{family}/{label}"),
                    h.count,
                    h.sum,
                    cells.join("  ")
                );
            }
        }
    }
    if let Some(dir) = a.get("out") {
        write_telemetry(dir, &metrics, &events, &trace)?;
        println!("  wrote {dir}/metrics.json, events.jsonl, trace.json");
    }
    if !findings.is_empty() {
        return Err(Failure::Findings(format!(
            "  - {}",
            findings.join("\n  - ")
        )));
    }
    Ok(())
}

/// One `family  label=value ...` table row, eliding past `top`.
fn print_topk_row(
    family: &str,
    cells: impl Iterator<Item = String>,
    total: usize,
    top: usize,
) {
    let shown: Vec<String> = cells.take(top).collect();
    let elided = total.saturating_sub(top);
    if elided > 0 {
        println!("    {family:<28} {}  (+{elided} more)", shown.join("  "));
    } else {
        println!("    {family:<28} {}", shown.join("  "));
    }
}

fn main() -> ExitCode {
    let args = match Args::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if args.flag("help") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let result = match args.command.as_deref() {
        Some("solve") => cmd_solve(&args),
        Some("plan") => cmd_plan(&args),
        Some("verify") => cmd_verify(&args),
        Some("profile") => cmd_profile(&args),
        Some("compare") => cmd_compare(&args).map_err(Failure::Error),
        Some("tune") => cmd_tune(&args).map_err(Failure::Error),
        Some("info") => cmd_info(&args).map_err(Failure::Error),
        Some("lint") => cmd_lint(&args),
        Some("serve") => cmd_serve(&args),
        Some("bench-service") => cmd_bench_service(&args),
        Some("stats") => cmd_stats(&args),
        Some("help") => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(Failure::Error(format!(
            "unknown command {other:?}\n{}",
            usage()
        ))),
        None => Err(Failure::Error(usage().to_string())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(Failure::Error(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(Failure::Findings(e)) => {
            eprintln!("findings: {e}");
            ExitCode::from(2)
        }
    }
}
