//! Tiny hand-rolled argument parser (no external CLI crates on the
//! offline allowlist): `--key value` pairs and flags after a
//! subcommand.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    opts: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from an iterator of argument strings (no program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                // A value follows unless the next token is another flag
                // or the end of input.
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        out.opts.insert(key.to_string(), v);
                    }
                    _ => out.flags.push(key.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(a);
            } else {
                return Err(format!("unexpected positional argument {a:?}"));
            }
        }
        Ok(out)
    }

    /// Parse from the process environment.
    pub fn from_env() -> Result<Self, String> {
        Self::parse(std::env::args().skip(1))
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(|s| s.as_str())
    }

    /// Typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.opts.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    /// Boolean flag (present without a value).
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Comma-separated list option.
    pub fn get_list(&self, key: &str) -> Result<Option<Vec<usize>>, String> {
        match self.opts.get(key) {
            None => Ok(None),
            Some(v) => v
                .split(',')
                .map(|p| {
                    p.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("--{key}: bad element {p:?}"))
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn subcommand_options_and_flags() {
        let a = parse("solve --m 64 --n 512 --verbose --engine gpu");
        assert_eq!(a.command.as_deref(), Some("solve"));
        assert_eq!(a.get("m"), Some("64"));
        assert_eq!(a.get_or("n", 0usize).unwrap(), 512);
        assert_eq!(a.get_or("missing", 7usize).unwrap(), 7);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.get("engine"), Some("gpu"));
    }

    #[test]
    fn lists_and_errors() {
        let a = parse("tune --m-list 1,16,256");
        assert_eq!(a.get_list("m-list").unwrap(), Some(vec![1, 16, 256]));
        assert_eq!(a.get_list("absent").unwrap(), None);
        assert!(parse("tune --m-list 1,x").get_list("m-list").is_err());
        assert!(Args::parse(["solve".into(), "extra".into()]).is_err());
        assert!(parse("solve --n notanumber").get_or("n", 0usize).is_err());
    }

    #[test]
    fn trailing_flag() {
        let a = parse("info --fast");
        assert!(a.flag("fast"));
        assert_eq!(a.command.as_deref(), Some("info"));
    }
}
