//! Cyclic reduction (CR / odd-even reduction, Section II-A-2, Figs. 1–2).
//!
//! Forward reduction repeatedly eliminates the odd-indexed unknowns:
//! each surviving (even) equation absorbs its two neighbours via the
//! update of Eqs. 5–6, halving the system. Backward substitution then
//! recovers the eliminated unknowns level by level (Eq. 7).
//!
//! `O(n)` total work, `2·log2(n) + 1` parallel elimination steps, but at
//! each level the available parallelism halves — the tree in Fig. 2.
//!
//! This implementation handles arbitrary `n >= 1` (not just powers of
//! two) by letting the last row of an odd-length level survive to the
//! next level unchanged on its left side.

use crate::error::{Result, TridiagError};
use crate::scalar::Scalar;
use crate::system::TridiagonalSystem;

/// One row of an intermediate CR/PCR level: coefficients `(a, b, c, d)`.
///
/// Public because the GPU kernels in `tridiag-gpu` share the exact
/// reduction arithmetic with the host algorithms — one implementation
/// of Eqs. 5–6, bit-identical everywhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row<S> {
    /// Sub-diagonal coefficient `a`.
    pub a: S,
    /// Main-diagonal coefficient `b`.
    pub b: S,
    /// Super-diagonal coefficient `c`.
    pub c: S,
    /// Right-hand side `d`.
    pub d: S,
}

impl<S: Scalar> Row<S> {
    /// Row `i` of a system, with the boundary-zero convention applied.
    #[inline]
    pub fn from_system(sys: &TridiagonalSystem<S>, i: usize) -> Self {
        let (a, b, c, d) = sys.row(i);
        Row { a, b, c, d }
    }

    /// Identity row: `1·x = 0`, used as the out-of-range neighbour so the
    /// reduction formula needs no boundary branches.
    #[inline]
    pub fn identity() -> Self {
        Row {
            a: S::ZERO,
            b: S::ONE,
            c: S::ZERO,
            d: S::ZERO,
        }
    }
}

/// The CR/PCR reduction step (Eqs. 5–6): combine row `cur` with its
/// current neighbours `prev` (index i−s) and `next` (index i+s),
/// eliminating `cur.a` against `prev` and `cur.c` against `next`.
///
/// Returns the new row; errors on a zero neighbour pivot.
#[inline]
pub fn reduce_row<S: Scalar>(
    prev: Row<S>,
    cur: Row<S>,
    next: Row<S>,
    row_index: usize,
) -> Result<Row<S>> {
    if prev.b == S::ZERO || next.b == S::ZERO {
        return Err(TridiagError::ZeroPivot { row: row_index });
    }
    let k1 = cur.a / prev.b;
    let k2 = cur.c / next.b;
    Ok(Row {
        a: -(prev.a * k1),
        b: cur.b - prev.c * k1 - next.a * k2,
        c: -(next.c * k2),
        d: cur.d - prev.d * k1 - next.d * k2,
    })
}

/// Solve `A x = d` by cyclic reduction.
pub fn solve<S: Scalar>(system: &TridiagonalSystem<S>) -> Result<Vec<S>> {
    let n = system.len();
    let rows: Vec<Row<S>> = (0..n).map(|i| Row::from_system(system, i)).collect();
    let mut x = vec![S::ZERO; n];
    solve_level(&rows, &mut x)?;
    Ok(x)
}

/// Recursive solve of one CR level over `rows`, writing solutions into
/// `x` (same length).
fn solve_level<S: Scalar>(rows: &[Row<S>], x: &mut [S]) -> Result<()> {
    let n = rows.len();
    match n {
        0 => return Err(TridiagError::EmptySystem),
        1 => {
            if rows[0].b == S::ZERO {
                return Err(TridiagError::ZeroPivot { row: 0 });
            }
            x[0] = rows[0].d / rows[0].b;
            return Ok(());
        }
        2 => {
            // Direct 2x2 solve: [b0 c0; a1 b1] (x0,x1) = (d0,d1).
            let det = rows[0].b * rows[1].b - rows[0].c * rows[1].a;
            if det == S::ZERO {
                return Err(TridiagError::ZeroPivot { row: 0 });
            }
            x[0] = (rows[0].d * rows[1].b - rows[0].c * rows[1].d) / det;
            x[1] = (rows[1].d * rows[0].b - rows[1].a * rows[0].d) / det;
            return Ok(());
        }
        _ => {}
    }

    // Forward reduction: odd-indexed rows are rewritten in terms of
    // their even neighbours and survive to the next (half-size) level.
    let odd_count = n / 2;
    let mut next_rows = Vec::with_capacity(odd_count);
    for j in 0..odd_count {
        let i = 2 * j + 1;
        let prev = rows[i - 1];
        let cur = rows[i];
        let next = if i + 1 < n { rows[i + 1] } else { Row::identity() };
        next_rows.push(reduce_row(prev, cur, next, i)?);
    }

    let mut sub_x = vec![S::ZERO; odd_count];
    solve_level(&next_rows, &mut sub_x)?;
    for (j, &v) in sub_x.iter().enumerate() {
        x[2 * j + 1] = v;
    }

    // Backward substitution (Eq. 7) for the even rows using the solved
    // odd neighbours: x_i = (d_i − a_i x_{i−1} − c_i x_{i+1}) / b_i.
    for i in (0..n).step_by(2) {
        let left = if i > 0 { x[i - 1] } else { S::ZERO };
        let right = if i + 1 < n { x[i + 1] } else { S::ZERO };
        if rows[i].b == S::ZERO {
            return Err(TridiagError::ZeroPivot { row: i });
        }
        x[i] = (rows[i].d - rows[i].a * left - rows[i].c * right) / rows[i].b;
    }
    Ok(())
}

/// Parallel elimination steps CR needs for `n` unknowns: `2·log2(n) + 1`
/// (Section II-A-2). `n` is rounded up to the next power of two, matching
/// how a lockstep GPU implementation pads.
pub fn elimination_steps(n: usize) -> usize {
    if n <= 1 {
        1
    } else {
        2 * (usize::BITS - (n - 1).leading_zeros()) as usize + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::dominant_random;
    use crate::thomas;

    #[test]
    fn matches_thomas_on_powers_of_two() {
        for n in [2usize, 4, 8, 64, 256, 1024] {
            let s = dominant_random::<f64>(n, 42 + n as u64);
            let xt = thomas::solve_typed(&s).unwrap();
            let xc = solve(&s).unwrap();
            for i in 0..n {
                assert!(
                    (xt[i] - xc[i]).abs() < 1e-9,
                    "n={n} row {i}: thomas {} vs cr {}",
                    xt[i],
                    xc[i]
                );
            }
        }
    }

    #[test]
    fn matches_thomas_on_awkward_sizes() {
        for n in [1usize, 3, 5, 6, 7, 9, 100, 1000, 1023, 1025] {
            let s = dominant_random::<f64>(n, 7 + n as u64);
            let xt = thomas::solve_typed(&s).unwrap();
            let xc = solve(&s).unwrap();
            for i in 0..n {
                assert!((xt[i] - xc[i]).abs() < 1e-8, "n={n} row {i}");
            }
        }
    }

    #[test]
    fn paper_fig1_example_shape() {
        // 4x4: one forward reduction leaves a 2x2 of the odd rows (e2, e4
        // in the paper's 1-based notation), which the base case solves.
        let s = dominant_random::<f64>(4, 9);
        let x = solve(&s).unwrap();
        assert!(s.relative_residual(&x).unwrap() < 1e-12);
    }

    #[test]
    fn elimination_steps_formula() {
        assert_eq!(elimination_steps(1), 1);
        assert_eq!(elimination_steps(2), 3);
        assert_eq!(elimination_steps(8), 7); // 2*3+1
        assert_eq!(elimination_steps(512), 19); // 2*9+1
        assert_eq!(elimination_steps(9), 2 * 4 + 1); // rounds up to 16
    }

    #[test]
    fn zero_pivot_propagates() {
        let s = crate::system::TridiagonalSystem::new(
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert!(solve(&s).is_err());
    }

    #[test]
    fn f32_accuracy() {
        let s = dominant_random::<f32>(512, 3);
        let x = solve(&s).unwrap();
        assert!(s.relative_residual(&x).unwrap() < 1e-3);
    }
}
