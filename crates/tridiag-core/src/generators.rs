//! Workload generators.
//!
//! The paper benchmarks on synthetic systems over "various combinations
//! of number of systems and system sizes" (Section IV). These builders
//! produce the system families used by the figure harness, the examples
//! and the tests. All random generators are seeded and deterministic.

use crate::batch::SystemBatch;
use crate::scalar::Scalar;
use crate::system::TridiagonalSystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A strictly diagonally dominant random system: off-diagonals uniform
/// in `[-1, 1]`, diagonal `|a| + |c| + margin` with margin uniform in
/// `[0.5, 1.5]`, RHS uniform in `[-1, 1]`. Diagonal dominance makes the
/// pivot-free eliminations of Thomas/CR/PCR unconditionally stable — the
/// standard benchmark family for GPU tridiagonal solvers.
pub fn dominant_random<S: Scalar>(n: usize, seed: u64) -> TridiagonalSystem<S> {
    let mut rng = StdRng::seed_from_u64(seed);
    dominant_random_with(n, &mut rng)
}

/// As [`dominant_random`], drawing from a caller-provided RNG so batches
/// can share one seeded stream.
pub fn dominant_random_with<S: Scalar>(n: usize, rng: &mut StdRng) -> TridiagonalSystem<S> {
    assert!(n >= 1, "generator requires n >= 1");
    let mut lower = Vec::with_capacity(n);
    let mut diag = Vec::with_capacity(n);
    let mut upper = Vec::with_capacity(n);
    let mut rhs = Vec::with_capacity(n);
    for i in 0..n {
        let a: f64 = if i == 0 { 0.0 } else { rng.gen_range(-1.0..1.0) };
        let c: f64 = if i + 1 == n { 0.0 } else { rng.gen_range(-1.0..1.0) };
        let margin: f64 = rng.gen_range(0.5..1.5);
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        let b = sign * (a.abs() + c.abs() + margin);
        lower.push(S::from_f64(a));
        diag.push(S::from_f64(b));
        upper.push(S::from_f64(c));
        rhs.push(S::from_f64(rng.gen_range(-1.0..1.0)));
    }
    TridiagonalSystem::new(lower, diag, upper, rhs).expect("generator invariants")
}

/// The 1-D Poisson (second difference) operator `[-1, 2, -1]` with
/// Dirichlet boundaries and a supplied forcing vector. Weakly diagonally
/// dominant; the classic PDE-solver workload (\[6\] in the paper).
pub fn poisson_1d<S: Scalar>(forcing: &[S]) -> TridiagonalSystem<S> {
    let n = forcing.len();
    assert!(n >= 1);
    let lower = vec![S::from_f64(-1.0); n];
    let diag = vec![S::from_f64(2.0); n];
    let upper = vec![S::from_f64(-1.0); n];
    TridiagonalSystem::new(lower, diag, upper, forcing.to_vec()).expect("poisson invariants")
}

/// A Toeplitz system with constant stencil `(a, b, c)` and given RHS.
pub fn toeplitz<S: Scalar>(a: S, b: S, c: S, rhs: Vec<S>) -> TridiagonalSystem<S> {
    let n = rhs.len();
    assert!(n >= 1);
    TridiagonalSystem::new(vec![a; n], vec![b; n], vec![c; n], rhs).expect("toeplitz invariants")
}

/// The natural cubic-spline second-derivative system for `n + 1` knots
/// with uniform spacing `h`: interior rows `(h, 4h, h)`, RHS given by
/// divided differences of the sample values (\[8\] in the paper's intro).
///
/// Returns the `(n − 1)`-unknown interior system; the natural boundary
/// conditions pin the end second-derivatives at zero.
pub fn cubic_spline_moments<S: Scalar>(values: &[S], h: f64) -> TridiagonalSystem<S> {
    let n = values.len();
    assert!(n >= 3, "spline needs at least 3 knots");
    let m = n - 2;
    let hs = S::from_f64(h);
    let mut rhs = Vec::with_capacity(m);
    for i in 1..n - 1 {
        // 6 * (y[i+1] - 2 y[i] + y[i-1]) / h
        let dd = (values[i + 1] - values[i] - values[i] + values[i - 1]) / hs;
        rhs.push(S::from_f64(6.0) * dd);
    }
    TridiagonalSystem::new(
        vec![hs; m],
        vec![S::from_f64(4.0 * h); m],
        vec![hs; m],
        rhs,
    )
    .expect("spline invariants")
}

/// A batch of `m` independent diagonally dominant random systems of
/// uniform size `n` — the paper's benchmark input "(M, N)".
pub fn random_batch<S: Scalar>(m: usize, n: usize, seed: u64) -> SystemBatch<S> {
    let mut rng = StdRng::seed_from_u64(seed);
    let systems: Vec<TridiagonalSystem<S>> =
        (0..m).map(|_| dominant_random_with(n, &mut rng)).collect();
    SystemBatch::from_systems(systems).expect("uniform by construction")
}

/// A *nearly singular* system for failure-injection tests: diagonally
/// dominant except one row where the diagonal is `epsilon`-sized.
pub fn near_singular<S: Scalar>(n: usize, bad_row: usize, eps: f64, seed: u64) -> TridiagonalSystem<S> {
    assert!(bad_row < n);
    let s = dominant_random::<S>(n, seed);
    let (mut a, mut b, c, d) = s.into_parts();
    b[bad_row] = S::from_f64(eps);
    if bad_row > 0 {
        a[bad_row] = S::ONE;
    }
    TridiagonalSystem::new(a, b, c, d).expect("lengths preserved")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thomas;

    #[test]
    fn dominant_random_is_dominant_and_deterministic() {
        for n in [1usize, 2, 17, 333] {
            let s = dominant_random::<f64>(n, 5);
            assert!(s.is_diagonally_dominant(), "n={n}");
            let s2 = dominant_random::<f64>(n, 5);
            assert_eq!(s.diag(), s2.diag());
            assert_eq!(s.rhs(), s2.rhs());
        }
        let s3 = dominant_random::<f64>(17, 6);
        assert_ne!(s3.diag(), dominant_random::<f64>(17, 5).diag());
    }

    #[test]
    fn poisson_solves_to_expected_parabola() {
        // -u'' = 2 with u(0)=u(L)=0 discretised: u_i = x(L-x) has second
        // difference 2h^2 everywhere.
        let n = 63;
        let h = 1.0 / (n as f64 + 1.0);
        let f = vec![2.0 * h * h; n];
        let s = poisson_1d::<f64>(&f);
        let x = thomas::solve_typed(&s).unwrap();
        for i in 0..n {
            let xi = (i as f64 + 1.0) * h;
            let exact = xi * (1.0 - xi);
            assert!((x[i] - exact).abs() < 1e-10, "i={i}: {} vs {exact}", x[i]);
        }
    }

    #[test]
    fn toeplitz_shape() {
        let s = toeplitz(1.0f64, -4.0, 2.0, vec![1.0; 5]);
        assert_eq!(s.diag(), &[-4.0; 5]);
        assert_eq!(s.lower()[0], 0.0); // boundary convention applied
        assert_eq!(s.lower()[1], 1.0);
        assert_eq!(s.upper()[4], 0.0);
    }

    #[test]
    fn spline_of_parabola_recovers_constant_second_derivative() {
        // y = t^2 has second derivative 2 everywhere; the natural-spline
        // moment system's interior solution approaches 2 away from the
        // pinned (zero) boundary moments.
        let n = 41;
        let h = 0.25;
        let values: Vec<f64> = (0..n).map(|i| (i as f64 * h).powi(2)).collect();
        let s = cubic_spline_moments(&values, h);
        let m = thomas::solve_typed(&s).unwrap();
        let mid = m[m.len() / 2];
        assert!((mid - 2.0).abs() < 1e-6, "middle moment {mid}");
    }

    #[test]
    fn random_batch_is_uniform() {
        let b = random_batch::<f64>(4, 32, 9);
        assert_eq!(b.num_systems(), 4);
        assert_eq!(b.system_len(), 32);
    }

    #[test]
    fn near_singular_has_tiny_pivot() {
        let s = near_singular::<f64>(16, 7, 1e-300, 3);
        assert!(!s.is_diagonally_dominant());
        assert_eq!(s.diag()[7], 1e-300);
    }
}
