//! The generalised buffered sliding window — the paper's future work.
//!
//! Section VI: "The buffered sliding window approach can also be
//! applied to other types of divide-and-conquer type algorithms. Future
//! work includes further developing the approach into a generalized
//! strategy…" This module is that generalisation: a streaming `k`-level
//! cascade over **any** 3-point stencil
//!
//! ```text
//! level_j[i] = combine(level_{j−1}[i − 2^{j−1}],
//!              level_{j−1}[i],
//!              level_{j−1}[i + 2^{j−1}])
//! ```
//!
//! computed with `O(k · 2^k)` resident state regardless of stream
//! length, each intermediate value computed exactly once — exactly the
//! dependency-caching idea of Section III-A, abstracted from PCR.
//!
//! Two instances ship here:
//! - [`DilationOp`] — morphological dilation (running maximum) of
//!   radius `2^k − 1` in `k` doubling levels, the classic log-depth
//!   van Herk-style trick;
//! - [`SmoothingOp`] — iterated binomial smoothing with doubling
//!   spans (a log-depth approximation cascade).
//!
//! (PCR itself is the third instance, but keeps its dedicated
//! implementation in [`crate::sliding_window`] because it needs the
//! identity-row boundary semantics and exact-equality guarantees.)

use crate::error::{Result, TridiagError};
use std::collections::VecDeque;

/// A 3-point stencil combinable by the cascade.
pub trait StencilOp {
    /// Element type flowing through the cascade.
    type Elem: Copy;
    /// Value representing positions outside the stream.
    fn boundary(&self) -> Self::Elem;
    /// Combine `(left, centre, right)` at doubling distance.
    fn combine(&self, left: Self::Elem, centre: Self::Elem, right: Self::Elem) -> Self::Elem;
}

/// Morphological dilation: running maximum over radius `2^k − 1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DilationOp;

impl StencilOp for DilationOp {
    type Elem = f64;
    fn boundary(&self) -> f64 {
        f64::NEG_INFINITY
    }
    fn combine(&self, l: f64, c: f64, r: f64) -> f64 {
        l.max(c).max(r)
    }
}

/// Iterated three-point binomial smoothing with doubling spans.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmoothingOp;

impl StencilOp for SmoothingOp {
    type Elem = f64;
    fn boundary(&self) -> f64 {
        0.0
    }
    fn combine(&self, l: f64, c: f64, r: f64) -> f64 {
        0.25 * l + 0.5 * c + 0.25 * r
    }
}

struct Level<T> {
    ring: VecDeque<T>,
    frontier: isize,
    capacity: usize,
}

impl<T: Copy> Level<T> {
    fn get(&self, pos: isize) -> T {
        let oldest = self.frontier - self.ring.len() as isize;
        debug_assert!(pos >= oldest && pos < self.frontier, "window underflow");
        self.ring[(pos - oldest) as usize]
    }
    fn push(&mut self, v: T) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(v);
        self.frontier += 1;
    }
}

/// A streaming k-level cascade over an arbitrary [`StencilOp`] — the
/// generalised buffered sliding window. Feed the stream in order; each
/// fully-cascaded output emerges `2^k − 1` positions behind the input.
pub struct StreamingStencil<Op: StencilOp> {
    op: Op,
    k: u32,
    n: usize,
    levels: Vec<Level<Op::Elem>>,
    in_pos: isize,
    out: Vec<Op::Elem>,
}

impl<Op: StencilOp> StreamingStencil<Op> {
    /// Cascade of `k` levels over a stream of known length `n`.
    pub fn new(op: Op, n: usize, k: u32) -> Result<Self> {
        if n == 0 {
            return Err(TridiagError::EmptySystem);
        }
        if k >= 31 {
            return Err(TridiagError::InvalidConfig(format!(
                "{k} cascade levels is beyond any practical window"
            )));
        }
        let boundary = op.boundary();
        let mut levels = Vec::with_capacity(k as usize + 1);
        for j in 0..=k {
            let cap = (1usize << (j + 1)) + 1;
            let first_frontier = -((1isize << j) - 1);
            let mut level = Level {
                ring: VecDeque::with_capacity(cap),
                frontier: first_frontier - cap as isize,
                capacity: cap,
            };
            for _ in 0..cap {
                level.push(boundary);
            }
            levels.push(level);
        }
        Ok(Self {
            op,
            k,
            n,
            levels,
            in_pos: 0,
            out: Vec::with_capacity(n),
        })
    }

    /// Resident elements across all levels — `O(2^k)`, stream-length
    /// independent (the whole point).
    pub fn resident(&self) -> usize {
        self.levels.iter().map(|l| l.ring.len()).sum()
    }

    /// Feed the next stream element.
    pub fn push(&mut self, v: Op::Elem) -> Result<()> {
        if self.in_pos >= self.n as isize {
            return Err(TridiagError::IndexOutOfBounds {
                index: self.in_pos as usize,
                len: self.n,
            });
        }
        self.feed(v);
        Ok(())
    }

    /// Flush with boundary values and return the `n` cascaded outputs.
    pub fn finish(mut self) -> Result<Vec<Op::Elem>> {
        if (self.in_pos as usize) < self.n {
            return Err(TridiagError::InvalidConfig(format!(
                "finish() before all elements pushed: {} of {}",
                self.in_pos, self.n
            )));
        }
        let lead = (1isize << self.k) - 1;
        for _ in 0..lead {
            let b = self.op.boundary();
            self.feed(b);
        }
        debug_assert_eq!(self.out.len(), self.n);
        Ok(self.out)
    }

    fn feed(&mut self, v: Op::Elem) {
        self.in_pos += 1;
        self.levels[0].push(v);
        for j in 1..=self.k as usize {
            let stride = 1isize << (j - 1);
            let p = self.levels[j - 1].frontier - 1 - stride;
            let l = self.levels[j - 1].get(p - stride);
            let c = self.levels[j - 1].get(p);
            let r = self.levels[j - 1].get(p + stride);
            let combined = self.op.combine(l, c, r);
            self.levels[j].push(combined);
        }
        let out_pos = self.levels[self.k as usize].frontier - 1;
        if out_pos >= 0 && (out_pos as usize) < self.n {
            let val = self.levels[self.k as usize].get(out_pos);
            self.out.push(val);
        }
    }
}

/// Convenience: run a whole slice through the cascade.
///
/// ```
/// use tridiag_core::streaming::{apply, DilationOp};
/// // Radius-3 running maximum in 2 doubling levels.
/// let y = apply(DilationOp, &[0.0, 9.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0], 2).unwrap();
/// assert_eq!(y[4], 9.0); // the spike spreads 3 positions
/// assert_eq!(y[5], 1.0); // beyond the radius it does not
/// ```
pub fn apply<Op: StencilOp>(op: Op, data: &[Op::Elem], k: u32) -> Result<Vec<Op::Elem>> {
    let mut s = StreamingStencil::new(op, data.len(), k)?;
    for &v in data {
        s.push(v)?;
    }
    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_force_dilate(x: &[f64], radius: usize) -> Vec<f64> {
        (0..x.len())
            .map(|i| {
                let lo = i.saturating_sub(radius);
                let hi = (i + radius + 1).min(x.len());
                x[lo..hi].iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            })
            .collect()
    }

    #[test]
    fn dilation_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(7);
        for (n, k) in [(10usize, 1u32), (100, 3), (257, 4), (1000, 5)] {
            let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
            let fast = apply(DilationOp, &x, k).unwrap();
            let slow = brute_force_dilate(&x, (1 << k) - 1);
            assert_eq!(fast, slow, "n={n} k={k}");
        }
    }

    #[test]
    fn resident_state_is_stream_length_independent() {
        let k = 6u32;
        let short = StreamingStencil::new(DilationOp, 200, k).unwrap();
        let long = StreamingStencil::new(DilationOp, 2_000_000, k).unwrap();
        assert_eq!(short.resident(), long.resident());
        // Bound: sum of 2^{j+1}+1 over levels.
        let bound: usize = (0..=k).map(|j| (1usize << (j + 1)) + 1).sum();
        assert!(long.resident() <= bound);
    }

    #[test]
    fn smoothing_preserves_mean_in_the_interior() {
        // A constant signal is a fixed point away from the boundary.
        let n = 64;
        let x = vec![3.5f64; n];
        let y = apply(SmoothingOp, &x, 3).unwrap();
        let radius = (1 << 3) - 1;
        for i in radius..n - radius {
            assert!((y[i] - 3.5).abs() < 1e-12, "i={i}: {}", y[i]);
        }
        // Boundary taper: zero padding pulls edges down.
        assert!(y[0] < 3.5);
    }

    #[test]
    fn smoothing_reduces_oscillation() {
        let n = 256;
        let x: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let y = apply(SmoothingOp, &x, 1).unwrap();
        // One binomial level annihilates the Nyquist mode (interior).
        for i in 2..n - 2 {
            assert!(y[i].abs() < 1e-12, "i={i}: {}", y[i]);
        }
    }

    #[test]
    fn chunked_feeding_is_invisible() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 300;
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let whole = apply(DilationOp, &x, 4).unwrap();
        let mut s = StreamingStencil::new(DilationOp, n, 4).unwrap();
        for chunk in x.chunks(7) {
            for &v in chunk {
                s.push(v).unwrap();
            }
        }
        assert_eq!(s.finish().unwrap(), whole);
    }

    #[test]
    fn validation() {
        assert!(StreamingStencil::new(DilationOp, 0, 2).is_err());
        assert!(StreamingStencil::new(DilationOp, 8, 40).is_err());
        let mut s = StreamingStencil::new(DilationOp, 2, 1).unwrap();
        s.push(1.0).unwrap();
        let early = StreamingStencil::new(DilationOp, 2, 1).unwrap();
        assert!(early.finish().is_err());
        s.push(2.0).unwrap();
        assert!(s.push(3.0).is_err());
    }
}
