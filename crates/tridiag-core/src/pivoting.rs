//! Partial-pivoting LU for tridiagonal systems, and a robust
//! auto-dispatching solve.
//!
//! Everything the paper accelerates is **pivot-free** — valid for the
//! diagonally dominant systems its applications produce, and the reason
//! the GPU algorithms decompose so cleanly. A production library still
//! needs a safe path for everything else: this module implements the
//! LAPACK `dgttrf`-style elimination with row partial pivoting (which
//! introduces a *second* super-diagonal as rows swap) and
//! [`solve_robust`], which routes dominant systems to the fast
//! pivot-free path and the rest here.

use crate::condition::dominance_margin;
use crate::error::{Result, TridiagError};
use crate::scalar::Scalar;
use crate::system::TridiagonalSystem;
use crate::thomas;

/// LU factorisation of a tridiagonal matrix with row partial pivoting
/// (`dgttrf` layout: two upper diagonals appear after swapping).
#[derive(Debug, Clone, PartialEq)]
pub struct PivotedLu<S: Scalar> {
    /// Elimination multipliers `l[i]` applied to row `i`.
    l: Vec<S>,
    /// Main diagonal of `U`.
    u0: Vec<S>,
    /// First super-diagonal of `U`.
    u1: Vec<S>,
    /// Second super-diagonal of `U` (created by row swaps).
    u2: Vec<S>,
    /// `swapped[i]` — whether rows `i` and `i+1` were exchanged at
    /// elimination step `i`.
    swapped: Vec<bool>,
}

impl<S: Scalar> PivotedLu<S> {
    /// Factor the matrix of `system` (RHS ignored).
    ///
    /// Never fails on a merely *indefinite* matrix; only an exactly
    /// singular leading structure produces [`TridiagError::ZeroPivot`].
    pub fn new(system: &TridiagonalSystem<S>) -> Result<Self> {
        let (a, b, c, _) = system.parts();
        let n = system.len();
        // Working copies of the active band: d0 = current diagonal entry
        // of the pivot row, d1/d2 its two supers; sub = subdiagonal entry
        // below the pivot.
        let mut u0 = b.to_vec();
        let mut u1 = c.to_vec(); // u1[i] couples row i to i+1
        let mut u2 = vec![S::ZERO; n];
        let mut l = vec![S::ZERO; n];
        let mut swapped = vec![false; n];

        for i in 0..n.saturating_sub(1) {
            let sub = a[i + 1]; // entry (i+1, i) before elimination
            if sub.abs() > u0[i].abs() {
                // Swap rows i and i+1 for the larger pivot.
                swapped[i] = true;
                let (p0, p1) = (u0[i], u1[i]);
                // Row i+1 becomes the pivot row: (sub, u0[i+1], u1[i+1]).
                u0[i] = sub;
                u1[i] = u0[i + 1];
                u2[i] = u1[i + 1];
                // The old row i becomes the eliminated row.
                if u0[i] == S::ZERO {
                    return Err(TridiagError::ZeroPivot { row: i });
                }
                let m = p0 / u0[i];
                l[i + 1] = m;
                u0[i + 1] = p1 - m * u1[i];
                u1[i + 1] = -(m * u2[i]); // old row i had no 2nd super
            } else {
                if u0[i] == S::ZERO {
                    return Err(TridiagError::ZeroPivot { row: i });
                }
                let m = sub / u0[i];
                l[i + 1] = m;
                u0[i + 1] -= m * u1[i];
                // u1[i+1], u2[i] unchanged (u2[i] stays zero).
            }
            if !u0[i + 1].is_finite() {
                return Err(TridiagError::NonFinite { row: i + 1 });
            }
        }
        if u0[n - 1] == S::ZERO {
            return Err(TridiagError::ZeroPivot { row: n - 1 });
        }
        Ok(Self {
            l,
            u0,
            u1,
            u2,
            swapped,
        })
    }

    /// Number of unknowns.
    pub fn len(&self) -> usize {
        self.u0.len()
    }

    /// `true` if empty (cannot occur via the constructor).
    pub fn is_empty(&self) -> bool {
        self.u0.is_empty()
    }

    /// How many row exchanges pivoting performed — 0 means the
    /// pivot-free path would have been identical.
    pub fn swap_count(&self) -> usize {
        self.swapped.iter().filter(|&&s| s).count()
    }

    /// Solve `A x = d`.
    pub fn solve(&self, d: &[S]) -> Result<Vec<S>> {
        let n = self.len();
        if d.len() != n {
            return Err(TridiagError::LengthMismatch {
                expected: n,
                found: d.len(),
                what: "rhs",
            });
        }
        // Forward: apply the same swaps and eliminations to d.
        let mut y = d.to_vec();
        for i in 0..n.saturating_sub(1) {
            if self.swapped[i] {
                y.swap(i, i + 1);
            }
            let yi = y[i];
            y[i + 1] -= self.l[i + 1] * yi;
        }
        // Backward: U has two super-diagonals.
        let mut x = vec![S::ZERO; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            if i + 1 < n {
                acc -= self.u1[i] * x[i + 1];
            }
            if i + 2 < n {
                acc -= self.u2[i] * x[i + 2];
            }
            x[i] = acc / self.u0[i];
            if !x[i].is_finite() {
                return Err(TridiagError::NonFinite { row: i });
            }
        }
        Ok(x)
    }
}

/// Solve with automatic algorithm selection: strictly diagonally
/// dominant systems take the pivot-free Thomas fast path (what the
/// paper's GPU pipeline accelerates); everything else takes the
/// partial-pivoting path. Returns the solution and whether pivoting was
/// used.
/// ```
/// use tridiag_core::pivoting::solve_robust;
/// use tridiag_core::TridiagonalSystem;
/// // Zero diagonal: pivot-free elimination dies, pivoting does not.
/// let s = TridiagonalSystem::new(
///     vec![1.0; 8], vec![0.0; 8], vec![1.0; 8], vec![1.0; 8],
/// ).unwrap();
/// let (x, pivoted) = solve_robust(&s).unwrap();
/// assert!(pivoted);
/// assert!(s.relative_residual(&x).unwrap() < 1e-10);
/// ```
pub fn solve_robust<S: Scalar>(system: &TridiagonalSystem<S>) -> Result<(Vec<S>, bool)> {
    if dominance_margin(system) > 0.0 {
        Ok((thomas::solve_typed(system)?, false))
    } else {
        let lu = PivotedLu::new(system)?;
        Ok((lu.solve(system.rhs())?, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::dominant_random;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random system with NO dominance guarantee — the kind that
    /// breaks pivot-free elimination.
    fn wild(n: usize, seed: u64) -> TridiagonalSystem<S64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = |rng: &mut StdRng| rng.gen_range(-2.0..2.0);
        let lower: Vec<f64> = (0..n).map(|_| g(&mut rng)).collect();
        let diag: Vec<f64> = (0..n).map(|_| g(&mut rng)).collect();
        let upper: Vec<f64> = (0..n).map(|_| g(&mut rng)).collect();
        let rhs: Vec<f64> = (0..n).map(|_| g(&mut rng)).collect();
        TridiagonalSystem::new(lower, diag, upper, rhs).unwrap()
    }
    type S64 = f64;

    #[test]
    fn matches_thomas_on_dominant_systems() {
        for n in [1usize, 2, 33, 500] {
            let s = dominant_random::<f64>(n, n as u64);
            let lu = PivotedLu::new(&s).unwrap();
            let x = lu.solve(s.rhs()).unwrap();
            let xt = thomas::solve_typed(&s).unwrap();
            for i in 0..n {
                assert!((x[i] - xt[i]).abs() < 1e-9 * xt[i].abs().max(1.0), "n={n} row {i}");
            }
        }
    }

    #[test]
    fn solves_wild_systems_thomas_cannot_trust() {
        let mut pivoted_at_least_once = false;
        for seed in 0..40u64 {
            let s = wild(64, seed);
            match PivotedLu::new(&s) {
                Ok(lu) => {
                    if lu.swap_count() > 0 {
                        pivoted_at_least_once = true;
                    }
                    let x = lu.solve(s.rhs()).unwrap();
                    let r = s.relative_residual(&x).unwrap();
                    assert!(r < 1e-7, "seed {seed}: residual {r}");
                }
                Err(TridiagError::ZeroPivot { .. }) => {} // genuinely singular
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(pivoted_at_least_once, "the wild family must exercise swaps");
    }

    #[test]
    fn handles_zero_diagonal_rows() {
        // b = 0 everywhere but strong off-diagonals: pivot-free dies at
        // row 0; pivoting sails through.
        let n = 16;
        let s = TridiagonalSystem::new(
            vec![1.0; n],
            vec![0.0; n],
            vec![1.0; n],
            (0..n).map(|i| i as f64).collect(),
        )
        .unwrap();
        assert!(thomas::solve_typed(&s).is_err());
        let lu = PivotedLu::new(&s).unwrap();
        assert!(lu.swap_count() > 0);
        let x = lu.solve(s.rhs()).unwrap();
        assert!(s.relative_residual(&x).unwrap() < 1e-10);
    }

    #[test]
    fn robust_dispatch_picks_the_right_path() {
        let dom = dominant_random::<f64>(64, 1);
        let (x, pivoted) = solve_robust(&dom).unwrap();
        assert!(!pivoted);
        assert!(dom.relative_residual(&x).unwrap() < 1e-10);

        let mut tough = wild(64, 3);
        // Ensure it's classified as non-dominant.
        tough.rhs_mut()[0] += 0.0;
        let (x2, pivoted2) = solve_robust(&tough).unwrap();
        assert!(pivoted2);
        assert!(tough.relative_residual(&x2).unwrap() < 1e-7);
    }

    #[test]
    fn singular_matrix_reports_zero_pivot() {
        let s = TridiagonalSystem::new(
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert!(matches!(
            PivotedLu::new(&s).unwrap_err(),
            TridiagError::ZeroPivot { .. }
        ));
    }

    #[test]
    fn rhs_length_checked() {
        let s = dominant_random::<f64>(8, 2);
        let lu = PivotedLu::new(&s).unwrap();
        assert!(lu.solve(&[1.0; 7]).is_err());
        assert_eq!(lu.len(), 8);
        assert!(!lu.is_empty());
    }
}
