//! Error types shared by all solvers in this crate.

use std::fmt;

/// Errors produced by tridiagonal solvers and batch containers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TridiagError {
    /// A system of size zero was supplied where at least one unknown is
    /// required.
    EmptySystem,
    /// The diagonal arrays of a system do not have consistent lengths.
    ///
    /// Holds `(expected, found, what)` where `what` names the offending
    /// array (`"lower"`, `"upper"`, `"rhs"`, ...).
    LengthMismatch {
        /// Length the operation required.
        expected: usize,
        /// Length actually supplied.
        found: usize,
        /// Which array was wrong (`"lower"`, `"rhs"`, …).
        what: &'static str,
    },
    /// Elimination encountered a (numerically) zero pivot at the given
    /// row. The paper's algorithms are pivot-free; diagonally dominant
    /// input guarantees this never fires.
    ZeroPivot {
        /// Row at which elimination broke down.
        row: usize,
    },
    /// A non-finite value (NaN/Inf) was produced or supplied at the given
    /// row.
    NonFinite {
        /// Row holding the first NaN/Inf.
        row: usize,
    },
    /// The requested PCR step count would reduce below one equation per
    /// subsystem: `2^k` must not exceed the system size.
    TooManySteps {
        /// Requested PCR step count.
        k: u32,
        /// System size it exceeded.
        n: usize,
    },
    /// A batch operation was given systems of inconsistent sizes where a
    /// uniform size is required (interleaved layout).
    NonUniformBatch {
        /// Size of the first system in the batch.
        first: usize,
        /// Conflicting size encountered later.
        found: usize,
    },
    /// The requested index is out of bounds for this batch.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Container length.
        len: usize,
    },
    /// A solver-specific configuration problem, e.g. a tile size that is
    /// not a multiple of the subsystem count.
    InvalidConfig(String),
}

impl fmt::Display for TridiagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TridiagError::EmptySystem => write!(f, "tridiagonal system has zero unknowns"),
            TridiagError::LengthMismatch {
                expected,
                found,
                what,
            } => write!(
                f,
                "array `{what}` has length {found}, expected {expected}"
            ),
            TridiagError::ZeroPivot { row } => {
                write!(f, "zero pivot encountered at row {row} (system not solvable without pivoting)")
            }
            TridiagError::NonFinite { row } => {
                write!(f, "non-finite value at row {row}")
            }
            TridiagError::TooManySteps { k, n } => write!(
                f,
                "{k} PCR steps would split a {n}-unknown system below one equation per subsystem"
            ),
            TridiagError::NonUniformBatch { first, found } => write!(
                f,
                "batch requires uniform system size, got {found} after {first}"
            ),
            TridiagError::IndexOutOfBounds { index, len } => {
                write!(f, "system index {index} out of bounds for batch of {len}")
            }
            TridiagError::InvalidConfig(msg) => write!(f, "invalid solver configuration: {msg}"),
        }
    }
}

impl std::error::Error for TridiagError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, TridiagError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(TridiagError, &str)> = vec![
            (TridiagError::EmptySystem, "zero unknowns"),
            (
                TridiagError::LengthMismatch {
                    expected: 4,
                    found: 3,
                    what: "lower",
                },
                "`lower`",
            ),
            (TridiagError::ZeroPivot { row: 7 }, "row 7"),
            (TridiagError::NonFinite { row: 2 }, "row 2"),
            (TridiagError::TooManySteps { k: 9, n: 16 }, "9 PCR steps"),
            (
                TridiagError::NonUniformBatch {
                    first: 8,
                    found: 16,
                },
                "uniform",
            ),
            (
                TridiagError::IndexOutOfBounds { index: 5, len: 2 },
                "out of bounds",
            ),
            (
                TridiagError::InvalidConfig("tile".into()),
                "configuration",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "message {msg:?} should contain {needle:?}"
            );
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TridiagError::EmptySystem);
    }
}
