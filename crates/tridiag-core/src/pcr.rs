//! Parallel cyclic reduction (PCR, Section II-A-3, Figs. 3–4) and the
//! **incomplete k-step PCR** that is the front end of the paper's hybrid.
//!
//! Unlike CR, PCR applies the reduction of Eqs. 5–6 to *every* row each
//! step, so after step `t` each row depends only on rows `±2^t` away.
//! One step therefore splits a system into two independent interleaved
//! systems; after `k` steps there are `2^k` independent systems, the
//! `j`-th consisting of rows congruent to `j (mod 2^k)` — in the
//! original row order, i.e. already interleaved in memory exactly the
//! way the p-Thomas stage wants them (Section III-B).
//!
//! Full PCR runs `ceil(log2 n) + 1` steps; `O(n log n)` total work.

use crate::cr::{reduce_row, Row};
use crate::error::{Result, TridiagError};
use crate::scalar::Scalar;
use crate::system::TridiagonalSystem;
use crate::thomas;

/// The outcome of `k` PCR steps on one system: the transformed rows in
/// their original order, plus the stride `2^k` identifying subsystem
/// membership (row `i` belongs to subsystem `i mod stride`).
#[derive(Debug, Clone)]
pub struct ReducedSystem<S: Scalar> {
    rows_a: Vec<S>,
    rows_b: Vec<S>,
    rows_c: Vec<S>,
    rows_d: Vec<S>,
    stride: usize,
}

impl<S: Scalar> ReducedSystem<S> {
    /// Assemble from per-row results (used by the tiled drivers and the
    /// GPU kernels, whose output provably equals [`reduce`]).
    pub fn from_rows(rows: &[Row<S>], stride: usize) -> Self {
        Self {
            rows_a: rows.iter().map(|r| r.a).collect(),
            rows_b: rows.iter().map(|r| r.b).collect(),
            rows_c: rows.iter().map(|r| r.c).collect(),
            rows_d: rows.iter().map(|r| r.d).collect(),
            stride,
        }
    }

    /// Number of rows (unchanged by reduction).
    pub fn len(&self) -> usize {
        self.rows_b.len()
    }

    /// `true` if there are no rows (cannot occur via public constructors).
    pub fn is_empty(&self) -> bool {
        self.rows_b.is_empty()
    }

    /// Subsystem stride `2^k`: rows `j, j+stride, j+2·stride, …` form the
    /// `j`-th independent system.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of independent subsystems (`min(stride, len)`).
    pub fn num_subsystems(&self) -> usize {
        self.stride.min(self.len())
    }

    /// Coefficient arrays in original row order `(a, b, c, d)`.
    pub fn arrays(&self) -> (&[S], &[S], &[S], &[S]) {
        (&self.rows_a, &self.rows_b, &self.rows_c, &self.rows_d)
    }

    /// Materialise subsystem `j` as a standalone tridiagonal system.
    ///
    /// After `k` steps each row's `a`/`c` coefficients couple only to the
    /// rows `±2^k` away, which are exactly its neighbours inside the
    /// gathered subsystem.
    pub fn subsystem(&self, j: usize) -> Result<TridiagonalSystem<S>> {
        if j >= self.num_subsystems() {
            return Err(TridiagError::IndexOutOfBounds {
                index: j,
                len: self.num_subsystems(),
            });
        }
        let idx: Vec<usize> = (j..self.len()).step_by(self.stride).collect();
        let m = idx.len();
        let mut lower = Vec::with_capacity(m);
        let mut diag = Vec::with_capacity(m);
        let mut upper = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        for &i in &idx {
            lower.push(self.rows_a[i]);
            diag.push(self.rows_b[i]);
            upper.push(self.rows_c[i]);
            rhs.push(self.rows_d[i]);
        }
        TridiagonalSystem::new(lower, diag, upper, rhs)
    }

    /// Solve every subsystem with the Thomas algorithm and scatter the
    /// results back to original row order. This is the host reference of
    /// the paper's full hybrid pipeline.
    pub fn solve_subsystems_thomas(&self) -> Result<Vec<S>> {
        let n = self.len();
        let mut x = vec![S::ZERO; n];
        let mut scratch = thomas::ThomasScratch::new(n.div_ceil(self.stride));
        let mut sub_x: Vec<S> = Vec::new();
        for j in 0..self.num_subsystems() {
            let sub = self.subsystem(j)?;
            sub_x.clear();
            sub_x.resize(sub.len(), S::ZERO);
            thomas::solve_into(&sub, &mut sub_x, &mut scratch)?;
            for (t, &v) in sub_x.iter().enumerate() {
                x[j + t * self.stride] = v;
            }
        }
        Ok(x)
    }
}

/// Perform `k` PCR steps on `system`. `k = 0` returns the system
/// unchanged (the hybrid's "skip straight to p-Thomas" case).
///
/// ```
/// use tridiag_core::{generators, pcr, thomas};
/// let s = generators::dominant_random::<f64>(32, 7);
/// let reduced = pcr::reduce(&s, 2).unwrap();
/// assert_eq!(reduced.num_subsystems(), 4);
/// // Solving the independent subsystems reproduces the direct solve.
/// let x = reduced.solve_subsystems_thomas().unwrap();
/// let direct = thomas::solve_typed(&s).unwrap();
/// assert!((x[5] - direct[5]).abs() < 1e-10);
/// ```
///
/// # Errors
/// [`TridiagError::TooManySteps`] if `2^k` exceeds the system size —
/// further steps would leave subsystems with no unknowns to couple.
pub fn reduce<S: Scalar>(system: &TridiagonalSystem<S>, k: u32) -> Result<ReducedSystem<S>> {
    let n = system.len();
    if k > 0 && (1usize << k) > n {
        return Err(TridiagError::TooManySteps { k, n });
    }
    let mut rows: Vec<Row<S>> = (0..n).map(|i| Row::from_system(system, i)).collect();
    let mut next = rows.clone();
    for step in 0..k {
        let stride = 1usize << step;
        pcr_step(&rows, &mut next, stride)?;
        std::mem::swap(&mut rows, &mut next);
    }
    Ok(ReducedSystem {
        rows_a: rows.iter().map(|r| r.a).collect(),
        rows_b: rows.iter().map(|r| r.b).collect(),
        rows_c: rows.iter().map(|r| r.c).collect(),
        rows_d: rows.iter().map(|r| r.d).collect(),
        stride: 1usize << k,
    })
}

/// One lockstep PCR step with neighbour distance `stride`, reading from
/// `src` and writing every row of `dst`.
pub(crate) fn pcr_step<S: Scalar>(src: &[Row<S>], dst: &mut [Row<S>], stride: usize) -> Result<()> {
    let n = src.len();
    debug_assert_eq!(dst.len(), n);
    for i in 0..n {
        let prev = if i >= stride { src[i - stride] } else { Row::identity() };
        let next = if i + stride < n { src[i + stride] } else { Row::identity() };
        dst[i] = reduce_row(prev, src[i], next, i)?;
    }
    Ok(())
}

/// Solve `A x = d` by full PCR: reduce until every row is decoupled,
/// then divide. Runs `ceil(log2 n)` reduction steps.
pub fn solve<S: Scalar>(system: &TridiagonalSystem<S>) -> Result<Vec<S>> {
    let n = system.len();
    if n == 0 {
        return Err(TridiagError::EmptySystem);
    }
    let steps = full_steps(n);
    let mut rows: Vec<Row<S>> = (0..n).map(|i| Row::from_system(system, i)).collect();
    let mut next = rows.clone();
    for step in 0..steps {
        let stride = 1usize << step;
        pcr_step(&rows, &mut next, stride)?;
        std::mem::swap(&mut rows, &mut next);
    }
    rows.iter()
        .enumerate()
        .map(|(i, r)| {
            if r.b == S::ZERO {
                Err(TridiagError::ZeroPivot { row: i })
            } else {
                Ok(r.d / r.b)
            }
        })
        .collect()
}

/// Reduction steps full PCR needs to fully decouple `n` unknowns:
/// `ceil(log2 n)`; each remaining equation then has one unknown.
pub fn full_steps(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Parallel elimination steps of full PCR per the paper: `log2(n) + 1`
/// (the `+1` counts the final trivial divide as a step).
pub fn elimination_steps(n: usize) -> usize {
    full_steps(n) as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::dominant_random;
    use crate::thomas;

    #[test]
    fn full_pcr_matches_thomas() {
        for n in [1usize, 2, 3, 4, 7, 8, 64, 100, 511, 512, 1024] {
            let s = dominant_random::<f64>(n, n as u64);
            let xt = thomas::solve_typed(&s).unwrap();
            let xp = solve(&s).unwrap();
            for i in 0..n {
                assert!((xt[i] - xp[i]).abs() < 1e-8, "n={n} row {i}");
            }
        }
    }

    #[test]
    fn one_step_splits_into_two_independent_systems() {
        // The Fig. 3 example: a 4-unknown system splits into two 2-unknown
        // systems (even rows / odd rows).
        let s = dominant_random::<f64>(4, 5);
        let red = reduce(&s, 1).unwrap();
        assert_eq!(red.stride(), 2);
        assert_eq!(red.num_subsystems(), 2);
        let even = red.subsystem(0).unwrap();
        let odd = red.subsystem(1).unwrap();
        assert_eq!(even.len(), 2);
        assert_eq!(odd.len(), 2);
        // Solving the subsystems independently must reproduce the full
        // solution.
        let x_full = thomas::solve_typed(&s).unwrap();
        let xe = thomas::solve_typed(&even).unwrap();
        let xo = thomas::solve_typed(&odd).unwrap();
        assert!((xe[0] - x_full[0]).abs() < 1e-10);
        assert!((xo[0] - x_full[1]).abs() < 1e-10);
        assert!((xe[1] - x_full[2]).abs() < 1e-10);
        assert!((xo[1] - x_full[3]).abs() < 1e-10);
    }

    #[test]
    fn incomplete_pcr_plus_thomas_equals_direct_solve() {
        for n in [8usize, 60, 512, 1000] {
            for k in 0..=3u32 {
                let s = dominant_random::<f64>(n, 1000 + n as u64 + k as u64);
                let xt = thomas::solve_typed(&s).unwrap();
                let xh = reduce(&s, k).unwrap().solve_subsystems_thomas().unwrap();
                for i in 0..n {
                    assert!(
                        (xt[i] - xh[i]).abs() < 1e-8,
                        "n={n} k={k} row {i}: {} vs {}",
                        xt[i],
                        xh[i]
                    );
                }
            }
        }
    }

    #[test]
    fn zero_steps_is_identity() {
        let s = dominant_random::<f64>(16, 77);
        let red = reduce(&s, 0).unwrap();
        assert_eq!(red.stride(), 1);
        assert_eq!(red.num_subsystems(), 1);
        let sub = red.subsystem(0).unwrap();
        assert_eq!(sub.diag(), s.diag());
        assert_eq!(sub.rhs(), s.rhs());
    }

    #[test]
    fn too_many_steps_rejected() {
        let s = dominant_random::<f64>(8, 1);
        assert!(matches!(
            reduce(&s, 4).unwrap_err(),
            TridiagError::TooManySteps { k: 4, n: 8 }
        ));
        // exactly 2^k == n is allowed: every subsystem has one unknown.
        let red = reduce(&s, 3).unwrap();
        assert_eq!(red.num_subsystems(), 8);
        let x = red.solve_subsystems_thomas().unwrap();
        assert!(s.relative_residual(&x).unwrap() < 1e-10);
    }

    #[test]
    fn subsystem_index_bounds_checked() {
        let s = dominant_random::<f64>(8, 2);
        let red = reduce(&s, 2).unwrap();
        assert!(red.subsystem(3).is_ok());
        assert!(red.subsystem(4).is_err());
    }

    #[test]
    fn step_count_formulas() {
        assert_eq!(full_steps(1), 0);
        assert_eq!(full_steps(2), 1);
        assert_eq!(full_steps(8), 3);
        assert_eq!(full_steps(9), 4);
        assert_eq!(elimination_steps(8), 4); // log2(8)+1
        assert_eq!(elimination_steps(512), 10);
    }

    #[test]
    fn reduced_arrays_are_original_order_interleaved() {
        let s = dominant_random::<f64>(8, 3);
        let red = reduce(&s, 2).unwrap();
        let (_, b, _, d) = red.arrays();
        let sub0 = red.subsystem(0).unwrap();
        // Rows 0 and 4 of the reduced arrays are subsystem 0's rows.
        assert_eq!(sub0.diag()[0], b[0]);
        assert_eq!(sub0.diag()[1], b[4]);
        assert_eq!(sub0.rhs()[1], d[4]);
    }

    #[test]
    fn f32_full_pcr_accuracy() {
        let s = dominant_random::<f32>(1024, 11);
        let x = solve(&s).unwrap();
        assert!(s.relative_residual(&x).unwrap() < 1e-3);
    }
}
