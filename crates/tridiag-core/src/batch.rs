//! Batches of independent systems and their memory layouts.
//!
//! The paper's benchmark input is `(M, N)`: `M` independent systems of
//! `N` unknowns each. How the batch is laid out in (global) memory
//! decides whether the one-thread-per-system p-Thomas stage coalesces:
//!
//! - [`Layout::Contiguous`] — system-major: all rows of system 0, then
//!   all rows of system 1, … Thread `t` reading its row `i` touches
//!   address `t·N + i`: a warp's 32 threads hit addresses `N` apart —
//!   fully *uncoalesced* (32 transactions per access).
//! - [`Layout::Interleaved`] — row-major across systems: row `i` of all
//!   `M` systems is contiguous. Thread `t` reading row `i` touches
//!   `i·M + t`: a warp's threads are adjacent — fully *coalesced*.
//!
//! "Fortunately, PCR naturally produces interleaved results which is a
//! perfect match with p-Thomas" (Section III-B): `k`-step PCR leaves its
//! `2^k` subsystems interleaved in the original array, i.e. already in
//! [`Layout::Interleaved`] with `M' = 2^k·M`.

use crate::error::{Result, TridiagError};
use crate::scalar::Scalar;
use crate::system::TridiagonalSystem;

/// Memory layout of a [`SystemBatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// System-major: element `(sys, row)` lives at `sys * n + row`.
    Contiguous,
    /// Row-major across systems: element `(sys, row)` lives at
    /// `row * m + sys`.
    Interleaved,
}

impl Layout {
    /// Flat index of `(sys, row)` in a batch of `m` systems of `n` rows.
    #[inline(always)]
    pub fn index(self, sys: usize, row: usize, m: usize, n: usize) -> usize {
        match self {
            Layout::Contiguous => sys * n + row,
            Layout::Interleaved => row * m + sys,
        }
    }
}

/// `M` independent tridiagonal systems of uniform size `N`, stored as
/// four flat arrays (`a`, `b`, `c`, `d`) in one of two layouts.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemBatch<S: Scalar> {
    a: Vec<S>,
    b: Vec<S>,
    c: Vec<S>,
    d: Vec<S>,
    m: usize,
    n: usize,
    layout: Layout,
}

impl<S: Scalar> SystemBatch<S> {
    /// Build a batch from individual systems (must all have the same
    /// size). The batch is stored [`Layout::Contiguous`]; convert with
    /// [`SystemBatch::to_layout`] if needed.
    pub fn from_systems(systems: Vec<TridiagonalSystem<S>>) -> Result<Self> {
        if systems.is_empty() {
            return Err(TridiagError::EmptySystem);
        }
        let n = systems[0].len();
        for s in &systems {
            if s.len() != n {
                return Err(TridiagError::NonUniformBatch {
                    first: n,
                    found: s.len(),
                });
            }
        }
        let m = systems.len();
        let mut a = Vec::with_capacity(m * n);
        let mut b = Vec::with_capacity(m * n);
        let mut c = Vec::with_capacity(m * n);
        let mut d = Vec::with_capacity(m * n);
        for s in systems {
            let (sa, sb, sc, sd) = s.into_parts();
            a.extend_from_slice(&sa);
            b.extend_from_slice(&sb);
            c.extend_from_slice(&sc);
            d.extend_from_slice(&sd);
        }
        Ok(Self {
            a,
            b,
            c,
            d,
            m,
            n,
            layout: Layout::Contiguous,
        })
    }

    /// Build directly from flat arrays in the stated layout.
    pub fn from_raw(
        a: Vec<S>,
        b: Vec<S>,
        c: Vec<S>,
        d: Vec<S>,
        m: usize,
        n: usize,
        layout: Layout,
    ) -> Result<Self> {
        if m == 0 || n == 0 {
            return Err(TridiagError::EmptySystem);
        }
        let total = m * n;
        for (arr, what) in [(&a, "lower"), (&b, "diag"), (&c, "upper"), (&d, "rhs")] {
            if arr.len() != total {
                return Err(TridiagError::LengthMismatch {
                    expected: total,
                    found: arr.len(),
                    what,
                });
            }
        }
        Ok(Self {
            a,
            b,
            c,
            d,
            m,
            n,
            layout,
        })
    }

    /// Number of systems `M`.
    #[inline]
    pub fn num_systems(&self) -> usize {
        self.m
    }

    /// Unknowns per system `N`.
    #[inline]
    pub fn system_len(&self) -> usize {
        self.n
    }

    /// Total unknowns `M·N`.
    #[inline]
    pub fn total_len(&self) -> usize {
        self.m * self.n
    }

    /// Current memory layout.
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The four flat coefficient arrays `(a, b, c, d)`.
    pub fn arrays(&self) -> (&[S], &[S], &[S], &[S]) {
        (&self.a, &self.b, &self.c, &self.d)
    }

    /// Flat index of `(sys, row)` under the current layout.
    #[inline(always)]
    pub fn index(&self, sys: usize, row: usize) -> usize {
        self.layout.index(sys, row, self.m, self.n)
    }

    /// Coefficients of `(sys, row)` as `(a, b, c, d)`.
    #[inline]
    pub fn row(&self, sys: usize, row: usize) -> (S, S, S, S) {
        let i = self.index(sys, row);
        (self.a[i], self.b[i], self.c[i], self.d[i])
    }

    /// Extract system `sys` as a standalone [`TridiagonalSystem`].
    pub fn system(&self, sys: usize) -> Result<TridiagonalSystem<S>> {
        if sys >= self.m {
            return Err(TridiagError::IndexOutOfBounds {
                index: sys,
                len: self.m,
            });
        }
        let mut a = Vec::with_capacity(self.n);
        let mut b = Vec::with_capacity(self.n);
        let mut c = Vec::with_capacity(self.n);
        let mut d = Vec::with_capacity(self.n);
        for row in 0..self.n {
            let i = self.index(sys, row);
            a.push(self.a[i]);
            b.push(self.b[i]);
            c.push(self.c[i]);
            d.push(self.d[i]);
        }
        TridiagonalSystem::new(a, b, c, d)
    }

    /// Extract all systems.
    pub fn to_systems(&self) -> Vec<TridiagonalSystem<S>> {
        (0..self.m)
            .map(|s| self.system(s).expect("index in range"))
            .collect()
    }

    /// Return the same batch re-stored in `target` layout (no-op clone if
    /// already there).
    pub fn to_layout(&self, target: Layout) -> Self {
        if self.layout == target {
            return self.clone();
        }
        let total = self.m * self.n;
        let mut out = Self {
            a: vec![S::ZERO; total],
            b: vec![S::ZERO; total],
            c: vec![S::ZERO; total],
            d: vec![S::ZERO; total],
            m: self.m,
            n: self.n,
            layout: target,
        };
        for sys in 0..self.m {
            for row in 0..self.n {
                let src = self.index(sys, row);
                let dst = target.index(sys, row, self.m, self.n);
                out.a[dst] = self.a[src];
                out.b[dst] = self.b[src];
                out.c[dst] = self.c[src];
                out.d[dst] = self.d[src];
            }
        }
        out
    }

    /// Gather a solution vector stored in `layout` order into per-system
    /// solutions (`m` vectors of length `n`).
    pub fn split_solution(&self, x: &[S]) -> Result<Vec<Vec<S>>> {
        if x.len() != self.total_len() {
            return Err(TridiagError::LengthMismatch {
                expected: self.total_len(),
                found: x.len(),
                what: "x",
            });
        }
        let mut out = vec![vec![S::ZERO; self.n]; self.m];
        for sys in 0..self.m {
            for row in 0..self.n {
                out[sys][row] = x[self.index(sys, row)];
            }
        }
        Ok(out)
    }

    /// Max relative residual across all systems for a flat solution `x`
    /// (in this batch's layout).
    pub fn max_relative_residual(&self, x: &[S]) -> Result<f64> {
        let per_system = self.split_solution(x)?;
        let mut worst = 0.0f64;
        for (sys, xs) in per_system.iter().enumerate() {
            let s = self.system(sys)?;
            worst = worst.max(s.relative_residual(xs)?);
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::dominant_random;
    use crate::thomas;

    fn batch(m: usize, n: usize) -> SystemBatch<f64> {
        let systems = (0..m)
            .map(|i| dominant_random::<f64>(n, 100 + i as u64))
            .collect();
        SystemBatch::from_systems(systems).unwrap()
    }

    #[test]
    fn layout_index_formulas() {
        assert_eq!(Layout::Contiguous.index(2, 3, 4, 8), 19);
        assert_eq!(Layout::Interleaved.index(2, 3, 4, 8), 14);
    }

    #[test]
    fn from_systems_rejects_nonuniform() {
        let s1 = dominant_random::<f64>(4, 1);
        let s2 = dominant_random::<f64>(5, 2);
        assert!(matches!(
            SystemBatch::from_systems(vec![s1, s2]).unwrap_err(),
            TridiagError::NonUniformBatch { first: 4, found: 5 }
        ));
        assert!(SystemBatch::<f64>::from_systems(vec![]).is_err());
    }

    #[test]
    fn from_raw_validates_lengths() {
        let err = SystemBatch::<f64>::from_raw(
            vec![0.0; 7],
            vec![0.0; 8],
            vec![0.0; 8],
            vec![0.0; 8],
            2,
            4,
            Layout::Contiguous,
        )
        .unwrap_err();
        assert!(matches!(err, TridiagError::LengthMismatch { what: "lower", .. }));
    }

    #[test]
    fn round_trip_through_layout_conversion() {
        let b = batch(3, 5);
        let inter = b.to_layout(Layout::Interleaved);
        assert_eq!(inter.layout(), Layout::Interleaved);
        let back = inter.to_layout(Layout::Contiguous);
        assert_eq!(back, b);
        // Row accessor agrees across layouts.
        for sys in 0..3 {
            for row in 0..5 {
                assert_eq!(b.row(sys, row), inter.row(sys, row));
            }
        }
    }

    #[test]
    fn interleaved_adjacent_systems_are_adjacent_in_memory() {
        let b = batch(4, 2).to_layout(Layout::Interleaved);
        let (_, bb, _, _) = b.arrays();
        // Row 0 of systems 0..4 occupy the first 4 slots.
        for sys in 0..4 {
            assert_eq!(bb[sys], b.row(sys, 0).1);
        }
    }

    #[test]
    fn extract_system_matches_source() {
        let sys: Vec<_> = (0..3).map(|i| dominant_random::<f64>(6, i)).collect();
        let b = SystemBatch::from_systems(sys.clone()).unwrap();
        for (i, s) in sys.iter().enumerate() {
            assert_eq!(&b.system(i).unwrap(), s);
        }
        assert!(b.system(3).is_err());
    }

    #[test]
    fn split_solution_and_residual() {
        let b = batch(3, 8);
        // Solve each system with Thomas, assemble a flat interleaved
        // solution, check the batch-level residual is tiny.
        let inter = b.to_layout(Layout::Interleaved);
        let mut x = vec![0.0; inter.total_len()];
        for sys in 0..3 {
            let sol = thomas::solve_typed(&inter.system(sys).unwrap()).unwrap();
            for row in 0..8 {
                x[inter.index(sys, row)] = sol[row];
            }
        }
        assert!(inter.max_relative_residual(&x).unwrap() < 1e-12);
        let parts = inter.split_solution(&x).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 8);
        assert!(inter.split_solution(&x[1..]).is_err());
    }

    #[test]
    fn single_system_batch() {
        let b = batch(1, 4);
        assert_eq!(b.num_systems(), 1);
        let i = b.to_layout(Layout::Interleaved);
        // With m=1 both layouts coincide.
        assert_eq!(i.arrays().1, b.arrays().1);
    }
}
