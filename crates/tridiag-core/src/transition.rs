//! Algorithm transition from tiled PCR to p-Thomas (Section III-D).
//!
//! "One single algorithm cannot cope with all combinations of hardware
//! and input sizes" — the hybrid must decide *at runtime* how many PCR
//! steps `k` to run before handing the `2^k · M` subsystems to p-Thomas.
//! Too few steps starve the machine of parallelism; too many inflate the
//! `O(k·n)` PCR work term (Table II).
//!
//! Two decision procedures are provided:
//! - [`TransitionPolicy::Gtx480Heuristic`] — the paper's empirical
//!   Table III, keyed on the number of systems `M`.
//! - [`TransitionPolicy::CostModel`] — minimise the Table II cost for a
//!   machine of parallelism `P` (useful for devices the paper never
//!   measured; "finding proper values for different situations can be
//!   done only once").

use crate::cost_model;

/// How the hybrid picks its PCR step count `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransitionPolicy {
    /// Table III verbatim (tuned on an NVIDIA GTX480).
    #[default]
    Gtx480Heuristic,
    /// Minimise the Table II elimination-step cost for a `parallelism`-
    /// wide machine, searching `k ∈ 0..=k_max`.
    CostModel {
        /// Machine parallelism `P` (resident threads).
        parallelism: u64,
        /// Largest `k` the search may pick.
        k_max: u32,
    },
    /// Always use exactly this `k` (clamped to the system size).
    Fixed(u32),
}

/// Pick the PCR step count for `m` systems of `n` unknowns each.
///
/// The returned `k` always satisfies `2^k <= n`, so the reduction is
/// valid regardless of policy.
pub fn choose_k(policy: TransitionPolicy, m: usize, n: usize) -> u32 {
    let k = match policy {
        TransitionPolicy::Gtx480Heuristic => cost_model::gtx480_heuristic_k(m as u64),
        TransitionPolicy::CostModel { parallelism, k_max } => {
            cost_model::optimal_k(m as u64, n as u64, parallelism, k_max)
        }
        TransitionPolicy::Fixed(k) => k,
    };
    k.min(max_k_for(n))
}

/// Largest valid `k` for an `n`-unknown system (`2^k <= n`).
pub fn max_k_for(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - 1 - n.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_k_bounds() {
        assert_eq!(max_k_for(0), 0);
        assert_eq!(max_k_for(1), 0);
        assert_eq!(max_k_for(2), 1);
        assert_eq!(max_k_for(255), 7);
        assert_eq!(max_k_for(256), 8);
        assert_eq!(max_k_for(257), 8);
    }

    #[test]
    fn heuristic_respects_system_size() {
        // Table III wants k=8 for M=1, but a 16-unknown system caps at 4.
        assert_eq!(choose_k(TransitionPolicy::Gtx480Heuristic, 1, 16), 4);
        assert_eq!(choose_k(TransitionPolicy::Gtx480Heuristic, 1, 1 << 20), 8);
        assert_eq!(choose_k(TransitionPolicy::Gtx480Heuristic, 4096, 512), 0);
    }

    #[test]
    fn fixed_policy_clamped() {
        assert_eq!(choose_k(TransitionPolicy::Fixed(10), 1, 64), 6);
        assert_eq!(choose_k(TransitionPolicy::Fixed(3), 1, 64), 3);
    }

    #[test]
    fn cost_model_matches_paper_direction() {
        let p = TransitionPolicy::CostModel {
            parallelism: 21504, // GTX480 resident threads (15 SMs × 1436+)
            k_max: 10,
        };
        // Few huge systems: deep PCR.
        let k_few = choose_k(p, 1, 2 << 20);
        // Many systems: no PCR at all.
        let k_many = choose_k(p, 1 << 16, 512);
        assert!(k_few >= 5, "k_few = {k_few}");
        assert_eq!(k_many, 0);
        // Monotone hand-off in between.
        let mut last = u32::MAX;
        for m in [1usize, 16, 64, 256, 1024, 4096, 65536] {
            let k = choose_k(p, m, 16384);
            assert!(k <= last, "M={m}: k={k} > previous {last}");
            last = k;
        }
    }

    #[test]
    fn default_policy_is_heuristic() {
        assert_eq!(TransitionPolicy::default(), TransitionPolicy::Gtx480Heuristic);
    }
}
