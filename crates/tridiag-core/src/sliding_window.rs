//! The buffered sliding window (Section III-A, Figs. 8–10, Table I).
//!
//! Naive tiling of k-step PCR re-loads `f(k) = 2^k − 1` halo elements
//! and re-computes `g(k)` intermediate eliminations per tile boundary
//! (Eqs. 8–9) — both grow exponentially in `k`. The paper's fix is to
//! process tiles *sequentially* within a worker and cache every
//! intermediate value that a later tile will need, so nothing is ever
//! loaded or eliminated twice.
//!
//! This module implements that scheme as a streaming cascade:
//!
//! - Level 0 is the raw input rows, fed in order.
//! - Level `j` holds rows after `j` PCR steps. A level-`j` row at
//!   position `i` needs level-`j−1` rows at `i − 2^{j−1}`, `i`,
//!   `i + 2^{j−1}`, so level `j`'s frontier trails level `j−1`'s by
//!   `2^{j−1}` positions; cumulatively the output (level `k`) trails the
//!   input by exactly `f(k)` — the paper's lead-in.
//! - Each level keeps only the trailing rows a future computation can
//!   still reference: `2^j + sub_tile` rows at level `j`. Summed over
//!   levels the *dependency* portion is `Σ 2^{j+1} = 2·f(k)` — the
//!   minimum cache size the paper derives; the shared-memory realisation
//!   in `tridiag-gpu` rounds this up to `3·f(k)` for alignment/padding
//!   (Table I), which [`WindowProperties`] reports.
//!
//! Because out-of-range neighbours are modelled by identity rows at
//! every level (exactly like [`crate::pcr::reduce`]), the cascade
//! reproduces monolithic incomplete PCR **bit for bit** — the property
//! tests assert exact equality, not closeness.

use crate::cost_model;
use crate::cr::{reduce_row, Row};
use crate::error::{Result, TridiagError};
use crate::scalar::Scalar;
use std::collections::VecDeque;

/// Static properties of a buffered sliding window configuration
/// (Table I of the paper), for `k` PCR steps and sub-tile scale `c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowProperties {
    /// Number of PCR steps `k`.
    pub k: u32,
    /// Sub-tile scale factor `c ≥ 1`.
    pub c: usize,
}

impl WindowProperties {
    /// Build and validate the configuration.
    pub fn new(k: u32, c: usize) -> Result<Self> {
        if c == 0 {
            return Err(TridiagError::InvalidConfig(
                "sub-tile scale c must be >= 1".into(),
            ));
        }
        if k >= 31 {
            return Err(TridiagError::InvalidConfig(format!(
                "k = {k} PCR steps is beyond any practical window"
            )));
        }
        Ok(Self { k, c })
    }

    /// Size of a sub-tile: `c · 2^k` rows.
    pub fn sub_tile(&self) -> usize {
        self.c << self.k
    }

    /// Intermediate-results cache: `3 · Σ_{i<k} 2^i = 3·(2^k − 1)`,
    /// bounded by `3·2^k` (Table I row 3).
    pub fn cache_rows(&self) -> usize {
        cost_model::window_cache_size(self.k) as usize
    }

    /// Threads per thread block in the GPU realisation: `2^k`
    /// (Table I row 4) — all threads perform full PCR steps together.
    pub fn threads_per_block(&self) -> usize {
        1 << self.k
    }

    /// Elimination steps each thread performs per sub-tile: `c·k`
    /// (Table I row 5).
    pub fn eliminations_per_thread(&self) -> usize {
        self.c * self.k as usize
    }

    /// Elimination steps per sub-tile: `c·k·2^k` (Table I row 6).
    pub fn eliminations_per_sub_tile(&self) -> usize {
        self.eliminations_per_thread() << self.k
    }

    /// Shared-memory bytes the window occupies for scalar type size
    /// `bytes_per_elem` (4 coefficient arrays per row).
    pub fn shared_bytes(&self, bytes_per_elem: usize) -> usize {
        // cache + one sub-tile of fresh input resident at a time
        (self.cache_rows() + self.sub_tile()) * 4 * bytes_per_elem
    }
}

/// One level's trailing storage: rows at positions
/// `[frontier − len, frontier)`; positions outside `[0, n)` hold
/// identity rows by construction.
#[derive(Debug)]
struct LevelBuffer<S> {
    rows: VecDeque<Row<S>>,
    /// Position one past the newest stored row.
    frontier: isize,
    /// Maximum rows retained.
    capacity: usize,
}

impl<S: Scalar> LevelBuffer<S> {
    fn new(capacity: usize) -> Self {
        Self {
            rows: VecDeque::with_capacity(capacity),
            frontier: 0,
            capacity,
        }
    }

    /// Row at absolute position `pos`. Positions the buffer has dropped
    /// are a logic error (debug assert); positions not yet produced are
    /// also a logic error.
    fn get(&self, pos: isize) -> Row<S> {
        let oldest = self.frontier - self.rows.len() as isize;
        debug_assert!(
            pos >= oldest && pos < self.frontier,
            "window dropped or not-yet-produced position {pos} (have [{oldest}, {})) — \
             capacity miscomputed",
            self.frontier
        );
        self.rows[(pos - oldest) as usize]
    }

    fn push(&mut self, row: Row<S>) {
        if self.rows.len() == self.capacity {
            self.rows.pop_front();
        }
        self.rows.push_back(row);
        self.frontier += 1;
    }
}

/// Counters proving the redundancy claims of Section III-A.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Input rows loaded. A full-range pipeline loads each row exactly
    /// once; a partitioned pipeline additionally loads up to `f(k)` halo
    /// rows per side (the Fig. 11(b) redundancy).
    pub rows_loaded: usize,
    /// Loaded rows lying outside the emit range — the redundant halo
    /// loads a partition boundary costs. Zero for a full-range pipeline.
    pub halo_loads: usize,
    /// Eliminations whose output position lies inside the system —
    /// exactly `k · n` summed over a full-range run, i.e. zero
    /// redundancy; partitioned runs exceed this by the re-computed
    /// lead-in eliminations.
    pub productive_eliminations: usize,
    /// Eliminations at out-of-range (identity) positions from pipeline
    /// lead-in/lead-out; `O(k · f(k))` total, independent of `n`.
    pub flush_eliminations: usize,
    /// Peak rows resident across all level buffers.
    pub peak_resident_rows: usize,
}

impl WindowStats {
    /// Accumulate another pipeline's counters (for partitioned runs).
    pub fn merge(&mut self, other: &WindowStats) {
        self.rows_loaded += other.rows_loaded;
        self.halo_loads += other.halo_loads;
        self.productive_eliminations += other.productive_eliminations;
        self.flush_eliminations += other.flush_eliminations;
        self.peak_resident_rows = self.peak_resident_rows.max(other.peak_resident_rows);
    }
}

/// A streaming k-step PCR pipeline over one system of known length.
///
/// Feed rows in order with [`PcrPipeline::push`]; fully-reduced rows
/// come back in order, trailing the input by `f(k)` positions. After the
/// last input row, call [`PcrPipeline::finish`] to flush.
#[derive(Debug)]
pub struct PcrPipeline<S: Scalar> {
    k: u32,
    /// Total length of the underlying system (identity beyond it).
    n: usize,
    /// Output rows emitted for positions `[emit_lo, emit_hi)`.
    emit_lo: usize,
    emit_hi: usize,
    /// One past the last *real* input position
    /// (`min(n, emit_hi + f(k))`); beyond it `finish` feeds identities.
    in_end: isize,
    /// `levels[j]` stores rows after `j` PCR steps (level 0 = input).
    levels: Vec<LevelBuffer<S>>,
    /// Next input position to accept.
    in_pos: isize,
    /// Completed output rows (level k), positions `emit_lo..`.
    out: Vec<Row<S>>,
    stats: WindowStats,
}

impl<S: Scalar> PcrPipeline<S> {
    /// A pipeline over the whole system: `n` rows, `k` PCR steps.
    pub fn new(n: usize, k: u32) -> Result<Self> {
        Self::with_range(n, k, 0, n)
    }

    /// A pipeline that emits only positions `[emit_lo, emit_hi)` of an
    /// `n`-row system — one partition of the Fig. 11(b) mapping where a
    /// large system is spread over several workers. The partition must
    /// consume `f(k)` extra *halo* rows on each side (counted in
    /// [`WindowStats::halo_loads`]); outputs match the monolithic
    /// reduction exactly because every value in the dependency cone of
    /// the emitted rows is computed from real inputs.
    pub fn with_range(n: usize, k: u32, emit_lo: usize, emit_hi: usize) -> Result<Self> {
        if n == 0 || emit_lo >= emit_hi {
            return Err(TridiagError::EmptySystem);
        }
        if emit_hi > n {
            return Err(TridiagError::IndexOutOfBounds {
                index: emit_hi,
                len: n,
            });
        }
        if k > 0 && (1usize << k) > n {
            return Err(TridiagError::TooManySteps { k, n });
        }
        let lead = cost_model::halo_elements(k) as isize;
        let in_start = (emit_lo as isize - lead).max(0);
        let in_end = ((emit_hi as isize) + lead).min(n as isize);
        let mut levels = Vec::with_capacity(k as usize + 1);
        // Pre-seed each level with identity rows for the positions that
        // precede its first computed row, so the cascade needs no
        // boundary branches. Level j trails level 0 by 2^j − 1 positions
        // (the cumulative lead-in), so its initial frontier sits at
        // `in_start − (2^j − 1)`.
        for j in 0..=k {
            // Level j is read by level j+1 at distance up to 3·2^j − 1
            // behind its frontier; 2^{j+1} + 1 retained rows always
            // suffice for the element-wise cascade.
            let cap = (1usize << (j + 1)) + 1;
            let mut level = LevelBuffer::new(cap);
            let first_frontier = in_start - ((1isize << j) - 1);
            level.frontier = first_frontier - cap as isize;
            for _ in 0..cap {
                level.push(Row::identity());
            }
            debug_assert_eq!(level.frontier, first_frontier);
            levels.push(level);
        }
        Ok(Self {
            k,
            n,
            emit_lo,
            emit_hi,
            in_end,
            levels,
            in_pos: in_start,
            out: Vec::with_capacity(emit_hi - emit_lo),
            stats: WindowStats::default(),
        })
    }

    /// Number of PCR steps.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Absolute position of the next input row [`PcrPipeline::push`]
    /// expects (starts at `emit_lo − f(k)`, clamped to 0).
    pub fn next_input_pos(&self) -> usize {
        self.in_pos as usize
    }

    /// One past the last input position this pipeline will accept.
    pub fn input_end(&self) -> usize {
        self.in_end as usize
    }

    /// Feed the next input row (position [`PcrPipeline::next_input_pos`]).
    /// Rows must be supplied strictly in order.
    pub fn push(&mut self, row: Row<S>) -> Result<()> {
        if self.in_pos >= self.in_end {
            return Err(TridiagError::IndexOutOfBounds {
                index: self.in_pos as usize,
                len: self.in_end as usize,
            });
        }
        self.stats.rows_loaded += 1;
        let pos = self.in_pos as usize;
        if pos < self.emit_lo || pos >= self.emit_hi {
            self.stats.halo_loads += 1;
        }
        self.feed(row)
    }

    /// Flush the pipeline with identity rows (for positions beyond the
    /// end of the system) and return the reduced rows for
    /// `[emit_lo, emit_hi)`, in order, together with the final counters
    /// (the drain itself performs eliminations, so counters read before
    /// `finish` undercount).
    pub fn finish(mut self) -> Result<(Vec<Row<S>>, WindowStats)> {
        if self.in_pos < self.in_end {
            return Err(TridiagError::InvalidConfig(format!(
                "finish() before all rows pushed: at {} of {}",
                self.in_pos, self.in_end
            )));
        }
        // The output trails the input by f(k); drain with identities.
        let lead = cost_model::halo_elements(self.k) as isize;
        let target = self.emit_hi as isize + lead;
        while self.in_pos < target {
            debug_assert!(self.in_pos >= self.n as isize);
            self.feed(Row::identity())?;
        }
        debug_assert_eq!(self.out.len(), self.emit_hi - self.emit_lo);
        Ok((self.out, self.stats))
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> WindowStats {
        self.stats
    }

    /// Core cascade: append `row` at level 0, then let each level
    /// compute the newest position whose dependencies just became
    /// available.
    fn feed(&mut self, row: Row<S>) -> Result<()> {
        let pos = self.in_pos;
        self.in_pos += 1;
        self.levels[0].push(row);
        debug_assert_eq!(self.levels[0].frontier, pos + 1);

        for j in 1..=self.k as usize {
            let stride = 1isize << (j - 1);
            // Level j can now produce position `p = frontier(j-1) - 1 - stride`:
            // its right dependency p + stride is the row just pushed.
            let p = self.levels[j - 1].frontier - 1 - stride;
            let prev = self.levels[j - 1].get(p - stride);
            let cur = self.levels[j - 1].get(p);
            let next = self.levels[j - 1].get(p + stride);
            let in_range = p >= 0 && (p as usize) < self.n;
            let reduced = if in_range {
                self.stats.productive_eliminations += 1;
                reduce_row(prev, cur, next, p as usize)?
            } else {
                self.stats.flush_eliminations += 1;
                debug_assert_eq!(cur, Row::identity());
                Row::identity()
            };
            debug_assert_eq!(self.levels[j].frontier, p);
            self.levels[j].push(reduced);
        }

        // Collect any output row that just completed at the final level.
        let out_pos = self.levels[self.k as usize].frontier - 1;
        if out_pos >= self.emit_lo as isize && out_pos < self.emit_hi as isize {
            let r = self.levels[self.k as usize].get(out_pos);
            debug_assert_eq!(self.out.len(), out_pos as usize - self.emit_lo);
            self.out.push(r);
        }

        let resident: usize = self.levels.iter().map(|l| l.rows.len()).sum();
        self.stats.peak_resident_rows = self.stats.peak_resident_rows.max(resident);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::dominant_random;
    use crate::pcr;

    fn run_pipeline(n: usize, k: u32, seed: u64) -> (Vec<Row<f64>>, WindowStats) {
        let s = dominant_random::<f64>(n, seed);
        let mut pipe = PcrPipeline::new(n, k).unwrap();
        for i in 0..n {
            pipe.push(Row::from_system(&s, i)).unwrap();
        }
        let (rows, stats) = pipe.finish().unwrap();
        (rows, stats)
    }

    #[test]
    fn matches_monolithic_pcr_bit_for_bit() {
        for (n, k) in [(8usize, 1u32), (8, 3), (64, 2), (100, 3), (257, 4), (1024, 5)] {
            let s = dominant_random::<f64>(n, 7 * n as u64 + k as u64);
            let reference = pcr::reduce(&s, k).unwrap();
            let (ra, rb, rc, rd) = reference.arrays();
            let mut pipe = PcrPipeline::new(n, k).unwrap();
            for i in 0..n {
                pipe.push(Row::from_system(&s, i)).unwrap();
            }
            let (rows, _) = pipe.finish().unwrap();
            for i in 0..n {
                // Exact equality: same operations in the same order.
                assert_eq!(rows[i].a, ra[i], "n={n} k={k} a[{i}]");
                assert_eq!(rows[i].b, rb[i], "n={n} k={k} b[{i}]");
                assert_eq!(rows[i].c, rc[i], "n={n} k={k} c[{i}]");
                assert_eq!(rows[i].d, rd[i], "n={n} k={k} d[{i}]");
            }
        }
    }

    #[test]
    fn zero_steps_passthrough() {
        let (rows, stats) = run_pipeline(16, 0, 1);
        assert_eq!(rows.len(), 16);
        assert_eq!(stats.productive_eliminations, 0);
        assert_eq!(stats.rows_loaded, 16);
    }

    #[test]
    fn zero_redundancy_productive_work_is_exactly_k_n() {
        for (n, k) in [(64usize, 1u32), (64, 3), (500, 4), (4096, 6)] {
            let (_, stats) = run_pipeline(n, k, 3);
            assert_eq!(
                stats.productive_eliminations,
                k as usize * n,
                "n={n} k={k}: every in-range elimination happens exactly once"
            );
            assert_eq!(stats.rows_loaded, n, "each row loaded exactly once");
        }
    }

    #[test]
    fn flush_work_is_bounded_independent_of_n() {
        let (_, small) = run_pipeline(64, 4, 5);
        let (_, large) = run_pipeline(4096, 4, 5);
        assert_eq!(
            small.flush_eliminations, large.flush_eliminations,
            "lead-in/out cost must not scale with n"
        );
    }

    #[test]
    fn resident_rows_stay_within_cache_bound() {
        for k in 1..=6u32 {
            let n = 1usize << (k + 4);
            let (_, stats) = run_pipeline(n, k, 11);
            // Each level keeps 2^{j+1}+1 rows: sum_j = 2(2^{k+1}-1) + k+1.
            let bound: usize = (0..=k).map(|j| (1usize << (j + 1)) + 1).sum();
            assert!(
                stats.peak_resident_rows <= bound,
                "k={k}: resident {} > bound {bound}",
                stats.peak_resident_rows
            );
            // And the dependency cache is O(f(k)), nowhere near n.
            assert!(stats.peak_resident_rows < n / 2 + bound);
        }
    }

    #[test]
    fn rejects_overfeeding_and_early_finish() {
        let s = dominant_random::<f64>(4, 1);
        let mut pipe = PcrPipeline::new(4, 1).unwrap();
        for i in 0..4 {
            pipe.push(Row::from_system(&s, i)).unwrap();
        }
        assert!(pipe.push(Row::identity()).is_err());

        let mut pipe2 = PcrPipeline::<f64>::new(4, 1).unwrap();
        pipe2.push(Row::from_system(&s, 0)).unwrap();
        assert!(pipe2.finish().is_err());
    }

    #[test]
    fn constructor_validation() {
        assert!(PcrPipeline::<f64>::new(0, 1).is_err());
        assert!(PcrPipeline::<f64>::new(4, 3).is_err()); // 2^3 > 4
        assert!(PcrPipeline::<f64>::new(4, 2).is_ok());
        assert!(PcrPipeline::<f64>::new(4, 0).is_ok());
    }

    #[test]
    fn table1_properties() {
        let w = WindowProperties::new(2, 1).unwrap();
        assert_eq!(w.sub_tile(), 4);
        assert_eq!(w.cache_rows(), 9); // 3 * (2^2 - 1)
        assert_eq!(w.threads_per_block(), 4);
        assert_eq!(w.eliminations_per_thread(), 2);
        assert_eq!(w.eliminations_per_sub_tile(), 8);

        let w = WindowProperties::new(8, 2).unwrap();
        assert_eq!(w.sub_tile(), 512);
        assert_eq!(w.threads_per_block(), 256);
        assert_eq!(w.eliminations_per_thread(), 16);
        assert_eq!(w.eliminations_per_sub_tile(), 16 * 256);
        assert!(w.cache_rows() <= 3 * 256);

        assert!(WindowProperties::new(3, 0).is_err());
        assert!(WindowProperties::new(40, 1).is_err());
    }

    #[test]
    fn shared_bytes_fits_gtx480_shared_memory_for_paper_configs() {
        // Table III configs must fit in 48 KiB of shared memory in f64.
        for (k, c) in [(8u32, 1usize), (7, 2), (6, 4), (5, 8)] {
            let w = WindowProperties::new(k, c).unwrap();
            assert!(
                w.shared_bytes(8) <= 48 * 1024,
                "k={k} c={c}: {} bytes",
                w.shared_bytes(8)
            );
        }
    }
}
