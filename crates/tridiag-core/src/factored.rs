//! Factor-once / solve-many for constant operators (the `dgttrf` /
//! `dgttrs` split of LAPACK).
//!
//! Time-stepping applications (Crank–Nicolson heat flow, ADI sweeps,
//! option pricing — the paper's motivating workloads) solve with the
//! *same* matrix thousands of times and only the right-hand side
//! changes. The Thomas forward pass factors `A = L·U` implicitly; this
//! module stores that factorisation so each subsequent solve is a pure
//! two-sweep substitution — about half the work and no divisions.

use crate::error::{Result, TridiagError};
use crate::scalar::Scalar;
use crate::system::TridiagonalSystem;

/// The pivot-free LU factorisation of a tridiagonal matrix.
///
/// Stores `l[i] = a_i / u_{i-1}` (the elimination multipliers) and the
/// reciprocal pivots `inv_u[i] = 1 / (b_i − l_i·c_{i−1})`, plus the
/// unchanged super-diagonal. A solve is then one forward sweep
/// (`y_i = d_i − l_i·y_{i−1}`) and one backward sweep
/// (`x_i = (y_i − c_i·x_{i+1})·inv_u_i`) — no divisions in the loop.
#[derive(Debug, Clone, PartialEq)]
pub struct FactoredTridiagonal<S: Scalar> {
    l: Vec<S>,
    inv_u: Vec<S>,
    upper: Vec<S>,
}

impl<S: Scalar> FactoredTridiagonal<S> {
    /// Factor the matrix of `system` (its RHS is ignored).
    ///
    /// ```
    /// use tridiag_core::factored::FactoredTridiagonal;
    /// use tridiag_core::generators;
    /// let s = generators::dominant_random::<f64>(64, 1);
    /// let f = FactoredTridiagonal::new(&s).unwrap();
    /// // Solve many right-hand sides against one factorisation.
    /// for step in 0..3 {
    ///     let d: Vec<f64> = (0..64).map(|i| ((i + step) as f64).cos()).collect();
    ///     let x = f.solve(&d).unwrap();
    ///     assert_eq!(x.len(), 64);
    /// }
    /// ```
    ///
    /// # Errors
    /// [`TridiagError::ZeroPivot`] on breakdown (pivot-free elimination;
    /// diagonally dominant inputs always succeed).
    pub fn new(system: &TridiagonalSystem<S>) -> Result<Self> {
        let (a, b, c, _) = system.parts();
        let n = system.len();
        let mut l = vec![S::ZERO; n];
        let mut inv_u = vec![S::ZERO; n];
        if b[0] == S::ZERO {
            return Err(TridiagError::ZeroPivot { row: 0 });
        }
        inv_u[0] = S::ONE / b[0];
        for i in 1..n {
            l[i] = a[i] * inv_u[i - 1];
            let u = b[i] - l[i] * c[i - 1];
            if u == S::ZERO {
                return Err(TridiagError::ZeroPivot { row: i });
            }
            if !u.is_finite() {
                return Err(TridiagError::NonFinite { row: i });
            }
            inv_u[i] = S::ONE / u;
        }
        Ok(Self {
            l,
            inv_u,
            upper: c.to_vec(),
        })
    }

    /// Number of unknowns.
    pub fn len(&self) -> usize {
        self.l.len()
    }

    /// `true` if the factorisation is empty (cannot occur).
    pub fn is_empty(&self) -> bool {
        self.l.is_empty()
    }

    /// Solve `A x = d` into `x` (both length `n`). `d` and `x` may be
    /// the same buffer via [`FactoredTridiagonal::solve_in_place`].
    pub fn solve_into(&self, d: &[S], x: &mut [S]) -> Result<()> {
        let n = self.len();
        if d.len() != n || x.len() != n {
            return Err(TridiagError::LengthMismatch {
                expected: n,
                found: d.len().min(x.len()),
                what: "rhs",
            });
        }
        // Forward: y = L⁻¹ d (stored into x).
        x[0] = d[0];
        for i in 1..n {
            x[i] = d[i] - self.l[i] * x[i - 1];
        }
        // Backward: x = U⁻¹ y.
        x[n - 1] *= self.inv_u[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = (x[i] - self.upper[i] * x[i + 1]) * self.inv_u[i];
        }
        Ok(())
    }

    /// Solve with `d` given in `x`, overwriting it with the solution.
    pub fn solve_in_place(&self, x: &mut [S]) -> Result<()> {
        let n = self.len();
        if x.len() != n {
            return Err(TridiagError::LengthMismatch {
                expected: n,
                found: x.len(),
                what: "rhs",
            });
        }
        for i in 1..n {
            x[i] -= self.l[i] * x[i - 1];
        }
        x[n - 1] *= self.inv_u[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = (x[i] - self.upper[i] * x[i + 1]) * self.inv_u[i];
        }
        Ok(())
    }

    /// Allocate-and-return convenience solve.
    pub fn solve(&self, d: &[S]) -> Result<Vec<S>> {
        let mut x = vec![S::ZERO; self.len()];
        self.solve_into(d, &mut x)?;
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::dominant_random;
    use crate::thomas;

    #[test]
    fn factored_solve_matches_thomas() {
        for n in [1usize, 2, 17, 256, 2000] {
            let s = dominant_random::<f64>(n, n as u64);
            let f = FactoredTridiagonal::new(&s).unwrap();
            let xf = f.solve(s.rhs()).unwrap();
            let xt = thomas::solve_typed(&s).unwrap();
            for i in 0..n {
                assert!((xf[i] - xt[i]).abs() < 1e-10 * xt[i].abs().max(1.0), "n={n} row {i}");
            }
        }
    }

    #[test]
    fn many_rhs_reuse() {
        let s = dominant_random::<f64>(128, 7);
        let f = FactoredTridiagonal::new(&s).unwrap();
        let mut x = vec![0.0; 128];
        for step in 0..50 {
            let d: Vec<f64> = (0..128).map(|i| ((i + step) as f64).sin()).collect();
            f.solve_into(&d, &mut x).unwrap();
            // Residual against a system sharing the matrix with RHS d.
            let sys = TridiagonalSystem::new(
                s.lower().to_vec(),
                s.diag().to_vec(),
                s.upper().to_vec(),
                d,
            )
            .unwrap();
            assert!(sys.relative_residual(&x).unwrap() < 1e-11, "step {step}");
        }
    }

    #[test]
    fn in_place_matches_out_of_place() {
        let s = dominant_random::<f64>(64, 9);
        let f = FactoredTridiagonal::new(&s).unwrap();
        let out = f.solve(s.rhs()).unwrap();
        let mut inp = s.rhs().to_vec();
        f.solve_in_place(&mut inp).unwrap();
        assert_eq!(out, inp);
    }

    #[test]
    fn zero_pivot_on_factor() {
        let s = TridiagonalSystem::new(
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert!(matches!(
            FactoredTridiagonal::new(&s).unwrap_err(),
            TridiagError::ZeroPivot { row: 0 }
        ));
    }

    #[test]
    fn length_validation() {
        let s = dominant_random::<f64>(8, 1);
        let f = FactoredTridiagonal::new(&s).unwrap();
        assert!(f.solve(&[1.0; 7]).is_err());
        let mut x = vec![0.0; 9];
        assert!(f.solve_in_place(&mut x).is_err());
        assert_eq!(f.len(), 8);
        assert!(!f.is_empty());
    }
}
