//! Conditioning diagnostics for tridiagonal systems.
//!
//! The paper's algorithms are pivot-free, which is only safe on
//! well-conditioned (e.g. diagonally dominant) systems. This module
//! gives users the tools to *check* before they trust a fast solve:
//!
//! - [`infinity_norm`] — `‖A‖_∞` directly from the diagonals;
//! - [`inverse_norm_estimate`] — Higham-style `‖A⁻¹‖_∞` lower-bound
//!   estimation via a few transpose-solve iterations (each is one
//!   Thomas solve — `O(n)`);
//! - [`condition_estimate`] — their product, `κ_∞(A)`;
//! - [`dominance_margin`] — the worst-row diagonal-dominance slack,
//!   the cheap a-priori check.

use crate::error::Result;
use crate::scalar::Scalar;
use crate::system::TridiagonalSystem;
use crate::thomas::{self, ThomasScratch};

/// `‖A‖_∞`: the largest absolute row sum.
pub fn infinity_norm<S: Scalar>(system: &TridiagonalSystem<S>) -> f64 {
    let (a, b, c, _) = system.parts();
    (0..system.len())
        .map(|i| a[i].abs().to_f64() + b[i].abs().to_f64() + c[i].abs().to_f64())
        .fold(0.0, f64::max)
}

/// Worst-row diagonal dominance margin `min_i (|b_i| − |a_i| − |c_i|)`.
/// Positive = strictly dominant (pivot-free elimination safe); the more
/// negative, the more the system needs pivoting that the paper's
/// algorithms (and MKL's `gtsv` alternatives like `dttrfb`) do not do.
pub fn dominance_margin<S: Scalar>(system: &TridiagonalSystem<S>) -> f64 {
    let (a, b, c, _) = system.parts();
    (0..system.len())
        .map(|i| b[i].abs().to_f64() - a[i].abs().to_f64() - c[i].abs().to_f64())
        .fold(f64::INFINITY, f64::min)
}

/// The transposed system (for the norm estimator's `Aᵀ y = w` solves):
/// transposing a tridiagonal matrix swaps the sub/super diagonals.
fn transpose<S: Scalar>(system: &TridiagonalSystem<S>, rhs: Vec<S>) -> Result<TridiagonalSystem<S>> {
    let (a, b, c, _) = system.parts();
    let n = system.len();
    // New lower row i = old upper row i-1; new upper row i = old lower i+1.
    let mut lower = vec![S::ZERO; n];
    let mut upper = vec![S::ZERO; n];
    lower[1..n].copy_from_slice(&c[..n - 1]);
    upper[..n - 1].copy_from_slice(&a[1..n]);
    TridiagonalSystem::new(lower, b.to_vec(), upper, rhs)
}

/// Hager/Higham `‖A⁻¹‖_∞` estimate: a lower bound that is typically
/// within a small factor of the truth, computed from a handful of
/// `O(n)` solves with `A` and `Aᵀ`.
pub fn inverse_norm_estimate<S: Scalar>(system: &TridiagonalSystem<S>) -> Result<f64> {
    let n = system.len();
    let mut scratch = ThomasScratch::new(n);
    let mut x = vec![S::ZERO; n];

    // Start from the uniform vector.
    let mut v: Vec<S> = vec![S::from_f64(1.0 / n as f64); n];
    let mut best = 0.0f64;
    for _ in 0..5 {
        // x = A⁻ᵀ v  (estimates which row of A⁻¹ is largest).
        let t = transpose(system, v.clone())?;
        thomas::solve_into(&t, &mut x, &mut scratch)?;
        // sign vector of x.
        let w: Vec<S> = x
            .iter()
            .map(|&xi| if xi.to_f64() >= 0.0 { S::ONE } else { -S::ONE })
            .collect();
        // y = A⁻¹ w; the estimate is ‖y‖_∞.
        let sys_w = TridiagonalSystem::new(
            system.lower().to_vec(),
            system.diag().to_vec(),
            system.upper().to_vec(),
            w,
        )?;
        thomas::solve_into(&sys_w, &mut x, &mut scratch)?;
        let (norm, arg) = x
            .iter()
            .enumerate()
            .map(|(i, &xi)| (xi.abs().to_f64(), i))
            .fold((0.0, 0usize), |acc, (v, i)| if v > acc.0 { (v, i) } else { acc });
        if norm <= best {
            break;
        }
        best = norm;
        // Next direction: the canonical vector at the maximizing row.
        v = vec![S::ZERO; n];
        v[arg] = S::ONE;
    }
    Ok(best)
}

/// Estimated `κ_∞(A) = ‖A‖_∞ · ‖A⁻¹‖_∞`.
pub fn condition_estimate<S: Scalar>(system: &TridiagonalSystem<S>) -> Result<f64> {
    Ok(infinity_norm(system) * inverse_norm_estimate(system)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{dominant_random, near_singular, poisson_1d};

    #[test]
    fn norm_of_identity_like() {
        let s = TridiagonalSystem::new(
            vec![0.0; 4],
            vec![2.0; 4],
            vec![0.0; 4],
            vec![1.0; 4],
        )
        .unwrap();
        assert_eq!(infinity_norm(&s), 2.0);
        // A = 2I: inverse norm 0.5, condition 1.
        let k = condition_estimate(&s).unwrap();
        assert!((k - 1.0).abs() < 1e-12, "k = {k}");
    }

    #[test]
    fn dominance_margin_signs() {
        assert!(dominance_margin(&dominant_random::<f64>(64, 1)) > 0.0);
        let weak = poisson_1d::<f64>(&[1.0; 8]);
        // -1,2,-1 interior rows: margin exactly 0.
        assert!(dominance_margin(&weak).abs() < 1e-12);
        let bad = near_singular::<f64>(16, 7, 1e-8, 2);
        assert!(dominance_margin(&bad) < 0.0);
    }

    #[test]
    fn poisson_condition_grows_quadratically() {
        // κ(Poisson_n) ≈ (2/π)² (n+1)² — the classic result; the
        // estimator must track the n² growth.
        let k64 = condition_estimate(&poisson_1d::<f64>(&vec![1.0; 64])).unwrap();
        let k256 = condition_estimate(&poisson_1d::<f64>(&vec![1.0; 256])).unwrap();
        let growth = k256 / k64;
        assert!(
            (8.0..32.0).contains(&growth),
            "expected ~16x growth for 4x size, got {growth:.1} (k64={k64:.1}, k256={k256:.1})"
        );
        // Absolute ballpark: 4/π²·65² ≈ 1712.
        assert!((500.0..6000.0).contains(&k64), "k64 = {k64}");
    }

    #[test]
    fn near_singular_detected_by_estimator() {
        let healthy = condition_estimate(&dominant_random::<f64>(128, 3)).unwrap();
        assert!(healthy < 100.0, "healthy κ = {healthy}");

        // A genuinely near-singular matrix: the Poisson operator shifted
        // by (almost) its own smallest eigenvalue 4 sin²(π / (2(n+1))).
        let n = 128usize;
        let lam1 = 4.0 * (std::f64::consts::PI / (2.0 * (n as f64 + 1.0))).sin().powi(2);
        let shifted = TridiagonalSystem::new(
            vec![-1.0; n],
            vec![2.0 - lam1 * (1.0 - 1e-9); n],
            vec![-1.0; n],
            vec![1.0; n],
        )
        .unwrap();
        let sick = condition_estimate(&shifted).unwrap();
        assert!(sick > 1e6, "sick κ = {sick}");

        // A tiny *diagonal entry* alone is a dominance failure but not
        // necessarily ill conditioning — the margin check flags it, the
        // condition number stays honest.
        let weak_row = near_singular::<f64>(128, 60, 1e-10, 3);
        assert!(dominance_margin(&weak_row) < 0.0);
    }

    #[test]
    fn transpose_round_trip() {
        let s = dominant_random::<f64>(16, 4);
        let t = transpose(&s, s.rhs().to_vec()).unwrap();
        let tt = transpose(&t, s.rhs().to_vec()).unwrap();
        assert_eq!(tt.lower(), s.lower());
        assert_eq!(tt.upper(), s.upper());
        // Aᵀ really is the transpose: (Aᵀ)_{i,i+1} = A_{i+1,i}.
        assert_eq!(t.upper()[0], s.lower()[1]);
        assert_eq!(t.lower()[1], s.upper()[0]);
    }
}
