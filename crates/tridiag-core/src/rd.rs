//! Recursive doubling (RD, Stone 1973 — reference \[13\] of the paper).
//!
//! RD recasts the Thomas recurrences as parallel prefix computations and
//! evaluates them in `O(log n)` doubling steps:
//!
//! 1. The pivot recurrence `e_i = b_i − a_i c_{i−1} / e_{i−1}` is
//!    linearised by `e_i = p_i / p_{i−1}` where
//!    `p_i = b_i p_{i−1} − a_i c_{i−1} p_{i−2}` — a three-term linear
//!    recurrence evaluated as a prefix product of 2×2 matrices.
//! 2. Forward substitution `y_i = d_i − (a_i/e_{i−1}) y_{i−1}` is a
//!    first-order affine recurrence — prefix of affine maps.
//! 3. Backward substitution `x_i = (y_i − c_i x_{i+1}) / e_i` — another
//!    affine prefix, run in reverse.
//!
//! The raw determinant products `p_i` overflow for large `n`; we store
//! the pair `(p_i, p_{i−1})` (one column of the prefix matrix) and
//! rescale each prefix element freely — the pivot only needs the ratio,
//! which is scale-invariant. This is the classic stabilisation and keeps
//! RD usable at the sizes the paper benchmarks.

use crate::error::{Result, TridiagError};
use crate::scalar::Scalar;
use crate::system::TridiagonalSystem;

/// 2×2 matrix used by the prefix scans.
#[derive(Debug, Clone, Copy)]
struct Mat2<S> {
    m00: S,
    m01: S,
    m10: S,
    m11: S,
}

impl<S: Scalar> Mat2<S> {
    /// `self · rhs`, rescaled so the largest magnitude entry is O(1).
    /// Rescaling is safe everywhere we use prefix matrices because every
    /// consumer takes a ratio of entries of a *single* prefix element.
    #[inline]
    fn mul_scaled(self, rhs: Mat2<S>) -> Mat2<S> {
        let m00 = self.m00 * rhs.m00 + self.m01 * rhs.m10;
        let m01 = self.m00 * rhs.m01 + self.m01 * rhs.m11;
        let m10 = self.m10 * rhs.m00 + self.m11 * rhs.m10;
        let m11 = self.m10 * rhs.m01 + self.m11 * rhs.m11;
        let norm = m00.abs().max(m01.abs()).max(m10.abs()).max(m11.abs());
        if norm > S::ZERO && norm.is_finite() {
            let inv = S::ONE / norm;
            Mat2 {
                m00: m00 * inv,
                m01: m01 * inv,
                m10: m10 * inv,
                m11: m11 * inv,
            }
        } else {
            Mat2 { m00, m01, m10, m11 }
        }
    }
}

/// Inclusive prefix "scan" by recursive doubling (Hillis–Steele): after
/// `ceil(log2 n)` rounds, `data[i] = data[i] ∘ data[i−1] ∘ … ∘ data[0]`.
fn doubling_scan<T: Copy, F: Fn(T, T) -> T>(data: &mut [T], combine: F) {
    let n = data.len();
    let mut stride = 1usize;
    let mut src = data.to_vec();
    while stride < n {
        for i in 0..n {
            data[i] = if i >= stride {
                combine(src[i], src[i - stride])
            } else {
                src[i]
            };
        }
        src.copy_from_slice(data);
        stride <<= 1;
    }
}

/// Solve `A x = d` by recursive doubling.
pub fn solve<S: Scalar>(system: &TridiagonalSystem<S>) -> Result<Vec<S>> {
    let n = system.len();
    if n == 0 {
        return Err(TridiagError::EmptySystem);
    }
    let (a, b, c, d) = system.parts();
    if n == 1 {
        if b[0] == S::ZERO {
            return Err(TridiagError::ZeroPivot { row: 0 });
        }
        return Ok(vec![d[0] / b[0]]);
    }

    // --- Stage 1: pivots via scaled 2x2 prefix products. -------------
    // M_i = [[b_i, -a_i c_{i-1}], [1, 0]], prefix P_i = M_i ... M_0,
    // (p_i, p_{i-1})^T = P_i (1, 0)^T  =>  e_i = p_i / p_{i-1}.
    let mut mats: Vec<Mat2<S>> = (0..n)
        .map(|i| Mat2 {
            m00: b[i],
            m01: if i > 0 { -(a[i] * c[i - 1]) } else { S::ZERO },
            m10: S::ONE,
            m11: S::ZERO,
        })
        .collect();
    doubling_scan(&mut mats, |hi, lo| hi.mul_scaled(lo));
    let mut e = vec![S::ZERO; n];
    for i in 0..n {
        // P_i (1,0)^T = (m00, m10)^T.
        if mats[i].m10 == S::ZERO {
            // p_{i-1} == 0 means leading principal minor vanished.
            if i == 0 {
                // row 0: e_0 = b_0 directly.
                e[0] = b[0];
                if e[0] == S::ZERO {
                    return Err(TridiagError::ZeroPivot { row: 0 });
                }
                continue;
            }
            return Err(TridiagError::ZeroPivot { row: i });
        }
        e[i] = mats[i].m00 / mats[i].m10;
        if e[i] == S::ZERO || !e[i].is_finite() {
            return Err(TridiagError::ZeroPivot { row: i });
        }
    }

    // --- Stage 2: forward substitution y_i = d_i - (a_i/e_{i-1}) y_{i-1}
    // as affine prefix: (alpha, delta) pairs composed left-to-right.
    let mut fwd: Vec<(S, S)> = (0..n)
        .map(|i| {
            if i == 0 {
                (S::ZERO, d[0])
            } else {
                (-(a[i] / e[i - 1]), d[i])
            }
        })
        .collect();
    doubling_scan(&mut fwd, |hi, lo| (hi.0 * lo.0, hi.0 * lo.1 + hi.1));
    let y: Vec<S> = fwd.iter().map(|&(_, v)| v).collect();

    // --- Stage 3: backward substitution x_i = y_i/e_i - (c_i/e_i) x_{i+1}
    // as affine prefix run over reversed indices.
    let mut bwd: Vec<(S, S)> = (0..n)
        .rev()
        .map(|i| {
            let inv = S::ONE / e[i];
            if i + 1 == n {
                (S::ZERO, y[i] * inv)
            } else {
                (-(c[i] * inv), y[i] * inv)
            }
        })
        .collect();
    doubling_scan(&mut bwd, |hi, lo| (hi.0 * lo.0, hi.0 * lo.1 + hi.1));
    let mut x = vec![S::ZERO; n];
    for (r, &(_, v)) in bwd.iter().enumerate() {
        x[n - 1 - r] = v;
        if !v.is_finite() {
            return Err(TridiagError::NonFinite { row: n - 1 - r });
        }
    }
    Ok(x)
}

/// Parallel step count of RD: three doubling scans of `ceil(log2 n)`
/// rounds each.
pub fn elimination_steps(n: usize) -> usize {
    if n <= 1 {
        1
    } else {
        3 * (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{dominant_random, poisson_1d};
    use crate::thomas;

    #[test]
    fn matches_thomas_on_random_dominant() {
        for n in [1usize, 2, 3, 4, 9, 16, 100, 512, 1000] {
            let s = dominant_random::<f64>(n, 11 + n as u64);
            let xt = thomas::solve_typed(&s).unwrap();
            let xr = solve(&s).unwrap();
            for i in 0..n {
                assert!(
                    (xt[i] - xr[i]).abs() < 1e-7,
                    "n={n} row {i}: {} vs {}",
                    xt[i],
                    xr[i]
                );
            }
        }
    }

    #[test]
    fn survives_large_n_without_overflow() {
        // Raw Stone determinants for the Poisson operator grow like
        // (i+1); for random dominant systems they grow exponentially and
        // overflow f64 near n ~ 700 without rescaling.
        let n = 16384;
        let s = dominant_random::<f64>(n, 99);
        let x = solve(&s).unwrap();
        assert!(s.relative_residual(&x).unwrap() < 1e-7);
    }

    #[test]
    fn poisson_accuracy() {
        let n = 255;
        let h = 1.0 / (n as f64 + 1.0);
        let s = poisson_1d::<f64>(&vec![2.0 * h * h; n]);
        let x = solve(&s).unwrap();
        assert!(s.relative_residual(&x).unwrap() < 1e-9);
    }

    #[test]
    fn zero_pivot_detected() {
        let s = TridiagonalSystem::new(
            vec![0.0, 1.0],
            vec![0.0, 3.0],
            vec![1.0, 0.0],
            vec![5.0, 10.0],
        )
        .unwrap();
        assert!(solve(&s).is_err());
    }

    #[test]
    fn step_count() {
        assert_eq!(elimination_steps(1), 1);
        assert_eq!(elimination_steps(8), 9);
        assert_eq!(elimination_steps(512), 27);
    }

    #[test]
    fn doubling_scan_computes_prefix_sums() {
        let mut v = vec![1i64, 2, 3, 4, 5, 6, 7];
        doubling_scan(&mut v, |a, b| a + b);
        assert_eq!(v, vec![1, 3, 6, 10, 15, 21, 28]);
    }
}
