//! Tiled PCR drivers (Section III-A and Fig. 11).
//!
//! Three host-side realisations of k-step PCR over a large system, all
//! producing output **identical** to the monolithic [`crate::pcr::reduce`]
//! but with very different memory/compute redundancy — the heart of the
//! paper's argument:
//!
//! - [`reduce_streamed`] — ONE buffered sliding window streams the whole
//!   system sub-tile by sub-tile (Fig. 11(a)): zero redundant loads,
//!   zero redundant eliminations, `O(f(k))` resident state.
//! - [`reduce_partitioned`] — the system is split across `G` workers,
//!   each streaming its own window (Fig. 11(b)): enables parallelism at
//!   the price of `f(k)` redundant halo loads per internal boundary.
//! - [`reduce_naive_tiled`] — the strawman of Fig. 7: each tile
//!   independently re-loads its `f(k)`-deep halo **and** re-computes the
//!   `g(k)` intermediate eliminations, per tile, per side.
//!
//! The [`TilingStats`] returned by each driver quantify Eqs. 8–9
//! empirically; `crates/bench --bin fig7_redundancy` tabulates them.

use crate::cost_model;
use crate::cr::{reduce_row, Row};
use crate::error::{Result, TridiagError};
use crate::pcr::ReducedSystem;
use crate::scalar::Scalar;
use crate::sliding_window::{PcrPipeline, WindowStats};
use crate::system::TridiagonalSystem;

/// Work/traffic accounting for one tiled reduction run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TilingStats {
    /// Input rows loaded from "global memory" (including re-loads).
    pub rows_loaded: usize,
    /// Rows loaded more than once (halo redundancy, Eq. 8 aggregate).
    pub redundant_loads: usize,
    /// Elimination operations performed.
    pub eliminations: usize,
    /// Eliminations beyond the `k·n` a redundancy-free reduction needs
    /// (Eq. 9 aggregate).
    pub redundant_eliminations: usize,
    /// Number of tiles / partitions processed.
    pub tiles: usize,
}

impl TilingStats {
    fn from_window(n: usize, k: u32, w: &WindowStats, tiles: usize) -> Self {
        let ideal = k as usize * n;
        let elim = w.productive_eliminations + w.flush_eliminations;
        TilingStats {
            rows_loaded: w.rows_loaded,
            redundant_loads: w.rows_loaded.saturating_sub(n),
            eliminations: elim,
            redundant_eliminations: elim.saturating_sub(ideal),
            tiles,
        }
    }
}

/// Stream the whole system through one buffered sliding window,
/// `sub_tile` rows at a time (Fig. 11(a): one worker iterates the
/// window). Output equals `pcr::reduce(system, k)` exactly.
pub fn reduce_streamed<S: Scalar>(
    system: &TridiagonalSystem<S>,
    k: u32,
    sub_tile: usize,
) -> Result<(ReducedSystem<S>, TilingStats)> {
    if sub_tile == 0 {
        return Err(TridiagError::InvalidConfig(
            "sub_tile must be >= 1".into(),
        ));
    }
    let n = system.len();
    let mut pipe = PcrPipeline::new(n, k)?;
    let mut pos = 0usize;
    while pos < n {
        let end = (pos + sub_tile).min(n);
        for i in pos..end {
            pipe.push(Row::from_system(system, i))?;
        }
        pos = end;
    }
    let tiles = n.div_ceil(sub_tile);
    let (rows, wstats) = pipe.finish()?;
    Ok((
        ReducedSystem::from_rows(&rows, 1usize << k),
        TilingStats::from_window(n, k, &wstats, tiles),
    ))
}

/// Split the system into `partitions` contiguous regions, each streamed
/// by its own sliding window (Fig. 11(b): one system mapped onto a group
/// of workers). Each internal boundary costs up to `f(k)` redundant halo
/// loads per side plus the lead-in eliminations — the trade the paper
/// calls out for this configuration. Output equals the monolithic
/// reduction exactly.
pub fn reduce_partitioned<S: Scalar>(
    system: &TridiagonalSystem<S>,
    k: u32,
    partitions: usize,
) -> Result<(ReducedSystem<S>, TilingStats)> {
    let n = system.len();
    if partitions == 0 || partitions > n {
        return Err(TridiagError::InvalidConfig(format!(
            "partitions = {partitions} must be in 1..={n}"
        )));
    }
    let mut rows: Vec<Row<S>> = Vec::with_capacity(n);
    let mut merged = WindowStats::default();
    let base = n / partitions;
    let extra = n % partitions;
    let mut lo = 0usize;
    for g in 0..partitions {
        let len = base + usize::from(g < extra);
        let hi = lo + len;
        let mut pipe = PcrPipeline::with_range(n, k, lo, hi)?;
        let (start, end) = (pipe.next_input_pos(), pipe.input_end());
        for i in start..end {
            pipe.push(Row::from_system(system, i))?;
        }
        let (part_rows, part_stats) = pipe.finish()?;
        merged.merge(&part_stats);
        rows.extend(part_rows);
        lo = hi;
    }
    debug_assert_eq!(rows.len(), n);
    Ok((
        ReducedSystem::from_rows(&rows, 1usize << k),
        TilingStats::from_window(n, k, &merged, partitions),
    ))
}

/// The naive tiling strawman (Fig. 7): every `tile`-row block
/// independently loads its `f(k)`-deep halos and performs a full local
/// k-step reduction, recomputing every intermediate value the
/// neighbouring tiles also compute. Returns exact monolithic output and
/// the (large) redundancy counters.
pub fn reduce_naive_tiled<S: Scalar>(
    system: &TridiagonalSystem<S>,
    k: u32,
    tile: usize,
) -> Result<(ReducedSystem<S>, TilingStats)> {
    let n = system.len();
    if tile == 0 {
        return Err(TridiagError::InvalidConfig("tile must be >= 1".into()));
    }
    if k > 0 && (1usize << k) > n {
        return Err(TridiagError::TooManySteps { k, n });
    }
    let halo = cost_model::halo_elements(k) as usize;
    let mut out: Vec<Row<S>> = Vec::with_capacity(n);
    let mut stats = TilingStats::default();

    let mut lo = 0usize;
    while lo < n {
        let hi = (lo + tile).min(n);
        stats.tiles += 1;
        // Extended range covering the dependency cone of [lo, hi).
        let ext_lo = lo.saturating_sub(halo);
        let ext_hi = (hi + halo).min(n);
        stats.rows_loaded += ext_hi - ext_lo;

        // Local lockstep PCR over the extended range; positions outside
        // [0, n) are identity exactly as in the monolithic algorithm, so
        // rows whose cone is fully covered match it bit for bit.
        let mut cur: Vec<Row<S>> = (ext_lo..ext_hi)
            .map(|i| Row::from_system(system, i))
            .collect();
        let mut next = cur.clone();
        for step in 0..k {
            let stride = 1usize << step;
            for (local, slot) in next.iter_mut().enumerate() {
                let gpos = ext_lo + local;
                let prev = if gpos >= stride && gpos - stride >= ext_lo {
                    cur[local - stride]
                } else if gpos >= stride {
                    // Dependency outside the loaded extension: only rows
                    // outside the emit cone hit this; substitute identity.
                    Row::identity()
                } else {
                    Row::identity()
                };
                let nxt = if gpos + stride < n && local + stride < cur.len() {
                    cur[local + stride]
                } else {
                    Row::identity()
                };
                *slot = reduce_row(prev, cur[local], nxt, gpos)?;
                stats.eliminations += 1;
            }
            std::mem::swap(&mut cur, &mut next);
        }
        out.extend_from_slice(&cur[lo - ext_lo..hi - ext_lo]);
        lo = hi;
    }

    stats.redundant_loads = stats.rows_loaded - n;
    stats.redundant_eliminations = stats.eliminations.saturating_sub(k as usize * n);
    Ok((ReducedSystem::from_rows(&out, 1usize << k), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_model::halo_elements;
    use crate::generators::dominant_random;
    use crate::pcr;

    fn assert_rows_equal(a: &ReducedSystem<f64>, b: &ReducedSystem<f64>, ctx: &str) {
        let (aa, ab, ac, ad) = a.arrays();
        let (ba, bb, bc, bd) = b.arrays();
        assert_eq!(aa.len(), ba.len(), "{ctx}: lengths");
        for i in 0..aa.len() {
            assert_eq!(aa[i], ba[i], "{ctx}: a[{i}]");
            assert_eq!(ab[i], bb[i], "{ctx}: b[{i}]");
            assert_eq!(ac[i], bc[i], "{ctx}: c[{i}]");
            assert_eq!(ad[i], bd[i], "{ctx}: d[{i}]");
        }
    }

    #[test]
    fn streamed_equals_monolithic_exactly() {
        for (n, k, st) in [
            (64usize, 2u32, 8usize),
            (64, 2, 7), // sub-tile not dividing n
            (100, 3, 16),
            (512, 5, 32),
            (1000, 4, 1), // element-at-a-time
        ] {
            let s = dominant_random::<f64>(n, n as u64 + k as u64);
            let mono = pcr::reduce(&s, k).unwrap();
            let (tiled, stats) = reduce_streamed(&s, k, st).unwrap();
            assert_rows_equal(&tiled, &mono, &format!("n={n} k={k} st={st}"));
            assert_eq!(stats.redundant_loads, 0);
            assert_eq!(stats.rows_loaded, n);
            assert_eq!(stats.tiles, n.div_ceil(st));
        }
    }

    #[test]
    fn streamed_has_zero_productive_redundancy() {
        let s = dominant_random::<f64>(2048, 9);
        let (_, stats) = reduce_streamed(&s, 6, 64).unwrap();
        // Flush eliminations are O(k·f(k)), bounded and n-independent;
        // everything else is exactly k·n.
        assert!(stats.redundant_eliminations <= 6 * halo_elements(6) as usize * 2);
        assert_eq!(stats.redundant_loads, 0);
    }

    #[test]
    fn partitioned_equals_monolithic_exactly() {
        for (n, k, g) in [
            (128usize, 3u32, 2usize),
            (128, 3, 4),
            (500, 4, 3),
            (1024, 6, 8),
        ] {
            let s = dominant_random::<f64>(n, 31 + n as u64);
            let mono = pcr::reduce(&s, k).unwrap();
            let (part, stats) = reduce_partitioned(&s, k, g).unwrap();
            assert_rows_equal(&part, &mono, &format!("n={n} k={k} g={g}"));
            assert_eq!(stats.tiles, g);
            // Halo loads: internal boundaries each cost up to 2·f(k).
            let bound = 2 * (g - 1) * halo_elements(k) as usize;
            assert!(
                stats.redundant_loads <= bound,
                "redundant {} > bound {bound}",
                stats.redundant_loads
            );
            if g > 1 && halo_elements(k) > 0 {
                assert!(stats.redundant_loads > 0, "partitioning must cost halo loads");
            }
        }
    }

    #[test]
    fn single_partition_is_redundancy_free() {
        let s = dominant_random::<f64>(256, 5);
        let (_, stats) = reduce_partitioned(&s, 4, 1).unwrap();
        assert_eq!(stats.redundant_loads, 0);
    }

    #[test]
    fn naive_equals_monolithic_but_pays_redundancy() {
        for (n, k, tile) in [(64usize, 2u32, 8usize), (256, 3, 16), (500, 4, 50)] {
            let s = dominant_random::<f64>(n, 5 + n as u64);
            let mono = pcr::reduce(&s, k).unwrap();
            let (naive, stats) = reduce_naive_tiled(&s, k, tile).unwrap();
            assert_rows_equal(&naive, &mono, &format!("naive n={n} k={k}"));
            // Redundant loads per internal boundary ~ 2·f(k) (Eq. 8).
            let boundaries = n.div_ceil(tile) - 1;
            assert!(stats.redundant_loads >= boundaries * halo_elements(k) as usize);
            // Redundant eliminations strictly positive for k >= 2 (Eq. 9 g(k) > 0).
            if k >= 2 {
                assert!(
                    stats.redundant_eliminations > 0,
                    "k={k}: naive tiling must recompute"
                );
            }
        }
    }

    #[test]
    fn naive_redundancy_grows_exponentially_with_k() {
        let n = 4096usize;
        let tile = 64usize;
        let s = dominant_random::<f64>(n, 17);
        let mut prev = 0usize;
        for k in 1..=6u32 {
            let (_, stats) = reduce_naive_tiled(&s, k, tile).unwrap();
            assert!(
                stats.redundant_loads >= prev,
                "k={k}: redundancy must not shrink"
            );
            prev = stats.redundant_loads;
        }
        // At k=6, f(k)=63 ≈ tile size: nearly double the ideal traffic.
        assert!(prev as f64 >= 0.8 * n as f64);
    }

    #[test]
    fn streamed_vs_naive_load_advantage() {
        // The paper's core claim in numbers: same output, a fraction of
        // the traffic.
        let n = 8192;
        let k = 5;
        let s = dominant_random::<f64>(n, 23);
        let (_, sw) = reduce_streamed(&s, k, 32).unwrap();
        let (_, nv) = reduce_naive_tiled(&s, k, 32).unwrap();
        assert!(nv.rows_loaded > 2 * sw.rows_loaded);
        assert!(nv.eliminations > sw.eliminations);
    }

    #[test]
    fn config_validation() {
        let s = dominant_random::<f64>(64, 1);
        assert!(reduce_streamed(&s, 2, 0).is_err());
        assert!(reduce_partitioned(&s, 2, 0).is_err());
        assert!(reduce_partitioned(&s, 2, 65).is_err());
        assert!(reduce_naive_tiled(&s, 2, 0).is_err());
        assert!(reduce_naive_tiled(&s, 7, 8).is_err()); // 2^7 > 64
    }
}
