//! The paper's analytic cost model.
//!
//! - Eq. 8: `f(k)` — redundant memory accesses per tile boundary that
//!   naive (cache-less) tiling of k-step PCR incurs.
//! - Eq. 9: `g(k)` — redundant elimination steps per tile boundary.
//! - Table II — elimination-step cost of Thomas, PCR and the k-step
//!   hybrid as a function of the number of systems `M`, the per-system
//!   size `2^n` and machine parallelism `P`.
//! - Table III — the empirical GTX480 heuristic for picking `k` from `M`.
//!
//! Costs are *elimination-step counts* (the paper's unit), not seconds;
//! the simulator's timing model converts steps and memory traffic into
//! modeled time.

/// Eq. 8: `f(k) = Σ_{i=0}^{k−1} 2^i = 2^k − 1` — halo elements that a
/// naive tile must redundantly load per boundary for k-step PCR.
pub fn halo_elements(k: u32) -> u64 {
    (1u64 << k) - 1
}

/// Eq. 9: `g(k) = k·f(k) − Σ_{i=0}^{k} f(i)` — redundant elimination
/// steps per tile boundary under naive tiling. Closed form:
/// `k·2^k − 2^{k+1} + 2`.
pub fn redundant_eliminations(k: u32) -> u64 {
    let f_k = halo_elements(k);
    let sum_f: u64 = (0..=k).map(halo_elements).sum();
    (k as u64 * f_k).saturating_sub(sum_f)
}

/// Minimum dependency-cache capacity of the buffered sliding window:
/// `2·f(k)` (Section III-A).
pub fn min_cache_size(k: u32) -> u64 {
    2 * halo_elements(k)
}

/// Actual cache capacity of the buffered sliding window: `3·f(k)`,
/// whose extra margin enables aligned (coalesced) output and padding
/// (Section III-A, Table I).
pub fn window_cache_size(k: u32) -> u64 {
    3 * halo_elements(k)
}

/// Table II: elimination-step cost of plain Thomas on `m` systems of
/// `n_size` unknowns with machine parallelism `p`.
pub fn thomas_cost(m: u64, n_size: u64, p: u64) -> f64 {
    let steps = (2 * n_size).saturating_sub(1) as f64;
    if m > p {
        (m as f64 / p as f64) * steps
    } else {
        steps
    }
}

/// Table II: elimination-step cost of full PCR: `(M/P)(n·2^n + 1)` with
/// `n = log2(n_size)`. PCR exposes enough parallelism that the workload
/// always amortises over `P`, but the `M/P` factor never drops below one
/// machine-filling wave.
pub fn pcr_cost(m: u64, n_size: u64, p: u64) -> f64 {
    let log_n = log2_ceil(n_size) as f64;
    let total_work = m as f64 * (log_n * n_size as f64 + 1.0);
    // PCR exposes M·N-wide parallelism; the effective width is capped by
    // the machine. When M·N ≥ P this reduces exactly to the Table II
    // expression (M/P)(n·2^n + 1); when underfilled it degenerates to the
    // log-depth critical path.
    let width = ((m * n_size) as f64).min(p as f64);
    total_work / width
}

/// Table II: elimination-step cost of the k-step hybrid
/// (tiled PCR front end + p-Thomas back end).
///
/// - `M > P`:            `(M/P)·(2(2^n − 2^k) + k·2^n)`
/// - `M ≤ P, 2^k·M > P`: `(M/P)·k·2^n + (M/P)·2(2^n − 2^k)`
/// - `M ≤ P, 2^k·M ≤ P`: `(M/P)·k·2^n + 2(2^n − 2^k)`
pub fn hybrid_cost(m: u64, n_size: u64, p: u64, k: u32) -> f64 {
    let two_k = 1u64 << k;
    let pcr_part_steps = k as f64 * n_size as f64;
    let thomas_part_steps = 2.0 * (n_size.saturating_sub(two_k)) as f64;
    let ratio = m as f64 / p as f64;
    if m > p {
        ratio * (thomas_part_steps + pcr_part_steps)
    } else if two_k * m > p {
        ratio * pcr_part_steps + ratio * thomas_part_steps
    } else {
        ratio * pcr_part_steps + thomas_part_steps
    }
}

/// The `k` minimising [`hybrid_cost`] subject to `2^k ≤ n_size` and
/// `k ≤ k_max`. Ties resolve to the smaller `k` (less PCR work).
pub fn optimal_k(m: u64, n_size: u64, p: u64, k_max: u32) -> u32 {
    let mut best_k = 0;
    let mut best = hybrid_cost(m, n_size, p, 0);
    for k in 1..=k_max {
        if (1u64 << k) > n_size {
            break;
        }
        let cost = hybrid_cost(m, n_size, p, k);
        if cost < best {
            best = cost;
            best_k = k;
        }
    }
    best_k
}

/// Table III: the paper's empirical GTX480 heuristic mapping the number
/// of systems `M` to the PCR step count `k`.
pub fn gtx480_heuristic_k(m: u64) -> u32 {
    match m {
        0..=15 => 8,
        16..=31 => 7,
        32..=511 => 6,
        512..=1023 => 5,
        _ => 0,
    }
}

/// Table III companion column: the subsystem count `2^k` ("tile size").
pub fn gtx480_heuristic_tile(m: u64) -> u64 {
    1u64 << gtx480_heuristic_k(m)
}

/// `ceil(log2 v)` for `v ≥ 1`.
pub fn log2_ceil(v: u64) -> u32 {
    if v <= 1 {
        0
    } else {
        64 - (v - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halo_matches_geometric_sum() {
        assert_eq!(halo_elements(0), 0);
        assert_eq!(halo_elements(1), 1);
        assert_eq!(halo_elements(2), 3);
        assert_eq!(halo_elements(3), 7);
        // Fig. 7(b): two-step PCR needs e1..e3 = 3 halo elements.
        assert_eq!(halo_elements(2), 3);
    }

    #[test]
    fn redundant_eliminations_closed_form() {
        for k in 0..=20u32 {
            let closed = if k == 0 {
                0
            } else {
                (k as u64) * (1u64 << k) + 2 - (1u64 << (k + 1))
            };
            assert_eq!(redundant_eliminations(k), closed, "k={k}");
        }
        // Fig. 7(b): two-step PCR recomputes e'2 and e'3 => g(2) = 2.
        assert_eq!(redundant_eliminations(2), 2);
        assert_eq!(redundant_eliminations(1), 0);
    }

    #[test]
    fn both_grow_exponentially() {
        for k in 2..16u32 {
            assert!(halo_elements(k + 1) >= 2 * halo_elements(k) - 1);
            assert!(redundant_eliminations(k + 1) > redundant_eliminations(k));
        }
    }

    #[test]
    fn cache_sizes() {
        assert_eq!(min_cache_size(2), 6);
        assert_eq!(window_cache_size(2), 9);
        for k in 0..12 {
            assert!(window_cache_size(k) <= 3 * (1 << k)); // Table I bound
        }
    }

    #[test]
    fn thomas_cost_regimes() {
        // M <= P: independent of M (parallelism underused).
        assert_eq!(thomas_cost(4, 512, 1024), 1023.0);
        assert_eq!(thomas_cost(1024, 512, 1024), 1023.0);
        // M > P: amortised.
        assert_eq!(thomas_cost(2048, 512, 1024), 2.0 * 1023.0);
    }

    #[test]
    fn pcr_cost_saturated_matches_table() {
        // M*N >= P: exactly (M/P)(n 2^n + 1).
        let c = pcr_cost(8, 512, 1024);
        assert!((c - (8.0 / 1024.0) * (9.0 * 512.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn hybrid_cost_reduces_to_thomas_at_k0() {
        // k = 0: pure p-Thomas, cost 2(2^n - 1) per wave.
        let m = 2048u64;
        let p = 1024u64;
        let n = 512u64;
        let h = hybrid_cost(m, n, p, 0);
        let t = (m as f64 / p as f64) * 2.0 * (n - 1) as f64;
        assert!((h - t).abs() < 1e-9);
    }

    #[test]
    fn hybrid_beats_thomas_when_underparallel() {
        // M = 16 systems, machine 1024-wide: k > 0 must win because pure
        // Thomas cannot use the hardware.
        let m = 16;
        let n = 16384;
        let p = 1024;
        let k = optimal_k(m, n, p, 10);
        assert!(k > 0, "expected PCR steps, got k=0");
        assert!(hybrid_cost(m, n, p, k) < thomas_cost(m, n, p));
    }

    #[test]
    fn optimal_k_zero_when_saturated() {
        // M >> P: plenty of systems, PCR only adds work.
        assert_eq!(optimal_k(65536, 512, 1024, 10), 0);
    }

    #[test]
    fn optimal_k_monotone_nonincreasing_in_m() {
        let p = 1024;
        let n = 4096;
        let mut last = u32::MAX;
        for m in [1u64, 4, 16, 64, 256, 1024, 4096, 16384] {
            let k = optimal_k(m, n, p, 12);
            assert!(k <= last, "k must not grow with M: M={m} k={k} last={last}");
            last = k;
        }
    }

    #[test]
    fn table3_heuristics_verbatim() {
        assert_eq!(gtx480_heuristic_k(1), 8);
        assert_eq!(gtx480_heuristic_k(15), 8);
        assert_eq!(gtx480_heuristic_k(16), 7);
        assert_eq!(gtx480_heuristic_k(31), 7);
        assert_eq!(gtx480_heuristic_k(32), 6);
        assert_eq!(gtx480_heuristic_k(511), 6);
        assert_eq!(gtx480_heuristic_k(512), 5);
        assert_eq!(gtx480_heuristic_k(1023), 5);
        assert_eq!(gtx480_heuristic_k(1024), 0);
        assert_eq!(gtx480_heuristic_k(1 << 20), 0);
        assert_eq!(gtx480_heuristic_tile(1), 256);
        assert_eq!(gtx480_heuristic_tile(700), 32);
        assert_eq!(gtx480_heuristic_tile(4096), 1);
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(512), 9);
        assert_eq!(log2_ceil(513), 10);
    }
}
