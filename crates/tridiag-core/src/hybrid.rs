//! The host-side hybrid solver: tiled PCR front end + Thomas back end
//! (Section III).
//!
//! This is the algorithmic reference for `tridiag-gpu`'s kernel
//! pipeline: identical staging (choose `k` → k-step tiled PCR →
//! independent Thomas solves on the `2^k` interleaved subsystems →
//! scatter), minus the simulated hardware. The GPU solver's numeric
//! output is tested against this module.

use crate::batch::SystemBatch;
use crate::error::Result;
use crate::scalar::Scalar;
use crate::system::TridiagonalSystem;
use crate::thomas;
use crate::tiled_pcr::{self, TilingStats};
use crate::transition::{choose_k, TransitionPolicy};

/// Configuration of the hybrid solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridConfig {
    /// How to pick the PCR step count.
    pub policy: TransitionPolicy,
    /// Sub-tile scale `c` (sub-tile = `c · 2^k` rows, Table I).
    pub sub_tile_scale: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            policy: TransitionPolicy::default(),
            sub_tile_scale: 1,
        }
    }
}

/// What the solver actually did — useful for tests, tuning and the
/// reproduction harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridReport {
    /// PCR steps applied.
    pub k: u32,
    /// Independent subsystems handed to the Thomas stage (per system).
    pub subsystems: usize,
    /// Tiled-PCR work/traffic counters.
    pub tiling: TilingStats,
    /// Elimination steps spent in the Thomas stage.
    pub thomas_eliminations: usize,
}

/// Solve one system with the hybrid algorithm.
pub fn solve<S: Scalar>(
    system: &TridiagonalSystem<S>,
    config: HybridConfig,
) -> Result<(Vec<S>, HybridReport)> {
    let n = system.len();
    let k = choose_k(config.policy, 1, n);
    let sub_tile = config.sub_tile_scale.max(1) << k;
    let (reduced, tiling) = tiled_pcr::reduce_streamed(system, k, sub_tile)?;
    let x = reduced.solve_subsystems_thomas()?;
    let subsystems = reduced.num_subsystems();
    let sub_len = n.div_ceil(subsystems);
    Ok((
        x,
        HybridReport {
            k,
            subsystems,
            tiling,
            thomas_eliminations: subsystems * thomas::elimination_steps(sub_len),
        },
    ))
}

/// Solve a batch of `M` systems. The transition policy sees the true
/// `M`, so large batches skip PCR entirely (Table III's `M ≥ 1024`
/// row) while small batches of large systems get deep PCR.
///
/// Returns the solutions in the batch's layout plus one report (the
/// per-system staging is identical across the batch).
pub fn solve_batch<S: Scalar>(
    batch: &SystemBatch<S>,
    config: HybridConfig,
) -> Result<(Vec<S>, HybridReport)> {
    let m = batch.num_systems();
    let n = batch.system_len();
    let k = choose_k(config.policy, m, n);
    let sub_tile = config.sub_tile_scale.max(1) << k;

    let mut x = vec![S::ZERO; batch.total_len()];
    let mut tiling = TilingStats::default();
    let mut thomas_elims = 0usize;
    let mut subsystems = 1;
    for sys in 0..m {
        let system = batch.system(sys)?;
        let (reduced, t) = tiled_pcr::reduce_streamed(&system, k, sub_tile)?;
        let xs = reduced.solve_subsystems_thomas()?;
        subsystems = reduced.num_subsystems();
        let sub_len = n.div_ceil(subsystems);
        thomas_elims += subsystems * thomas::elimination_steps(sub_len);
        tiling.rows_loaded += t.rows_loaded;
        tiling.redundant_loads += t.redundant_loads;
        tiling.eliminations += t.eliminations;
        tiling.redundant_eliminations += t.redundant_eliminations;
        tiling.tiles += t.tiles;
        for row in 0..n {
            x[batch.index(sys, row)] = xs[row];
        }
    }
    Ok((
        x,
        HybridReport {
            k,
            subsystems,
            tiling,
            thomas_eliminations: thomas_elims,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{dominant_random, random_batch};
    use crate::transition::TransitionPolicy;

    #[test]
    fn single_system_matches_thomas() {
        for n in [8usize, 100, 512, 5000] {
            let s = dominant_random::<f64>(n, n as u64);
            let (x, report) = solve(&s, HybridConfig::default()).unwrap();
            let xt = thomas::solve_typed(&s).unwrap();
            for i in 0..n {
                assert!((x[i] - xt[i]).abs() < 1e-8, "n={n} row {i}");
            }
            // M=1 means Table III wants k=8 (clamped by size).
            assert_eq!(report.k, crate::transition::choose_k(TransitionPolicy::Gtx480Heuristic, 1, n));
            assert_eq!(report.subsystems, 1 << report.k);
        }
    }

    #[test]
    fn residuals_small_for_all_policies() {
        let s = dominant_random::<f64>(2048, 3);
        for policy in [
            TransitionPolicy::Gtx480Heuristic,
            TransitionPolicy::Fixed(0),
            TransitionPolicy::Fixed(4),
            TransitionPolicy::CostModel {
                parallelism: 21504,
                k_max: 10,
            },
        ] {
            let cfg = HybridConfig {
                policy,
                sub_tile_scale: 2,
            };
            let (x, _) = solve(&s, cfg).unwrap();
            assert!(
                s.relative_residual(&x).unwrap() < 1e-10,
                "policy {policy:?}"
            );
        }
    }

    #[test]
    fn batch_solution_layout_and_accuracy() {
        let batch = random_batch::<f64>(8, 128, 5).to_layout(crate::batch::Layout::Interleaved);
        let (x, report) = solve_batch(&batch, HybridConfig::default()).unwrap();
        assert!(batch.max_relative_residual(&x).unwrap() < 1e-10);
        // M=8 < 16: Table III says k=7 (128-unknown systems allow it).
        assert_eq!(report.k, 7);
        assert_eq!(report.tiling.tiles, 8); // one sub-tile per system at c=1
    }

    #[test]
    fn large_batch_skips_pcr() {
        let batch = random_batch::<f64>(1024, 32, 6);
        let (x, report) = solve_batch(&batch, HybridConfig::default()).unwrap();
        assert_eq!(report.k, 0, "M >= 1024 must go straight to p-Thomas");
        assert_eq!(report.tiling.eliminations, 0);
        assert!(batch.max_relative_residual(&x).unwrap() < 1e-10);
    }

    #[test]
    fn report_work_accounting_consistent() {
        let s = dominant_random::<f64>(4096, 8);
        let cfg = HybridConfig {
            policy: TransitionPolicy::Fixed(5),
            sub_tile_scale: 1,
        };
        let (_, report) = solve(&s, cfg).unwrap();
        assert_eq!(report.k, 5);
        assert_eq!(report.subsystems, 32);
        // PCR productive work is k·n; flush adds an n-independent tail.
        assert!(report.tiling.eliminations >= 5 * 4096);
        // Thomas stage: 32 subsystems of 128 unknowns, 2·128−1 steps each.
        assert_eq!(report.thomas_eliminations, 32 * 255);
    }
}
