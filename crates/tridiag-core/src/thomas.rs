//! The Thomas algorithm (Section II-A-1, Eqs. 2–4).
//!
//! Gaussian elimination specialised to a tridiagonal matrix: a forward
//! reduction sweep eliminates the sub-diagonal, a backward substitution
//! sweep recovers the unknowns. `2n − 1` elimination steps, `O(n)` work,
//! strictly sequential — this is the CPU gold standard every parallel
//! algorithm in the paper (and in this crate's test suite) is checked
//! against, and also the per-thread backend of p-Thomas.

use crate::error::{Result, TridiagError};
use crate::scalar::Scalar;
use crate::system::TridiagonalSystem;

/// Solve `A x = d` with the Thomas algorithm, allocating the output and
/// scratch internally.
///
/// ```
/// use tridiag_core::{thomas, TridiagonalSystem};
/// // [2 1; 1 3] x = [5; 10]  =>  x = (1, 3)
/// let s = TridiagonalSystem::<f64>::new(
///     vec![0.0, 1.0], vec![2.0, 3.0], vec![1.0, 0.0], vec![5.0, 10.0],
/// ).unwrap();
/// let x = thomas::solve_typed(&s).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
/// ```
///
/// # Errors
/// [`TridiagError::ZeroPivot`] if a pivot underflows to exactly zero
/// (cannot happen for diagonally dominant systems);
/// [`TridiagError::NonFinite`] if the sweep produces NaN/Inf.
pub fn solve_typed<S: Scalar>(system: &TridiagonalSystem<S>) -> Result<Vec<S>> {
    let n = system.len();
    let mut x = vec![S::ZERO; n];
    let mut scratch = ThomasScratch::new(n);
    solve_into(system, &mut x, &mut scratch)?;
    Ok(x)
}

/// Reusable scratch buffers for repeated Thomas solves of the same size
/// (time-stepping loops call the solver thousands of times; reallocating
/// two `Vec`s per step shows up in profiles).
#[derive(Debug, Clone)]
pub struct ThomasScratch<S: Scalar> {
    c_prime: Vec<S>,
    d_prime: Vec<S>,
}

impl<S: Scalar> ThomasScratch<S> {
    /// Scratch for systems of `n` unknowns.
    pub fn new(n: usize) -> Self {
        Self {
            c_prime: vec![S::ZERO; n],
            d_prime: vec![S::ZERO; n],
        }
    }

    /// Grow (never shrink) to accommodate `n` unknowns.
    pub fn ensure(&mut self, n: usize) {
        if self.c_prime.len() < n {
            self.c_prime.resize(n, S::ZERO);
            self.d_prime.resize(n, S::ZERO);
        }
    }
}

/// Solve into a caller-provided output slice using caller-provided
/// scratch. `x.len()` must equal the system size.
pub fn solve_into<S: Scalar>(
    system: &TridiagonalSystem<S>,
    x: &mut [S],
    scratch: &mut ThomasScratch<S>,
) -> Result<()> {
    let n = system.len();
    if x.len() != n {
        return Err(TridiagError::LengthMismatch {
            expected: n,
            found: x.len(),
            what: "x",
        });
    }
    scratch.ensure(n);
    let (a, b, c, d) = system.parts();
    solve_raw(
        a,
        b,
        c,
        d,
        x,
        &mut scratch.c_prime[..n],
        &mut scratch.d_prime[..n],
    )
}

/// The raw sweep over bare slices. All slices must have length `n`;
/// `a[0]` and `c[n-1]` are ignored (treated as outside the matrix).
///
/// This is the exact per-thread program the GPU p-Thomas kernel runs;
/// keeping it as a free function lets the kernel and the CPU reference
/// share one implementation of Eqs. 2–4.
pub fn solve_raw<S: Scalar>(
    a: &[S],
    b: &[S],
    c: &[S],
    d: &[S],
    x: &mut [S],
    c_prime: &mut [S],
    d_prime: &mut [S],
) -> Result<()> {
    let n = b.len();
    debug_assert!(
        a.len() == n && c.len() == n && d.len() == n && x.len() == n,
        "solve_raw requires uniform slice lengths"
    );
    if n == 0 {
        return Err(TridiagError::EmptySystem);
    }

    // Forward reduction (Eqs. 2–3): c'_1 = c_1/b_1, d'_1 = d_1/b_1, then
    //   c'_i = c_i / (b_i − c'_{i−1} a_i)
    //   d'_i = (d_i − d'_{i−1} a_i) / (b_i − c'_{i−1} a_i)
    if b[0] == S::ZERO {
        return Err(TridiagError::ZeroPivot { row: 0 });
    }
    c_prime[0] = c[0] / b[0];
    d_prime[0] = d[0] / b[0];
    for i in 1..n {
        let denom = b[i] - c_prime[i - 1] * a[i];
        if denom == S::ZERO {
            return Err(TridiagError::ZeroPivot { row: i });
        }
        let inv = S::ONE / denom;
        c_prime[i] = c[i] * inv;
        d_prime[i] = (d[i] - d_prime[i - 1] * a[i]) * inv;
        if !d_prime[i].is_finite() {
            return Err(TridiagError::NonFinite { row: i });
        }
    }

    // Backward substitution (Eq. 4): x_n = d'_n, x_i = d'_i − c'_i x_{i+1}.
    x[n - 1] = d_prime[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = d_prime[i] - c_prime[i] * x[i + 1];
    }
    Ok(())
}

/// Number of elimination steps Thomas performs on an `n`-unknown system:
/// `2n − 1` (Section II-A-1). Used by the cost model and asserted by the
/// simulator's instruction counters.
pub fn elimination_steps(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        2 * n - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::TridiagonalSystem;

    fn poisson(n: usize) -> TridiagonalSystem<f64> {
        // -1, 2, -1 operator with a known smooth forcing.
        let lower = vec![-1.0; n];
        let diag = vec![2.0 + 1e-9; n]; // tiny shift keeps it strictly dominant
        let upper = vec![-1.0; n];
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64 / n as f64).sin()).collect();
        TridiagonalSystem::new(lower, diag, upper, rhs).unwrap()
    }

    #[test]
    fn solves_known_2x2() {
        // [2 1; 1 3] x = [5; 10] -> x = (1, 3)
        let s = TridiagonalSystem::new(
            vec![0.0, 1.0],
            vec![2.0, 3.0],
            vec![1.0, 0.0],
            vec![5.0, 10.0],
        )
        .unwrap();
        let x = solve_typed(&s).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solves_single_unknown() {
        let s = TridiagonalSystem::new(vec![0.0], vec![4.0], vec![0.0], vec![8.0]).unwrap();
        assert_eq!(solve_typed(&s).unwrap(), vec![2.0]);
    }

    #[test]
    fn residual_small_on_poisson() {
        for n in [2usize, 3, 5, 17, 64, 1000] {
            let s = poisson(n);
            let x = solve_typed(&s).unwrap();
            let r = s.relative_residual(&x).unwrap();
            assert!(r < 1e-9, "n={n}: residual {r}");
        }
    }

    #[test]
    fn zero_pivot_detected_first_row() {
        let s = TridiagonalSystem::new(
            vec![0.0, 1.0],
            vec![0.0, 3.0],
            vec![1.0, 0.0],
            vec![5.0, 10.0],
        )
        .unwrap();
        assert_eq!(
            solve_typed(&s).unwrap_err(),
            TridiagError::ZeroPivot { row: 0 }
        );
    }

    #[test]
    fn zero_pivot_detected_midway() {
        // Row 1 pivot becomes b1 - c'_0 a1 = 1 - (2/2)*1 = 0.
        let s = TridiagonalSystem::new(
            vec![0.0, 1.0],
            vec![2.0, 1.0],
            vec![2.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert_eq!(
            solve_typed(&s).unwrap_err(),
            TridiagError::ZeroPivot { row: 1 }
        );
    }

    #[test]
    fn scratch_reuse_across_sizes() {
        let mut scratch = ThomasScratch::<f64>::new(2);
        for n in [2usize, 8, 5, 32] {
            let s = poisson(n);
            let mut x = vec![0.0; n];
            solve_into(&s, &mut x, &mut scratch).unwrap();
            assert!(s.relative_residual(&x).unwrap() < 1e-12);
        }
    }

    #[test]
    fn solve_into_validates_output_length() {
        let s = poisson(4);
        let mut x = vec![0.0; 3];
        let mut scratch = ThomasScratch::new(4);
        assert!(matches!(
            solve_into(&s, &mut x, &mut scratch).unwrap_err(),
            TridiagError::LengthMismatch { what: "x", .. }
        ));
    }

    #[test]
    fn elimination_step_count() {
        assert_eq!(elimination_steps(0), 0);
        assert_eq!(elimination_steps(1), 1);
        assert_eq!(elimination_steps(512), 1023);
    }

    #[test]
    fn f32_precision_still_accurate() {
        let s64 = poisson(256);
        let s32: TridiagonalSystem<f32> = s64.cast();
        let x = solve_typed(&s32).unwrap();
        assert!(s32.relative_residual(&x).unwrap() < 1e-2);
    }
}
