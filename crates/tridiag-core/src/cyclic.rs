//! Cyclic (periodic) tridiagonal systems.
//!
//! Periodic boundary conditions — ubiquitous in the fluid-dynamics
//! workloads that motivate the paper (\[2\]\[4\]\[5\]) — produce an "almost
//! tridiagonal" matrix with two extra corner entries:
//!
//! ```text
//! | b1 c1          a1 |
//! | a2 b2 c2          |
//! |    …  …  …        |
//! |       an-1 bn-1 cn-1 |
//! | cn          an bn |
//! ```
//!
//! The standard reduction is the **Sherman–Morrison formula**: write
//! `A_cyclic = A + u vᵀ` with a plain tridiagonal `A` and rank-one
//! correction, solve `A y = d` and `A z = u` with any tridiagonal
//! engine, and combine
//! `x = y − z · (vᵀy) / (1 + vᵀz)`.
//!
//! Because the two inner solves are *ordinary* tridiagonal solves, this
//! module makes every engine in the workspace (Thomas, the hybrid, the
//! simulated GPU, …) a periodic solver for free: it is parameterised
//! over a solve callback.

use crate::error::{Result, TridiagError};
use crate::scalar::Scalar;
use crate::system::TridiagonalSystem;
use crate::thomas;

/// A periodic tridiagonal system: the three diagonals plus the two
/// wrap-around corners `top_right` (`a_1`) and `bottom_left` (`c_n`).
#[derive(Debug, Clone, PartialEq)]
pub struct CyclicSystem<S: Scalar> {
    lower: Vec<S>,
    diag: Vec<S>,
    upper: Vec<S>,
    rhs: Vec<S>,
    /// `A[0, n-1]` — the coupling of the first row to the last unknown.
    top_right: S,
    /// `A[n-1, 0]` — the coupling of the last row to the first unknown.
    bottom_left: S,
}

impl<S: Scalar> CyclicSystem<S> {
    /// Build a periodic system. Needs `n >= 3` so the corners do not
    /// collide with the ordinary diagonals.
    pub fn new(
        lower: Vec<S>,
        diag: Vec<S>,
        upper: Vec<S>,
        rhs: Vec<S>,
        top_right: S,
        bottom_left: S,
    ) -> Result<Self> {
        let n = diag.len();
        if n < 3 {
            return Err(TridiagError::InvalidConfig(
                "cyclic systems need at least 3 unknowns".into(),
            ));
        }
        for (arr, what) in [(&lower, "lower"), (&upper, "upper"), (&rhs, "rhs")] {
            if arr.len() != n {
                return Err(TridiagError::LengthMismatch {
                    expected: n,
                    found: arr.len(),
                    what,
                });
            }
        }
        Ok(Self {
            lower,
            diag,
            upper,
            rhs,
            top_right,
            bottom_left,
        })
    }

    /// A uniform periodic stencil `(a, b, c)` (e.g. the periodic
    /// second-difference operator with `a = c = -1, b = 2`).
    pub fn toeplitz(a: S, b: S, c: S, rhs: Vec<S>) -> Result<Self> {
        let n = rhs.len();
        Self::new(vec![a; n], vec![b; n], vec![c; n], rhs, a, c)
    }

    /// Number of unknowns.
    pub fn len(&self) -> usize {
        self.diag.len()
    }

    /// `true` if empty (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.diag.is_empty()
    }

    /// Matrix–vector product including the periodic corners.
    pub fn apply(&self, x: &[S]) -> Result<Vec<S>> {
        let n = self.len();
        if x.len() != n {
            return Err(TridiagError::LengthMismatch {
                expected: n,
                found: x.len(),
                what: "x",
            });
        }
        let mut y = vec![S::ZERO; n];
        for i in 0..n {
            let mut acc = self.diag[i] * x[i];
            if i > 0 {
                acc += self.lower[i] * x[i - 1];
            }
            if i + 1 < n {
                acc += self.upper[i] * x[i + 1];
            }
            y[i] = acc;
        }
        y[0] += self.top_right * x[n - 1];
        y[n - 1] += self.bottom_left * x[0];
        Ok(y)
    }

    /// Relative residual `‖A x − d‖_∞ / max(‖d‖_∞, 1)`.
    pub fn relative_residual(&self, x: &[S]) -> Result<f64> {
        let ax = self.apply(x)?;
        let mut num: f64 = 0.0;
        let mut den: f64 = 1.0;
        for (axi, di) in ax.iter().zip(&self.rhs) {
            num = num.max((axi.to_f64() - di.to_f64()).abs());
            den = den.max(di.to_f64().abs());
        }
        Ok(num / den)
    }

    /// Solve via Sherman–Morrison, delegating the two inner tridiagonal
    /// solves to `engine` (any function solving an ordinary
    /// [`TridiagonalSystem`] — Thomas, the hybrid, the simulated GPU…).
    pub fn solve_with<F>(&self, mut engine: F) -> Result<Vec<S>>
    where
        F: FnMut(&TridiagonalSystem<S>) -> Result<Vec<S>>,
    {
        let n = self.len();
        // Choose gamma to keep the modified corner pivots well scaled.
        let gamma = -self.diag[0];
        if gamma == S::ZERO {
            return Err(TridiagError::ZeroPivot { row: 0 });
        }

        // A = A_cyclic - u v^T with u = (gamma, 0, …, 0, c_n)^T and
        // v = (1, 0, …, 0, a_1/gamma)^T.
        let mut diag = self.diag.clone();
        diag[0] = self.diag[0] - gamma;
        diag[n - 1] = self.diag[n - 1] - self.top_right * self.bottom_left / gamma;

        let base = TridiagonalSystem::new(
            self.lower.clone(),
            diag.clone(),
            self.upper.clone(),
            self.rhs.clone(),
        )?;
        let y = engine(&base)?;

        let mut u = vec![S::ZERO; n];
        u[0] = gamma;
        u[n - 1] = self.bottom_left;
        let base_u = TridiagonalSystem::new(self.lower.clone(), diag, self.upper.clone(), u)?;
        let z = engine(&base_u)?;

        // v^T y and v^T z with v = (1, 0, …, 0, a_1/gamma).
        let vy = y[0] + self.top_right / gamma * y[n - 1];
        let vz = z[0] + self.top_right / gamma * z[n - 1];
        let denom = S::ONE + vz;
        if denom == S::ZERO {
            return Err(TridiagError::ZeroPivot { row: n - 1 });
        }
        let factor = vy / denom;
        Ok((0..n).map(|i| y[i] - z[i] * factor).collect())
    }

    /// Solve with the Thomas engine (the common case).
    ///
    /// ```
    /// use tridiag_core::cyclic::CyclicSystem;
    /// // Periodic operator with a diagonal shift (pure [-1,2,-1] is singular).
    /// let s = CyclicSystem::toeplitz(-1.0, 2.5, -1.0, vec![1.0; 16]).unwrap();
    /// let x = s.solve().unwrap();
    /// assert!(s.relative_residual(&x).unwrap() < 1e-12);
    /// ```
    pub fn solve(&self) -> Result<Vec<S>> {
        self.solve_with(|sys| thomas::solve_typed(sys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cyclic(n: usize, seed: u64) -> CyclicSystem<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lower = Vec::new();
        let mut diag = Vec::new();
        let mut upper = Vec::new();
        let mut rhs = Vec::new();
        let tr: f64 = rng.gen_range(-0.5..0.5);
        let bl: f64 = rng.gen_range(-0.5..0.5);
        for i in 0..n {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let c: f64 = rng.gen_range(-1.0..1.0);
            let corner = if i == 0 {
                tr.abs()
            } else if i + 1 == n {
                bl.abs()
            } else {
                0.0
            };
            diag.push(a.abs() + c.abs() + corner + rng.gen_range(0.5..1.5));
            lower.push(a);
            upper.push(c);
            rhs.push(rng.gen_range(-1.0..1.0));
        }
        CyclicSystem::new(lower, diag, upper, rhs, tr, bl).unwrap()
    }

    #[test]
    fn solves_random_dominant_cyclic() {
        for n in [3usize, 8, 100, 1000] {
            let s = random_cyclic(n, n as u64);
            let x = s.solve().unwrap();
            let r = s.relative_residual(&x).unwrap();
            assert!(r < 1e-10, "n={n}: residual {r}");
        }
    }

    #[test]
    fn periodic_poisson_second_difference() {
        // Periodic -1,2,-1 is singular (constant nullspace); shift it.
        let n = 64;
        let rhs: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / n as f64).sin())
            .collect();
        let s = CyclicSystem::toeplitz(-1.0, 2.0 + 0.1, -1.0, rhs).unwrap();
        let x = s.solve().unwrap();
        assert!(s.relative_residual(&x).unwrap() < 1e-11);
        // Solution of a shift-invariant operator on a pure harmonic is
        // the same harmonic, scaled.
        let ratio0 = x[1] / s.rhs[1];
        for i in 2..n - 1 {
            if s.rhs[i].abs() > 0.1 {
                assert!((x[i] / s.rhs[i] - ratio0).abs() < 1e-8, "i={i}");
            }
        }
    }

    #[test]
    fn corners_actually_matter() {
        let s = random_cyclic(32, 5);
        // Solving while ignoring the corners gives a different answer.
        let plain = TridiagonalSystem::new(
            s.lower.clone(),
            s.diag.clone(),
            s.upper.clone(),
            s.rhs.clone(),
        )
        .unwrap();
        let x_plain = thomas::solve_typed(&plain).unwrap();
        let x_cyclic = s.solve().unwrap();
        let diff: f64 = x_plain
            .iter()
            .zip(&x_cyclic)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-6, "corner terms must influence the solution");
        assert!(s.relative_residual(&x_cyclic).unwrap() < 1e-10);
        assert!(s.relative_residual(&x_plain).unwrap() > 1e-8);
    }

    #[test]
    fn engine_plugability() {
        // Any engine works — here: full PCR instead of Thomas.
        let s = random_cyclic(128, 9);
        let x = s.solve_with(crate::pcr::solve).unwrap();
        assert!(s.relative_residual(&x).unwrap() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(CyclicSystem::<f64>::toeplitz(-1.0, 2.0, -1.0, vec![1.0; 2]).is_err());
        assert!(CyclicSystem::<f64>::new(
            vec![1.0; 2],
            vec![1.0; 3],
            vec![1.0; 3],
            vec![1.0; 3],
            0.0,
            0.0
        )
        .is_err());
        let s = random_cyclic(8, 1);
        assert!(s.apply(&[0.0; 4]).is_err());
        assert_eq!(s.len(), 8);
        assert!(!s.is_empty());
    }

    #[test]
    fn apply_includes_corners() {
        // Identity diagonal + unit corners: A x picks up the wrap terms.
        let s = CyclicSystem::new(
            vec![0.0; 4],
            vec![1.0; 4],
            vec![0.0; 4],
            vec![0.0; 4],
            2.0,
            3.0,
        )
        .unwrap();
        let y = s.apply(&[1.0, 10.0, 100.0, 1000.0]).unwrap();
        assert_eq!(y, vec![1.0 + 2.0 * 1000.0, 10.0, 100.0, 1000.0 + 3.0]);
    }
}
