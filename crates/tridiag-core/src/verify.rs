//! Solution-verification helpers shared by tests, benches and examples.

use crate::batch::SystemBatch;
use crate::error::Result;
use crate::scalar::Scalar;
use crate::system::TridiagonalSystem;
use crate::thomas;

/// Default residual tolerances per precision, sized for well-conditioned
/// (diagonally dominant) systems of up to a few million unknowns.
pub fn default_tolerance<S: Scalar>() -> f64 {
    // ~1e3 ulps of headroom over machine epsilon.
    S::EPSILON.to_f64() * 1e3
}

/// Outcome of comparing a candidate solution against the Thomas
/// reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// `‖x − x_ref‖_∞ / max(‖x_ref‖_∞, 1)`.
    pub max_relative_error: f64,
    /// Relative residual of the candidate.
    pub residual: f64,
}

/// Compare `x` against a fresh Thomas solve of `system`.
pub fn compare_with_thomas<S: Scalar>(
    system: &TridiagonalSystem<S>,
    x: &[S],
) -> Result<Comparison> {
    let reference = thomas::solve_typed(system)?;
    let mut err: f64 = 0.0;
    let mut scale: f64 = 1.0;
    for i in 0..system.len() {
        err = err.max((x[i].to_f64() - reference[i].to_f64()).abs());
        scale = scale.max(reference[i].to_f64().abs());
    }
    Ok(Comparison {
        max_relative_error: err / scale,
        residual: system.relative_residual(x)?,
    })
}

/// Assert (via `Result`, not panic) that `x` solves `system` to `tol`.
pub fn check_solution<S: Scalar>(
    system: &TridiagonalSystem<S>,
    x: &[S],
    tol: f64,
) -> Result<Comparison> {
    let cmp = compare_with_thomas(system, x)?;
    if cmp.residual > tol {
        return Err(crate::error::TridiagError::InvalidConfig(format!(
            "residual {} exceeds tolerance {tol}",
            cmp.residual
        )));
    }
    Ok(cmp)
}

/// Worst-case comparison across a batch (solution `x` in the batch's
/// layout).
pub fn check_batch_solution<S: Scalar>(
    batch: &SystemBatch<S>,
    x: &[S],
    tol: f64,
) -> Result<f64> {
    let residual = batch.max_relative_residual(x)?;
    if residual > tol {
        return Err(crate::error::TridiagError::InvalidConfig(format!(
            "batch residual {residual} exceeds tolerance {tol}"
        )));
    }
    Ok(residual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{dominant_random, random_batch};

    #[test]
    fn tolerances_scale_with_precision() {
        assert!(default_tolerance::<f32>() > default_tolerance::<f64>());
        assert!(default_tolerance::<f64>() < 1e-10);
    }

    #[test]
    fn exact_solution_passes() {
        let s = dominant_random::<f64>(64, 1);
        let x = thomas::solve_typed(&s).unwrap();
        let cmp = check_solution(&s, &x, default_tolerance::<f64>()).unwrap();
        assert_eq!(cmp.max_relative_error, 0.0);
    }

    #[test]
    fn wrong_solution_fails() {
        let s = dominant_random::<f64>(64, 2);
        let mut x = thomas::solve_typed(&s).unwrap();
        x[10] += 1.0;
        assert!(check_solution(&s, &x, default_tolerance::<f64>()).is_err());
        let cmp = compare_with_thomas(&s, &x).unwrap();
        assert!(cmp.max_relative_error > 0.1);
    }

    #[test]
    fn batch_check() {
        let b = random_batch::<f64>(3, 16, 4);
        let mut x = vec![0.0; b.total_len()];
        for sys in 0..3 {
            let sol = thomas::solve_typed(&b.system(sys).unwrap()).unwrap();
            for row in 0..16 {
                x[b.index(sys, row)] = sol[row];
            }
        }
        assert!(check_batch_solution(&b, &x, 1e-12).is_ok());
        x[5] = 1e6;
        assert!(check_batch_solution(&b, &x, 1e-12).is_err());
    }
}
