//! A single tridiagonal system `A x = d` (Eq. 1 of the paper).
//!
//! The matrix is stored as three diagonals:
//!
//! - `lower[i]` = `a_{i+1}` — the sub-diagonal; `lower[0]` corresponds to
//!   row 1. By convention `a_1` does not exist, so row 0 never reads it.
//! - `diag[i]`  = `b_{i+1}` — the main diagonal.
//! - `upper[i]` = `c_{i+1}` — the super-diagonal; row `n-1` never reads it.
//!
//! Internally all four arrays (including the right-hand side `rhs`) have
//! length `n`, with `lower[0]` and `upper[n-1]` fixed at zero. Keeping
//! uniform lengths lets every parallel algorithm index rows without
//! boundary special-casing — the same convention the GPU kernels use,
//! where out-of-range neighbours are represented by zero coefficients.

use crate::error::{Result, TridiagError};
use crate::scalar::Scalar;

/// An `n`-unknown tridiagonal system `A x = d`.
#[derive(Debug, Clone, PartialEq)]
pub struct TridiagonalSystem<S: Scalar> {
    lower: Vec<S>,
    diag: Vec<S>,
    upper: Vec<S>,
    rhs: Vec<S>,
}

impl<S: Scalar> TridiagonalSystem<S> {
    /// Build a system from its diagonals and right-hand side.
    ///
    /// All four slices must have length `n >= 1`. `lower[0]` and
    /// `upper[n-1]` are forced to zero (they lie outside the matrix).
    ///
    /// # Errors
    /// [`TridiagError::EmptySystem`] for `n == 0`,
    /// [`TridiagError::LengthMismatch`] for inconsistent lengths.
    pub fn new(lower: Vec<S>, diag: Vec<S>, upper: Vec<S>, rhs: Vec<S>) -> Result<Self> {
        let n = diag.len();
        if n == 0 {
            return Err(TridiagError::EmptySystem);
        }
        for (arr, what) in [(&lower, "lower"), (&upper, "upper"), (&rhs, "rhs")] {
            if arr.len() != n {
                return Err(TridiagError::LengthMismatch {
                    expected: n,
                    found: arr.len(),
                    what,
                });
            }
        }
        let mut sys = Self {
            lower,
            diag,
            upper,
            rhs,
        };
        sys.lower[0] = S::ZERO;
        sys.upper[n - 1] = S::ZERO;
        Ok(sys)
    }

    /// A system with all-zero coefficients, useful as a buffer to fill.
    pub fn zeros(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(TridiagError::EmptySystem);
        }
        Ok(Self {
            lower: vec![S::ZERO; n],
            diag: vec![S::ZERO; n],
            upper: vec![S::ZERO; n],
            rhs: vec![S::ZERO; n],
        })
    }

    /// Number of unknowns.
    #[inline]
    pub fn len(&self) -> usize {
        self.diag.len()
    }

    /// `true` if the system has no unknowns (never true for a
    /// successfully constructed system).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.diag.is_empty()
    }

    /// Sub-diagonal (`a`), length `n`, entry 0 is always zero.
    #[inline]
    pub fn lower(&self) -> &[S] {
        &self.lower
    }

    /// Main diagonal (`b`), length `n`.
    #[inline]
    pub fn diag(&self) -> &[S] {
        &self.diag
    }

    /// Super-diagonal (`c`), length `n`, entry `n-1` is always zero.
    #[inline]
    pub fn upper(&self) -> &[S] {
        &self.upper
    }

    /// Right-hand side (`d`), length `n`.
    #[inline]
    pub fn rhs(&self) -> &[S] {
        &self.rhs
    }

    /// Mutable right-hand side, e.g. for time-stepping applications that
    /// reuse the factorised operator with fresh data each step.
    #[inline]
    pub fn rhs_mut(&mut self) -> &mut [S] {
        &mut self.rhs
    }

    /// Decompose into `(lower, diag, upper, rhs)` vectors.
    pub fn into_parts(self) -> (Vec<S>, Vec<S>, Vec<S>, Vec<S>) {
        (self.lower, self.diag, self.upper, self.rhs)
    }

    /// Borrow all four arrays at once: `(lower, diag, upper, rhs)`.
    pub fn parts(&self) -> (&[S], &[S], &[S], &[S]) {
        (&self.lower, &self.diag, &self.upper, &self.rhs)
    }

    /// Row `i` as an equation `(a_i, b_i, c_i, d_i)` with the zero
    /// convention at the boundaries.
    #[inline]
    pub fn row(&self, i: usize) -> (S, S, S, S) {
        (self.lower[i], self.diag[i], self.upper[i], self.rhs[i])
    }

    /// Matrix-vector product `A x` (used to compute residuals).
    pub fn apply(&self, x: &[S]) -> Result<Vec<S>> {
        let n = self.len();
        if x.len() != n {
            return Err(TridiagError::LengthMismatch {
                expected: n,
                found: x.len(),
                what: "x",
            });
        }
        let mut y = vec![S::ZERO; n];
        for i in 0..n {
            let mut acc = self.diag[i] * x[i];
            if i > 0 {
                acc += self.lower[i] * x[i - 1];
            }
            if i + 1 < n {
                acc += self.upper[i] * x[i + 1];
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// Relative residual `‖A x − d‖_∞ / max(‖d‖_∞, 1)` accumulated in
    /// `f64` regardless of `S` so that `f32` systems get a trustworthy
    /// measurement.
    pub fn relative_residual(&self, x: &[S]) -> Result<f64> {
        let ax = self.apply(x)?;
        let mut num: f64 = 0.0;
        let mut den: f64 = 1.0;
        for (axi, di) in ax.iter().zip(&self.rhs) {
            num = num.max((axi.to_f64() - di.to_f64()).abs());
            den = den.max(di.to_f64().abs());
        }
        Ok(num / den)
    }

    /// `true` when the matrix is strictly diagonally dominant by rows:
    /// `|b_i| > |a_i| + |c_i|` for all rows. The pivot-free eliminations
    /// used throughout the paper (Thomas, CR, PCR) are unconditionally
    /// stable on such systems.
    pub fn is_diagonally_dominant(&self) -> bool {
        (0..self.len()).all(|i| {
            self.diag[i].abs() > self.lower[i].abs() + self.upper[i].abs()
        })
    }

    /// Check every coefficient is finite; returns the first bad row.
    pub fn check_finite(&self) -> Result<()> {
        for i in 0..self.len() {
            let (a, b, c, d) = self.row(i);
            if !(a.is_finite() && b.is_finite() && c.is_finite() && d.is_finite()) {
                return Err(TridiagError::NonFinite { row: i });
            }
        }
        Ok(())
    }

    /// Convert the scalar type (e.g. build in `f64`, solve in `f32`).
    pub fn cast<T: Scalar>(&self) -> TridiagonalSystem<T> {
        let conv = |v: &[S]| v.iter().map(|x| T::from_f64(x.to_f64())).collect();
        TridiagonalSystem {
            lower: conv(&self.lower),
            diag: conv(&self.diag),
            upper: conv(&self.upper),
            rhs: conv(&self.rhs),
        }
    }

    /// Extract the sub-system made of rows `start, start+stride, ...`
    /// taking coefficients verbatim. This is how PCR's interleaved
    /// subsystems are materialised for independent solving: after `k`
    /// PCR steps, rows congruent mod `2^k` form an independent system.
    pub fn gather_strided(&self, start: usize, stride: usize) -> Result<TridiagonalSystem<S>> {
        if start >= self.len() || stride == 0 {
            return Err(TridiagError::IndexOutOfBounds {
                index: start,
                len: self.len(),
            });
        }
        let idx: Vec<usize> = (start..self.len()).step_by(stride).collect();
        let pick = |v: &[S]| idx.iter().map(|&i| v[i]).collect::<Vec<_>>();
        let mut sub = TridiagonalSystem {
            lower: pick(&self.lower),
            diag: pick(&self.diag),
            upper: pick(&self.upper),
            rhs: pick(&self.rhs),
        };
        let m = sub.len();
        sub.lower[0] = S::ZERO;
        sub.upper[m - 1] = S::ZERO;
        Ok(sub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TridiagonalSystem<f64> {
        // 4x4 from the paper's Fig. 1 shape: dominant diagonal.
        TridiagonalSystem::new(
            vec![0.0, 1.0, 1.0, 1.0],
            vec![4.0, 4.0, 4.0, 4.0],
            vec![1.0, 1.0, 1.0, 0.0],
            vec![6.0, 12.0, 18.0, 19.0],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths() {
        let err = TridiagonalSystem::<f64>::new(vec![0.0], vec![1.0, 2.0], vec![0.0, 0.0], vec![1.0, 1.0])
            .unwrap_err();
        assert!(matches!(
            err,
            TridiagError::LengthMismatch { what: "lower", .. }
        ));
        let err =
            TridiagonalSystem::<f64>::new(vec![], vec![], vec![], vec![]).unwrap_err();
        assert_eq!(err, TridiagError::EmptySystem);
    }

    #[test]
    fn boundary_coefficients_are_zeroed() {
        let s = TridiagonalSystem::new(
            vec![9.0, 1.0],
            vec![4.0, 4.0],
            vec![1.0, 9.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert_eq!(s.lower()[0], 0.0);
        assert_eq!(s.upper()[1], 0.0);
    }

    #[test]
    fn apply_matches_dense_multiply() {
        let s = sample();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        // Dense A for the sample system.
        let a = [
            [4.0, 1.0, 0.0, 0.0],
            [1.0, 4.0, 1.0, 0.0],
            [0.0, 1.0, 4.0, 1.0],
            [0.0, 0.0, 1.0, 4.0],
        ];
        let expect: Vec<f64> = a
            .iter()
            .map(|row| row.iter().zip(&x).map(|(r, xv)| r * xv).sum())
            .collect();
        assert_eq!(s.apply(&x).unwrap(), expect);
    }

    #[test]
    fn apply_rejects_bad_length() {
        let s = sample();
        assert!(matches!(
            s.apply(&[1.0]).unwrap_err(),
            TridiagError::LengthMismatch { what: "x", .. }
        ));
    }

    #[test]
    fn residual_zero_for_exact_solution() {
        let s = sample();
        // x = (1, 2, 3, 4) gives rhs (6, 12, 18, 19) exactly.
        let r = s.relative_residual(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn diagonal_dominance_detection() {
        assert!(sample().is_diagonally_dominant());
        let weak = TridiagonalSystem::new(
            vec![0.0, 2.0],
            vec![2.0, 2.0],
            vec![2.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert!(!weak.is_diagonally_dominant());
    }

    #[test]
    fn check_finite_flags_bad_rows() {
        let mut s = sample();
        s.rhs_mut()[2] = f64::NAN;
        assert_eq!(s.check_finite().unwrap_err(), TridiagError::NonFinite { row: 2 });
    }

    #[test]
    fn cast_round_trip_is_close() {
        let s = sample();
        let s32: TridiagonalSystem<f32> = s.cast();
        let back: TridiagonalSystem<f64> = s32.cast();
        for i in 0..s.len() {
            assert!((back.diag()[i] - s.diag()[i]).abs() < 1e-6);
        }
        assert_eq!(s32.len(), 4);
    }

    #[test]
    fn gather_strided_extracts_even_rows() {
        let s = sample();
        let even = s.gather_strided(0, 2).unwrap();
        assert_eq!(even.len(), 2);
        assert_eq!(even.diag(), &[4.0, 4.0]);
        assert_eq!(even.rhs(), &[6.0, 18.0]);
        // Boundary zeroing applied to the gathered system.
        assert_eq!(even.lower()[0], 0.0);
        assert_eq!(even.upper()[1], 0.0);
    }

    #[test]
    fn gather_strided_rejects_bad_start() {
        let s = sample();
        assert!(s.gather_strided(4, 2).is_err());
        assert!(s.gather_strided(0, 0).is_err());
    }

    #[test]
    fn single_unknown_system() {
        let s = TridiagonalSystem::new(vec![5.0], vec![2.0], vec![5.0], vec![8.0]).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.lower()[0], 0.0);
        assert_eq!(s.upper()[0], 0.0);
        assert_eq!(s.apply(&[4.0]).unwrap(), vec![8.0]);
    }

    #[test]
    fn zeros_builder() {
        let z = TridiagonalSystem::<f32>::zeros(3).unwrap();
        assert_eq!(z.len(), 3);
        assert!(z.diag().iter().all(|&v| v == 0.0));
        assert!(TridiagonalSystem::<f32>::zeros(0).is_err());
    }
}
