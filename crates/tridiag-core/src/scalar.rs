//! Floating-point scalar abstraction.
//!
//! The paper evaluates both single and double precision (Section IV);
//! every algorithm in this crate is generic over [`Scalar`] so the same
//! code path serves `f32` and `f64`.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real floating-point scalar usable by the tridiagonal algorithms.
///
/// This is a minimal, hand-rolled substitute for `num-traits` (which is
/// not on the offline dependency allowlist). Only the operations the
/// solvers actually need are included.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon for this precision.
    const EPSILON: Self;
    /// Number of bytes in the in-memory representation (4 or 8). Used by
    /// the GPU memory model to compute transaction sizes.
    const BYTES: usize;
    /// Short human-readable precision label (`"f32"` / `"f64"`).
    const NAME: &'static str;

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Maximum of two values (NaN-propagating like `f64::max` is fine).
    fn max(self, other: Self) -> Self;
    /// Minimum of two values.
    fn min(self, other: Self) -> Self;
    /// `true` if the value is finite (not NaN or infinite).
    fn is_finite(self) -> bool;
    /// Lossy conversion from `f64` (used by generators and tolerances).
    fn from_f64(v: f64) -> Self;
    /// Lossless widening to `f64` (used by residual accumulation).
    fn to_f64(self) -> f64;
    /// Convert from a usize exactly where possible.
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f32::EPSILON;
    const BYTES: usize = 4;
    const NAME: &'static str = "f32";

    #[inline(always)]
    fn abs(self) -> Self {
        self.abs()
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        self.sqrt()
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        self.max(other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        self.min(other)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        self.is_finite()
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f64::EPSILON;
    const BYTES: usize = 8;
    const NAME: &'static str = "f64";

    #[inline(always)]
    fn abs(self) -> Self {
        self.abs()
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        self.sqrt()
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        self.max(other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        self.min(other)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        self.is_finite()
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: Scalar>() {
        assert_eq!(S::ZERO + S::ONE, S::ONE);
        assert_eq!(S::ONE * S::ONE, S::ONE);
        assert!(S::EPSILON > S::ZERO);
        assert!((-S::ONE).abs() == S::ONE);
        assert_eq!(S::from_f64(4.0).sqrt(), S::from_f64(2.0));
        assert!(S::from_f64(1.0).is_finite());
        assert!(!(S::from_f64(1.0) / S::ZERO).is_finite());
        assert_eq!(S::from_usize(7).to_f64(), 7.0);
        assert_eq!(S::ONE.max(S::ZERO), S::ONE);
        assert_eq!(S::ONE.min(S::ZERO), S::ZERO);
    }

    #[test]
    fn f32_impl() {
        exercise::<f32>();
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f32::NAME, "f32");
    }

    #[test]
    fn f64_impl() {
        exercise::<f64>();
        assert_eq!(f64::BYTES, 8);
        assert_eq!(f64::NAME, "f64");
    }
}
