//! # tridiag-core
//!
//! Algorithms and data structures for solving tridiagonal systems, as a
//! Rust reproduction of Kim, Wu, Chang & Hwu, *"A Scalable Tridiagonal
//! Solver for GPUs"* (ICPP 2011).
//!
//! This crate is pure host-side math: every algorithm the paper uses or
//! compares against, in a form that is independent of any execution
//! substrate. The companion crates build on it:
//!
//! - `gpu-sim` — the GPU execution simulator,
//! - `tridiag-gpu` — the paper's kernels on that simulator,
//! - `cpu-ref` — CPU baselines (MKL `gtsv` stand-ins).
//!
//! ## Algorithm inventory
//!
//! | Module | Algorithm | Work | Parallel steps |
//! |---|---|---|---|
//! | [`thomas`] | Thomas (sequential Gaussian elimination) | `O(n)` | `2n − 1` |
//! | [`cr`] | Cyclic reduction | `O(n)` | `2·log2 n + 1` |
//! | [`pcr`] | Parallel cyclic reduction (full + incomplete k-step) | `O(n log n)` | `log2 n + 1` |
//! | [`rd`] | Recursive doubling (Stone) | `O(n log n)` | `3·log2 n` |
//! | [`tiled_pcr`] | Tiled PCR with the buffered sliding window | `O(k n)` | — |
//! | [`hybrid`] | k-step (tiled) PCR front end + Thomas back end | Table II | Table II |
//!
//! ## Quick example
//!
//! ```
//! use tridiag_core::{generators, thomas, pcr};
//!
//! // A diagonally dominant system of 64 unknowns.
//! let system = generators::dominant_random::<f64>(64, 42);
//!
//! // Direct sequential solve.
//! let x = thomas::solve_typed(&system).unwrap();
//! assert!(system.relative_residual(&x).unwrap() < 1e-12);
//!
//! // The paper's divide step: 3 PCR steps -> 8 independent subsystems,
//! // then a Thomas solve per subsystem gives the same answer.
//! let x2 = pcr::reduce(&system, 3).unwrap().solve_subsystems_thomas().unwrap();
//! assert!(system.relative_residual(&x2).unwrap() < 1e-12);
//! ```

#![warn(missing_docs)]

// Stencil and sweep loops index several parallel arrays by row number;
// iterator rewrites of those loops hide the row-at-a-time recurrence
// structure the algorithms are written to exhibit.
#![allow(clippy::needless_range_loop)]

pub mod batch;
pub mod condition;
pub mod cyclic;
pub mod cost_model;
pub mod cr;
pub mod error;
pub mod factored;
pub mod generators;
pub mod hybrid;
pub mod pcr;
pub mod pivoting;
pub mod rd;
pub mod scalar;
pub mod sliding_window;
pub mod streaming;
pub mod system;
pub mod thomas;
pub mod tiled_pcr;
pub mod transition;
pub mod verify;

pub use batch::{Layout, SystemBatch};
pub use error::{Result, TridiagError};
pub use scalar::Scalar;
pub use system::TridiagonalSystem;
