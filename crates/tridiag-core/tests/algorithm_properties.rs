//! Property tests over the whole algorithm set in `tridiag-core`.

use proptest::prelude::*;
use tridiag_core::generators::dominant_random;
use tridiag_core::{cost_model, cr, cyclic, factored, pcr, rd, thomas};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Thomas, CR, PCR and RD agree on arbitrary diagonally dominant
    /// systems of arbitrary (not just power-of-two) sizes.
    #[test]
    fn four_algorithms_agree(n in 1usize..700, seed in any::<u64>()) {
        let s = dominant_random::<f64>(n, seed);
        let reference = thomas::solve_typed(&s).unwrap();
        let scale = reference.iter().fold(1.0f64, |a, &b| a.max(b.abs()));
        for (name, result) in [
            ("cr", cr::solve(&s).unwrap()),
            ("pcr", pcr::solve(&s).unwrap()),
            ("rd", rd::solve(&s).unwrap()),
        ] {
            for i in 0..n {
                prop_assert!(
                    (result[i] - reference[i]).abs() < 1e-7 * scale,
                    "{} row {}: {} vs {}", name, i, result[i], reference[i]
                );
            }
        }
    }

    /// The factored solve equals the direct solve for any RHS.
    #[test]
    fn factored_equals_direct(n in 1usize..400, seed in any::<u64>(), seed2 in any::<u64>()) {
        let s = dominant_random::<f64>(n, seed);
        let f = factored::FactoredTridiagonal::new(&s).unwrap();
        // A different RHS than the one the system was built with.
        let d = dominant_random::<f64>(n, seed2).rhs().to_vec();
        let sys2 = tridiag_core::TridiagonalSystem::new(
            s.lower().to_vec(), s.diag().to_vec(), s.upper().to_vec(), d.clone()
        ).unwrap();
        let direct = thomas::solve_typed(&sys2).unwrap();
        let via_factor = f.solve(&d).unwrap();
        for i in 0..n {
            prop_assert!((direct[i] - via_factor[i]).abs() < 1e-9 * direct[i].abs().max(1.0));
        }
    }

    /// Sherman–Morrison cyclic solve always closes the loop: residual
    /// (including the corner entries) is tiny.
    #[test]
    fn cyclic_residual_small(n in 3usize..300, seed in any::<u64>()) {
        // Dominant core + modest corners keeps the reduced system safe.
        let s = dominant_random::<f64>(n, seed);
        let (a, mut b, c, d) = s.into_parts();
        for bi in &mut b {
            *bi += if *bi >= 0.0 { 0.6 } else { -0.6 };
        }
        let sys = cyclic::CyclicSystem::new(a, b, c, d, 0.25, -0.25).unwrap();
        let x = sys.solve_with(thomas::solve_typed).unwrap();
        prop_assert!(sys.relative_residual(&x).unwrap() < 1e-8);
    }

    /// Eq. 8/9 closed forms: f strictly increasing, g non-decreasing,
    /// and g(k+1) ≥ 2·g(k) for k ≥ 2 (exponential growth).
    #[test]
    fn redundancy_growth_laws(k in 1u32..20) {
        prop_assert!(cost_model::halo_elements(k + 1) > cost_model::halo_elements(k));
        let g0 = cost_model::redundant_eliminations(k);
        let g1 = cost_model::redundant_eliminations(k + 1);
        prop_assert!(g1 >= g0);
        if k >= 2 {
            prop_assert!(g1 >= 2 * g0);
        }
    }

    /// Table II hybrid cost: monotone in M for fixed k, and k = 0
    /// reduces to the Thomas-per-wave expression.
    #[test]
    fn hybrid_cost_laws(
        m in 1u64..1_000_000,
        n_exp in 6u32..22,
        k in 0u32..6,
        p in prop::sample::select(vec![1024u64, 23040, 65536]),
    ) {
        let n = 1u64 << n_exp;
        prop_assume!((1u64 << k) <= n);
        let c1 = cost_model::hybrid_cost(m, n, p, k);
        let c2 = cost_model::hybrid_cost(m * 2, n, p, k);
        prop_assert!(c2 >= c1 * 0.999, "doubling M cannot cut cost: {} -> {}", c1, c2);
        prop_assert!(c1 > 0.0);
    }

    /// Incomplete PCR subsystems partition the row set exactly.
    #[test]
    fn subsystems_partition_rows(n in 8usize..300, k in 1u32..4, seed in any::<u64>()) {
        prop_assume!((1usize << k) <= n);
        let s = dominant_random::<f64>(n, seed);
        let red = pcr::reduce(&s, k).unwrap();
        let mut covered = vec![false; n];
        for j in 0..red.num_subsystems() {
            let sub = red.subsystem(j).unwrap();
            let mut count = 0usize;
            for (t, _) in (j..n).step_by(red.stride()).enumerate() {
                let row = j + t * red.stride();
                prop_assert!(!covered[row], "row {} covered twice", row);
                covered[row] = true;
                count += 1;
            }
            prop_assert_eq!(count, sub.len());
        }
        prop_assert!(covered.into_iter().all(|c| c), "every row covered");
    }
}
