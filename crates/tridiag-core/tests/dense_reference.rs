//! Cross-validation of every solver against an independent dense
//! Gaussian-elimination reference (O(n³), test-only): the band solvers
//! share *no* code with this one, so agreement is strong evidence of
//! correctness rather than self-consistency.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tridiag_core::generators::dominant_random;
use tridiag_core::{cr, cyclic, pcr, pivoting, rd, thomas, TridiagonalSystem};

/// Dense Gaussian elimination with partial pivoting (textbook, O(n³)).
// The elimination loop reads row `col` while mutating row `row`; an
// iterator form would need a split borrow that obscures the textbook
// shape this reference deliberately keeps.
#[allow(clippy::needless_range_loop)]
fn dense_solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot search.
        let piv = (col..n).max_by(|&i, &j| {
            a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap()
        })?;
        if a[piv][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, piv);
        b.swap(col, piv);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

fn densify(s: &TridiagonalSystem<f64>) -> (Vec<Vec<f64>>, Vec<f64>) {
    let n = s.len();
    let (a, b, c, d) = s.parts();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        m[i][i] = b[i];
        if i > 0 {
            m[i][i - 1] = a[i];
        }
        if i + 1 < n {
            m[i][i + 1] = c[i];
        }
    }
    (m, d.to_vec())
}

fn assert_close(x: &[f64], y: &[f64], tol: f64, ctx: &str) {
    let scale = y.iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
    for i in 0..x.len() {
        assert!(
            (x[i] - y[i]).abs() < tol * scale,
            "{ctx} row {i}: {} vs {}",
            x[i],
            y[i]
        );
    }
}

#[test]
fn band_solvers_agree_with_dense_elimination() {
    for n in [1usize, 2, 3, 17, 64, 200] {
        let s = dominant_random::<f64>(n, 1000 + n as u64);
        let (m, b) = densify(&s);
        let dense = dense_solve(m, b).expect("dominant is nonsingular");
        assert_close(&thomas::solve_typed(&s).unwrap(), &dense, 1e-9, "thomas");
        assert_close(&cr::solve(&s).unwrap(), &dense, 1e-8, "cr");
        assert_close(&pcr::solve(&s).unwrap(), &dense, 1e-8, "pcr");
        assert_close(&rd::solve(&s).unwrap(), &dense, 1e-7, "rd");
        let lu = pivoting::PivotedLu::new(&s).unwrap();
        assert_close(&lu.solve(s.rhs()).unwrap(), &dense, 1e-9, "pivoted");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The pivoting solver agrees with dense elimination even on wild,
    /// non-dominant matrices (where the pivot-free algorithms have no
    /// guarantees at all).
    #[test]
    fn pivoted_lu_matches_dense_on_wild_matrices(n in 2usize..60, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = || rng.gen_range(-3.0f64..3.0);
        let s = TridiagonalSystem::new(
            (0..n).map(|_| g()).collect(),
            (0..n).map(|_| g()).collect(),
            (0..n).map(|_| g()).collect(),
            (0..n).map(|_| g()).collect(),
        ).unwrap();
        let (m, b) = densify(&s);
        let Some(dense) = dense_solve(m, b) else { return Ok(()); };
        // Only compare when the matrix is reasonably conditioned — both
        // solvers lose digits together on near-singular draws.
        let scale = dense.iter().fold(0.0f64, |a, v| a.max(v.abs()));
        prop_assume!(scale < 1e6);
        if let Ok(lu) = pivoting::PivotedLu::new(&s) {
            let x = lu.solve(s.rhs()).unwrap();
            for i in 0..n {
                prop_assert!(
                    (x[i] - dense[i]).abs() < 1e-6 * scale.max(1.0),
                    "row {}: {} vs {}", i, x[i], dense[i]
                );
            }
        }
    }

    /// Cyclic systems: Sherman–Morrison against dense elimination of the
    /// full matrix with corners.
    #[test]
    fn cyclic_matches_dense(n in 3usize..60, seed in any::<u64>()) {
        let core = dominant_random::<f64>(n, seed);
        let (a, mut b, c, d) = core.into_parts();
        for bi in &mut b { *bi += if *bi >= 0.0 { 0.7 } else { -0.7 }; }
        let (tr, bl) = (0.3, -0.2);
        let sys = cyclic::CyclicSystem::new(a.clone(), b.clone(), c.clone(), d.clone(), tr, bl).unwrap();
        // Dense matrix including the corner entries.
        let mut m = vec![vec![0.0; n]; n];
        for i in 0..n {
            m[i][i] = b[i];
            if i > 0 { m[i][i - 1] = a[i]; }
            if i + 1 < n { m[i][i + 1] = c[i]; }
        }
        m[0][n - 1] += tr;
        m[n - 1][0] += bl;
        let dense = dense_solve(m, d).expect("shifted dominant");
        let x = sys.solve().unwrap();
        let scale = dense.iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
        for i in 0..n {
            prop_assert!((x[i] - dense[i]).abs() < 1e-7 * scale);
        }
    }
}
