//! Property tests for the layout dimension: `Layout::index` is a
//! bijection onto `0..m*n` for both layouts, and `to_layout`
//! round-trips are bit-exact identities.

use proptest::prelude::*;
use tridiag_core::generators::random_batch;
use tridiag_core::Layout;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Layout::index` hits every flat slot exactly once — injective on
    /// the `(sys, row)` grid and onto `0..m*n` — for both layouts.
    #[test]
    fn index_is_a_bijection(m in 1usize..80, n in 1usize..80) {
        for layout in [Layout::Contiguous, Layout::Interleaved] {
            let mut seen = vec![false; m * n];
            for sys in 0..m {
                for row in 0..n {
                    let i = layout.index(sys, row, m, n);
                    prop_assert!(i < m * n, "{layout:?}: index {i} out of range");
                    prop_assert!(
                        !seen[i],
                        "{layout:?}: ({sys}, {row}) collides at flat index {i}"
                    );
                    seen[i] = true;
                }
            }
        }
    }

    /// The two layouts are inverse permutations of each other:
    /// `Interleaved::index(sys, row)` and `Contiguous::index(sys, row)`
    /// describe the same cell, so chasing one through the other's
    /// inverse returns the original coordinates.
    #[test]
    fn layouts_are_inverse_permutations(m in 1usize..80, n in 1usize..80, sys_seed in any::<usize>(), row_seed in any::<usize>()) {
        let sys = sys_seed % m;
        let row = row_seed % n;
        let i = Layout::Interleaved.index(sys, row, m, n);
        prop_assert_eq!((i % m, i / m), (sys, row));
        let c = Layout::Contiguous.index(sys, row, m, n);
        prop_assert_eq!((c / n, c % n), (sys, row));
    }

    /// `to_layout` there-and-back is the bit-exact identity, and a
    /// conversion preserves every `(sys, row)` cell.
    #[test]
    fn to_layout_round_trips(m in 1usize..48, n in 1usize..48, seed in any::<u64>()) {
        let contig = random_batch::<f64>(m, n, seed);
        prop_assert_eq!(contig.layout(), Layout::Contiguous);
        let inter = contig.to_layout(Layout::Interleaved);
        prop_assert_eq!(inter.layout(), Layout::Interleaved);
        for sys in 0..m {
            for row in 0..n {
                prop_assert_eq!(contig.row(sys, row), inter.row(sys, row),
                    "cell ({}, {}) drifted in conversion", sys, row);
            }
        }
        let back = inter.to_layout(Layout::Contiguous);
        prop_assert_eq!(&back, &contig, "round trip is not the identity");
        // Same-layout conversion is a plain clone.
        prop_assert_eq!(&contig.to_layout(Layout::Contiguous), &contig);
        prop_assert_eq!(&inter.to_layout(Layout::Interleaved), &inter);
    }
}
