//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - **dependency caching**: sliding-window streaming vs naive tiling
//!   vs partitioned streaming (host wall-clock tracks the extra work the
//!   redundancy costs — Eqs. 8–9 made measurable);
//! - **interleaving**: interleaved vs contiguous batch layout for the
//!   batched CPU solver (cache behaviour on the host) and the layout
//!   conversion cost itself;
//! - **scratch reuse**: Thomas with and without reusing scratch buffers
//!   across solves (the API-design choice behind `ThomasScratch`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tridiag_core::generators::{dominant_random, random_batch};
use tridiag_core::thomas::{self, ThomasScratch};
use tridiag_core::{tiled_pcr, Layout};

fn bench_tiling_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiling_ablation");
    let n = 65536usize;
    let k = 5u32;
    let tile = 64usize;
    let system = dominant_random::<f64>(n, 21);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("sliding_window", |b| {
        b.iter(|| tiled_pcr::reduce_streamed(&system, k, tile).unwrap())
    });
    group.bench_function("naive_tiled", |b| {
        b.iter(|| tiled_pcr::reduce_naive_tiled(&system, k, tile).unwrap())
    });
    group.bench_function("partitioned_x8", |b| {
        b.iter(|| tiled_pcr::reduce_partitioned(&system, k, 8).unwrap())
    });
    group.finish();
}

fn bench_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout_ablation");
    let (m, n) = (256usize, 512usize);
    for layout in [Layout::Contiguous, Layout::Interleaved] {
        let batch = random_batch::<f64>(m, n, 11).to_layout(layout);
        group.bench_with_input(
            BenchmarkId::new("cpu_seq_solve", format!("{layout:?}")),
            &batch,
            |b, batch| b.iter(|| cpu_ref::solve_batch_sequential(batch).unwrap()),
        );
    }
    let batch = random_batch::<f64>(m, n, 11);
    group.bench_function("layout_conversion", |b| {
        b.iter(|| batch.to_layout(Layout::Interleaved))
    });
    group.finish();
}

fn bench_scratch_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("scratch_ablation");
    let n = 4096usize;
    let system = dominant_random::<f64>(n, 31);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("fresh_allocs", |b| {
        b.iter(|| thomas::solve_typed(&system).unwrap())
    });
    group.bench_function("reused_scratch", |b| {
        let mut scratch = ThomasScratch::new(n);
        let mut x = vec![0.0f64; n];
        b.iter(|| {
            thomas::solve_into(&system, &mut x, &mut scratch).unwrap();
            x[0]
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tiling_strategies,
    bench_layouts,
    bench_scratch_reuse
);
criterion_main!(benches);
