//! Host wall-clock comparison of the algorithm implementations in
//! `tridiag-core`: Thomas vs CR vs PCR vs RD vs the k-step hybrid.
//!
//! These are real measurements of the Rust code on the build machine —
//! complementary to the modeled GTX480 numbers in the figure binaries.
//! Expected ordering on one core: Thomas < CR < hybrid < PCR ≈ RD
//! (the parallel algorithms pay their extra-work factors with nobody to
//! amortise them — exactly why the paper pairs PCR with hardware
//! parallelism).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tridiag_core::generators::dominant_random;
use tridiag_core::{cr, hybrid, pcr, rd, thomas, tiled_pcr};

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("host_algorithms");
    for n in [512usize, 4096, 32768] {
        let system = dominant_random::<f64>(n, 42);
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("thomas", n), &system, |b, s| {
            b.iter(|| thomas::solve_typed(s).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("cr", n), &system, |b, s| {
            b.iter(|| cr::solve(s).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pcr_full", n), &system, |b, s| {
            b.iter(|| pcr::solve(s).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rd", n), &system, |b, s| {
            b.iter(|| rd::solve(s).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("hybrid_k5", n), &system, |b, s| {
            let cfg = hybrid::HybridConfig {
                policy: tridiag_core::transition::TransitionPolicy::Fixed(5),
                sub_tile_scale: 1,
            };
            b.iter(|| hybrid::solve(s, cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("tiled_pcr_k5", n), &system, |b, s| {
            b.iter(|| tiled_pcr::reduce_streamed(s, 5, 32).unwrap())
        });
    }
    group.finish();
}

fn bench_precisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("precision");
    let n = 8192usize;
    let s64 = dominant_random::<f64>(n, 7);
    let s32 = dominant_random::<f32>(n, 7);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("thomas_f64", |b| b.iter(|| thomas::solve_typed(&s64).unwrap()));
    group.bench_function("thomas_f32", |b| b.iter(|| thomas::solve_typed(&s32).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_precisions);
criterion_main!(benches);
