//! Simulator throughput: how fast the functional GPU simulator itself
//! executes each kernel (host wall-clock per simulated solve).
//!
//! This is a benchmark *of the simulator*, not of the modeled device —
//! it documents the cost of running the figure harness and guards
//! against regressions in the block-execution hot path (the dense
//! coalescing/bank analyzers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tridiag_core::generators::random_batch;
use tridiag_core::transition::TransitionPolicy;
use tridiag_gpu::solver::{GpuSolverConfig, GpuTridiagSolver, MappingVariant};

fn solver_with_k(k: u32, fused: bool) -> GpuTridiagSolver {
    GpuTridiagSolver::new(
        gpu_sim::DeviceSpec::gtx480(),
        GpuSolverConfig {
            policy: TransitionPolicy::Fixed(k),
            fused,
            mapping: if fused {
                MappingVariant::BlockPerSystem
            } else {
                MappingVariant::Auto
            },
            ..Default::default()
        },
    )
}

fn bench_sim_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_kernels");
    group.sample_size(10);

    let (m, n) = (64usize, 2048usize);
    let batch = random_batch::<f64>(m, n, 3);
    group.throughput(Throughput::Elements((m * n) as u64));

    group.bench_with_input(BenchmarkId::new("p_thomas_only_k0", m), &batch, |b, batch| {
        let solver = solver_with_k(0, false);
        b.iter(|| solver.solve_batch(batch).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("hybrid_split_k6", m), &batch, |b, batch| {
        let solver = solver_with_k(6, false);
        b.iter(|| solver.solve_batch(batch).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("hybrid_fused_k6", m), &batch, |b, batch| {
        let solver = solver_with_k(6, true);
        b.iter(|| solver.solve_batch(batch).unwrap())
    });
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_baselines");
    group.sample_size(10);
    let batch = random_batch::<f64>(8, 2048, 5);
    group.bench_function("davidson", |b| {
        b.iter(|| tridiag_gpu::davidson::solve_batch(&gpu_sim::DeviceSpec::gtx480(), &batch).unwrap())
    });
    let small = random_batch::<f64>(8, 512, 5);
    group.bench_function("zhang_in_shared", |b| {
        b.iter(|| tridiag_gpu::zhang::solve_batch(&gpu_sim::DeviceSpec::gtx480(), &small, None).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_sim_kernels, bench_baselines);
criterion_main!(benches);
