//! Host wall-clock scaling of the CPU reference solvers (the MKL
//! stand-ins): sequential vs thread-pooled batched Thomas.
//!
//! Expected shape on a multi-core host: the threaded solver approaches
//! `min(workers, M)`-fold speedup for large batches and *matches* the
//! sequential path at `M = 1` (mirroring MKL's no-threading-within-one-
//! system behaviour the paper footnotes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cpu_ref::{solve_batch_interleaved, solve_batch_sequential, solve_batch_threaded, ThreadPool};
use tridiag_core::generators::random_batch;
use tridiag_core::Layout;

fn bench_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_batched");
    let n = 512usize;
    for m in [1usize, 8, 64, 512] {
        let batch = random_batch::<f64>(m, n, 5);
        group.throughput(Throughput::Elements((m * n) as u64));
        group.bench_with_input(BenchmarkId::new("sequential", m), &batch, |b, batch| {
            b.iter(|| solve_batch_sequential(batch).unwrap())
        });
        let pool = ThreadPool::per_cpu();
        group.bench_with_input(BenchmarkId::new("threaded", m), &batch, |b, batch| {
            b.iter(|| solve_batch_threaded(batch, &pool).unwrap())
        });
        let inter = batch.to_layout(Layout::Interleaved);
        group.bench_with_input(
            BenchmarkId::new("interleaved_vectorised", m),
            &inter,
            |b, batch| b.iter(|| solve_batch_interleaved(batch).unwrap()),
        );
    }
    group.finish();
}

fn bench_pool_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_overhead");
    // Tiny batch: fork/join overhead dominates — documents when the
    // threaded path is worth it.
    let batch = random_batch::<f64>(4, 32, 9);
    let pool = ThreadPool::new(4);
    group.bench_function("tiny_batch_threaded", |b| {
        b.iter(|| solve_batch_threaded(&batch, &pool).unwrap())
    });
    group.bench_function("tiny_batch_sequential", |b| {
        b.iter(|| solve_batch_sequential(&batch).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_batched, bench_pool_overhead);
criterion_main!(benches);
