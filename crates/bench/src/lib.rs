//! Reproduction harness utilities shared by the per-figure binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper: it sweeps the paper's parameter grid, runs the modeled
//! GPU solver / baselines / CPU model, verifies every solution's
//! residual, prints an aligned text table and writes a CSV under
//! `results/`.

pub mod history;
pub mod plot;
pub mod series;
pub mod table;

/// Parse the common CLI flags of the figure binaries: `--fast` shrinks
/// the sweep for smoke testing; `--out DIR` overrides the CSV directory.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Reduced problem sizes for CI/smoke runs.
    pub fast: bool,
    /// Output directory for CSV files.
    pub out_dir: std::path::PathBuf,
}

impl HarnessArgs {
    /// Parse from `std::env::args`.
    pub fn parse() -> Self {
        let mut fast = false;
        let mut out_dir = std::path::PathBuf::from("results");
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--fast" => fast = true,
                "--out" => {
                    if let Some(d) = args.next() {
                        out_dir = d.into();
                    }
                }
                other => eprintln!("ignoring unknown argument {other:?}"),
            }
        }
        Self { fast, out_dir }
    }

    /// Write `rows` as CSV to `<out_dir>/<name>.csv` (creating the
    /// directory), echoing the path.
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.out_dir)?;
        let path = self.out_dir.join(format!("{name}.csv"));
        let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
        body.push_str(header);
        body.push('\n');
        for r in rows {
            body.push_str(r);
            body.push('\n');
        }
        std::fs::write(&path, body)?;
        println!("\n[csv] {}", path.display());
        Ok(())
    }
}
