//! Minimal ASCII chart renderer for the figure CSVs — log-log scatter
//! with one glyph per series, so the paper's curve *shapes* (crossovers,
//! flat regions, slope breaks) can be eyeballed straight from a
//! terminal.

/// One named data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Glyph used for the series' points.
    pub glyph: char,
    /// `(x, y)` samples; non-positive values are skipped (log axes).
    pub points: Vec<(f64, f64)>,
}

/// Render a log-log ASCII chart of the given series.
///
/// `width`/`height` are the plotting-area dimensions in characters;
/// axes and legend are added around it.
pub fn render_loglog(series: &[Series], width: usize, height: usize) -> String {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|&(x, y)| x > 0.0 && y > 0.0)
        .collect();
    if pts.is_empty() || width < 8 || height < 4 {
        return String::from("(no plottable data)\n");
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    // Pad degenerate ranges.
    if x0 == x1 {
        x1 = x0 * 2.0;
    }
    if y0 == y1 {
        y1 = y0 * 2.0;
    }
    let (lx0, lx1) = (x0.log10(), x1.log10());
    let (ly0, ly1) = (y0.log10(), y1.log10());

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            if x <= 0.0 || y <= 0.0 {
                continue;
            }
            let cx = ((x.log10() - lx0) / (lx1 - lx0) * (width - 1) as f64).round() as usize;
            let cy = ((y.log10() - ly0) / (ly1 - ly0) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            // First-writer keeps the cell unless it's the same series
            // re-plotting (later series show through as their glyph on
            // exact overlap anyway).
            if grid[row][col] == ' ' {
                grid[row][col] = s.glyph;
            } else if grid[row][col] != s.glyph {
                grid[row][col] = '*'; // overlap marker
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!("y: {y0:.3e} .. {y1:.3e} (log)\n"));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push('\n');
    out.push_str(&format!("x: {x0:.3e} .. {x1:.3e} (log)\n"));
    for s in series {
        out.push_str(&format!("  {} {}\n", s.glyph, s.name));
    }
    out
}

/// Parse a harness CSV (`results/*.csv`): first line is the header;
/// returns `(header_fields, rows)`.
pub fn parse_csv(text: &str) -> (Vec<String>, Vec<Vec<String>>) {
    let mut lines = text.lines();
    let header: Vec<String> = lines
        .next()
        .unwrap_or("")
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let rows = lines
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split(',').map(|s| s.trim().to_string()).collect())
        .collect();
    (header, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_distinct_series() {
        let series = vec![
            Series {
                name: "linear".into(),
                glyph: 'o',
                points: (1..=10).map(|i| (i as f64, 10.0 * i as f64)).collect(),
            },
            Series {
                name: "flat".into(),
                glyph: 'x',
                points: (1..=10).map(|i| (i as f64, 5.0)).collect(),
            },
        ];
        let chart = render_loglog(&series, 40, 12);
        assert!(chart.contains('o'));
        assert!(chart.contains('x'));
        assert!(chart.contains("linear"));
        assert!(chart.contains("x: 1.000e0"));
        // The flat series stays on one row.
        let x_rows: Vec<&str> = chart.lines().filter(|l| l.contains('x') && l.starts_with('|')).collect();
        assert_eq!(x_rows.len(), 1, "{chart}");
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        assert!(render_loglog(&[], 40, 10).contains("no plottable"));
        let s = vec![Series {
            name: "dot".into(),
            glyph: 'd',
            points: vec![(1.0, 1.0)],
        }];
        assert!(render_loglog(&s, 40, 10).contains('d'));
        let neg = vec![Series {
            name: "neg".into(),
            glyph: 'n',
            points: vec![(-1.0, 2.0)],
        }];
        assert!(render_loglog(&neg, 40, 10).contains("no plottable"));
    }

    #[test]
    fn csv_parsing() {
        let (h, rows) = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
        assert_eq!(h, vec!["a", "b", "c"]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][2], "6");
    }
}
