//! Append-only perf ledger: one JSONL line per baseline run (schema
//! `tridiag.bench_history/v1`), shared by the baseline binaries via
//! their `--history FILE` flag.
//!
//! The committed `BENCH_*.json` files answer "did perf drift from the
//! accepted baseline?"; the ledger answers "how did it get here?" —
//! every run appends its headline numbers, so regressions that were
//! individually inside tolerance but compound over time stay visible.
//! Entries carry a monotonically increasing per-bench `seq` instead of
//! a timestamp: the modeled axes have no wall clock, and a counter
//! keeps the file deterministic and diff-friendly.
//!
//! One line per run:
//!
//! ```text
//! {"schema":"tridiag.bench_history/v1","bench":"service","seq":3,
//!  "points":[{"label":"w0","value":34046.0},...]}
//! ```

use gpu_sim::json::schema::Check;
use gpu_sim::json::{parse, Json};

/// Schema identifier carried by every ledger line.
pub const HISTORY_SCHEMA: &str = "tridiag.bench_history/v1";

/// One ledger line: a bench name, its per-bench sequence number, and
/// the run's headline `(label, value)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Which baseline produced the entry (`"solver"`, `"service"`).
    pub bench: String,
    /// Per-bench sequence number, 1-based, strictly increasing.
    pub seq: u64,
    /// Headline metrics, in the bench's fixed sweep order.
    pub points: Vec<(String, f64)>,
}

impl HistoryEntry {
    /// Serialize as one ledger line (no trailing newline).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str(HISTORY_SCHEMA)),
            ("bench".into(), Json::str(self.bench.clone())),
            ("seq".into(), Json::num(self.seq as f64)),
            (
                "points".into(),
                Json::Arr(
                    self.points
                        .iter()
                        .map(|(label, value)| {
                            Json::Obj(vec![
                                ("label".into(), Json::str(label.clone())),
                                ("value".into(), Json::num(*value)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Validate one parsed ledger line against the schema. Returns every
/// problem found (empty = valid).
pub fn validate_history_line(doc: &Json) -> Vec<String> {
    let mut c = Check::new(doc);
    c.schema(HISTORY_SCHEMA);
    c.req_str("bench");
    c.req_uint("seq");
    let points = c.req_arr("points");
    for (i, p) in points.iter().enumerate() {
        let mut pc = c.child(p, format!("points[{i}] "));
        pc.req_str("label");
        pc.req_num("value");
        c.absorb(pc);
    }
    c.finish()
}

/// Parse a whole ledger strictly: every line must validate, and each
/// bench's `seq` must increase strictly in file order. Returns every
/// problem found instead of the entries when anything is off.
pub fn parse_history(text: &str) -> Result<Vec<HistoryEntry>, Vec<String>> {
    let mut problems = Vec::new();
    let mut entries = Vec::new();
    let mut last_seq: std::collections::BTreeMap<String, u64> = Default::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ctx = format!("line {}: ", lineno + 1);
        let doc = match parse(line) {
            Ok(d) => d,
            Err(e) => {
                problems.push(format!("{ctx}{e}"));
                continue;
            }
        };
        let line_problems = validate_history_line(&doc);
        if !line_problems.is_empty() {
            problems.extend(line_problems.into_iter().map(|p| format!("{ctx}{p}")));
            continue;
        }
        let bench = doc.get("bench").and_then(Json::as_str).unwrap_or_default();
        let seq = doc.get("seq").and_then(Json::as_num).unwrap_or(0.0) as u64;
        if let Some(&prev) = last_seq.get(bench) {
            if seq <= prev {
                problems.push(format!(
                    "{ctx}bench {bench:?} seq {seq} does not increase past {prev}"
                ));
            }
        }
        last_seq.insert(bench.to_string(), seq);
        let points = doc
            .get("points")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|p| {
                (
                    p.get("label")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    p.get("value").and_then(Json::as_num).unwrap_or(f64::NAN),
                )
            })
            .collect();
        entries.push(HistoryEntry {
            bench: bench.to_string(),
            seq,
            points,
        });
    }
    if problems.is_empty() {
        Ok(entries)
    } else {
        Err(problems)
    }
}

/// Append one run's headline points for `bench` to the ledger at
/// `path` (created if missing; an existing ledger must parse
/// strictly). Returns the appended entry and the bench's previous
/// latest entry, for diffing.
pub fn append(
    path: &str,
    bench: &str,
    points: Vec<(String, f64)>,
) -> Result<(HistoryEntry, Option<HistoryEntry>), String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("reading {path}: {e}")),
    };
    let entries = parse_history(&text)
        .map_err(|p| format!("{path} is corrupt:\n  - {}", p.join("\n  - ")))?;
    let prev = entries.into_iter().rfind(|e| e.bench == bench);
    let entry = HistoryEntry {
        bench: bench.to_string(),
        seq: prev.as_ref().map_or(1, |p| p.seq + 1),
        points,
    };
    let mut line = entry.to_json().to_string();
    line.push('\n');
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("opening {path}: {e}"))?;
    file.write_all(line.as_bytes())
        .map_err(|e| format!("writing {path}: {e}"))?;
    Ok((entry, prev))
}

/// Report-only diff of `fresh` against the bench's previous entry:
/// one aligned line per label with the relative delta. Labels missing
/// from either side are called out.
pub fn diff_lines(prev: &HistoryEntry, fresh: &HistoryEntry) -> Vec<String> {
    let mut out = Vec::new();
    for (label, value) in &fresh.points {
        match prev.points.iter().find(|(l, _)| l == label) {
            Some((_, p)) if *p != 0.0 => {
                let delta = (value - p) / p;
                out.push(format!(
                    "{label:<28} {p:>14.3} -> {value:>14.3} {:>+8.2}%",
                    delta * 100.0
                ));
            }
            Some(_) => out.push(format!("{label:<28} {:>14} -> {value:>14.3}", "zero")),
            None => out.push(format!("{label:<28} {:>14} -> {value:>14.3}", "new")),
        }
    }
    for (label, _) in &prev.points {
        if !fresh.points.iter().any(|(l, _)| l == label) {
            out.push(format!("{label:<28} dropped from the sweep"));
        }
    }
    out
}

/// The `--history FILE` hook the baseline binaries share: append the
/// fresh headline points and print the report-only diff against the
/// previous run (never fails the run — the ledger is advisory; I/O or
/// corruption problems go to stderr and are reported via the return).
pub fn record(path: &str, bench: &str, points: Vec<(String, f64)>) -> bool {
    match append(path, bench, points) {
        Ok((entry, Some(prev))) => {
            println!(
                "\n[history] {path}: {bench} seq {} vs seq {}:",
                entry.seq, prev.seq
            );
            for line in diff_lines(&prev, &entry) {
                println!("  {line}");
            }
            true
        }
        Ok((entry, None)) => {
            println!("\n[history] {path}: {bench} seq {} (first entry)", entry.seq);
            true
        }
        Err(e) => {
            eprintln!("[history] {e}");
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(bench: &str, seq: u64, v: f64) -> HistoryEntry {
        HistoryEntry {
            bench: bench.into(),
            seq,
            points: vec![("a".into(), v), ("b".into(), 2.0 * v)],
        }
    }

    #[test]
    fn lines_round_trip_and_validate() {
        let e = entry("service", 3, 10.5);
        let text = e.to_json().to_string();
        let doc = parse(&text).unwrap();
        assert!(validate_history_line(&doc).is_empty());
        let parsed = parse_history(&text).unwrap();
        assert_eq!(parsed, vec![e]);
    }

    #[test]
    fn parse_rejects_bad_lines_and_stale_seq() {
        let bad = r#"{"schema":"tridiag.bench_history/v0","bench":"x","seq":1,"points":[]}"#;
        assert!(parse_history(bad).is_err());
        let stale = format!(
            "{}\n{}\n",
            entry("solver", 2, 1.0).to_json(),
            entry("solver", 2, 1.0).to_json()
        );
        let problems = parse_history(&stale).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("does not increase")),
            "{problems:?}"
        );
        // Independent benches keep independent counters.
        let mixed = format!(
            "{}\n{}\n",
            entry("solver", 2, 1.0).to_json(),
            entry("service", 1, 1.0).to_json()
        );
        assert_eq!(parse_history(&mixed).unwrap().len(), 2);
    }

    #[test]
    fn append_assigns_per_bench_seq() {
        let dir = std::env::temp_dir().join("tridiag_history_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        let (first, prev) = append(path, "solver", vec![("a".into(), 1.0)]).unwrap();
        assert_eq!((first.seq, prev), (1, None));
        let (second, prev) = append(path, "solver", vec![("a".into(), 2.0)]).unwrap();
        assert_eq!(second.seq, 2);
        assert_eq!(prev.unwrap().seq, 1);
        let (other, prev) = append(path, "service", vec![("w0".into(), 5.0)]).unwrap();
        assert_eq!((other.seq, prev), (1, None));

        let entries = parse_history(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(entries.len(), 3);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn diff_reports_deltas_and_membership() {
        let prev = HistoryEntry {
            bench: "s".into(),
            seq: 1,
            points: vec![("a".into(), 100.0), ("gone".into(), 1.0)],
        };
        let fresh = HistoryEntry {
            bench: "s".into(),
            seq: 2,
            points: vec![("a".into(), 101.0), ("new".into(), 3.0)],
        };
        let lines = diff_lines(&prev, &fresh);
        assert!(lines[0].contains("+1.00%"), "{lines:?}");
        assert!(lines[1].contains("new"), "{lines:?}");
        assert!(lines[2].contains("dropped"), "{lines:?}");
    }
}
