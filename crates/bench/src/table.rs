//! Minimal aligned-text table printer for the figure binaries.

/// A simple column-aligned table accumulated row by row.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<I: IntoIterator<Item = T>, T: Into<String>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header arity).
    pub fn row<I: IntoIterator<Item = T>, T: Into<String>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity must match header"
        );
        self.rows.push(row);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with right-aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = h.chars().count();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{:>w$}", cell, w = width[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(
            &width
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// The rows as CSV lines (no header).
    pub fn csv_rows(&self) -> Vec<String> {
        self.rows.iter().map(|r| r.join(",")).collect()
    }

    /// The header as a CSV line.
    pub fn csv_header(&self) -> String {
        self.header.join(",")
    }
}

/// Format microseconds compactly (µs below 1 ms, else ms).
pub fn fmt_us(us: f64) -> String {
    if us < 1000.0 {
        format!("{us:.1}")
    } else {
        format!("{:.0}", us)
    }
}

/// Format a speedup ratio.
pub fn fmt_x(r: f64) -> String {
    format!("{r:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["M", "time"]);
        t.row(["64", "123.4"]);
        t.row(["16384", "9.9"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].ends_with("time"));
        assert!(lines[2].ends_with("123.4"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_round_trip() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.csv_header(), "a,b");
        assert_eq!(t.csv_rows(), vec!["1,2".to_string()]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["1"]);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_us(12.34), "12.3");
        assert_eq!(fmt_us(12345.6), "12346");
        assert_eq!(fmt_x(8.25), "8.2x");
    }
}
