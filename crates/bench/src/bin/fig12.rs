//! Figure 12 reproduction: execution time vs number of systems `M` for
//! fixed system sizes `N ∈ {512, 2048, 16384}`, double precision.
//!
//! Series: MKL (sequential) and MKL (multithreaded) from the analytic
//! i7-975 model, "Ours (GTX480)" from the simulator. The shapes to
//! check against the paper: CPU curves perfectly linear in `M`; ours
//! flat/sub-linear while the GPU is under-filled (`M ≲ 4096`, with
//! slope changes at the Table III k-transitions), then linear with a
//! much smaller slope — crossing the CPU curves and reaching ~8x over
//! multithreaded MKL at large `M`.
//!
//! Run: `cargo run --release -p bench --bin fig12 [-- --fast]`

use bench::series;
use bench::table::{fmt_us, fmt_x, TextTable};
use bench::HarnessArgs;

fn sweep(n: usize, m_max: usize) -> Vec<String> {
    println!("\n== Fig. 12: N = {n} (double precision) ==");
    let mut t = TextTable::new([
        "M",
        "MKL seq [us]",
        "MKL mt [us]",
        "Ours [us]",
        "k",
        "vs seq",
        "vs mt",
    ]);
    let mut csv = Vec::new();
    let mut m = 64usize;
    while m <= m_max {
        let seq = series::mkl_seq_us(m, n, 8);
        let mt = series::mkl_mt_us(m, n, 8);
        let (ours, report) = series::ours_us::<f64>(m, n);
        t.row([
            m.to_string(),
            fmt_us(seq),
            fmt_us(mt),
            fmt_us(ours),
            report.k.to_string(),
            fmt_x(seq / ours),
            fmt_x(mt / ours),
        ]);
        csv.push(format!(
            "{n},{m},{seq:.3},{mt:.3},{ours:.3},{}",
            report.k
        ));
        m *= 2;
    }
    print!("{}", t.render());
    csv
}

fn main() {
    let args = HarnessArgs::parse();
    let configs: &[(usize, usize)] = if args.fast {
        &[(512, 1024), (2048, 512)]
    } else {
        // The paper's three panels: (a) N=512 M<=16K, (b) N=2048 M<=4K,
        // (c) N=16384 M<=1K.
        &[(512, 16384), (2048, 4096), (16384, 1024)]
    };
    let mut rows = Vec::new();
    for &(n, m_max) in configs {
        rows.extend(sweep(n, m_max));
    }
    args.write_csv("fig12", "n,m,mkl_seq_us,mkl_mt_us,ours_us,k", &rows)
        .expect("write csv");
}
