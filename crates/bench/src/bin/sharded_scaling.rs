//! Multi-device scaling table: the modeled kernel wall-clock of the
//! sharded solver across homogeneous GTX480 groups of 1, 2, 4 and 8
//! devices, on the large Fig. 12 geometries.
//!
//! Check to make: solutions stay bit-identical at every `D` (the table
//! prints the FNV-1a solution hash once per geometry — it must not
//! change with `D`), and the wall-clock scales close to `1/D` while the
//! summed per-shard kernel time stays flat (work is conserved, only
//! redistributed). Copies are modeled per device stream but excluded
//! from the kernel wall-clock column (DESIGN.md §10).
//!
//! Run: `cargo run --release -p bench --bin sharded_scaling [-- --fast]`

use bench::table::TextTable;
use bench::HarnessArgs;
use gpu_sim::{DeviceGroup, DeviceSpec};
use tridiag_core::generators::random_batch;
use tridiag_gpu::solver::GpuTridiagSolver;

fn solution_hash(x: &[f64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in x {
        for b in format!("{v:?}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn main() {
    let args = HarnessArgs::parse();
    let geometries: &[(usize, usize)] = if args.fast {
        &[(64, 512)]
    } else {
        &[(64, 2048), (256, 2048), (1024, 512)]
    };
    let device_counts: &[usize] = if args.fast { &[1, 2] } else { &[1, 2, 4, 8] };

    println!("== multi-device sharding: modeled kernel wall-clock vs device count (GTX480) ==");
    let solver = GpuTridiagSolver::gtx480();
    let mut t = TextTable::new([
        "M",
        "N",
        "D",
        "wall [us]",
        "speedup",
        "sum kernel [us]",
        "solution hash",
    ]);
    for &(m, n) in geometries {
        let batch = random_batch::<f64>(m, n, 42);
        let mut base_us = 0.0f64;
        for &d in device_counts {
            let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), d).expect("group");
            let (x, report) = solver
                .solve_batch_group::<f64>(&group, &batch)
                .expect("sharded solve");
            if d == 1 {
                base_us = report.total_us;
            }
            let sum_kernel: f64 = if report.shards.is_empty() {
                report.total_us
            } else {
                report.shards.iter().map(|s| s.kernel_us).sum()
            };
            t.row([
                m.to_string(),
                n.to_string(),
                d.to_string(),
                format!("{:.1}", report.total_us),
                format!("{:.2}x", base_us / report.total_us),
                format!("{sum_kernel:.1}"),
                format!("{:016x}", solution_hash(&x)),
            ]);
        }
    }
    print!("{}", t.render());
    println!();
    println!(
        "hash constant down each geometry's column = bit-identity across D; \
         wall-clock ~1/D while summed kernel time stays flat = work conserved"
    );
}
