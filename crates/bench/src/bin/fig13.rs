//! Figure 13 reproduction: execution time vs system size `N` for fixed
//! system counts `M ∈ {2048, 256, 16, 1}`, double precision.
//!
//! Shapes to check against the paper: for `M = 2048` the kernel runs
//! p-Thomas only and holds ~5x over multithreaded MKL; as `M` shrinks
//! the gap narrows because "the reduced parallelism prompts our method
//! to increase its reliance on PCR"; even at `M = 1` with multi-million
//! row systems ours keeps a healthy (paper: ~5.5x) lead over the
//! (necessarily sequential) MKL curve.
//!
//! Run: `cargo run --release -p bench --bin fig13 [-- --fast]`

use bench::series;
use bench::table::{fmt_us, fmt_x, TextTable};
use bench::HarnessArgs;

fn sweep(m: usize, n_values: &[usize]) -> Vec<String> {
    println!("\n== Fig. 13: M = {m} (double precision) ==");
    let mut t = TextTable::new([
        "N",
        "MKL seq [us]",
        "MKL mt [us]",
        "Ours [us]",
        "k",
        "PCR share",
        "vs best CPU",
    ]);
    let mut csv = Vec::new();
    for &n in n_values {
        let seq = series::mkl_seq_us(m, n, 8);
        let mt = series::mkl_mt_us(m, n, 8);
        let (ours, report) = series::ours_us::<f64>(m, n);
        let pcr_share = if ours > 0.0 {
            report.pcr_us() / ours * 100.0
        } else {
            0.0
        };
        let best_cpu = seq.min(mt);
        t.row([
            n.to_string(),
            fmt_us(seq),
            fmt_us(mt),
            fmt_us(ours),
            report.k.to_string(),
            format!("{pcr_share:.0}%"),
            fmt_x(best_cpu / ours),
        ]);
        csv.push(format!(
            "{m},{n},{seq:.3},{mt:.3},{ours:.3},{},{pcr_share:.1}",
            report.k
        ));
    }
    print!("{}", t.render());
    csv
}

fn main() {
    let args = HarnessArgs::parse();
    let panels: Vec<(usize, Vec<usize>)> = if args.fast {
        vec![(256, vec![1024, 4096]), (1, vec![1 << 15])]
    } else {
        vec![
            // The paper's four panels.
            (2048, vec![256, 512, 1024, 2048, 4096, 8192]),
            (256, vec![4096, 8192, 16384, 32768]),
            (16, vec![16384, 32768, 65536, 131072]),
            (1, vec![512 * 1024, 2 * 1024 * 1024, 8 * 1024 * 1024]),
        ]
    };
    let mut rows = Vec::new();
    for (m, ns) in &panels {
        rows.extend(sweep(*m, ns));
    }
    args.write_csv(
        "fig13",
        "m,n,mkl_seq_us,mkl_mt_us,ours_us,k,pcr_share_pct",
        &rows,
    )
    .expect("write csv");
}
