//! ASCII log-log plots of the harness CSVs — eyeball the paper's curve
//! shapes from a terminal.
//!
//! ```text
//! cargo run --release -p bench --bin plot -- --csv results/fig12.csv
//! cargo run --release -p bench --bin plot -- --csv results/fig13.csv
//! ```
//!
//! For `fig12.csv` the series are plotted per `n` panel (time vs M);
//! for `fig13.csv` per `m` panel (time vs N); other CSVs get a generic
//! second-vs-later-columns treatment.

use bench::plot::{parse_csv, render_loglog, Series};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut csv_path = String::from("results/fig12.csv");
    while let Some(a) = args.next() {
        if a == "--csv" {
            if let Some(p) = args.next() {
                csv_path = p;
            }
        }
    }
    let text = match std::fs::read_to_string(&csv_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {csv_path}: {e} (run the figure binary first)");
            std::process::exit(1);
        }
    };
    let (header, rows) = parse_csv(&text);
    if rows.is_empty() {
        eprintln!("{csv_path}: no data rows");
        std::process::exit(1);
    }

    // Figure CSVs start with a panel column (n or m), then the sweep
    // variable, then the time series columns.
    let panel_col = 0usize;
    let x_col = 1usize;
    let series_cols: Vec<usize> = (2..header.len())
        .filter(|&c| header[c].ends_with("_us"))
        .collect();
    if series_cols.is_empty() {
        eprintln!("{csv_path}: no *_us series columns found in {header:?}");
        std::process::exit(1);
    }

    let mut panels: Vec<String> = Vec::new();
    for r in &rows {
        if !panels.contains(&r[panel_col]) {
            panels.push(r[panel_col].clone());
        }
    }
    let glyphs = ['s', 'm', 'o', 'd', 'z'];
    for panel in panels {
        println!(
            "\n=== {} = {} : time [us] vs {} ===",
            header[panel_col], panel, header[x_col]
        );
        let mut series: Vec<Series> = Vec::new();
        for (si, &c) in series_cols.iter().enumerate() {
            let points: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r[panel_col] == panel)
                .filter_map(|r| {
                    let x: f64 = r.get(x_col)?.parse().ok()?;
                    let y: f64 = r.get(c)?.parse().ok()?;
                    Some((x, y))
                })
                .collect();
            series.push(Series {
                name: header[c].clone(),
                glyph: glyphs[si % glyphs.len()],
                points,
            });
        }
        print!("{}", render_loglog(&series, 64, 18));
    }
}
