//! Table III reproduction: the transition heuristic `k(M)` re-derived
//! empirically on the simulated GTX480 via [`tridiag_gpu::autotune`],
//! printed next to the paper's values, plus the Table I window
//! properties for each configuration.
//!
//! Check to make against the paper: the tuned `k` is large (7–8) for a
//! handful of systems, steps down through the `M` ranges, and hits 0 by
//! `M ≈ 1024` — the same staircase as Table III (the exact break
//! points may shift by one range; they are empirical on both sides).
//!
//! Run: `cargo run --release -p bench --bin table3 [-- --fast]`

use bench::table::TextTable;
use bench::HarnessArgs;
use gpu_sim::DeviceSpec;
use tridiag_core::cost_model;
use tridiag_core::sliding_window::WindowProperties;
use tridiag_gpu::autotune;

fn main() {
    let args = HarnessArgs::parse();
    let spec = DeviceSpec::gtx480();

    // Representative M per Table III range.
    let m_values: Vec<usize> = if args.fast {
        vec![8, 2048]
    } else {
        vec![1, 8, 16, 24, 32, 256, 512, 768, 1024, 4096]
    };
    let n = if args.fast { 1024 } else { 4096 };
    let k_max = 8;

    println!("== Table III: transition point k(M), tuned on the simulated GTX480 (N = {n}) ==");
    let points = autotune::tune::<f64>(&spec, &m_values, n, k_max).expect("tuning run");
    let mut t = TextTable::new([
        "M",
        "paper k",
        "paper tile",
        "tuned k",
        "tuned tile",
        "tuned [us]",
        "k=0 [us]",
    ]);
    let mut csv = Vec::new();
    for p in &points {
        let paper_k = cost_model::gtx480_heuristic_k(p.m as u64);
        t.row([
            p.m.to_string(),
            paper_k.to_string(),
            cost_model::gtx480_heuristic_tile(p.m as u64).to_string(),
            p.best_k.to_string(),
            (1u64 << p.best_k).to_string(),
            format!("{:.1}", p.best_us),
            format!("{:.1}", p.k0_us),
        ]);
        csv.push(format!(
            "{},{paper_k},{},{},{:.3},{:.3}",
            p.m, p.best_k, p.n, p.best_us, p.k0_us
        ));
    }
    print!("{}", t.render());

    // Staircase check: tuned k must be non-increasing in M and reach 0.
    for w in points.windows(2) {
        assert!(
            w[1].best_k <= w[0].best_k,
            "tuned k must not grow with M: {:?} -> {:?}",
            w[0],
            w[1]
        );
    }
    if let Some(last) = points.last() {
        if last.m >= 1024 {
            assert_eq!(last.best_k, 0, "saturated batches must skip PCR");
        }
    }
    println!("\nstaircase check: tuned k is non-increasing in M ✓");

    // Table I companion: buffered sliding window properties per k.
    println!("\n== Table I: buffered sliding window properties (c = 1) ==");
    let mut t1 = TextTable::new([
        "k",
        "sub-tile c*2^k",
        "cache 3*f(k)",
        "threads 2^k",
        "elim/thread c*k",
        "elim/sub-tile",
        "shared bytes (f64)",
    ]);
    for k in [2u32, 4, 5, 6, 7, 8] {
        let w = WindowProperties::new(k, 1).expect("valid");
        t1.row([
            k.to_string(),
            w.sub_tile().to_string(),
            w.cache_rows().to_string(),
            w.threads_per_block().to_string(),
            w.eliminations_per_thread().to_string(),
            w.eliminations_per_sub_tile().to_string(),
            w.shared_bytes(8).to_string(),
        ]);
    }
    print!("{}", t1.render());

    args.write_csv("table3", "m,paper_k,tuned_k,n,tuned_us,k0_us", &csv)
        .expect("write csv");
}
