//! Solve-service throughput baseline: modeled requests/s and p50/p99
//! latency versus the coalescing window, emitted as deterministic JSON
//! (`BENCH_service.json`).
//!
//! The workload is the regime the service exists for — many small
//! requests (low per-request M) arriving close together. window = 0 is
//! the solo baseline (one launch per request); each non-zero window
//! amortizes launch overhead and raises occupancy, trading a little
//! queueing latency for a lot of throughput. The timing model is
//! deterministic, so the committed file doubles as a perf change
//! detector for the service path.
//!
//! ```text
//! cargo run --release -p bench --bin service_throughput                 # write BENCH_service.json
//! cargo run --release -p bench --bin service_throughput -- --out F      # write elsewhere
//! cargo run --release -p bench --bin service_throughput -- --check F    # diff fresh run vs F
//! cargo run --release -p bench --bin service_throughput -- --check F --report-only
//! ```
//!
//! `--check` exits 1 when any point's requests/s drifts by more than
//! `TOLERANCE_FRAC`; `--report-only` always exits 0 (advisory CI).
//! `--history FILE` additionally appends the run's requests/s per
//! window to the append-only perf ledger (`tridiag.bench_history/v1`
//! JSONL) and prints a report-only diff against the previous entry.
//! See EXPERIMENTS.md for the schemas.

use gpu_sim::json::{parse, Json};
use gpu_sim::{DeviceGroup, DeviceSpec};
use std::process::ExitCode;
use tridiag_core::generators::random_batch;
use tridiag_service::{Payload, ServiceConfig, ServiceCore, SolveRequest};

/// Relative drift in a point's `requests_per_s` that `--check`
/// tolerates.
const TOLERANCE_FRAC: f64 = 0.005;

/// Window sweep (µs). 0 = coalescing off, the solo baseline.
const WINDOWS_US: &[usize] = &[0, 2, 4, 8, 16, 64];

/// The workload: R requests, 1 µs apart, each a small f64 batch.
const REQUESTS: usize = 64;
const PER_REQUEST_M: usize = 2;
const SYSTEM_N: usize = 256;
const SEED: u64 = 42;

fn workload() -> Vec<SolveRequest> {
    (0..REQUESTS)
        .map(|i| SolveRequest {
            id: i as u64,
            arrival_us: i as f64,
            payload: Payload::F64(random_batch::<f64>(
                PER_REQUEST_M,
                SYSTEM_N,
                SEED + i as u64,
            )),
        })
        .collect()
}

fn measure_window(window_us: usize) -> Json {
    let group = DeviceGroup::single(DeviceSpec::gtx480());
    let mut core = ServiceCore::new(
        group,
        ServiceConfig {
            window_us: window_us as f64,
            queue_depth: REQUESTS,
            ..ServiceConfig::default()
        },
    );
    let report = core.run_workload(workload());
    let (done, rejected, failed) = report.totals();
    assert_eq!(
        done, REQUESTS,
        "window {window_us}: {rejected} rejected, {failed} failed"
    );
    let fused = report
        .batches
        .iter()
        .filter(|b| b.request_ids.len() > 1)
        .count();
    Json::Obj(vec![
        ("window_us".into(), Json::num(window_us as f64)),
        (
            "requests_per_s".into(),
            Json::num(round6(report.requests_per_s)),
        ),
        ("p50_us".into(), Json::num(round6(report.p50_us))),
        ("p99_us".into(), Json::num(round6(report.p99_us))),
        ("makespan_us".into(), Json::num(round6(report.makespan_us))),
        ("batches".into(), Json::num(report.batches.len() as f64)),
        ("fused_batches".into(), Json::num(fused as f64)),
        ("cache_hits".into(), Json::num(report.cache.hits as f64)),
        ("cache_misses".into(), Json::num(report.cache.misses as f64)),
    ])
}

/// Round to 6 decimals so the committed file is stable across
/// serialization and platforms' float formatting.
fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

fn run_sweep() -> Json {
    let points: Vec<Json> = WINDOWS_US
        .iter()
        .map(|&w| {
            eprintln!("  measuring window {w} us…");
            measure_window(w)
        })
        .collect();
    // The claim the service exists for must hold in the committed file.
    let rps = |p: &Json| p.get("requests_per_s").and_then(Json::as_num).unwrap_or(0.0);
    assert!(
        points[1..].iter().all(|p| rps(p) > rps(&points[0])),
        "every non-zero window must beat window = 0 on requests/s"
    );
    Json::Obj(vec![
        ("schema_version".into(), Json::num(1.0)),
        ("device".into(), Json::str("gtx480-simulated")),
        ("requests".into(), Json::num(REQUESTS as f64)),
        ("per_request_m".into(), Json::num(PER_REQUEST_M as f64)),
        ("n".into(), Json::num(SYSTEM_N as f64)),
        ("precision".into(), Json::str("f64")),
        ("points".into(), Json::Arr(points)),
    ])
}

/// The ledger's headline metrics: requests/s per window.
fn headline(doc: &Json) -> Vec<(String, f64)> {
    doc.get("points")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|p| {
            (
                format!(
                    "w{}",
                    p.get("window_us").and_then(Json::as_num).unwrap_or(-1.0)
                ),
                p.get("requests_per_s")
                    .and_then(Json::as_num)
                    .unwrap_or(f64::NAN),
            )
        })
        .collect()
}

fn check(baseline_path: &str, report_only: bool, history: Option<&str>) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fresh = run_sweep();
    let base_points = baseline.get("points").and_then(Json::as_arr).unwrap_or(&[]);
    let fresh_points = fresh.get("points").and_then(Json::as_arr).unwrap_or(&[]);
    let mut regressions = 0usize;
    println!(
        "{:<12} {:>14} {:>14} {:>9}",
        "window_us", "baseline req/s", "fresh req/s", "delta"
    );
    for fp in fresh_points {
        let w = fp.get("window_us").and_then(Json::as_num).unwrap_or(-1.0);
        let fresh_rps = fp
            .get("requests_per_s")
            .and_then(Json::as_num)
            .unwrap_or(f64::NAN);
        let base_rps = base_points
            .iter()
            .find(|bp| bp.get("window_us").and_then(Json::as_num) == Some(w))
            .and_then(|bp| bp.get("requests_per_s"))
            .and_then(Json::as_num);
        match base_rps {
            Some(b) if b > 0.0 => {
                let delta = (fresh_rps - b) / b;
                let flag = if delta.abs() > TOLERANCE_FRAC {
                    regressions += 1;
                    " <-- drift"
                } else {
                    ""
                };
                println!(
                    "{w:<12} {b:>14.0} {fresh_rps:>14.0} {:>+8.2}%{flag}",
                    delta * 100.0
                );
            }
            _ => {
                regressions += 1;
                println!("{w:<12} {:>14} {fresh_rps:>14.0} {:>9}", "missing", "new");
            }
        }
    }
    if let Some(path) = history {
        bench::history::record(path, "service", headline(&fresh));
    }
    if regressions > 0 {
        eprintln!(
            "{regressions} point(s) drifted beyond {:.1}% (or missing from baseline)",
            TOLERANCE_FRAC * 100.0
        );
        if !report_only {
            return ExitCode::FAILURE;
        }
        eprintln!("report-only mode: not failing");
    } else {
        println!(
            "all {} points within {:.1}%",
            fresh_points.len(),
            TOLERANCE_FRAC * 100.0
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut out = String::from("BENCH_service.json");
    let mut check_path: Option<String> = None;
    let mut history: Option<String> = None;
    let mut report_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => {
                if let Some(p) = args.next() {
                    out = p;
                }
            }
            "--check" => check_path = args.next(),
            "--history" => history = args.next(),
            "--report-only" => report_only = true,
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    if let Some(path) = check_path {
        return check(&path, report_only, history.as_deref());
    }
    let doc = run_sweep();
    let mut text = doc.to_string();
    text.push('\n');
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("error: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    if let Some(path) = history.as_deref() {
        bench::history::record(path, "service", headline(&doc));
    }
    ExitCode::SUCCESS
}
