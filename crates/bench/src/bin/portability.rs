//! Portability check (Section III-A): "The ability to keep the number
//! of PCR steps under control expands the portability of our method to
//! virtually all GPUs."
//!
//! Runs the same workloads on the GTX480, the 16-KiB-shared GTX280 and
//! the full-rate-FP64 Tesla C2050, showing how the solver adapts: the
//! shared-memory clamp lowers `k` on the GTX280 (where the conventional
//! in-shared method's size cap also collapses), and the C2050 narrows
//! the f64/f32 gap.
//!
//! Run: `cargo run --release -p bench --bin portability [-- --fast]`

use bench::table::{fmt_us, TextTable};
use bench::HarnessArgs;
use gpu_sim::DeviceSpec;
use tridiag_core::generators::random_batch;
use tridiag_gpu::buffers::GpuScalar;
use tridiag_gpu::solver::{GpuSolverConfig, GpuTridiagSolver};
use tridiag_gpu::zhang;

fn run_on<S: GpuScalar>(spec: &DeviceSpec, m: usize, n: usize) -> (f64, u32) {
    let solver = GpuTridiagSolver::new(spec.clone(), GpuSolverConfig::default());
    let batch = random_batch::<S>(m, n, 77);
    let (x, report) = solver.solve_batch(&batch).expect("solve");
    let resid = batch.max_relative_residual(&x).expect("residual");
    assert!(
        resid < tridiag_core::verify::default_tolerance::<S>() * 1e3,
        "{}: residual {resid}",
        spec.name
    );
    (report.total_us, report.k)
}

fn main() {
    let args = HarnessArgs::parse();
    let devices = [DeviceSpec::gtx480(), DeviceSpec::gtx280(), DeviceSpec::c2050()];
    let workloads: &[(usize, usize)] = if args.fast {
        &[(16, 2048)]
    } else {
        &[(16, 8192), (256, 2048), (4096, 512)]
    };

    let mut csv = Vec::new();
    println!("== Portability: the same solver across three device generations ==");
    for &(m, n) in workloads {
        println!("\n-- workload M = {m}, N = {n} --");
        let mut t = TextTable::new([
            "device",
            "f64 [us]",
            "k (f64)",
            "f32 [us]",
            "k (f32)",
            "max k (f64, smem)",
            "zhang cap (f64 rows)",
        ]);
        for spec in &devices {
            let (t64, k64) = run_on::<f64>(spec, m, n);
            let (t32, k32) = run_on::<f32>(spec, m, n);
            let solver = GpuTridiagSolver::new(spec.clone(), GpuSolverConfig::default());
            let max_k = solver.max_k_for_shared(1, 8);
            let cap = zhang::max_system_size(spec, 8);
            t.row([
                spec.name.to_string(),
                fmt_us(t64),
                k64.to_string(),
                fmt_us(t32),
                k32.to_string(),
                max_k.to_string(),
                cap.to_string(),
            ]);
            csv.push(format!(
                "{},{m},{n},{t64:.3},{k64},{t32:.3},{k32},{max_k},{cap}",
                spec.name
            ));
        }
        print!("{}", t.render());
    }

    // Structural claims.
    let gtx280 = GpuTridiagSolver::new(DeviceSpec::gtx280(), GpuSolverConfig::default());
    let gtx480 = GpuTridiagSolver::new(DeviceSpec::gtx480(), GpuSolverConfig::default());
    assert!(
        gtx280.max_k_for_shared(1, 8) < gtx480.max_k_for_shared(1, 8),
        "16 KiB shared memory must clamp k harder"
    );
    assert!(
        zhang::max_system_size(&DeviceSpec::gtx280(), 8)
            < zhang::max_system_size(&DeviceSpec::gtx480(), 8)
    );
    println!("\nstructural checks: smaller shared memory clamps k and the in-shared cap ✓");
    println!("tiled PCR itself ran on every device — the paper's portability claim holds here.");

    args.write_csv(
        "portability",
        "device,m,n,f64_us,k64,f32_us,k32,max_k_f64,zhang_cap_f64",
        &csv,
    )
    .expect("write csv");
}
