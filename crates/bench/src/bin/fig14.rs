//! Figure 14 reproduction: ours vs the Davidson et al. PCR-Thomas
//! hybrid (Section V) on the paper's four configurations
//! `1K×1K, 2K×2K, 4K×4K, 1×2M`, in double (a) and single (b) precision.
//!
//! Shape to check: ours wins every configuration, by roughly 2–10x,
//! with the largest gaps where Davidson pays many lockstep global PCR
//! kernel relaunches (large `N`). Panel (b) also lists the times
//! Davidson et al. reported for their own implementation (Fig. 14(b),
//! right bars) for context.
//!
//! Run: `cargo run --release -p bench --bin fig14 [-- --fast]`

use bench::series;
use bench::table::{fmt_x, TextTable};
use bench::HarnessArgs;
use tridiag_gpu::buffers::GpuScalar;

const CONFIGS: &[(&str, usize, usize)] = &[
    ("1Kx1K", 1024, 1024),
    ("2Kx2K", 2048, 2048),
    ("4Kx4K", 4096, 4096),
    ("1x2M", 1, 2 * 1024 * 1024),
];

/// Davidson et al.'s own single-precision numbers from the paper's
/// Fig. 14(b) (ms): 1Kx1K, 2Kx2K, 4Kx4K, 1x2M.
const DAVIDSON_REPORTED_F32_MS: [f64; 4] = [0.96, 5.52, 27.92, 50.4];

fn panel<S: GpuScalar>(configs: &[(&str, usize, usize)], reported: Option<&[f64]>) -> Vec<String> {
    println!("\n== Fig. 14 ({}) ==", S::NAME);
    let mut header = vec![
        "config".to_string(),
        "Ours [ms]".to_string(),
        "Davidson (ours impl) [ms]".to_string(),
        "speedup".to_string(),
    ];
    if reported.is_some() {
        header.push("Davidson (reported) [ms]".to_string());
    }
    let mut t = TextTable::new(header);
    let mut csv = Vec::new();
    for (i, &(name, m, n)) in configs.iter().enumerate() {
        let (ours_us, _) = series::ours_us::<S>(m, n);
        let dav_us = series::davidson_us::<S>(m, n);
        let mut row = vec![
            name.to_string(),
            format!("{:.2}", ours_us / 1000.0),
            format!("{:.2}", dav_us / 1000.0),
            fmt_x(dav_us / ours_us),
        ];
        if let Some(rep) = reported {
            row.push(format!("{:.2}", rep[i]));
        }
        t.row(row);
        csv.push(format!(
            "{},{name},{m},{n},{:.3},{:.3}",
            S::NAME,
            ours_us / 1000.0,
            dav_us / 1000.0
        ));
    }
    print!("{}", t.render());
    csv
}

fn main() {
    let args = HarnessArgs::parse();
    let configs: Vec<(&str, usize, usize)> = if args.fast {
        CONFIGS[..2].to_vec()
    } else {
        CONFIGS.to_vec()
    };
    let mut rows = Vec::new();
    // (a) double precision — Davidson et al. did not report doubles.
    rows.extend(panel::<f64>(&configs, None));
    // (b) single precision, with their reported numbers alongside.
    let reported = if args.fast {
        &DAVIDSON_REPORTED_F32_MS[..2]
    } else {
        &DAVIDSON_REPORTED_F32_MS[..]
    };
    rows.extend(panel::<f32>(&configs, Some(reported)));
    args.write_csv("fig14", "precision,config,m,n,ours_ms,davidson_ms", &rows)
        .expect("write csv");
}
