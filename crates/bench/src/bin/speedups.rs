//! Headline-speedup reproduction (Abstract / Section IV):
//!
//! - double precision: "up to **8.3x** and **49x** speedups over
//!   multithreaded and sequential MKL … when N is 512";
//! - single precision: "up to **12.9x** and **82.5x**".
//!
//! This binary sweeps the Fig. 12(a) grid (N = 512, M up to 16K) in
//! both precisions and reports the maximum modeled speedups, expecting
//! the same order of magnitude and the same f32 > f64 ordering.
//!
//! Run: `cargo run --release -p bench --bin speedups [-- --fast]`

use bench::series;
use bench::table::{fmt_x, TextTable};
use bench::HarnessArgs;
use tridiag_gpu::buffers::GpuScalar;

struct Best {
    vs_seq: f64,
    vs_seq_at: usize,
    vs_mt: f64,
    vs_mt_at: usize,
}

fn sweep<S: GpuScalar>(n: usize, m_max: usize) -> Best {
    let bytes = <S as gpu_sim::Elem>::BYTES;
    let mut best = Best {
        vs_seq: 0.0,
        vs_seq_at: 0,
        vs_mt: 0.0,
        vs_mt_at: 0,
    };
    let mut m = 64usize;
    while m <= m_max {
        let (ours, _) = series::ours_us::<S>(m, n);
        let seq = series::mkl_seq_us(m, n, bytes) / ours;
        let mt = series::mkl_mt_us(m, n, bytes) / ours;
        if seq > best.vs_seq {
            best.vs_seq = seq;
            best.vs_seq_at = m;
        }
        if mt > best.vs_mt {
            best.vs_mt = mt;
            best.vs_mt_at = m;
        }
        m *= 2;
    }
    best
}

fn main() {
    let args = HarnessArgs::parse();
    let (n, m_max) = if args.fast { (512, 2048) } else { (512, 16384) };

    println!("== Headline speedups over MKL (N = {n}, M <= {m_max}) ==");
    let mut t = TextTable::new([
        "precision",
        "vs MKL seq (paper)",
        "measured",
        "at M",
        "vs MKL mt (paper)",
        "measured",
        "at M ",
    ]);
    let mut csv = Vec::new();

    let b64 = sweep::<f64>(n, m_max);
    t.row([
        "f64".into(),
        "49x".to_string(),
        fmt_x(b64.vs_seq),
        b64.vs_seq_at.to_string(),
        "8.3x".to_string(),
        fmt_x(b64.vs_mt),
        b64.vs_mt_at.to_string(),
    ]);
    csv.push(format!(
        "f64,{:.2},{},{:.2},{}",
        b64.vs_seq, b64.vs_seq_at, b64.vs_mt, b64.vs_mt_at
    ));

    let b32 = sweep::<f32>(n, m_max);
    t.row([
        "f32".into(),
        "82.5x".to_string(),
        fmt_x(b32.vs_seq),
        b32.vs_seq_at.to_string(),
        "12.9x".to_string(),
        fmt_x(b32.vs_mt),
        b32.vs_mt_at.to_string(),
    ]);
    csv.push(format!(
        "f32,{:.2},{},{:.2},{}",
        b32.vs_seq, b32.vs_seq_at, b32.vs_mt, b32.vs_mt_at
    ));
    print!("{}", t.render());

    // Shape assertions: GPU wins big, f32 beats f64, speedups land in
    // the paper's order of magnitude.
    assert!(b64.vs_seq > 10.0, "f64 vs seq: {:.1}", b64.vs_seq);
    assert!(b64.vs_mt > 2.0, "f64 vs mt: {:.1}", b64.vs_mt);
    assert!(
        b32.vs_seq > b64.vs_seq,
        "single precision must widen the gap"
    );
    println!("\nshape checks passed: GPU wins at scale, f32 > f64 ✓");

    args.write_csv("speedups", "precision,vs_seq,at_m_seq,vs_mt,at_m_mt", &csv)
        .expect("write csv");
}
