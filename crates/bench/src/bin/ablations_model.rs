//! Modeled-time ablations of the design choices the paper argues for:
//!
//! 1. **Kernel fusion** (Section III-C): fused vs split pipeline — and
//!    the regime where fusion stops paying (the register-pressure
//!    occupancy penalty the paper warns about).
//! 2. **Grid mapping** (Fig. 11): block-per-system vs block-group vs
//!    multi-system-per-block on workloads that favour each.
//! 3. **Dependency caching** (Section III-A): the sliding window vs
//!    naive halo tiling, in global-memory traffic.
//! 4. **Bank-conflict padding** (reference [10]): in-shared CR with and
//!    without the Göddeke padding.
//!
//! Run: `cargo run --release -p bench --bin ablations_model [-- --fast]`

use bench::table::{fmt_us, TextTable};
use bench::HarnessArgs;
use gpu_sim::{launch, DeviceSpec, GpuMemory, LaunchConfig, Precision};
use tridiag_core::generators::{dominant_random, random_batch};
use tridiag_core::tiled_pcr;
use tridiag_core::transition::TransitionPolicy;
use tridiag_gpu::kernels::cr_shared::CrSharedKernel;
use tridiag_gpu::solver::{GpuSolverConfig, GpuTridiagSolver, MappingVariant};
use tridiag_gpu::upload;

fn solver(policy: TransitionPolicy, fused: bool, mapping: MappingVariant) -> GpuTridiagSolver {
    GpuTridiagSolver::new(
        DeviceSpec::gtx480(),
        GpuSolverConfig {
            policy,
            fused,
            mapping,
            ..Default::default()
        },
    )
}

fn main() {
    let args = HarnessArgs::parse();
    let mut csv: Vec<String> = Vec::new();

    // ---- 1. fusion ---------------------------------------------------
    println!("== Ablation 1: kernel fusion (Section III-C) ==");
    let mut t = TextTable::new(["M", "N", "split [us]", "fused [us]", "fusion gain"]);
    let configs: &[(usize, usize)] = if args.fast {
        &[(16, 2048)]
    } else {
        &[(4, 4096), (16, 2048), (64, 2048), (256, 1024)]
    };
    for &(m, n) in configs {
        let batch = random_batch::<f64>(m, n, 1);
        let (_, split) = solver(TransitionPolicy::Fixed(6), false, MappingVariant::BlockPerSystem)
            .solve_batch(&batch)
            .expect("split");
        let (_, fused) = solver(TransitionPolicy::Fixed(6), true, MappingVariant::BlockPerSystem)
            .solve_batch(&batch)
            .expect("fused");
        t.row([
            m.to_string(),
            n.to_string(),
            fmt_us(split.total_us),
            fmt_us(fused.total_us),
            format!("{:+.0}%", (split.total_us / fused.total_us - 1.0) * 100.0),
        ]);
        csv.push(format!(
            "fusion,{m},{n},{:.3},{:.3}",
            split.total_us, fused.total_us
        ));
    }
    print!("{}", t.render());

    // ---- 2. grid mappings ---------------------------------------------
    println!("\n== Ablation 2: Fig. 11 grid mappings ==");
    let mut t = TextTable::new(["workload", "11a block/sys", "11b group/sys", "11c multi/blk"]);
    let workloads: &[(&str, usize, usize)] = if args.fast {
        &[("few huge (2 x 256K)", 2, 1 << 18)]
    } else {
        &[
            ("few huge (2 x 256K)", 2, 1 << 18),
            ("some large (30 x 16K)", 30, 1 << 14),
            ("many medium (240 x 2K)", 240, 1 << 11),
        ]
    };
    for &(label, m, n) in workloads {
        let batch = random_batch::<f64>(m, n, 2);
        let mut cells = vec![label.to_string()];
        let mut times = Vec::new();
        for mapping in [
            MappingVariant::BlockPerSystem,
            MappingVariant::BlockGroupPerSystem(8),
            MappingVariant::MultiSystemPerBlock(2),
        ] {
            let (x, rep) = solver(TransitionPolicy::Fixed(6), false, mapping)
                .solve_batch(&batch)
                .expect("mapping run");
            assert!(batch.max_relative_residual(&x).expect("resid") < 1e-8);
            cells.push(fmt_us(rep.total_us));
            times.push(rep.total_us);
        }
        t.row(cells);
        csv.push(format!(
            "mapping,{m},{n},{:.3},{:.3},{:.3}",
            times[0], times[1], times[2]
        ));
    }
    print!("{}", t.render());

    // ---- 3. dependency caching (traffic, exact counters) --------------
    println!("\n== Ablation 3: sliding window vs naive tiling (rows loaded) ==");
    let mut t = TextTable::new(["k", "window", "naive", "overhead"]);
    let n = if args.fast { 8192 } else { 65536 };
    let sys = dominant_random::<f64>(n, 3);
    for k in [3u32, 5, 7] {
        let (_, w) = tiled_pcr::reduce_streamed(&sys, k, 1 << k).expect("window");
        let (_, nv) = tiled_pcr::reduce_naive_tiled(&sys, k, 1 << k).expect("naive");
        t.row([
            k.to_string(),
            w.rows_loaded.to_string(),
            nv.rows_loaded.to_string(),
            format!("{:+.0}%", (nv.rows_loaded as f64 / w.rows_loaded as f64 - 1.0) * 100.0),
        ]);
        csv.push(format!("caching,{k},{},{}", w.rows_loaded, nv.rows_loaded));
    }
    print!("{}", t.render());

    // ---- 4. CR bank-conflict padding ----------------------------------
    println!("\n== Ablation 4: in-shared CR, Goddeke padding (ref [10]) ==");
    let mut t = TextTable::new(["layout", "bank replays", "modeled [us]"]);
    let (m, n) = (32usize, 512usize);
    let host = random_batch::<f64>(m, n, 4);
    for padded in [false, true] {
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let kernel = CrSharedKernel {
            input: [dev.a, dev.b, dev.c, dev.d],
            x: dev.x,
            n,
            padded,
        };
        let cfg = LaunchConfig::new("cr_shared", m, 256);
        let res = launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).expect("cr");
        assert!(
            host.max_relative_residual(mem.read(dev.x).expect("x")).expect("resid") < 1e-9
        );
        let timing = gpu_sim::time_kernel(&DeviceSpec::gtx480(), &res, Precision::F64);
        t.row([
            if padded { "padded" } else { "plain" }.to_string(),
            res.stats.total.bank_conflict_replays.to_string(),
            fmt_us(timing.total_us),
        ]);
        csv.push(format!(
            "cr_padding,{padded},{},{:.3}",
            res.stats.total.bank_conflict_replays, timing.total_us
        ));
    }
    print!("{}", t.render());

    args.write_csv("ablations_model", "ablation,params...", &csv)
        .expect("write csv");
}
