//! Distributed single-system scaling table: the modeled wall-clock of
//! one huge `N`-row solve split across homogeneous GTX480 groups of
//! 1, 2, 4 and 8 devices (`solve --split-n D`).
//!
//! Check to make: the split solutions agree with the single-device
//! solve (worst |Δx| column stays at round-off), the wall-clock drops
//! as `D` grows — in particular `D = 4` must beat `D = 2` at large `N`
//! — and the wall-clock stays below the serialized per-device sum (the
//! chunk pipeline really overlaps). The split does *not* conserve work
//! the way batch sharding does: each chunk solves three right-hand
//! sides (y, u, w), so the summed device time grows ~3x; the win is
//! capacity plus wall-clock, not total flops (DESIGN.md §15).
//!
//! Run: `cargo run --release -p bench --bin distributed_scaling
//!       [-- --fast] [-- --history FILE]`

use bench::table::TextTable;
use gpu_sim::{DeviceGroup, DeviceSpec};
use tridiag_core::generators::random_batch;
use tridiag_gpu::solver::GpuTridiagSolver;

fn main() {
    let mut fast = false;
    let mut history: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--history" => history = args.next(),
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }

    let sizes: &[usize] = if fast { &[1 << 14] } else { &[1 << 15, 1 << 17] };
    let device_counts: &[usize] = if fast { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    println!("== distributed single-system solve: modeled wall-clock vs device count (GTX480) ==");
    let solver = GpuTridiagSolver::gtx480();
    let mut t = TextTable::new([
        "N",
        "D",
        "wall [us]",
        "speedup",
        "serialized [us]",
        "reduced n",
        "worst |dx|",
        "residual",
    ]);
    let mut headline: Vec<(String, f64)> = Vec::new();
    for &n in sizes {
        let batch = random_batch::<f64>(1, n, 42);
        let (reference, base_report) = solver.solve_batch(&batch).expect("single-device solve");
        let mut base_us = 0.0f64;
        let mut wall_by_d: Vec<(usize, f64)> = Vec::new();
        for &d in device_counts {
            let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), d).expect("group");
            let (x, report) = solver
                .solve_batch_split::<f64>(&group, &batch)
                .expect("distributed solve");
            if d == 1 {
                base_us = report.total_us;
                assert_eq!(
                    report.total_us, base_report.total_us,
                    "D = 1 must be the identity path"
                );
            }
            let worst = reference
                .iter()
                .zip(&x)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            let resid = batch.max_relative_residual(&x).expect("residual");
            let (serialized, reduced_n) = report
                .distributed
                .as_ref()
                .map_or((report.total_us, 0), |s| (s.serialized_us, s.reduced_n));
            t.row([
                n.to_string(),
                d.to_string(),
                format!("{:.1}", report.total_us),
                format!("{:.2}x", base_us / report.total_us),
                format!("{serialized:.1}"),
                reduced_n.to_string(),
                format!("{worst:.2e}"),
                format!("{resid:.2e}"),
            ]);
            headline.push((format!("n{n}_d{d}_wall_us"), report.total_us));
            wall_by_d.push((d, report.total_us));
        }
        // The scaling claim this table exists for: more devices must
        // keep winning once the split is paid for.
        let wall = |d: usize| wall_by_d.iter().find(|(dd, _)| *dd == d).map(|(_, w)| *w);
        if let (Some(w2), Some(w4)) = (wall(2), wall(4)) {
            assert!(
                w4 < w2,
                "n={n}: D=4 wall-clock {w4:.1} us must beat D=2 {w2:.1} us"
            );
        }
    }
    print!("{}", t.render());
    println!();
    println!(
        "wall-clock falls with D (capacity + latency win); serialized sum grows ~3x \
         because every chunk solves three right-hand sides (y, u, w)"
    );
    if let Some(path) = history.as_deref() {
        bench::history::record(path, "distributed", headline);
    }
}
