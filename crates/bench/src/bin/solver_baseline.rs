//! Solver perf baseline: modeled microseconds for a fixed sweep of
//! (figure, precision, M, N) points spanning the Fig. 12 / Fig. 13
//! regimes, emitted as deterministic JSON (`BENCH_solver.json`).
//!
//! The timing model is deterministic, so a committed baseline acts as a
//! perf change detector: any edit that shifts a kernel's counters or
//! the wave model shows up as a non-zero delta.
//!
//! ```text
//! cargo run --release -p bench --bin solver_baseline                 # write BENCH_solver.json
//! cargo run --release -p bench --bin solver_baseline -- --out F      # write elsewhere
//! cargo run --release -p bench --bin solver_baseline -- --check F    # diff a fresh run vs F
//! cargo run --release -p bench --bin solver_baseline -- --check F --report-only
//! ```
//!
//! `--check` exits 1 when any point's total drifts by more than
//! `TOLERANCE_FRAC`; `--report-only` prints the same table but always
//! exits 0 (for advisory CI steps). `--history FILE` additionally
//! appends the run's headline numbers to the append-only perf ledger
//! (`tridiag.bench_history/v1` JSONL) and prints a report-only diff
//! against the previous entry. See EXPERIMENTS.md for the schemas.
//!
//! Besides the figure sweep, every run produces the layout ablation
//! table (`"layout"` field, schema_version 2): pure p-Thomas at
//! N = 512 for M ∈ {64, 256, 1024} in both device layouts, with the
//! cost model's modeled transaction counts next to the executed
//! modeled times. The generator asserts the interleaved layout wins
//! modeled transactions — the claim the layout-aware planner rests on.

use bench::series;
use gpu_sim::json::{parse, Json};
use gpu_sim::DeviceSpec;
use std::process::ExitCode;
use tridiag_core::Layout;
use tridiag_gpu::plan::cost;

/// Relative drift in a point's `total_us` that `--check` tolerates.
const TOLERANCE_FRAC: f64 = 0.005;

/// The fixed sweep: a small, fast subset of the Fig. 12 (time vs M at
/// fixed N) and Fig. 13 (time vs N at fixed M) grids, double precision,
/// plus two single-precision spot checks.
const POINTS: &[(&str, &str, usize, usize)] = &[
    ("fig12", "f64", 64, 512),
    ("fig12", "f64", 256, 512),
    ("fig12", "f64", 1024, 512),
    ("fig12", "f64", 64, 2048),
    ("fig12", "f64", 256, 2048),
    ("fig13", "f64", 2048, 64),
    ("fig13", "f64", 256, 256),
    ("fig13", "f64", 16, 1024),
    ("fig13", "f64", 1, 16384),
    ("fig12", "f32", 256, 512),
    ("fig13", "f32", 16, 1024),
];

/// Layout-ablation geometries: N fixed at 512, M spanning the regimes
/// where coalescing goes from mildly to brutally decisive.
const LAYOUT_MS: &[usize] = &[64, 256, 1024];
const LAYOUT_N: usize = 512;

fn measure_point(figure: &str, precision: &str, m: usize, n: usize) -> Json {
    let (total_us, report) = if precision == "f32" {
        series::ours_us::<f32>(m, n)
    } else {
        series::ours_us::<f64>(m, n)
    };
    let kernels: Vec<Json> = report
        .kernels
        .iter()
        .map(|kr| {
            Json::Obj(vec![
                ("name".into(), Json::str(kr.timing.name)),
                ("us".into(), Json::num(round6(kr.timing.total_us))),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("figure".into(), Json::str(figure)),
        ("precision".into(), Json::str(precision)),
        ("m".into(), Json::num(m as f64)),
        ("n".into(), Json::num(n as f64)),
        ("k".into(), Json::num(report.k as f64)),
        ("total_us".into(), Json::num(round6(total_us))),
        ("kernels".into(), Json::Arr(kernels)),
    ])
}

/// Round to 6 decimals so the committed file is stable across
/// serialization and platforms' float formatting.
fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

/// Measure one layout-ablation row: pure p-Thomas (`k = 0`) at
/// `(m, LAYOUT_N)` f64 in both device layouts. Panics if the
/// interleaved layout fails to win modeled transactions — the claim
/// the layout-aware planner rests on must hold before the row can
/// become a committed data point.
fn measure_layout_row(m: usize) -> Json {
    eprintln!("  measuring layout f64 M={m} N={LAYOUT_N}…");
    let spec = DeviceSpec::gtx480();
    let contig_txn = cost::pthomas_transactions(&spec, Layout::Contiguous, m, LAYOUT_N, 8);
    let inter_txn = cost::pthomas_transactions(&spec, Layout::Interleaved, m, LAYOUT_N, 8);
    assert!(
        inter_txn < contig_txn,
        "M={m}: interleaved p-Thomas models {inter_txn} global transactions, \
         contiguous models {contig_txn} — coalescing must win at every table M"
    );
    let (contig_us, contig) = series::pthomas_layout_us::<f64>(m, LAYOUT_N, Layout::Contiguous);
    let (inter_us, inter) = series::pthomas_layout_us::<f64>(m, LAYOUT_N, Layout::Interleaved);
    assert_eq!(contig.k, 0, "M={m}: contiguous ablation row is not pure p-Thomas");
    assert_eq!(inter.k, 0, "M={m}: interleaved ablation row is not pure p-Thomas");
    Json::Obj(vec![
        ("precision".into(), Json::str("f64")),
        ("m".into(), Json::num(m as f64)),
        ("n".into(), Json::num(LAYOUT_N as f64)),
        ("contiguous_txn".into(), Json::num(contig_txn as f64)),
        ("interleaved_txn".into(), Json::num(inter_txn as f64)),
        ("contiguous_us".into(), Json::num(round6(contig_us))),
        ("interleaved_us".into(), Json::num(round6(inter_us))),
    ])
}

/// Print the layout-ablation rows as an aligned comparison table.
fn print_layout_table(rows: &[Json]) {
    println!(
        "{:<6} {:>6} {:>14} {:>15} {:>14} {:>15} {:>8}",
        "M", "N", "contiguous txn", "interleaved txn", "contiguous us", "interleaved us", "speedup"
    );
    for r in rows {
        let num = |k: &str| r.get(k).and_then(Json::as_num).unwrap_or(f64::NAN);
        println!(
            "{:<6} {:>6} {:>14} {:>15} {:>14.3} {:>15.3} {:>7.2}x",
            num("m"),
            num("n"),
            num("contiguous_txn"),
            num("interleaved_txn"),
            num("contiguous_us"),
            num("interleaved_us"),
            num("contiguous_us") / num("interleaved_us"),
        );
    }
}

fn run_sweep() -> Json {
    let points: Vec<Json> = POINTS
        .iter()
        .map(|&(fig, prec, m, n)| {
            eprintln!("  measuring {fig} {prec} M={m} N={n}…");
            measure_point(fig, prec, m, n)
        })
        .collect();
    let layout: Vec<Json> = LAYOUT_MS.iter().map(|&m| measure_layout_row(m)).collect();
    print_layout_table(&layout);
    Json::Obj(vec![
        ("schema_version".into(), Json::num(2.0)),
        ("device".into(), Json::str("gtx480-simulated")),
        ("points".into(), Json::Arr(points)),
        ("layout".into(), Json::Arr(layout)),
    ])
}

/// The ledger's headline metrics: one `(point key, total_us)` pair per
/// sweep point, plus one pair per layout-ablation cell (the layout
/// dimension's entry in the perf history).
fn headline(doc: &Json) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = doc
        .get("points")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|p| {
            (
                point_key(p),
                p.get("total_us").and_then(Json::as_num).unwrap_or(f64::NAN),
            )
        })
        .collect();
    for r in doc.get("layout").and_then(Json::as_arr).unwrap_or(&[]) {
        for (label, field) in [("contiguous", "contiguous_us"), ("interleaved", "interleaved_us")] {
            out.push((
                format!("{}/{label}", layout_key(r)),
                r.get(field).and_then(Json::as_num).unwrap_or(f64::NAN),
            ));
        }
    }
    out
}

fn layout_key(r: &Json) -> String {
    format!(
        "layout/{}/m{}/n{}",
        r.get("precision").and_then(Json::as_str).unwrap_or("?"),
        r.get("m").and_then(Json::as_num).unwrap_or(-1.0),
        r.get("n").and_then(Json::as_num).unwrap_or(-1.0),
    )
}

fn point_key(p: &Json) -> String {
    format!(
        "{}/{}/m{}/n{}",
        p.get("figure").and_then(Json::as_str).unwrap_or("?"),
        p.get("precision").and_then(Json::as_str).unwrap_or("?"),
        p.get("m").and_then(Json::as_num).unwrap_or(-1.0),
        p.get("n").and_then(Json::as_num).unwrap_or(-1.0),
    )
}

fn check(baseline_path: &str, report_only: bool, history: Option<&str>) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fresh = run_sweep();
    let base_points = baseline.get("points").and_then(Json::as_arr).unwrap_or(&[]);
    let fresh_points = fresh.get("points").and_then(Json::as_arr).unwrap_or(&[]);
    let mut regressions = 0usize;
    println!(
        "{:<28} {:>12} {:>12} {:>9}",
        "point", "baseline us", "fresh us", "delta"
    );
    let mut diff_row = |key: &str, fresh_us: f64, base_us: Option<f64>| match base_us {
        Some(b) if b > 0.0 => {
            let delta = (fresh_us - b) / b;
            let flag = if delta.abs() > TOLERANCE_FRAC {
                regressions += 1;
                " <-- drift"
            } else {
                ""
            };
            println!("{key:<28} {b:>12.3} {fresh_us:>12.3} {:>+8.2}%{flag}", delta * 100.0);
        }
        _ => {
            regressions += 1;
            println!("{key:<28} {:>12} {fresh_us:>12.3} {:>9}", "missing", "new");
        }
    };
    for fp in fresh_points {
        let key = point_key(fp);
        let fresh_us = fp.get("total_us").and_then(Json::as_num).unwrap_or(f64::NAN);
        let base_us = base_points
            .iter()
            .find(|bp| point_key(bp) == key)
            .and_then(|bp| bp.get("total_us"))
            .and_then(Json::as_num);
        diff_row(&key, fresh_us, base_us);
    }
    let base_layout = baseline.get("layout").and_then(Json::as_arr).unwrap_or(&[]);
    let fresh_layout = fresh.get("layout").and_then(Json::as_arr).unwrap_or(&[]);
    for fr in fresh_layout {
        let key = layout_key(fr);
        let base_row = base_layout.iter().find(|br| layout_key(br) == key);
        for (label, field) in [("contiguous", "contiguous_us"), ("interleaved", "interleaved_us")] {
            let fresh_us = fr.get(field).and_then(Json::as_num).unwrap_or(f64::NAN);
            let base_us = base_row.and_then(|br| br.get(field)).and_then(Json::as_num);
            diff_row(&format!("{key}/{label}"), fresh_us, base_us);
        }
    }
    if let Some(path) = history {
        bench::history::record(path, "solver", headline(&fresh));
    }
    if regressions > 0 {
        eprintln!(
            "{regressions} point(s) drifted beyond {:.1}% (or missing from baseline)",
            TOLERANCE_FRAC * 100.0
        );
        if !report_only {
            return ExitCode::FAILURE;
        }
        eprintln!("report-only mode: not failing");
    } else {
        println!(
            "all {} rows within {:.1}%",
            fresh_points.len() + 2 * fresh_layout.len(),
            TOLERANCE_FRAC * 100.0
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut out = String::from("BENCH_solver.json");
    let mut check_path: Option<String> = None;
    let mut history: Option<String> = None;
    let mut report_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => {
                if let Some(p) = args.next() {
                    out = p;
                }
            }
            "--check" => check_path = args.next(),
            "--history" => history = args.next(),
            "--report-only" => report_only = true,
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    if let Some(path) = check_path {
        return check(&path, report_only, history.as_deref());
    }
    let doc = run_sweep();
    let mut text = doc.to_string();
    text.push('\n');
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("error: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    if let Some(path) = history.as_deref() {
        bench::history::record(path, "solver", headline(&doc));
    }
    ExitCode::SUCCESS
}
