//! Table II reproduction: the elimination-step cost model of Thomas,
//! PCR and the k-step hybrid across the `M vs P` regimes, evaluated
//! analytically and cross-checked against the simulator's counters.
//!
//! Checks to make against the paper: (1) Thomas cost is flat in `M`
//! until `M > P`, then grows as `M/P`; (2) PCR always amortises but
//! carries the `log` factor; (3) the hybrid interpolates, with the
//! optimal `k` falling as `M` grows — the analytic justification for
//! Table III.
//!
//! Run: `cargo run --release -p bench --bin table2 [-- --fast]`

use bench::table::TextTable;
use bench::HarnessArgs;
use tridiag_core::cost_model;

fn main() {
    let args = HarnessArgs::parse();
    // The paper's parallelism P for a GTX480 = resident threads.
    let p = gpu_sim::DeviceSpec::gtx480().parallelism();
    let n_size = 16384u64; // 2^n with n = 14

    println!("== Table II: elimination-step costs (N = {n_size}, P = {p}) ==");
    let mut t = TextTable::new([
        "M",
        "regime",
        "Thomas",
        "PCR",
        "hybrid k=4",
        "hybrid k=8",
        "best k",
    ]);
    let mut csv = Vec::new();
    let ms: &[u64] = if args.fast {
        &[16, 65536]
    } else {
        &[1, 16, 256, 4096, 23040, 65536, 1 << 20]
    };
    for &m in ms {
        let regime = if m > p { "M > P" } else { "M <= P" };
        let thomas = cost_model::thomas_cost(m, n_size, p);
        let pcr = cost_model::pcr_cost(m, n_size, p);
        let h4 = cost_model::hybrid_cost(m, n_size, p, 4);
        let h8 = cost_model::hybrid_cost(m, n_size, p, 8);
        let best = cost_model::optimal_k(m, n_size, p, 10);
        t.row([
            m.to_string(),
            regime.to_string(),
            format!("{thomas:.0}"),
            format!("{pcr:.0}"),
            format!("{h4:.0}"),
            format!("{h8:.0}"),
            best.to_string(),
        ]);
        csv.push(format!(
            "{m},{regime},{thomas:.1},{pcr:.1},{h4:.1},{h8:.1},{best}"
        ));
    }
    print!("{}", t.render());

    // Cross-check: the hybrid's *work* terms against simulator counters
    // (eliminations are counted exactly by the kernels).
    println!("\n== cross-check: analytic k·N PCR work vs simulated eliminations ==");
    let mut t2 = TextTable::new(["N", "k", "analytic k*N", "simulated", "match"]);
    let checks: &[(usize, u32)] = if args.fast {
        &[(1024, 3)]
    } else {
        &[(1024, 3), (4096, 5), (16384, 6)]
    };
    for &(n, k) in checks {
        let sys = tridiag_core::generators::dominant_random::<f64>(n, 7);
        let (_, stats) =
            tridiag_core::tiled_pcr::reduce_streamed(&sys, k, 1 << k).expect("reduce");
        let analytic = k as usize * n;
        // Flush work is the only excess; bounded by k·2·f(k), n-free.
        let excess = stats.eliminations - analytic;
        let ok = excess <= 2 * k as usize * ((1 << k) - 1);
        t2.row([
            n.to_string(),
            k.to_string(),
            analytic.to_string(),
            stats.eliminations.to_string(),
            if ok { "yes (flush only)" } else { "NO" }.to_string(),
        ]);
        assert!(ok, "counter mismatch beyond flush tolerance");
    }
    print!("{}", t2.render());

    args.write_csv(
        "table2",
        "m,regime,thomas,pcr,hybrid_k4,hybrid_k8,best_k",
        &csv,
    )
    .expect("write csv");
}
