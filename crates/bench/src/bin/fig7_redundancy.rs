//! Figure 7 / Eqs. 8–9 reproduction: the redundancy of *naive* tiled
//! PCR versus the buffered sliding window.
//!
//! Prints `f(k)` (redundant halo loads per tile boundary) and `g(k)`
//! (redundant eliminations per boundary) from the closed forms, then
//! *measures* both by actually running the naive tiling and the
//! sliding-window streaming over the same system and diffing their work
//! counters. The two columns must agree — Eq. 8/9 are exact, not
//! asymptotic.
//!
//! Run: `cargo run --release -p bench --bin fig7_redundancy [-- --fast]`

use bench::table::TextTable;
use bench::HarnessArgs;
use tridiag_core::cost_model::{halo_elements, redundant_eliminations};
use tridiag_core::generators::dominant_random;
use tridiag_core::tiled_pcr::{reduce_naive_tiled, reduce_streamed};

fn main() {
    let args = HarnessArgs::parse();
    let n: usize = if args.fast { 4096 } else { 65536 };
    let tile = 256usize;
    let boundaries = (n / tile - 1) as u64;
    let sys = dominant_random::<f64>(n, 41);

    println!("== Fig. 7 / Eqs. 8-9: naive tiling redundancy (N = {n}, tile = {tile}) ==");
    let mut t = TextTable::new([
        "k",
        "f(k) analytic",
        "halo loads/boundary (measured)",
        "g(k) analytic",
        "window loads",
        "naive loads",
        "traffic ratio",
    ]);
    let mut csv = Vec::new();
    let k_max = if args.fast { 5 } else { 7 };
    for k in 1..=k_max {
        let (naive_out, naive) = reduce_naive_tiled(&sys, k, tile).expect("naive");
        let (window_out, window) = reduce_streamed(&sys, k, tile).expect("window");
        // Outputs identical — redundancy is pure waste.
        let (na, ..) = naive_out.arrays();
        let (wa, ..) = window_out.arrays();
        assert_eq!(na, wa, "k={k}: outputs must match exactly");

        let measured_halo = naive.redundant_loads as u64 / boundaries.max(1);
        let f_k = halo_elements(k);
        let g_k = redundant_eliminations(k);
        // Interior boundary redundancy is f(k) per side => up to 2 f(k);
        // edges clamp, so the average sits in [f(k), 2 f(k)].
        assert!(
            measured_halo >= f_k && measured_halo <= 2 * f_k,
            "k={k}: measured {measured_halo} outside [{f_k}, {}]",
            2 * f_k
        );
        assert_eq!(window.redundant_loads, 0, "window must be redundancy-free");

        let ratio = naive.rows_loaded as f64 / window.rows_loaded as f64;
        t.row([
            k.to_string(),
            f_k.to_string(),
            measured_halo.to_string(),
            g_k.to_string(),
            window.rows_loaded.to_string(),
            naive.rows_loaded.to_string(),
            format!("{ratio:.2}x"),
        ]);
        csv.push(format!(
            "{k},{f_k},{measured_halo},{g_k},{},{},{ratio:.4}",
            window.rows_loaded, naive.rows_loaded
        ));
    }
    print!("{}", t.render());
    println!("\nall outputs bit-identical; window has zero redundant loads ✓");

    args.write_csv(
        "fig7_redundancy",
        "k,f_k,halo_per_boundary,g_k,window_loads,naive_loads,ratio",
        &csv,
    )
    .expect("write csv");
}
