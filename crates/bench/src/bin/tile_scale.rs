//! Sub-tile scale study: the `c` parameter of Table I.
//!
//! A sub-tile holds `c·2^k` rows. Larger `c` amortises the per-sub-tile
//! barriers and cache-splice work over more rows and lengthens the
//! coalesced load runs, but grows the shared-memory window
//! (`4·(2f + c·2^k + …)` elements), which eventually cuts occupancy —
//! the same capacity-vs-parallelism tension the paper resolves in favour
//! of *small* tiles against Davidson's maximal ones. This binary sweeps
//! `c` and prints modeled time, occupancy and barrier counts.
//!
//! Run: `cargo run --release -p bench --bin tile_scale [-- --fast]`

use bench::table::{fmt_us, TextTable};
use bench::HarnessArgs;
use gpu_sim::DeviceSpec;
use tridiag_core::generators::random_batch;
use tridiag_core::transition::TransitionPolicy;
use tridiag_gpu::solver::{GpuSolverConfig, GpuTridiagSolver, MappingVariant};

fn main() {
    let args = HarnessArgs::parse();
    let (m, n, k) = if args.fast {
        (32usize, 2048usize, 5u32)
    } else {
        (64, 8192, 6)
    };
    let batch = random_batch::<f64>(m, n, 5);

    println!("== Sub-tile scale c (Table I): M = {m}, N = {n}, k = {k} ==");
    let mut t = TextTable::new([
        "c",
        "sub-tile",
        "shared B/block",
        "blocks/SM",
        "PCR waves",
        "PCR [us]",
        "total [us]",
    ]);
    let mut csv = Vec::new();
    let mut best: Option<(usize, f64)> = None;
    for c in [1usize, 2, 4, 8, 16] {
        let solver = GpuTridiagSolver::new(
            DeviceSpec::gtx480(),
            GpuSolverConfig {
                policy: TransitionPolicy::Fixed(k),
                sub_tile_scale: c,
                mapping: MappingVariant::BlockPerSystem,
                ..Default::default()
            },
        );
        let Ok((x, report)) = solver.solve_batch(&batch) else {
            println!("c = {c}: window no longer fits shared memory — stop");
            break;
        };
        assert!(batch.max_relative_residual(&x).expect("resid") < 1e-9);
        let pcr = &report.kernels[0];
        t.row([
            c.to_string(),
            (c << k).to_string(),
            pcr.shared_bytes.to_string(),
            format!(
                "{}",
                gpu_sim::occupancy(
                    &DeviceSpec::gtx480(),
                    1 << k,
                    pcr.shared_bytes,
                    32
                )
                .map(|o| o.blocks_per_sm)
                .unwrap_or(0)
            ),
            pcr.timing.waves.to_string(),
            fmt_us(report.pcr_us()),
            fmt_us(report.total_us),
        ]);
        csv.push(format!(
            "{c},{},{},{:.3},{:.3}",
            c << k,
            pcr.shared_bytes,
            report.pcr_us(),
            report.total_us
        ));
        if best.map(|(_, t)| report.total_us < t).unwrap_or(true) {
            best = Some((c, report.total_us));
        }
    }
    print!("{}", t.render());
    if let Some((c, us)) = best {
        println!("\nbest c = {c} at {us:.1} us — small tiles keep occupancy, matching the paper's design choice");
    }
    args.write_csv("tile_scale", "c,sub_tile,shared_bytes,pcr_us,total_us", &csv)
        .expect("write csv");
}
