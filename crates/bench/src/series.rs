//! Data-series producers shared by the figure binaries: one function
//! per curve that appears in the paper's plots, all returning modeled
//! microseconds and all *verifying* the solutions they time.

use cpu_ref::CpuModel;
use gpu_sim::DeviceSpec;
use tridiag_core::generators::random_batch;
use tridiag_core::transition::TransitionPolicy;
use tridiag_core::{Layout, Scalar, SystemBatch};
use tridiag_gpu::buffers::GpuScalar;
use tridiag_gpu::solver::{GpuSolveReport, GpuSolverConfig, GpuTridiagSolver, LayoutChoice};
use tridiag_gpu::{davidson, zhang};

/// Residual tolerance used when verifying a timed solve.
pub fn tolerance<S: Scalar>() -> f64 {
    tridiag_core::verify::default_tolerance::<S>() * 1e3
}

/// Deterministic benchmark batch for `(m, n)`.
pub fn batch_for<S: GpuScalar>(m: usize, n: usize) -> SystemBatch<S> {
    random_batch::<S>(m, n, 0xB0A7 + (m as u64) * 31 + n as u64)
}

/// "Ours (GTX480)": modeled time of the hybrid solver, with residual
/// verification. Panics (with context) if the solve is wrong — a wrong
/// fast solver is not a data point.
pub fn ours_us<S: GpuScalar>(m: usize, n: usize) -> (f64, GpuSolveReport) {
    let batch = batch_for::<S>(m, n);
    let (x, report) = GpuTridiagSolver::gtx480()
        .solve_batch(&batch)
        .unwrap_or_else(|e| panic!("gpu solve failed for M={m} N={n}: {e}"));
    let resid = batch.max_relative_residual(&x).expect("residual");
    assert!(
        resid < tolerance::<S>(),
        "M={m} N={n}: residual {resid} out of tolerance"
    );
    (report.total_us, report)
}

/// Pure p-Thomas (`k = 0`) with the device layout pinned: the layout
/// ablation series. Contiguous is the strawman addressing (each thread
/// strides through its own system), interleaved is the paper's
/// coalesced layout. Verified like every other series.
pub fn pthomas_layout_us<S: GpuScalar>(m: usize, n: usize, layout: Layout) -> (f64, GpuSolveReport) {
    let batch = batch_for::<S>(m, n);
    let solver = GpuTridiagSolver::new(
        DeviceSpec::gtx480(),
        GpuSolverConfig {
            policy: TransitionPolicy::Fixed(0),
            layout: LayoutChoice::pin(layout),
            ..Default::default()
        },
    );
    let (x, report) = solver
        .solve_batch(&batch)
        .unwrap_or_else(|e| panic!("p-thomas {layout:?} solve failed for M={m} N={n}: {e}"));
    let resid = batch.max_relative_residual(&x).expect("residual");
    assert!(
        resid < tolerance::<S>(),
        "p-thomas {layout:?} M={m} N={n}: residual {resid} out of tolerance"
    );
    (report.total_us, report)
}

/// Davidson et al. baseline (Section V), verified.
pub fn davidson_us<S: GpuScalar>(m: usize, n: usize) -> f64 {
    let batch = batch_for::<S>(m, n);
    let (x, report) = davidson::solve_batch(&DeviceSpec::gtx480(), &batch)
        .unwrap_or_else(|e| panic!("davidson solve failed for M={m} N={n}: {e}"));
    let resid = batch.max_relative_residual(&x).expect("residual");
    assert!(resid < tolerance::<S>(), "davidson M={m} N={n}: residual {resid}");
    report.total_us
}

/// Zhang-style in-shared hybrid; `None` when the system exceeds shared
/// memory (the structural limit the paper highlights).
pub fn zhang_us<S: GpuScalar>(m: usize, n: usize) -> Option<f64> {
    let batch = batch_for::<S>(m, n);
    match zhang::solve_batch(&DeviceSpec::gtx480(), &batch, None) {
        Ok((x, report)) => {
            let resid = batch.max_relative_residual(&x).expect("residual");
            assert!(resid < tolerance::<S>(), "zhang M={m} N={n}: residual {resid}");
            Some(report.total_us)
        }
        Err(_) => None,
    }
}

/// "MKL (sequential)" modeled curve.
pub fn mkl_seq_us(m: usize, n: usize, elem_bytes: usize) -> f64 {
    CpuModel::i7_975().sequential_us(m, n, elem_bytes)
}

/// "MKL (multithreaded)" modeled curve.
pub fn mkl_mt_us(m: usize, n: usize, elem_bytes: usize) -> f64 {
    CpuModel::i7_975().threaded_us(m, n, elem_bytes)
}

/// Host wall-clock of the *real* CPU reference (used by the Criterion
/// benches; exposed here for the speedup summary's sanity column).
pub fn host_cpu_seq_us<S: Scalar>(batch: &SystemBatch<S>) -> f64 {
    let t0 = std::time::Instant::now();
    let x = cpu_ref::solve_batch_sequential(batch).expect("host solve");
    let dt = t0.elapsed().as_secs_f64() * 1e6;
    std::hint::black_box(x);
    dt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_are_positive_and_ordered_sanely() {
        let (ours, report) = ours_us::<f64>(64, 512);
        assert!(ours > 0.0);
        assert_eq!(report.k, 6); // Table III: 32 <= M < 512
        let seq = mkl_seq_us(64, 512, 8);
        let mt = mkl_mt_us(64, 512, 8);
        assert!(mt < seq);
    }

    #[test]
    fn layout_ablation_rows_are_pure_pthomas_and_interleaved_wins() {
        let (contig_us, contig) = pthomas_layout_us::<f64>(64, 512, Layout::Contiguous);
        let (inter_us, inter) = pthomas_layout_us::<f64>(64, 512, Layout::Interleaved);
        assert_eq!(contig.k, 0);
        assert_eq!(inter.k, 0);
        assert_eq!(contig.plan.layout, Layout::Contiguous);
        assert_eq!(inter.plan.layout, Layout::Interleaved);
        assert!(inter_us < contig_us, "coalesced p-Thomas must model faster");
    }

    #[test]
    fn zhang_capacity_gate() {
        assert!(zhang_us::<f64>(4, 512).is_some());
        assert!(zhang_us::<f64>(1, 4096).is_none());
    }

    #[test]
    fn host_cpu_measurement_runs() {
        let batch = batch_for::<f64>(4, 128);
        assert!(host_cpu_seq_us(&batch) > 0.0);
    }
}
