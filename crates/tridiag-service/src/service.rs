//! The threaded front door: a bounded submission queue, one worker
//! draining it in coalescing ticks, and typed backpressure at
//! admission time.
//!
//! Real client threads call [`SolveService::submit`] concurrently; the
//! worker owns the [`ServiceCore`] (pins, plan cache, tick machinery)
//! and answers each ticket over its own channel. Timing stays on the
//! modeled axis — the worker keeps a modeled clock that advances by
//! each tick's kernel/scatter time; wall clocks appear nowhere, so
//! span assertions in tests are deterministic.
//!
//! [`pause`](SolveService::pause)/[`resume`](SolveService::resume) gate
//! the worker without touching admission: tests use them to stack the
//! queue (guaranteeing coalescing) or to fill it to the brim
//! (guaranteeing a typed [`ServiceError::Overloaded`]).

use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use gpu_sim::DeviceGroup;

use crate::cache::CacheStats;
use crate::core::{ServiceConfig, ServiceCore};
use crate::report::BatchSummary;
use crate::request::{Payload, Response, ServiceError, SolveRequest};
use crate::telemetry::Telemetry;

/// Counters a running service exposes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Requests admitted past the queue bound.
    pub submitted: u64,
    /// Requests solved successfully.
    pub completed: u64,
    /// Requests bounced at admission ([`ServiceError::Overloaded`] /
    /// [`ServiceError::ShuttingDown`]).
    pub rejected: u64,
    /// Admitted requests that ended in a typed solve failure.
    pub failed: u64,
    /// Fused launches performed.
    pub batches: u64,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// The worker's modeled clock (µs).
    pub clock_us: f64,
}

/// A pending response: block on [`Ticket::wait`] to collect it.
#[derive(Debug)]
pub struct Ticket {
    /// The id the response will carry.
    pub id: u64,
    rx: Receiver<Response>,
}

impl Ticket {
    /// Block until the service answers. The service always answers
    /// every admitted ticket — a shutdown drains the queue with typed
    /// [`ServiceError::ShuttingDown`] responses first.
    pub fn wait(self) -> Response {
        self.rx
            .recv()
            .expect("service dropped a ticket without responding")
    }
}

struct State {
    queue: VecDeque<(SolveRequest, Sender<Response>)>,
    paused: bool,
    shutdown: bool,
    next_id: u64,
    stats: ServiceStats,
    /// The worker parks the core's telemetry here on exit so
    /// [`SolveService::shutdown_with_telemetry`] can hand it out.
    telemetry: Option<Telemetry>,
}

struct Shared {
    state: Mutex<State>,
    wake: Condvar,
}

/// The threaded solve service. See the module docs.
pub struct SolveService {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
    queue_depth: usize,
}

impl SolveService {
    /// Start a service over `group` with tuning `cfg`; the worker
    /// thread runs until [`shutdown`](SolveService::shutdown) (or
    /// drop).
    pub fn start(group: DeviceGroup, cfg: ServiceConfig) -> SolveService {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                paused: false,
                shutdown: false,
                next_id: 0,
                stats: ServiceStats::default(),
                telemetry: None,
            }),
            wake: Condvar::new(),
        });
        let queue_depth = cfg.queue_depth.max(1);
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::spawn(move || {
            worker_loop(worker_shared, ServiceCore::new(group, cfg));
        });
        SolveService {
            shared,
            worker: Some(worker),
            queue_depth,
        }
    }

    /// Submit one request. Returns the ticket to wait on, or the typed
    /// admission failure — [`ServiceError::Overloaded`] when the
    /// bounded queue is full, [`ServiceError::ShuttingDown`] after
    /// shutdown began, [`ServiceError::InvalidRequest`] for malformed
    /// payloads. Never blocks on the solver.
    pub fn submit(&self, payload: Payload) -> Result<Ticket, ServiceError> {
        if payload.num_systems() == 0 || payload.system_len() == 0 {
            return Err(ServiceError::InvalidRequest(format!(
                "empty geometry: m = {}, n = {}",
                payload.num_systems(),
                payload.system_len()
            )));
        }
        let mut st = self.shared.state.lock().expect("service state poisoned");
        if st.shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        if st.queue.len() >= self.queue_depth {
            st.stats.rejected += 1;
            return Err(ServiceError::Overloaded {
                depth: self.queue_depth,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        st.stats.submitted += 1;
        // Arrival on the modeled axis: the worker's clock as of the
        // last completed tick (submissions during a tick time-stamp at
        // its start — deterministic, if coarse).
        let arrival_us = st.stats.clock_us;
        let (tx, rx) = channel();
        st.queue.push_back((
            SolveRequest {
                id,
                arrival_us,
                payload,
            },
            tx,
        ));
        drop(st);
        self.shared.wake.notify_all();
        Ok(Ticket { id, rx })
    }

    /// Stop the worker from draining the queue (admission continues,
    /// so the bounded queue can fill and bounce).
    pub fn pause(&self) {
        self.shared
            .state
            .lock()
            .expect("service state poisoned")
            .paused = true;
    }

    /// Let the worker drain again.
    pub fn resume(&self) {
        self.shared
            .state
            .lock()
            .expect("service state poisoned")
            .paused = false;
        self.shared.wake.notify_all();
    }

    /// Current counters (a snapshot; the worker updates them between
    /// ticks).
    pub fn stats(&self) -> ServiceStats {
        self.shared
            .state
            .lock()
            .expect("service state poisoned")
            .stats
    }

    /// Number of requests waiting right now.
    pub fn queue_len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("service state poisoned")
            .queue
            .len()
    }

    /// Drain and stop: queued-but-unsolved requests get typed
    /// [`ServiceError::ShuttingDown`] responses, the worker exits, and
    /// the final counters come back.
    pub fn shutdown(mut self) -> ServiceStats {
        self.begin_shutdown();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
        self.stats()
    }

    /// Like [`shutdown`](SolveService::shutdown), but also hands back
    /// the worker's accumulated [`Telemetry`] (metrics + event log)
    /// for offline export and replay validation.
    pub fn shutdown_with_telemetry(mut self) -> (ServiceStats, Telemetry) {
        self.begin_shutdown();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
        let mut st = self.shared.state.lock().expect("service state poisoned");
        let telemetry = st.telemetry.take().unwrap_or_default();
        (st.stats, telemetry)
    }

    fn begin_shutdown(&self) {
        self.shared
            .state
            .lock()
            .expect("service state poisoned")
            .shutdown = true;
        self.shared.wake.notify_all();
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, mut core: ServiceCore) {
    let window_us = core.config().window_us.max(0.0);
    let mut batch_base = 0usize;
    loop {
        // Wait for work (or shutdown), then drain a tick's working set.
        let (working, senders, open) = {
            let mut st = shared.state.lock().expect("service state poisoned");
            while (st.paused || st.queue.is_empty()) && !st.shutdown {
                st = shared.wake.wait(st).expect("service state poisoned");
            }
            if st.shutdown {
                let clock = st.stats.clock_us;
                let drained: Vec<_> = st.queue.drain(..).collect();
                st.stats.rejected += drained.len() as u64;
                for (req, tx) in drained {
                    core.telemetry_mut()
                        .on_reject(req.id, clock, &ServiceError::ShuttingDown);
                    let _ = tx.send(Response {
                        id: req.id,
                        result: Err(ServiceError::ShuttingDown),
                        spans: Default::default(),
                        batch: None,
                        coalesced_with: 0,
                        cache_hit: false,
                        completed_us: clock,
                    });
                }
                st.telemetry = Some(core.take_telemetry());
                return;
            }
            let take = if window_us == 0.0 { 1 } else { st.queue.len() };
            let mut working = Vec::with_capacity(take);
            let mut senders = Vec::with_capacity(take);
            for (req, tx) in st.queue.drain(..take) {
                working.push(req);
                senders.push(tx);
            }
            (working, senders, st.stats.clock_us)
        };

        let close = open + window_us;
        let (responses, batches, free) = core.solve_tick(open, close, &working, batch_base);
        batch_base += batches.len();
        publish(&shared, &responses, &batches, free, core.cache_stats());
        for (resp, tx) in responses.into_iter().zip(senders) {
            let _ = tx.send(resp);
        }
    }
}

fn publish(
    shared: &Arc<Shared>,
    responses: &[Response],
    batches: &[BatchSummary],
    clock_us: f64,
    cache: CacheStats,
) {
    let mut st = shared.state.lock().expect("service state poisoned");
    for r in responses {
        match &r.result {
            Ok(_) => st.stats.completed += 1,
            Err(_) => st.stats.failed += 1,
        }
    }
    st.stats.batches += batches.len() as u64;
    st.stats.clock_us = clock_us;
    st.stats.cache = cache;
}
