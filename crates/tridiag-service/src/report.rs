//! The service report: per-request outcomes, batch summaries,
//! throughput/latency rollups, SLO accounting, a per-request trace,
//! and the JSON export + schema validator
//! (`tridiag.service_report/v1`).

use gpu_sim::json::schema::Check;
use gpu_sim::{Json, Trace};

use crate::cache::CacheStats;
use crate::request::{RequestSpans, Response, ServiceError};

/// Per-device execution of one fused batch (one entry per shard for
/// multi-device groups, a single entry otherwise). `completion_us` is
/// relative to the batch start, like [`ShardSummary::completion_us`]
/// is relative to the launch.
///
/// [`ShardSummary::completion_us`]: tridiag_gpu::ShardSummary
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpan {
    /// Device index within the group.
    pub device_index: usize,
    /// Systems this device solved.
    pub sys_count: usize,
    /// Modeled kernel time on this device (µs).
    pub kernel_us: f64,
    /// When this device finished, relative to batch start (µs).
    pub completion_us: f64,
}

/// One fused launch the service performed.
#[derive(Debug, Clone)]
pub struct BatchSummary {
    /// Global batch index (what [`Response::batch`] refers to).
    pub index: usize,
    /// Rows per system of every member.
    pub n: usize,
    /// Precision label (`"f32"` / `"f64"`).
    pub precision: &'static str,
    /// Total fused systems.
    pub m_total: usize,
    /// Ids of the member requests, in fused order.
    pub request_ids: Vec<u64>,
    /// Whether the fused plan came from the cache.
    pub cache_hit: bool,
    /// Whether the batch faulted and fell back to per-member solves.
    pub isolated: bool,
    /// Modeled kernel time (fused; summed over members when isolated).
    pub kernel_us: f64,
    /// When the batch started on the modeled axis.
    pub start_us: f64,
    /// Per-device shard execution (empty only for isolated fallbacks).
    pub devices: Vec<DeviceSpan>,
}

/// Latency-objective configuration for [`SloSummary`] accounting.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// A completed request is "good" when its latency is at most this.
    pub target_latency_us: f64,
    /// Width of one accounting bucket on the modeled axis (the
    /// modeled-time analogue of a "minute" in good/bad-minute SLOs).
    pub bucket_us: f64,
    /// Fraction of buckets the error budget allows to go bad.
    pub budget_frac: f64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            target_latency_us: 500.0,
            bucket_us: 1000.0,
            budget_frac: 0.1,
        }
    }
}

/// What the run did to its latency objective.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloSummary {
    /// The configured latency target (µs).
    pub target_latency_us: f64,
    /// Completed requests whose latency exceeded the target.
    pub violations: usize,
    /// Accounting buckets that saw at least one completion.
    pub buckets: usize,
    /// Buckets where every completion met the target.
    pub good_buckets: usize,
    /// Buckets with at least one violation.
    pub bad_buckets: usize,
    /// The configured error-budget fraction.
    pub budget_frac: f64,
    /// Fraction of the error budget consumed
    /// (`bad / (budget_frac * buckets)`; > 1 means the budget is blown).
    pub budget_burn: f64,
}

/// Everything one service run (modeled workload or drained threaded
/// session) produced.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Device-group label the service ran on.
    pub device: String,
    /// Coalescing window (µs).
    pub window_us: f64,
    /// Bounded queue depth.
    pub queue_depth: usize,
    /// One response per submitted request, in completion order per
    /// tick (rejections appear where they bounced).
    pub responses: Vec<Response>,
    /// One summary per fused launch.
    pub batches: Vec<BatchSummary>,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// First arrival → last completion (µs); 0 for an empty run.
    pub makespan_us: f64,
    /// Successfully solved requests per modeled second.
    pub requests_per_s: f64,
    /// Median latency over solved requests (µs).
    pub p50_us: f64,
    /// 99th-percentile latency over solved requests (µs).
    pub p99_us: f64,
    /// Per-kind span totals over every response, accumulated in
    /// response order — the report half of the exact-partition
    /// invariant ([`crate::telemetry::Telemetry::cross_check`]
    /// compares the metric gauges against these bit-exactly).
    pub attributed: RequestSpans,
    /// Latency-objective accounting.
    pub slo: SloSummary,
    /// Merged trace on the modeled axis: batch spans (tid 0),
    /// per-device shard tracks, and one track per request with its
    /// cid-tagged queue → coalesce → kernel → scatter chain.
    pub trace: Trace,
}

/// Nearest-rank percentile of an ascending-sorted slice: the smallest
/// element with at least `p`% of the samples at or below it
/// (`sorted[ceil(p/100 · n) - 1]`, rank clamped to `[1, n]`). Empty
/// input yields 0. Note p99 of fewer than 100 samples is the maximum.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl ServiceReport {
    /// Assemble the rollups, SLO accounting, and trace from raw
    /// outcomes.
    pub fn build(
        device: String,
        window_us: f64,
        queue_depth: usize,
        responses: Vec<Response>,
        batches: Vec<BatchSummary>,
        cache: CacheStats,
        slo_cfg: SloConfig,
    ) -> ServiceReport {
        let mut latencies: Vec<f64> = responses
            .iter()
            .filter(|r| r.result.is_ok())
            .map(|r| r.spans.latency_us())
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let completed = latencies.len();
        let first_arrival = responses
            .iter()
            .map(|r| r.completed_us - r.spans.latency_us())
            .fold(f64::INFINITY, f64::min);
        let last_completion = responses.iter().map(|r| r.completed_us).fold(0.0, f64::max);
        let makespan_us = if responses.is_empty() {
            0.0
        } else {
            (last_completion - first_arrival).max(0.0)
        };
        let requests_per_s = if makespan_us > 0.0 {
            completed as f64 / (makespan_us * 1e-6)
        } else {
            0.0
        };

        // One independent accumulator per kind, added in response
        // order — the exact sequence Telemetry::on_response replays
        // into the attributed_us gauges (rejections contribute +0.0,
        // which is bit-neutral on a non-negative sum).
        let mut attributed = RequestSpans::default();
        for r in &responses {
            attributed.queue_us += r.spans.queue_us;
            attributed.coalesce_us += r.spans.coalesce_us;
            attributed.kernel_us += r.spans.kernel_us;
            attributed.scatter_us += r.spans.scatter_us;
        }

        let slo = slo_accounting(&responses, slo_cfg);

        let mut trace = Trace::new("tridiag-service");
        for batch in &batches {
            trace.span(
                format!("batch[{}] n={} m={}", batch.index, batch.n, batch.m_total),
                "service",
                0,
                batch.start_us,
                batch.kernel_us,
                vec![
                    ("cache_hit".into(), Json::Bool(batch.cache_hit)),
                    ("isolated".into(), Json::Bool(batch.isolated)),
                    (
                        "requests".into(),
                        Json::num(batch.request_ids.len() as f64),
                    ),
                ],
            );
            for d in &batch.devices {
                trace.span(
                    format!("batch[{}]/dev{}", batch.index, d.device_index),
                    "device",
                    crate::telemetry::DEVICE_TRACK_BASE + d.device_index as u32,
                    batch.start_us,
                    d.completion_us,
                    vec![
                        ("kernel_us".into(), Json::num(d.kernel_us)),
                        ("sys_count".into(), Json::num(d.sys_count as f64)),
                    ],
                );
            }
        }
        for r in &responses {
            if r.result.is_err() {
                continue;
            }
            // Track per request; spans tile [arrival, completion].
            let tid = crate::telemetry::request_track(r.id);
            let arrival = r.completed_us - r.spans.latency_us();
            let mut cursor = arrival;
            for (name, dur) in [
                ("queue", r.spans.queue_us),
                ("coalesce", r.spans.coalesce_us),
                ("kernel", r.spans.kernel_us),
                ("scatter", r.spans.scatter_us),
            ] {
                trace.span(
                    format!("req[{}]/{name}", r.id),
                    "request",
                    tid,
                    cursor,
                    dur,
                    vec![("cid".into(), Json::num(r.id as f64))],
                );
                cursor += dur;
            }
        }

        ServiceReport {
            device,
            window_us,
            queue_depth,
            p50_us: percentile(&latencies, 50.0),
            p99_us: percentile(&latencies, 99.0),
            attributed,
            slo,
            responses,
            batches,
            cache,
            makespan_us,
            requests_per_s,
            trace,
        }
    }

    /// Solved / rejected / failed counts.
    pub fn totals(&self) -> (usize, usize, usize) {
        let mut completed = 0;
        let mut rejected = 0;
        let mut failed = 0;
        for r in &self.responses {
            match &r.result {
                Ok(_) => completed += 1,
                Err(ServiceError::Overloaded { .. }) | Err(ServiceError::ShuttingDown) => {
                    rejected += 1
                }
                Err(_) => failed += 1,
            }
        }
        (completed, rejected, failed)
    }

    /// Export as schema `tridiag.service_report/v1`.
    pub fn to_json(&self) -> Json {
        let (completed, rejected, failed) = self.totals();
        let responses: Vec<Json> = self
            .responses
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("id".into(), Json::num(r.id as f64)),
                    ("ok".into(), Json::Bool(r.result.is_ok())),
                ];
                match &r.result {
                    Ok(x) => {
                        fields.push(("solution_len".into(), Json::num(x.len() as f64)));
                        fields.push((
                            "solution_hash".into(),
                            Json::str(format!("{:016x}", x.hash())),
                        ));
                    }
                    Err(e) => fields.push(("error".into(), Json::str(e.to_string()))),
                }
                fields.extend([
                    (
                        "batch".into(),
                        r.batch.map_or(Json::Null, |b| Json::num(b as f64)),
                    ),
                    ("coalesced_with".into(), Json::num(r.coalesced_with as f64)),
                    ("cache_hit".into(), Json::Bool(r.cache_hit)),
                    (
                        "spans_us".into(),
                        Json::Obj(vec![
                            ("queue".into(), Json::num(r.spans.queue_us)),
                            ("coalesce".into(), Json::num(r.spans.coalesce_us)),
                            ("kernel".into(), Json::num(r.spans.kernel_us)),
                            ("scatter".into(), Json::num(r.spans.scatter_us)),
                        ]),
                    ),
                    ("latency_us".into(), Json::num(r.spans.latency_us())),
                    ("completed_us".into(), Json::num(r.completed_us)),
                ]);
                Json::Obj(fields)
            })
            .collect();
        let batches: Vec<Json> = self
            .batches
            .iter()
            .map(|b| {
                Json::Obj(vec![
                    ("index".into(), Json::num(b.index as f64)),
                    ("n".into(), Json::num(b.n as f64)),
                    ("precision".into(), Json::str(b.precision)),
                    ("m_total".into(), Json::num(b.m_total as f64)),
                    (
                        "request_ids".into(),
                        Json::Arr(
                            b.request_ids
                                .iter()
                                .map(|&id| Json::num(id as f64))
                                .collect(),
                        ),
                    ),
                    ("cache_hit".into(), Json::Bool(b.cache_hit)),
                    ("isolated".into(), Json::Bool(b.isolated)),
                    ("kernel_us".into(), Json::num(b.kernel_us)),
                    ("start_us".into(), Json::num(b.start_us)),
                    (
                        "devices".into(),
                        Json::Arr(
                            b.devices
                                .iter()
                                .map(|d| {
                                    Json::Obj(vec![
                                        (
                                            "device".into(),
                                            Json::num(d.device_index as f64),
                                        ),
                                        (
                                            "sys_count".into(),
                                            Json::num(d.sys_count as f64),
                                        ),
                                        ("kernel_us".into(), Json::num(d.kernel_us)),
                                        (
                                            "completion_us".into(),
                                            Json::num(d.completion_us),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::str("tridiag.service_report/v1")),
            ("device".into(), Json::str(self.device.clone())),
            ("window_us".into(), Json::num(self.window_us)),
            ("queue_depth".into(), Json::num(self.queue_depth as f64)),
            (
                "totals".into(),
                Json::Obj(vec![
                    (
                        "submitted".into(),
                        Json::num(self.responses.len() as f64),
                    ),
                    ("completed".into(), Json::num(completed as f64)),
                    ("rejected".into(), Json::num(rejected as f64)),
                    ("failed".into(), Json::num(failed as f64)),
                ]),
            ),
            (
                "throughput".into(),
                Json::Obj(vec![
                    ("makespan_us".into(), Json::num(self.makespan_us)),
                    ("requests_per_s".into(), Json::num(self.requests_per_s)),
                    ("p50_us".into(), Json::num(self.p50_us)),
                    ("p99_us".into(), Json::num(self.p99_us)),
                ]),
            ),
            (
                "attributed_us".into(),
                Json::Obj(vec![
                    ("queue".into(), Json::num(self.attributed.queue_us)),
                    ("coalesce".into(), Json::num(self.attributed.coalesce_us)),
                    ("kernel".into(), Json::num(self.attributed.kernel_us)),
                    ("scatter".into(), Json::num(self.attributed.scatter_us)),
                ]),
            ),
            (
                "slo".into(),
                Json::Obj(vec![
                    (
                        "target_latency_us".into(),
                        Json::num(self.slo.target_latency_us),
                    ),
                    ("violations".into(), Json::num(self.slo.violations as f64)),
                    ("buckets".into(), Json::num(self.slo.buckets as f64)),
                    (
                        "good_buckets".into(),
                        Json::num(self.slo.good_buckets as f64),
                    ),
                    (
                        "bad_buckets".into(),
                        Json::num(self.slo.bad_buckets as f64),
                    ),
                    ("budget_frac".into(), Json::num(self.slo.budget_frac)),
                    ("budget_burn".into(), Json::num(self.slo.budget_burn)),
                ]),
            ),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("lookups".into(), Json::num(self.cache.lookups as f64)),
                    ("hits".into(), Json::num(self.cache.hits as f64)),
                    ("misses".into(), Json::num(self.cache.misses as f64)),
                    ("evictions".into(), Json::num(self.cache.evictions as f64)),
                ]),
            ),
            ("batches".into(), Json::Arr(batches)),
            ("responses".into(), Json::Arr(responses)),
        ])
    }
}

/// Good/bad-bucket SLO accounting over the completed responses.
fn slo_accounting(responses: &[Response], cfg: SloConfig) -> SloSummary {
    use std::collections::BTreeMap;
    let mut violations = 0;
    // bucket id -> saw a violation
    let mut buckets: BTreeMap<u64, bool> = BTreeMap::new();
    for r in responses {
        if r.result.is_err() {
            continue;
        }
        let violated = r.spans.latency_us() > cfg.target_latency_us;
        if violated {
            violations += 1;
        }
        let id = if cfg.bucket_us > 0.0 {
            (r.completed_us / cfg.bucket_us).floor() as u64
        } else {
            0
        };
        let bad = buckets.entry(id).or_insert(false);
        *bad = *bad || violated;
    }
    let bad_buckets = buckets.values().filter(|&&b| b).count();
    let total = buckets.len();
    let budget = cfg.budget_frac * total as f64;
    SloSummary {
        target_latency_us: cfg.target_latency_us,
        violations,
        buckets: total,
        good_buckets: total - bad_buckets,
        bad_buckets,
        budget_frac: cfg.budget_frac,
        budget_burn: if budget > 0.0 {
            bad_buckets as f64 / budget
        } else if bad_buckets > 0 {
            f64::INFINITY
        } else {
            0.0
        },
    }
}

/// Validate a `tridiag.service_report/v1` document. Returns every
/// problem found (empty = valid), in the same "collect all findings"
/// style as the plan and trace validators. Beyond field shapes this
/// re-derives the cross-sums: totals add up, cache hits + misses =
/// lookups, per-response span sums match latencies, batch member ids
/// resolve, the attributed per-kind totals equal the sum over the
/// responses **exactly** (both sides survive the JSON round-trip
/// bit-intact), and the SLO bucket counts are coherent.
pub fn validate_service_report_json(doc: &Json) -> Vec<String> {
    let mut c = Check::new(doc);
    c.schema("tridiag.service_report/v1");
    c.req_str("device");
    c.num_ge("window_us", 0.0);

    let mut submitted = -1.0;
    if let Some(totals) = c.req_obj("totals") {
        let total_of = |key: &str| totals.get(key).and_then(Json::as_num).unwrap_or(-1.0);
        submitted = total_of("submitted");
        let (completed, rejected, failed) = (
            total_of("completed"),
            total_of("rejected"),
            total_of("failed"),
        );
        if submitted < 0.0 || completed < 0.0 || rejected < 0.0 || failed < 0.0 {
            c.problem("totals missing one of submitted/completed/rejected/failed");
        } else if (completed + rejected + failed - submitted).abs() > 1e-9 {
            c.problem(format!(
                "totals do not add up: {completed} + {rejected} + {failed} != {submitted}"
            ));
        }
    }
    if let Some(cache) = c.req_obj("cache") {
        let g = |k: &str| cache.get(k).and_then(Json::as_num).unwrap_or(-1.0);
        if (g("hits") + g("misses") - g("lookups")).abs() > 1e-9 {
            c.problem("cache counters: hits + misses != lookups");
        }
    }

    let responses = c.req_arr("responses");
    if submitted >= 0.0 && responses.len() as f64 != submitted {
        c.problem(format!(
            "responses array has {} entries but totals.submitted = {submitted}",
            responses.len()
        ));
    }
    let batches = c.req_arr("batches");
    let mut ids = Vec::new();
    // Replay the attributed sums in response order (same adds as the
    // report builder, so exact comparison below is sound).
    let (mut att_q, mut att_c, mut att_k, mut att_s) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (i, r) in responses.iter().enumerate() {
        let mut rc = c.child(r, format!("response {i}: "));
        let Some(id) = rc.req_num("id") else {
            c.absorb(rc);
            continue;
        };
        ids.push(id);
        let ok = matches!(r.get("ok"), Some(Json::Bool(true)));
        if ok == r.get("error").is_some() {
            rc.problem(format!("(id {id}): ok flag and error field disagree"));
        }
        if ok && r.get("solution_hash").and_then(Json::as_str).is_none() {
            rc.problem(format!("(id {id}): ok but no solution_hash"));
        }
        let spans = r.get("spans_us");
        let span = |k: &str| {
            spans
                .and_then(|s| s.get(k))
                .and_then(Json::as_num)
                .unwrap_or(f64::NAN)
        };
        let (q, co, k, s) = (span("queue"), span("coalesce"), span("kernel"), span("scatter"));
        let sum = q + co + k + s;
        let latency = r.get("latency_us").and_then(Json::as_num).unwrap_or(f64::NAN);
        if sum.is_nan() || latency.is_nan() || (sum - latency).abs() > 1e-6 * latency.abs().max(1.0)
        {
            rc.problem(format!("(id {id}): spans sum {sum} != latency {latency}"));
        } else {
            att_q += q;
            att_c += co;
            att_k += k;
            att_s += s;
        }
        if let Some(b) = r.get("batch").and_then(Json::as_num) {
            if b < 0.0 || b >= batches.len() as f64 {
                rc.problem(format!(
                    "(id {id}): batch index {b} out of range ({} batches)",
                    batches.len()
                ));
            }
        }
        c.absorb(rc);
    }
    if let Some(att) = c.req_obj("attributed_us") {
        for (key, expected) in [
            ("queue", att_q),
            ("coalesce", att_c),
            ("kernel", att_k),
            ("scatter", att_s),
        ] {
            match att.get(key).and_then(Json::as_num) {
                Some(v) if v == expected => {}
                Some(v) => c.problem(format!(
                    "attributed_us.{key} is {v} but the responses sum to {expected} \
                     (exact-partition invariant)"
                )),
                None => c.problem(format!("attributed_us missing numeric field {key:?}")),
            }
        }
    }
    for (i, b) in batches.iter().enumerate() {
        let mut bc = c.child(b, format!("batch {i}: "));
        let members = bc.req_arr("request_ids");
        if members.is_empty() {
            bc.problem("empty request_ids");
        }
        for id in members {
            if let Some(id) = id.as_num() {
                if !ids.contains(&id) {
                    bc.problem(format!("request id {id} has no response"));
                }
            }
        }
        let m_total = b.get("m_total").and_then(Json::as_num).unwrap_or(-1.0);
        if m_total < 1.0 {
            bc.problem(format!("m_total {m_total} < 1"));
        }
        let mut device_m = 0.0;
        let devices = bc.req_arr("devices");
        for d in devices {
            device_m += d.get("sys_count").and_then(Json::as_num).unwrap_or(0.0);
        }
        if !devices.is_empty() && device_m != m_total {
            bc.problem(format!(
                "device sys_counts sum to {device_m} but m_total is {m_total}"
            ));
        }
        c.absorb(bc);
    }
    if let Some(t) = c.req_obj("throughput") {
        let g = |k: &str| t.get(k).and_then(Json::as_num).unwrap_or(f64::NAN);
        if g("p50_us") > g("p99_us") {
            c.problem(format!("p50 {} exceeds p99 {}", g("p50_us"), g("p99_us")));
        }
        let rps = g("requests_per_s");
        if rps.is_nan() || rps < 0.0 {
            c.problem("requests_per_s missing or negative");
        }
    }
    if let Some(slo) = c.req_obj("slo") {
        let g = |k: &str| slo.get(k).and_then(Json::as_num).unwrap_or(-1.0);
        let (buckets, good, bad) = (g("buckets"), g("good_buckets"), g("bad_buckets"));
        if buckets < 0.0 || good < 0.0 || bad < 0.0 {
            c.problem("slo missing one of buckets/good_buckets/bad_buckets");
        } else if good + bad != buckets {
            c.problem(format!(
                "slo buckets do not add up: {good} good + {bad} bad != {buckets}"
            ));
        }
        let violations = g("violations");
        if submitted >= 0.0 && violations > submitted {
            c.problem(format!(
                "slo violations {violations} exceed submitted {submitted}"
            ));
        }
        if g("target_latency_us") <= 0.0 {
            c.problem("slo target_latency_us must be positive");
        }
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Pins the nearest-rank convention: rank = ceil(p/100 · n),
    // clamped to [1, n], 1-indexed.
    #[test]
    fn percentile_of_empty_set_is_zero() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[], 99.0), 0.0);
    }

    #[test]
    fn percentile_of_single_sample_is_that_sample() {
        assert_eq!(percentile(&[42.0], 0.0), 42.0);
        assert_eq!(percentile(&[42.0], 50.0), 42.0);
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
        assert_eq!(percentile(&[42.0], 100.0), 42.0);
    }

    #[test]
    fn p99_of_fewer_than_100_samples_is_the_maximum() {
        let v: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 99.0), 50.0);
        let v: Vec<f64> = (1..=99).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 99.0), 99.0);
    }

    #[test]
    fn p99_of_exactly_100_samples_is_the_99th() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 50.0), 50.0);
    }

    #[test]
    fn p50_rounds_toward_the_lower_median() {
        assert_eq!(percentile(&[1.0, 2.0], 50.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 50.0), 2.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 50.0), 2.0);
    }

    #[test]
    fn p0_clamps_to_the_minimum() {
        assert_eq!(percentile(&[3.0, 7.0, 9.0], 0.0), 3.0);
    }

    #[test]
    fn slo_buckets_partition_and_burn() {
        use crate::request::{RequestSpans, Response};
        let mk = |completed_us: f64, kernel_us: f64| Response {
            id: 0,
            result: Ok(crate::request::Solution::F64(vec![1.0])),
            spans: RequestSpans {
                queue_us: 0.0,
                coalesce_us: 0.0,
                kernel_us,
                scatter_us: 0.0,
            },
            batch: None,
            coalesced_with: 0,
            cache_hit: false,
            completed_us,
        };
        let cfg = SloConfig {
            target_latency_us: 10.0,
            bucket_us: 100.0,
            budget_frac: 0.5,
        };
        // Bucket 0: one good; bucket 1: one good + one violation.
        let responses = vec![mk(50.0, 5.0), mk(150.0, 5.0), mk(160.0, 20.0)];
        let slo = slo_accounting(&responses, cfg);
        assert_eq!(slo.violations, 1);
        assert_eq!(slo.buckets, 2);
        assert_eq!(slo.good_buckets, 1);
        assert_eq!(slo.bad_buckets, 1);
        assert_eq!(slo.budget_burn, 1.0);
    }
}
