//! The service report: per-request outcomes, batch summaries,
//! throughput/latency rollups, a per-request trace, and the JSON
//! export + schema validator (`tridiag.service_report/v1`).

use gpu_sim::{Json, Trace};

use crate::cache::CacheStats;
use crate::request::{Response, ServiceError};

/// One fused launch the service performed.
#[derive(Debug, Clone)]
pub struct BatchSummary {
    /// Global batch index (what [`Response::batch`] refers to).
    pub index: usize,
    /// Rows per system of every member.
    pub n: usize,
    /// Precision label (`"f32"` / `"f64"`).
    pub precision: &'static str,
    /// Total fused systems.
    pub m_total: usize,
    /// Ids of the member requests, in fused order.
    pub request_ids: Vec<u64>,
    /// Whether the fused plan came from the cache.
    pub cache_hit: bool,
    /// Whether the batch faulted and fell back to per-member solves.
    pub isolated: bool,
    /// Modeled kernel time (fused; summed over members when isolated).
    pub kernel_us: f64,
    /// When the batch started on the modeled axis.
    pub start_us: f64,
}

/// Everything one service run (modeled workload or drained threaded
/// session) produced.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Device-group label the service ran on.
    pub device: String,
    /// Coalescing window (µs).
    pub window_us: f64,
    /// Bounded queue depth.
    pub queue_depth: usize,
    /// One response per submitted request, in completion order per
    /// tick (rejections appear where they bounced).
    pub responses: Vec<Response>,
    /// One summary per fused launch.
    pub batches: Vec<BatchSummary>,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// First arrival → last completion (µs); 0 for an empty run.
    pub makespan_us: f64,
    /// Successfully solved requests per modeled second.
    pub requests_per_s: f64,
    /// Median latency over solved requests (µs).
    pub p50_us: f64,
    /// 99th-percentile latency over solved requests (µs).
    pub p99_us: f64,
    /// Per-request span trace on the modeled axis (one track per
    /// request: queue → coalesce → kernel → scatter).
    pub trace: Trace,
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl ServiceReport {
    /// Assemble the rollups and trace from raw outcomes.
    pub fn build(
        device: String,
        window_us: f64,
        queue_depth: usize,
        responses: Vec<Response>,
        batches: Vec<BatchSummary>,
        cache: CacheStats,
    ) -> ServiceReport {
        let mut latencies: Vec<f64> = responses
            .iter()
            .filter(|r| r.result.is_ok())
            .map(|r| r.spans.latency_us())
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let completed = latencies.len();
        let first_arrival = responses
            .iter()
            .map(|r| r.completed_us - r.spans.latency_us())
            .fold(f64::INFINITY, f64::min);
        let last_completion = responses.iter().map(|r| r.completed_us).fold(0.0, f64::max);
        let makespan_us = if responses.is_empty() {
            0.0
        } else {
            (last_completion - first_arrival).max(0.0)
        };
        let requests_per_s = if makespan_us > 0.0 {
            completed as f64 / (makespan_us * 1e-6)
        } else {
            0.0
        };

        let mut trace = Trace::new("tridiag-service");
        for batch in &batches {
            trace.span(
                format!("batch[{}] n={} m={}", batch.index, batch.n, batch.m_total),
                "service",
                0,
                batch.start_us,
                batch.kernel_us,
                vec![
                    ("cache_hit".into(), Json::Bool(batch.cache_hit)),
                    ("isolated".into(), Json::Bool(batch.isolated)),
                    (
                        "requests".into(),
                        Json::num(batch.request_ids.len() as f64),
                    ),
                ],
            );
        }
        for r in &responses {
            if r.result.is_err() {
                continue;
            }
            // Track per request; spans tile [arrival, completion].
            let tid = (r.id % (u32::MAX as u64 - 1)) as u32 + 1;
            let arrival = r.completed_us - r.spans.latency_us();
            let mut cursor = arrival;
            for (name, dur) in [
                ("queue", r.spans.queue_us),
                ("coalesce", r.spans.coalesce_us),
                ("kernel", r.spans.kernel_us),
                ("scatter", r.spans.scatter_us),
            ] {
                trace.span(
                    format!("req[{}]/{name}", r.id),
                    "request",
                    tid,
                    cursor,
                    dur,
                    vec![],
                );
                cursor += dur;
            }
        }

        ServiceReport {
            device,
            window_us,
            queue_depth,
            p50_us: percentile(&latencies, 50.0),
            p99_us: percentile(&latencies, 99.0),
            responses,
            batches,
            cache,
            makespan_us,
            requests_per_s,
            trace,
        }
    }

    /// Solved / rejected / failed counts.
    pub fn totals(&self) -> (usize, usize, usize) {
        let mut completed = 0;
        let mut rejected = 0;
        let mut failed = 0;
        for r in &self.responses {
            match &r.result {
                Ok(_) => completed += 1,
                Err(ServiceError::Overloaded { .. }) | Err(ServiceError::ShuttingDown) => {
                    rejected += 1
                }
                Err(_) => failed += 1,
            }
        }
        (completed, rejected, failed)
    }

    /// Export as schema `tridiag.service_report/v1`.
    pub fn to_json(&self) -> Json {
        let (completed, rejected, failed) = self.totals();
        let responses: Vec<Json> = self
            .responses
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("id".into(), Json::num(r.id as f64)),
                    ("ok".into(), Json::Bool(r.result.is_ok())),
                ];
                match &r.result {
                    Ok(x) => {
                        fields.push(("solution_len".into(), Json::num(x.len() as f64)));
                        fields.push((
                            "solution_hash".into(),
                            Json::str(format!("{:016x}", x.hash())),
                        ));
                    }
                    Err(e) => fields.push(("error".into(), Json::str(e.to_string()))),
                }
                fields.extend([
                    (
                        "batch".into(),
                        r.batch.map_or(Json::Null, |b| Json::num(b as f64)),
                    ),
                    ("coalesced_with".into(), Json::num(r.coalesced_with as f64)),
                    ("cache_hit".into(), Json::Bool(r.cache_hit)),
                    (
                        "spans_us".into(),
                        Json::Obj(vec![
                            ("queue".into(), Json::num(r.spans.queue_us)),
                            ("coalesce".into(), Json::num(r.spans.coalesce_us)),
                            ("kernel".into(), Json::num(r.spans.kernel_us)),
                            ("scatter".into(), Json::num(r.spans.scatter_us)),
                        ]),
                    ),
                    ("latency_us".into(), Json::num(r.spans.latency_us())),
                    ("completed_us".into(), Json::num(r.completed_us)),
                ]);
                Json::Obj(fields)
            })
            .collect();
        let batches: Vec<Json> = self
            .batches
            .iter()
            .map(|b| {
                Json::Obj(vec![
                    ("index".into(), Json::num(b.index as f64)),
                    ("n".into(), Json::num(b.n as f64)),
                    ("precision".into(), Json::str(b.precision)),
                    ("m_total".into(), Json::num(b.m_total as f64)),
                    (
                        "request_ids".into(),
                        Json::Arr(
                            b.request_ids
                                .iter()
                                .map(|&id| Json::num(id as f64))
                                .collect(),
                        ),
                    ),
                    ("cache_hit".into(), Json::Bool(b.cache_hit)),
                    ("isolated".into(), Json::Bool(b.isolated)),
                    ("kernel_us".into(), Json::num(b.kernel_us)),
                    ("start_us".into(), Json::num(b.start_us)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::str("tridiag.service_report/v1")),
            ("device".into(), Json::str(self.device.clone())),
            ("window_us".into(), Json::num(self.window_us)),
            ("queue_depth".into(), Json::num(self.queue_depth as f64)),
            (
                "totals".into(),
                Json::Obj(vec![
                    (
                        "submitted".into(),
                        Json::num(self.responses.len() as f64),
                    ),
                    ("completed".into(), Json::num(completed as f64)),
                    ("rejected".into(), Json::num(rejected as f64)),
                    ("failed".into(), Json::num(failed as f64)),
                ]),
            ),
            (
                "throughput".into(),
                Json::Obj(vec![
                    ("makespan_us".into(), Json::num(self.makespan_us)),
                    ("requests_per_s".into(), Json::num(self.requests_per_s)),
                    ("p50_us".into(), Json::num(self.p50_us)),
                    ("p99_us".into(), Json::num(self.p99_us)),
                ]),
            ),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("lookups".into(), Json::num(self.cache.lookups as f64)),
                    ("hits".into(), Json::num(self.cache.hits as f64)),
                    ("misses".into(), Json::num(self.cache.misses as f64)),
                    ("evictions".into(), Json::num(self.cache.evictions as f64)),
                ]),
            ),
            ("batches".into(), Json::Arr(batches)),
            ("responses".into(), Json::Arr(responses)),
        ])
    }
}

/// Validate a `tridiag.service_report/v1` document. Returns every
/// problem found (empty = valid), in the same "collect all findings"
/// style as the plan and trace validators.
pub fn validate_service_report_json(doc: &Json) -> Vec<String> {
    let mut problems = Vec::new();
    match doc.get("schema").and_then(Json::as_str) {
        Some("tridiag.service_report/v1") => {}
        Some(other) => problems.push(format!("unexpected schema {other:?}")),
        None => problems.push("missing schema field".into()),
    }
    let window = doc.get("window_us").and_then(Json::as_num);
    match window {
        Some(w) if w >= 0.0 => {}
        Some(w) => problems.push(format!("negative window_us {w}")),
        None => problems.push("missing window_us".into()),
    }
    let totals = doc.get("totals");
    let total_of = |key: &str| {
        totals
            .and_then(|t| t.get(key))
            .and_then(Json::as_num)
            .unwrap_or(-1.0)
    };
    let (submitted, completed, rejected, failed) = (
        total_of("submitted"),
        total_of("completed"),
        total_of("rejected"),
        total_of("failed"),
    );
    if submitted < 0.0 || completed < 0.0 || rejected < 0.0 || failed < 0.0 {
        problems.push("totals missing one of submitted/completed/rejected/failed".into());
    } else if (completed + rejected + failed - submitted).abs() > 1e-9 {
        problems.push(format!(
            "totals do not add up: {completed} + {rejected} + {failed} != {submitted}"
        ));
    }
    if let Some(cache) = doc.get("cache") {
        let g = |k: &str| cache.get(k).and_then(Json::as_num).unwrap_or(-1.0);
        if (g("hits") + g("misses") - g("lookups")).abs() > 1e-9 {
            problems.push("cache counters: hits + misses != lookups".into());
        }
    } else {
        problems.push("missing cache object".into());
    }
    let empty: Vec<Json> = Vec::new();
    let responses = doc
        .get("responses")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    if responses.len() as f64 != submitted && submitted >= 0.0 {
        problems.push(format!(
            "responses array has {} entries but totals.submitted = {submitted}",
            responses.len()
        ));
    }
    let batches = doc.get("batches").and_then(Json::as_arr).unwrap_or(&empty);
    let mut ids = Vec::new();
    for (i, r) in responses.iter().enumerate() {
        let Some(id) = r.get("id").and_then(Json::as_num) else {
            problems.push(format!("response {i}: missing id"));
            continue;
        };
        ids.push(id);
        let ok = matches!(r.get("ok"), Some(Json::Bool(true)));
        if ok == r.get("error").is_some() {
            problems.push(format!(
                "response {i} (id {id}): ok flag and error field disagree"
            ));
        }
        if ok && r.get("solution_hash").and_then(Json::as_str).is_none() {
            problems.push(format!("response {i} (id {id}): ok but no solution_hash"));
        }
        let spans = r.get("spans_us");
        let span = |k: &str| {
            spans
                .and_then(|s| s.get(k))
                .and_then(Json::as_num)
                .unwrap_or(f64::NAN)
        };
        let sum = span("queue") + span("coalesce") + span("kernel") + span("scatter");
        let latency = r.get("latency_us").and_then(Json::as_num).unwrap_or(f64::NAN);
        if sum.is_nan() || latency.is_nan() || (sum - latency).abs() > 1e-6 * latency.abs().max(1.0)
        {
            problems.push(format!(
                "response {i} (id {id}): spans sum {sum} != latency {latency}"
            ));
        }
        if let Some(b) = r.get("batch").and_then(Json::as_num) {
            if b < 0.0 || b >= batches.len() as f64 {
                problems.push(format!(
                    "response {i} (id {id}): batch index {b} out of range ({} batches)",
                    batches.len()
                ));
            }
        }
    }
    for (i, b) in batches.iter().enumerate() {
        let members = b
            .get("request_ids")
            .and_then(Json::as_arr)
            .unwrap_or(&empty);
        if members.is_empty() {
            problems.push(format!("batch {i}: empty request_ids"));
        }
        for id in members {
            if let Some(id) = id.as_num() {
                if !ids.contains(&id) {
                    problems.push(format!("batch {i}: request id {id} has no response"));
                }
            }
        }
        let m_total = b.get("m_total").and_then(Json::as_num).unwrap_or(-1.0);
        if m_total < 1.0 {
            problems.push(format!("batch {i}: m_total {m_total} < 1"));
        }
    }
    if let Some(t) = doc.get("throughput") {
        let g = |k: &str| t.get(k).and_then(Json::as_num).unwrap_or(f64::NAN);
        if g("p50_us") > g("p99_us") {
            problems.push(format!(
                "p50 {} exceeds p99 {}",
                g("p50_us"),
                g("p99_us")
            ));
        }
        let rps = g("requests_per_s");
        if rps.is_nan() || rps < 0.0 {
            problems.push("requests_per_s missing or negative".into());
        }
    } else {
        problems.push("missing throughput object".into());
    }
    problems
}
