//! # tridiag-service
//!
//! The front door that manufactures the paper's winning regime: many
//! small concurrent solve requests, coalesced into large fused batches.
//!
//! The paper's central result is that fused, large-`M` batched launches
//! win decisively past the crossover point — but real traffic arrives
//! as small independent requests. This crate bridges the two: a
//! bounded request queue with typed backpressure, a coalescer merging
//! compatible requests (same `n`, same precision) into one fused batch
//! per tick, a plan cache over the pure planner (PR 4's
//! [`tridiag_gpu::SolvePlan::build`]), per-request latency attribution
//! (queue / coalesce-window / kernel / scatter spans), and — the
//! correctness keystone — **decision pinning**, which makes a
//! request's bits independent of its co-tenants (see
//! [`core`] module docs; proven by the `service_differential` suite).
//!
//! Two drivers share the same engine:
//! - [`ServiceCore::run_workload`] — a fully deterministic modeled-time
//!   run of a whole workload (benches, differential tests, CLI).
//! - [`SolveService`] — a real worker thread behind a bounded queue for
//!   concurrent submitters (stress tests, `tridiag serve`).

#![warn(missing_docs)]

pub mod cache;
pub mod coalesce;
pub mod core;
pub mod report;
pub mod request;
pub mod service;
pub mod telemetry;

pub use cache::{certify, config_fingerprint, CacheStats, PlanCache, PlanKey};
pub use coalesce::{coalesce, CoalesceKey, CoalescedBatch, Member};
pub use core::{ServiceConfig, ServiceCore};
pub use report::{
    validate_service_report_json, BatchSummary, DeviceSpan, ServiceReport, SloConfig, SloSummary,
};
pub use request::{Payload, RequestSpans, Response, ServiceError, Solution, SolveRequest};
pub use service::{ServiceStats, SolveService, Ticket};
pub use telemetry::{
    validate_event_log, validate_request_chains, Event, ReplaySummary, Telemetry, EVENTS_SCHEMA,
};

use gpu_sim::{DeviceGroup, Result};

/// Solve one payload alone under the exact pinned config the service
/// would use — the reference answer coalescing must reproduce
/// bit-for-bit. (A fresh one-shot [`ServiceCore`]; the plan cache is
/// irrelevant to the answer.)
pub fn solo_solution(
    group: &DeviceGroup,
    cfg: ServiceConfig,
    payload: &Payload,
) -> Result<Solution> {
    let mut core = ServiceCore::new(group.clone(), cfg);
    core.solve_payload(payload).map(|(x, _, _, _)| x)
}
