//! Request-correlated telemetry for the solve service: a metrics
//! registry, a structured event log (schema `tridiag.events/v1`), and
//! the derived merged Chrome trace — all deterministic, all on the
//! modeled-time axis.
//!
//! Every request's id doubles as its **correlation id** (cid). The
//! [`crate::core::ServiceCore`] records an `admission` event when a
//! request enters a solve tick, `coalesce_open`/`coalesce_close` per
//! tick, one `cache_hit`/`cache_miss` event per fused batch (listing
//! every member cid), `shard_dispatch`/`shard_join` per device the
//! batch ran on, and exactly one terminal event — `completion` or
//! `fault` — per admitted request. Admission-time bounces get a
//! standalone `reject` event instead. [`validate_event_log`] replays a
//! serialized log and proves the lifecycle invariants: every admitted
//! cid reaches exactly one terminal, terminals never orphan (no
//! admission) or duplicate, every completed cid rode exactly one
//! batch.
//!
//! [`Telemetry::to_trace`] derives the merged Chrome trace from the
//! log alone: per-request span chains (queue → coalesce → kernel →
//! scatter, linked by the cid argument), batch spans, and per-device
//! shard tracks. [`validate_request_chains`] checks the chain
//! structure — each cid appears in exactly one causally-linked chain
//! whose spans tile `[arrival, completion]` exactly.
//!
//! The metrics half mirrors the event log into counters, histograms
//! (latency, queue depth, coalesce batch size, kernel time) and the
//! `attributed_us` gauges whose per-kind f64 accumulations replay the
//! report's own additions in the same order — which is what makes
//! [`Telemetry::cross_check`] a *bit-exact* partition check, in the
//! same style as the kernel phase sums and plan certificates.

use gpu_sim::json::schema::Check;
use gpu_sim::json::{parse, Json};
use gpu_sim::{MetricsRegistry, Trace};

use crate::report::{DeviceSpan, ServiceReport};
use crate::request::{Response, ServiceError, SolveRequest};

/// Schema identifier of the event-log header line.
pub const EVENTS_SCHEMA: &str = "tridiag.events/v1";

/// Every event kind the service emits, in lifecycle order.
pub const EVENT_KINDS: &[&str] = &[
    "admission",
    "reject",
    "coalesce_open",
    "coalesce_close",
    "cache_hit",
    "cache_miss",
    "shard_dispatch",
    "shard_join",
    "fault",
    "completion",
];

/// One structured event: kind, modeled timestamp, optional correlation
/// id, and kind-specific fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// One of [`EVENT_KINDS`].
    pub kind: &'static str,
    /// When it happened on the modeled axis (µs).
    pub t_us: f64,
    /// Correlation id (the request id) for request-scoped events.
    pub cid: Option<u64>,
    /// Kind-specific payload.
    pub fields: Vec<(String, Json)>,
}

impl Event {
    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("event".into(), Json::str(self.kind)),
            ("t_us".into(), Json::num(self.t_us)),
        ];
        if let Some(cid) = self.cid {
            obj.push(("cid".into(), Json::num(cid as f64)));
        }
        obj.extend(self.fields.iter().cloned());
        Json::Obj(obj)
    }
}

/// The telemetry sink one [`crate::core::ServiceCore`] owns: metrics
/// plus the event log. Recording is infallible and deterministic.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// The metrics registry (counters / gauges / histograms).
    pub metrics: MetricsRegistry,
    events: Vec<Event>,
    next_tick: u64,
}

impl Telemetry {
    /// An empty sink with the service's histogram families declared.
    pub fn new() -> Telemetry {
        let mut metrics = MetricsRegistry::new();
        metrics.declare_histogram(
            "latency_us",
            &[50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0],
        );
        metrics.declare_histogram("kernel_us", &[25.0, 50.0, 100.0, 200.0, 500.0, 1000.0]);
        metrics.declare_histogram("queue_depth", &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0]);
        metrics.declare_histogram("coalesce_batch_size", &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]);
        Telemetry {
            metrics,
            events: Vec::new(),
            next_tick: 0,
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    fn push(&mut self, kind: &'static str, t_us: f64, cid: Option<u64>, fields: Vec<(String, Json)>) {
        self.events.push(Event {
            kind,
            t_us,
            cid,
            fields,
        });
    }

    /// A coalescing tick opened over `working` admitted requests.
    /// Records one admission event per request (at its arrival time)
    /// and returns the tick id.
    pub fn on_tick_open(&mut self, open_us: f64, working: &[SolveRequest]) -> u64 {
        let tick = self.next_tick;
        self.next_tick += 1;
        for req in working {
            let precision = req.payload.precision();
            self.push(
                "admission",
                req.arrival_us,
                Some(req.id),
                vec![
                    ("m".into(), Json::num(req.payload.num_systems() as f64)),
                    ("n".into(), Json::num(req.payload.system_len() as f64)),
                    ("precision".into(), Json::str(precision)),
                ],
            );
            self.metrics.inc("requests", "admitted");
            self.metrics.inc("requests_by_precision", precision);
            self.metrics.inc(
                "geometry",
                &format!("n{}/{}", req.payload.system_len(), precision),
            );
        }
        self.metrics
            .observe("queue_depth", "all", working.len() as f64);
        self.push(
            "coalesce_open",
            open_us,
            None,
            vec![
                ("tick".into(), Json::num(tick as f64)),
                ("queued".into(), Json::num(working.len() as f64)),
            ],
        );
        tick
    }

    /// The tick's window closed with `batches` coalesced batches.
    pub fn on_tick_close(&mut self, tick: u64, close_us: f64, batches: usize) {
        self.push(
            "coalesce_close",
            close_us,
            None,
            vec![
                ("tick".into(), Json::num(tick as f64)),
                ("batches".into(), Json::num(batches as f64)),
            ],
        );
    }

    /// One fused batch ran: the batch-level cache lookup outcome plus
    /// per-device shard dispatch/join events.
    #[allow(clippy::too_many_arguments)]
    pub fn on_batch(
        &mut self,
        index: usize,
        start_us: f64,
        n: usize,
        elem_bytes: usize,
        precision: &'static str,
        m_total: usize,
        cids: &[u64],
        cache_hit: bool,
        isolated: bool,
        kernel_us: f64,
        devices: &[DeviceSpan],
    ) {
        let kind = if cache_hit { "cache_hit" } else { "cache_miss" };
        self.push(
            kind,
            start_us,
            None,
            vec![
                ("batch".into(), Json::num(index as f64)),
                ("n".into(), Json::num(n as f64)),
                ("elem_bytes".into(), Json::num(elem_bytes as f64)),
                ("precision".into(), Json::str(precision)),
                ("m_total".into(), Json::num(m_total as f64)),
                (
                    "cids".into(),
                    Json::Arr(cids.iter().map(|&c| Json::num(c as f64)).collect()),
                ),
                ("isolated".into(), Json::Bool(isolated)),
                ("kernel_us".into(), Json::num(kernel_us)),
            ],
        );
        self.metrics.inc("cache", if cache_hit { "hit" } else { "miss" });
        self.metrics.inc(
            "batches",
            if isolated {
                "isolated"
            } else if cids.len() > 1 {
                "fused"
            } else {
                "solo"
            },
        );
        self.metrics.observe("kernel_us", precision, kernel_us);
        for dev in devices {
            let label = format!("dev{}", dev.device_index);
            self.push(
                "shard_dispatch",
                start_us,
                None,
                vec![
                    ("batch".into(), Json::num(index as f64)),
                    ("device".into(), Json::num(dev.device_index as f64)),
                    ("sys_count".into(), Json::num(dev.sys_count as f64)),
                ],
            );
            self.push(
                "shard_join",
                start_us + dev.completion_us,
                None,
                vec![
                    ("batch".into(), Json::num(index as f64)),
                    ("device".into(), Json::num(dev.device_index as f64)),
                    ("kernel_us".into(), Json::num(dev.kernel_us)),
                ],
            );
            self.metrics.inc("shards", &label);
            self.metrics.add_gauge("device_kernel_us", &label, dev.kernel_us);
        }
    }

    /// A response left a tick (called once per response, in the tick's
    /// slot order — the order [`ServiceReport::build`] will see).
    /// Records the terminal event and the attributed-time gauges whose
    /// additions [`Telemetry::cross_check`] replays.
    pub fn on_response(&mut self, r: &Response, precision: &'static str) {
        self.metrics.add_gauge("attributed_us", "queue", r.spans.queue_us);
        self.metrics
            .add_gauge("attributed_us", "coalesce", r.spans.coalesce_us);
        self.metrics
            .add_gauge("attributed_us", "kernel", r.spans.kernel_us);
        self.metrics
            .add_gauge("attributed_us", "scatter", r.spans.scatter_us);
        match &r.result {
            Ok(_) => {
                self.metrics.inc("requests", "completed");
                self.metrics
                    .observe("latency_us", precision, r.spans.latency_us());
                self.metrics
                    .observe("coalesce_batch_size", "all", r.coalesced_with as f64);
                self.push(
                    "completion",
                    r.completed_us,
                    Some(r.id),
                    vec![
                        (
                            "batch".into(),
                            r.batch.map_or(Json::Null, |b| Json::num(b as f64)),
                        ),
                        ("precision".into(), Json::str(precision)),
                        ("queue_us".into(), Json::num(r.spans.queue_us)),
                        ("coalesce_us".into(), Json::num(r.spans.coalesce_us)),
                        ("kernel_us".into(), Json::num(r.spans.kernel_us)),
                        ("scatter_us".into(), Json::num(r.spans.scatter_us)),
                        ("cache_hit".into(), Json::Bool(r.cache_hit)),
                        ("coalesced_with".into(), Json::num(r.coalesced_with as f64)),
                    ],
                );
            }
            Err(e) => {
                self.metrics.inc("requests", "failed");
                self.push(
                    "fault",
                    r.completed_us,
                    Some(r.id),
                    vec![
                        (
                            "batch".into(),
                            r.batch.map_or(Json::Null, |b| Json::num(b as f64)),
                        ),
                        ("error".into(), Json::str(e.to_string())),
                    ],
                );
            }
        }
    }

    /// A request bounced at admission (never enters a tick).
    pub fn on_reject(&mut self, id: u64, t_us: f64, err: &ServiceError) {
        let reason = match err {
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::ShuttingDown => "shutting_down",
            _ => "invalid",
        };
        self.metrics.inc("requests", "rejected");
        self.metrics.inc("rejects", reason);
        self.push(
            "reject",
            t_us,
            Some(id),
            vec![("reason".into(), Json::str(reason))],
        );
    }

    /// Serialize the event log as JSONL: a header line carrying the
    /// schema, then one event per line, in recording order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&Json::Obj(vec![("schema".into(), Json::str(EVENTS_SCHEMA))]).to_string());
        out.push('\n');
        for e in &self.events {
            out.push_str(&e.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// Derive the merged Chrome trace from the event log: one span per
    /// batch (tid 0), one track per device (`shard_dispatch`/`join`
    /// pairs), and a causally-linked queue → coalesce → kernel →
    /// scatter chain per completed request, each span tagged with its
    /// cid.
    pub fn to_trace(&self, process: &str) -> Trace {
        let mut trace = Trace::new(process);
        let mut dispatches: Vec<(u64, u64, f64)> = Vec::new(); // (batch, device, t)
        for e in &self.events {
            let get_u64 = |key: &str| e.to_json().get(key).and_then(Json::as_num).map(|v| v as u64);
            match e.kind {
                "cache_hit" | "cache_miss" => {
                    let batch = get_u64("batch").unwrap_or(0);
                    let n = get_u64("n").unwrap_or(0);
                    let m = get_u64("m_total").unwrap_or(0);
                    let kernel_us = e
                        .to_json()
                        .get("kernel_us")
                        .and_then(Json::as_num)
                        .unwrap_or(0.0);
                    trace.span(
                        format!("batch[{batch}] n={n} m={m}"),
                        "service",
                        0,
                        e.t_us,
                        kernel_us,
                        vec![
                            ("cache_hit".into(), Json::Bool(e.kind == "cache_hit")),
                            (
                                "cids".into(),
                                e.to_json().get("cids").cloned().unwrap_or(Json::Arr(vec![])),
                            ),
                        ],
                    );
                }
                "shard_dispatch" => {
                    let batch = get_u64("batch").unwrap_or(0);
                    let device = get_u64("device").unwrap_or(0);
                    dispatches.push((batch, device, e.t_us));
                }
                "shard_join" => {
                    let batch = get_u64("batch").unwrap_or(0);
                    let device = get_u64("device").unwrap_or(0);
                    if let Some(pos) = dispatches
                        .iter()
                        .position(|&(b, d, _)| b == batch && d == device)
                    {
                        let (_, _, start) = dispatches.remove(pos);
                        let kernel_us = e
                            .to_json()
                            .get("kernel_us")
                            .and_then(Json::as_num)
                            .unwrap_or(0.0);
                        trace.span(
                            format!("batch[{batch}]/dev{device}"),
                            "device",
                            DEVICE_TRACK_BASE + device as u32,
                            start,
                            e.t_us - start,
                            vec![("kernel_us".into(), Json::num(kernel_us))],
                        );
                    }
                }
                "completion" => {
                    let cid = e.cid.unwrap_or(0);
                    let doc = e.to_json();
                    let span_of = |key: &str| doc.get(key).and_then(Json::as_num).unwrap_or(0.0);
                    let (q, c, k, s) = (
                        span_of("queue_us"),
                        span_of("coalesce_us"),
                        span_of("kernel_us"),
                        span_of("scatter_us"),
                    );
                    let tid = request_track(cid);
                    let arrival = e.t_us - (q + c + k + s);
                    let mut cursor = arrival;
                    for (name, dur) in [("queue", q), ("coalesce", c), ("kernel", k), ("scatter", s)]
                    {
                        trace.span(
                            format!("req[{cid}]/{name}"),
                            "request",
                            tid,
                            cursor,
                            dur,
                            vec![("cid".into(), Json::num(cid as f64))],
                        );
                        cursor += dur;
                    }
                }
                _ => {}
            }
        }
        trace
    }

    /// Bit-exact cross-check of the metrics against a finished report
    /// (the exact-partition invariant). Returns every discrepancy
    /// (empty = the accounting is exact):
    ///
    /// - each `attributed_us` gauge must equal the report's attributed
    ///   per-kind total **bit-exactly** (both are the same sequence of
    ///   f64 additions over the responses, in order);
    /// - completed / failed / admitted counters must match the report
    ///   totals, batch-level cache hit/miss counters the batch
    ///   summaries.
    pub fn cross_check(&self, report: &ServiceReport) -> Vec<String> {
        let mut problems = Vec::new();
        let att = &report.attributed;
        for (label, metric, reported) in [
            ("queue", self.metrics.gauge("attributed_us", "queue"), att.queue_us),
            (
                "coalesce",
                self.metrics.gauge("attributed_us", "coalesce"),
                att.coalesce_us,
            ),
            (
                "kernel",
                self.metrics.gauge("attributed_us", "kernel"),
                att.kernel_us,
            ),
            (
                "scatter",
                self.metrics.gauge("attributed_us", "scatter"),
                att.scatter_us,
            ),
        ] {
            if metric.to_bits() != reported.to_bits() {
                problems.push(format!(
                    "attributed_us/{label}: metric {metric} != report {reported} (bit-exact \
                     comparison)"
                ));
            }
        }
        let (completed, _rejected, failed) = report.totals();
        let pairs = [
            ("requests/completed", self.metrics.counter("requests", "completed"), completed as u64),
            ("requests/failed", self.metrics.counter("requests", "failed"), failed as u64),
        ];
        for (name, metric, reported) in pairs {
            if metric != reported {
                problems.push(format!("{name}: metric {metric} != report {reported}"));
            }
        }
        let batch_hits = report.batches.iter().filter(|b| b.cache_hit).count() as u64;
        let batch_misses = report.batches.len() as u64 - batch_hits;
        if self.metrics.counter("cache", "hit") != batch_hits {
            problems.push(format!(
                "cache/hit: metric {} != report {batch_hits}",
                self.metrics.counter("cache", "hit")
            ));
        }
        if self.metrics.counter("cache", "miss") != batch_misses {
            problems.push(format!(
                "cache/miss: metric {} != report {batch_misses}",
                self.metrics.counter("cache", "miss")
            ));
        }
        problems
    }
}

/// Track id base for per-device shard tracks in the merged trace
/// (request tracks use low ids derived from the cid).
pub const DEVICE_TRACK_BASE: u32 = 0x4000_0000;

/// The Chrome-trace track a request's span chain lives on.
pub fn request_track(cid: u64) -> u32 {
    (cid % (u32::MAX as u64 - 1)) as u32 + 1
}

/// What a replayed event log proved.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Cids with an admission event, in first-seen order.
    pub admitted: Vec<u64>,
    /// Admitted cids that completed.
    pub completed: Vec<u64>,
    /// Admitted cids that faulted.
    pub faulted: Vec<u64>,
    /// Cids bounced at admission.
    pub rejected: Vec<u64>,
}

/// Replay a serialized event log (the [`Telemetry::to_jsonl`] format)
/// and prove the lifecycle invariants. Returns the [`ReplaySummary`]
/// when the log is coherent, or every violation found:
///
/// - the header line must carry schema [`EVENTS_SCHEMA`]; every line
///   must parse strictly with a known event kind and finite `t_us`;
/// - at most one `admission` per cid; **exactly one** terminal
///   (`completion` | `fault`) per admitted cid, at `t >=` admission;
/// - terminals without admission (orphans) and duplicate terminals are
///   violations; `reject` cids must have no other events;
/// - `coalesce_open`/`coalesce_close` pair per tick in order;
///   `shard_join` requires a matching `shard_dispatch`;
/// - every completed cid appears in exactly one batch's
///   `cache_hit`/`cache_miss` member list.
pub fn validate_event_log(text: &str) -> Result<ReplaySummary, Vec<String>> {
    use std::collections::BTreeMap;
    let mut problems = Vec::new();
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) => match parse(header) {
            Ok(doc) => {
                let mut c = Check::new(&doc);
                c.schema(EVENTS_SCHEMA);
                problems.extend(c.finish().into_iter().map(|p| format!("header: {p}")));
            }
            Err(e) => problems.push(format!("header: {e}")),
        },
        None => problems.push("empty event log (missing header line)".into()),
    }

    #[derive(Default, Clone, Copy)]
    struct Lifecycle {
        admitted_at: Option<f64>,
        terminals: u32,
        completed: bool,
        rejected: bool,
        batches: u32,
    }
    fn entry<'m>(
        life: &'m mut BTreeMap<u64, Lifecycle>,
        order: &mut Vec<u64>,
        cid: u64,
    ) -> &'m mut Lifecycle {
        life.entry(cid).or_insert_with(|| {
            order.push(cid);
            Lifecycle::default()
        })
    }
    let mut life: BTreeMap<u64, Lifecycle> = BTreeMap::new();
    let mut order: Vec<u64> = Vec::new();
    let mut open_ticks: Vec<u64> = Vec::new();
    let mut last_tick: Option<u64> = None;
    let mut pending_dispatch: Vec<(u64, u64)> = Vec::new();

    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let doc = match parse(line) {
            Ok(d) => d,
            Err(e) => {
                problems.push(format!("line {}: {e}", lineno + 1));
                continue;
            }
        };
        let mut c = Check::with_ctx(&doc, format!("line {}: ", lineno + 1));
        let kind = c.str_enum("event", EVENT_KINDS).unwrap_or("");
        let t = c.num_ge("t_us", 0.0).unwrap_or(0.0);
        let cid = doc.get("cid").and_then(Json::as_num).map(|v| v as u64);
        match kind {
            "admission" => {
                c.req_uints(&["m", "n"]);
                c.req_str("precision");
                match cid {
                    Some(cid) => {
                        let l = entry(&mut life, &mut order, cid);
                        if l.admitted_at.is_some() {
                            c.problem(format!("duplicate admission for cid {cid}"));
                        }
                        l.admitted_at = Some(t);
                    }
                    None => c.problem("admission without cid"),
                }
            }
            "completion" | "fault" => match cid {
                Some(cid) => {
                    let l = entry(&mut life, &mut order, cid);
                    let completed = kind == "completion";
                    match l.admitted_at {
                        None => c.problem(format!(
                            "orphan {kind} for cid {cid} (no admission event)"
                        )),
                        Some(at) if t < at => c.problem(format!(
                            "{kind} for cid {cid} at t {t} precedes its admission at {at}"
                        )),
                        Some(_) => {}
                    }
                    if l.terminals > 0 {
                        c.problem(format!("duplicate terminal event for cid {cid}"));
                    }
                    l.terminals += 1;
                    l.completed = completed;
                }
                None => c.problem(format!("{kind} without cid")),
            },
            // Threaded-path bounces carry no id, so a cid-less reject
            // is legal and leaves no lifecycle entry.
            "reject" => {
                if let Some(cid) = cid {
                    let l = entry(&mut life, &mut order, cid);
                    if l.admitted_at.is_some() || l.terminals > 0 {
                        c.problem(format!(
                            "cid {cid} has both a reject and lifecycle events"
                        ));
                    }
                    l.rejected = true;
                }
            }
            "coalesce_open" => {
                if let Some(tick) = c.req_uint("tick") {
                    if let Some(last) = last_tick {
                        c.ensure(
                            tick > last,
                            format!("tick {tick} does not increase past {last}"),
                        );
                    }
                    last_tick = Some(tick);
                    open_ticks.push(tick);
                }
            }
            "coalesce_close" => {
                if let Some(tick) = c.req_uint("tick") {
                    match open_ticks.pop() {
                        Some(open) if open == tick => {}
                        _ => c.problem(format!("coalesce_close for tick {tick} without open")),
                    }
                }
            }
            "cache_hit" | "cache_miss" => {
                c.req_uints(&["batch", "n", "elem_bytes", "m_total"]);
                for member in c.req_arr("cids") {
                    match member.as_num() {
                        Some(v) => {
                            let l = entry(&mut life, &mut order, v as u64);
                            l.batches += 1;
                        }
                        None => c.problem("non-numeric cid in batch member list"),
                    }
                }
            }
            "shard_dispatch" => {
                if let (Some(b), Some(d)) = (c.req_uint("batch"), c.req_uint("device")) {
                    pending_dispatch.push((b, d));
                }
            }
            "shard_join" => {
                if let (Some(b), Some(d)) = (c.req_uint("batch"), c.req_uint("device")) {
                    match pending_dispatch.iter().position(|&p| p == (b, d)) {
                        Some(pos) => {
                            pending_dispatch.remove(pos);
                        }
                        None => c.problem(format!(
                            "shard_join for batch {b} device {d} without dispatch"
                        )),
                    }
                }
            }
            _ => {} // unknown kind already recorded by str_enum
        }
        problems.extend(c.finish());
    }

    for tick in &open_ticks {
        problems.push(format!("coalesce_open for tick {tick} never closed"));
    }
    for (b, d) in &pending_dispatch {
        problems.push(format!("shard_dispatch for batch {b} device {d} never joined"));
    }

    let mut summary = ReplaySummary::default();
    for cid in order {
        let l = life[&cid];
        if l.rejected {
            summary.rejected.push(cid);
            continue;
        }
        if l.admitted_at.is_some() {
            summary.admitted.push(cid);
            match l.terminals {
                0 => problems.push(format!("admitted cid {cid} has no terminal event")),
                1 => {
                    if l.completed {
                        summary.completed.push(cid);
                        if l.batches != 1 {
                            problems.push(format!(
                                "completed cid {cid} appears in {} batch member lists, \
                                 expected exactly 1",
                                l.batches
                            ));
                        }
                    } else {
                        summary.faulted.push(cid);
                    }
                }
                _ => {} // duplicate already reported at the line
            }
        } else if l.batches > 0 {
            problems.push(format!(
                "cid {cid} appears in a batch member list but was never admitted"
            ));
        }
    }

    if problems.is_empty() {
        Ok(summary)
    } else {
        Err(problems)
    }
}

/// Validate the per-request span chains of a merged Chrome trace (the
/// [`Telemetry::to_trace`] / [`ServiceReport`] format). Every
/// cat-`"request"` span must carry a numeric `cid` argument; per cid
/// there must be exactly one chain of four spans — queue, coalesce,
/// kernel, scatter, in that order, on one track — whose spans tile
/// `[arrival, completion]` **exactly** (`ts[i+1] == ts[i] + dur[i]`,
/// bit-exact on the parsed values). Returns the chained cids (sorted)
/// or every violation.
pub fn validate_request_chains(trace_text: &str) -> Result<Vec<u64>, Vec<String>> {
    use std::collections::BTreeMap;
    let doc = match parse(trace_text) {
        Ok(d) => d,
        Err(e) => return Err(vec![e.to_string()]),
    };
    let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) else {
        return Err(vec!["top-level object has no \"traceEvents\" array".into()]);
    };
    // cid -> (tid, name, ts, dur), in document (= ts-sorted) order.
    let mut chains: BTreeMap<u64, Vec<(u64, String, f64, f64)>> = BTreeMap::new();
    let mut problems = Vec::new();
    for (i, e) in events.iter().enumerate() {
        if e.get("cat").and_then(Json::as_str) != Some("request") {
            continue;
        }
        let mut c = Check::with_ctx(e, format!("request span {i}: "));
        let name = c.req_str("name").unwrap_or("").to_string();
        let ts = c.req_num("ts").unwrap_or(0.0);
        let dur = c.req_num("dur").unwrap_or(0.0);
        let tid = c.req_uint("tid").unwrap_or(0);
        let cid = match e.get("args").and_then(|a| a.get("cid")).and_then(Json::as_num) {
            Some(v) => v as u64,
            None => {
                c.problem("missing numeric args.cid");
                problems.extend(c.finish());
                continue;
            }
        };
        problems.extend(c.finish());
        chains.entry(cid).or_default().push((tid, name, ts, dur));
    }
    for (cid, spans) in &chains {
        if spans.len() != 4 {
            problems.push(format!(
                "cid {cid}: {} request spans, expected exactly 4 (one chain)",
                spans.len()
            ));
            continue;
        }
        let tid = spans[0].0;
        if spans.iter().any(|s| s.0 != tid) {
            problems.push(format!("cid {cid}: chain spans spread across tracks"));
        }
        for (idx, stage) in ["queue", "coalesce", "kernel", "scatter"].iter().enumerate() {
            let expected = format!("req[{cid}]/{stage}");
            if spans[idx].1 != expected {
                problems.push(format!(
                    "cid {cid}: span {idx} is {:?}, expected {expected:?}",
                    spans[idx].1
                ));
            }
        }
        for w in spans.windows(2) {
            let (_, _, ts0, dur0) = w[0];
            let (_, ref name1, ts1, _) = w[1];
            if (ts0 + dur0).to_bits() != ts1.to_bits() {
                problems.push(format!(
                    "cid {cid}: chain breaks before {name1:?}: {ts0} + {dur0} != {ts1}"
                ));
            }
        }
    }
    if problems.is_empty() {
        Ok(chains.keys().copied().collect())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_log_validates_with_empty_summary() {
        let t = Telemetry::new();
        let summary = validate_event_log(&t.to_jsonl()).unwrap();
        assert_eq!(summary, ReplaySummary::default());
    }

    #[test]
    fn replay_rejects_orphan_and_duplicate_terminals() {
        let mut t = Telemetry::new();
        t.push("completion", 5.0, Some(7), vec![]);
        let errs = validate_event_log(&t.to_jsonl()).unwrap_err();
        assert!(errs.iter().any(|p| p.contains("orphan")), "{errs:?}");

        let mut t = Telemetry::new();
        t.push("admission", 0.0, Some(7), vec![
            ("m".into(), Json::num(1)),
            ("n".into(), Json::num(64)),
            ("precision".into(), Json::str("f64")),
        ]);
        t.push("completion", 5.0, Some(7), vec![]);
        t.push("completion", 6.0, Some(7), vec![]);
        let errs = validate_event_log(&t.to_jsonl()).unwrap_err();
        assert!(
            errs.iter().any(|p| p.contains("duplicate terminal")),
            "{errs:?}"
        );
    }

    #[test]
    fn replay_rejects_missing_terminal_and_bad_header() {
        let mut t = Telemetry::new();
        t.push("admission", 0.0, Some(3), vec![
            ("m".into(), Json::num(1)),
            ("n".into(), Json::num(64)),
            ("precision".into(), Json::str("f32")),
        ]);
        let errs = validate_event_log(&t.to_jsonl()).unwrap_err();
        assert!(errs.iter().any(|p| p.contains("no terminal")), "{errs:?}");

        let errs = validate_event_log("{\"schema\":\"bogus/v9\"}\n").unwrap_err();
        assert!(errs[0].starts_with("header:"), "{errs:?}");
    }

    #[test]
    fn request_track_is_stable_and_nonzero() {
        assert_eq!(request_track(0), 1);
        assert_ne!(request_track(17), 0);
        assert_eq!(request_track(17), request_track(17));
    }
}
