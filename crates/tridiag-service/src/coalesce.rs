//! The coalescer: merge compatible queued requests into fused batches.
//!
//! Compatibility is exact geometry + precision: requests merge only
//! when they share `(n, elem_bytes)` — different row counts or scalar
//! widths can never share a kernel launch (the kernels are monomorphic
//! in both). The device group is fixed per service, so it never splits
//! a tick. Merging preserves first-seen order: batches form in the
//! order their first member arrived, and members keep arrival order
//! inside a batch, so the fused system indices are deterministic.

use gpu_sim::SimError;
use tridiag_core::{Layout, SystemBatch};

use crate::request::{Payload, SolveRequest};

/// What makes two requests mergeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoalesceKey {
    /// Rows per system.
    pub n: usize,
    /// Scalar width in bytes.
    pub elem_bytes: usize,
}

impl CoalesceKey {
    /// The key of one request.
    pub fn of(req: &SolveRequest) -> Self {
        Self {
            n: req.payload.system_len(),
            elem_bytes: req.payload.elem_bytes(),
        }
    }
}

/// One request's slice of a fused batch.
#[derive(Debug, Clone)]
pub struct Member {
    /// Position of the request in the tick's working set.
    pub slot: usize,
    /// The request's id.
    pub id: u64,
    /// Modeled arrival of the request (µs).
    pub arrival_us: f64,
    /// First fused system index owned by this request.
    pub sys_start: usize,
    /// Number of systems the request contributed.
    pub sys_count: usize,
    /// Bytes of this request's solution download.
    pub solution_bytes: usize,
    /// The request's own storage layout — the solution scatters back
    /// in this order, whatever layout the fused batch solved in.
    pub layout: Layout,
}

/// A fused batch: compatible members concatenated in arrival order.
#[derive(Debug, Clone)]
pub struct CoalescedBatch {
    /// The compatibility key every member shares.
    pub key: CoalesceKey,
    /// Member slices, in arrival order; `sys_start` ranges tile
    /// `0..payload.num_systems()` exactly.
    pub members: Vec<Member>,
    /// The merged systems.
    pub payload: Payload,
}

/// Group `requests` (one tick's working set, in arrival order) into
/// fused batches. Batches come out in first-seen order of their key.
/// Fails with [`SimError::InvalidPlan`] only if concatenation produces
/// an invalid batch, which a well-formed working set cannot.
pub fn coalesce(requests: &[SolveRequest]) -> Result<Vec<CoalescedBatch>, SimError> {
    let mut batches: Vec<(CoalesceKey, Vec<usize>)> = Vec::new();
    for (slot, req) in requests.iter().enumerate() {
        let key = CoalesceKey::of(req);
        match batches.iter_mut().find(|(k, _)| *k == key) {
            Some((_, slots)) => slots.push(slot),
            None => batches.push((key, vec![slot])),
        }
    }
    batches
        .into_iter()
        .map(|(key, slots)| merge(key, &slots, requests))
        .collect()
}

fn merge(
    key: CoalesceKey,
    slots: &[usize],
    requests: &[SolveRequest],
) -> Result<CoalescedBatch, SimError> {
    let mut members = Vec::with_capacity(slots.len());
    let mut sys_start = 0usize;
    for &slot in slots {
        let req = &requests[slot];
        let sys_count = req.payload.num_systems();
        let layout = match &req.payload {
            Payload::F32(b) => b.layout(),
            Payload::F64(b) => b.layout(),
        };
        members.push(Member {
            slot,
            id: req.id,
            arrival_us: req.arrival_us,
            sys_start,
            sys_count,
            solution_bytes: req.payload.solution_bytes(),
            layout,
        });
        sys_start += sys_count;
    }
    let invalid = |e| SimError::InvalidPlan(format!("coalescing n={}: {e}", key.n));
    let payload = match key.elem_bytes {
        4 => {
            let mut systems = Vec::with_capacity(sys_start);
            for &slot in slots {
                match &requests[slot].payload {
                    Payload::F32(b) => systems.extend(b.to_systems()),
                    Payload::F64(_) => unreachable!("key separates widths"),
                }
            }
            Payload::F32(SystemBatch::from_systems(systems).map_err(invalid)?)
        }
        _ => {
            let mut systems = Vec::with_capacity(sys_start);
            for &slot in slots {
                match &requests[slot].payload {
                    Payload::F64(b) => systems.extend(b.to_systems()),
                    Payload::F32(_) => unreachable!("key separates widths"),
                }
            }
            Payload::F64(SystemBatch::from_systems(systems).map_err(invalid)?)
        }
    };
    Ok(CoalescedBatch {
        key,
        members,
        payload,
    })
}
