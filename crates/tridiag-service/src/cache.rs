//! The plan cache: memoized [`ShardedPlan`]s keyed by geometry,
//! precision, device-group fingerprint and solver-config fingerprint.
//!
//! PR 4 made [`tridiag_gpu::SolvePlan::build`] a pure function of
//! `(spec, config, m, n, elem_bytes)` — no device state, fully
//! deterministic — so a cached plan is *the* plan: a hit is
//! byte-identical (same `describe()`, same `to_json()`) to a fresh
//! build. The cache is a plain LRU over that pure function with
//! hit/miss/eviction counters; correctness never depends on the cache,
//! only the planning cost does.

use std::sync::Arc;

use gpu_sim::{DeviceGroup, Result, SimError};
use tridiag_gpu::solver::GpuSolverConfig;
use tridiag_gpu::ShardedPlan;
use tridiag_gpu::hash::{fnv1a_extend, FNV_OFFSET};

/// Statically certify `plan` against `group` with the plan verifier
/// ([`tridiag_gpu::verify`]). `Ok(())` when clean; otherwise
/// [`SimError::InvalidPlan`] listing every finding. [`PlanCache::lookup`]
/// runs this on every miss, so an ill-formed plan can never be
/// inserted and replayed to later requests.
pub fn certify(group: &DeviceGroup, plan: &ShardedPlan) -> Result<()> {
    let report = tridiag_gpu::verify_sharded_plan(group, plan);
    if report.is_clean() {
        Ok(())
    } else {
        Err(SimError::InvalidPlan(format!(
            "plan failed static verification: {}",
            report.messages().join("; ")
        )))
    }
}

/// What a plan is keyed by: the fused-batch geometry, the scalar
/// width, and fingerprints of the device group composition and the
/// solver config. Two lookups with equal keys are guaranteed the same
/// plan because the planner is pure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Systems in the fused batch.
    pub m: usize,
    /// Rows per system.
    pub n: usize,
    /// Scalar width in bytes (4 or 8).
    pub elem_bytes: usize,
    /// [`DeviceGroup::fingerprint`] of the group the plan shards over.
    pub group_fp: u64,
    /// [`config_fingerprint`] of the solver config the plan was built
    /// under (the service builds plans under *pinned* configs, which
    /// must not alias the base config's plans).
    pub config_fp: u64,
    /// Row-split device count for a distributed single-system solve
    /// ([`tridiag_gpu::DistributedPlan`]), `0` for the ordinary batch
    /// path. Carried in the key so a batch plan for `m = 1` and a
    /// distributed plan over the same geometry — even the `D = 1`
    /// identity — can never alias each other's cache entries.
    pub split_n: usize,
}

/// FNV-1a fingerprint of every config field that shapes a plan.
/// (`exec` is execution-time only — sanitizer/lint switches do not
/// change the planned step sequence — so it is deliberately excluded.)
pub fn config_fingerprint(config: &GpuSolverConfig) -> u64 {
    let text = format!(
        "{:?}|{:?}|{}|{}|{}|{:?}|{:?}",
        config.policy,
        config.mapping,
        config.fused,
        config.sub_tile_scale,
        config.pthomas_block,
        config.cost,
        config.layout
    );
    fnv1a_extend(FNV_OFFSET, text.bytes())
}

/// Cache effectiveness counters. Invariant: `lookups == hits + misses`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that built a fresh plan.
    pub misses: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
}

/// LRU cache over the pure planner. Entries are `Arc`-shared so a hit
/// is a pointer clone, not a plan clone.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    /// LRU order: front = coldest, back = hottest.
    entries: Vec<(PlanKey, Arc<ShardedPlan>)>,
    stats: CacheStats,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (`capacity == 0` caches
    /// nothing — every lookup is a miss that builds fresh).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached plans right now.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The key a lookup for this geometry/config would use.
    pub fn key_for(
        group: &DeviceGroup,
        config: &GpuSolverConfig,
        m: usize,
        n: usize,
        elem_bytes: usize,
    ) -> PlanKey {
        PlanKey {
            m,
            n,
            elem_bytes,
            group_fp: group.fingerprint(),
            config_fp: config_fingerprint(config),
            split_n: 0,
        }
    }

    /// The key a distributed single-system lookup would use: one
    /// `n`-row system split across `split_n` devices. Distinct from
    /// every batch key (including `m = 1` over the same geometry) by
    /// construction.
    pub fn key_for_split(
        group: &DeviceGroup,
        config: &GpuSolverConfig,
        n: usize,
        elem_bytes: usize,
        split_n: usize,
    ) -> PlanKey {
        PlanKey {
            m: 1,
            n,
            elem_bytes,
            group_fp: group.fingerprint(),
            config_fp: config_fingerprint(config),
            split_n,
        }
    }

    /// The plan for `(group, config, m, n, elem_bytes)` and whether it
    /// was a cache hit. A miss builds via [`ShardedPlan::build`] and
    /// inserts, evicting the least-recently-used entry at capacity;
    /// build failures are returned as-is and cache nothing.
    pub fn lookup(
        &mut self,
        group: &DeviceGroup,
        config: &GpuSolverConfig,
        m: usize,
        n: usize,
        elem_bytes: usize,
    ) -> Result<(Arc<ShardedPlan>, bool)> {
        self.stats.lookups += 1;
        let key = Self::key_for(group, config, m, n, elem_bytes);
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.stats.hits += 1;
            // Refresh recency: move to the back.
            let entry = self.entries.remove(pos);
            let plan = Arc::clone(&entry.1);
            self.entries.push(entry);
            return Ok((plan, true));
        }
        self.stats.misses += 1;
        let plan = Arc::new(ShardedPlan::build(group, config, m, n, elem_bytes)?);
        // Verification-on-insert: only certified plans are cached (and
        // only certified plans are returned at all).
        certify(group, &plan)?;
        if self.capacity > 0 {
            if self.entries.len() >= self.capacity {
                self.entries.remove(0);
                self.stats.evictions += 1;
            }
            self.entries.push((key, Arc::clone(&plan)));
        }
        Ok((plan, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    /// A distributed-split key never collides with any batch key over
    /// the same geometry — not even the `D = 1` identity split against
    /// the `m = 1` batch plan, which solve identical systems through
    /// different plan types.
    #[test]
    fn split_keys_never_alias_batch_keys() {
        let group = DeviceGroup::single(DeviceSpec::gtx480());
        let config = GpuSolverConfig::default();
        let batch = PlanCache::key_for(&group, &config, 1, 4096, 8);
        assert_eq!(batch.split_n, 0, "batch keys carry no split");
        let identity = PlanCache::key_for_split(&group, &config, 4096, 8, 1);
        assert_ne!(batch, identity);
        let d2 = PlanCache::key_for_split(&group, &config, 4096, 8, 2);
        let d4 = PlanCache::key_for_split(&group, &config, 4096, 8, 4);
        assert_ne!(d2, d4, "different split counts are different plans");
        assert_eq!(
            d2,
            PlanCache::key_for_split(&group, &config, 4096, 8, 2),
            "equal lookups share one entry"
        );
    }
}
