//! The deterministic solve engine behind the service: decision
//! pinning, the tick loop, admission control and latency attribution,
//! all on the modeled-time axis (no wall clocks anywhere).
//!
//! **Decision pinning.** A request's answer must not depend on its
//! co-tenants. The planner's transition rule chooses `(k, mapping,
//! fused)` from the batch size `M`, and a coalesced batch's `M` varies
//! with traffic — so the service never lets the rule see the fused
//! `M`. Instead, per `(n, precision)` it plans once for a canonical
//! batch of [`ServiceConfig::pin_m`] systems and pins that plan's
//! decisions (`TransitionPolicy::Fixed(k)`, resolved mapping, fusion)
//! into every solve at that geometry — fused *and* solo. Per-system
//! arithmetic depends only on the pinned decisions (the property the
//! sharded differential harness proves), so coalescing is bit-neutral
//! by construction.
//!
//! **The tick.** When the device frees and the queue is non-empty, a
//! coalescing window opens; it closes `window_us` later. Requests
//! arriving by the close join the queue (bounced with
//! [`ServiceError::Overloaded`] beyond `queue_depth`); at the close
//! the whole queue drains, coalesces by `(n, precision)`, and the
//! batches run back-to-back. `window_us == 0` disables coalescing:
//! exactly one request per tick, the solo baseline.

use std::collections::BTreeMap;
use std::sync::Arc;

use gpu_sim::group::copy_us;
use gpu_sim::{DeviceGroup, ExecConfig, Result, SimError};
use tridiag_core::transition::TransitionPolicy;
use tridiag_core::{Layout, SystemBatch};
use tridiag_gpu::buffers::GpuScalar;
use tridiag_gpu::solver::{CostModel, GpuSolverConfig, LayoutChoice, MappingVariant};
use tridiag_gpu::{ShardedExecutor, ShardedPlan, SolvePlan};

use crate::cache::{CacheStats, PlanCache};
use crate::coalesce::{coalesce, CoalescedBatch};
use crate::report::{BatchSummary, DeviceSpan, ServiceReport, SloConfig};
use crate::request::{Payload, RequestSpans, Response, ServiceError, Solution, SolveRequest};
use crate::telemetry::Telemetry;

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Coalescing window (µs of modeled time a tick stays open after
    /// it starts). `0.0` disables coalescing — one request per tick.
    pub window_us: f64,
    /// Bounded queue depth; submissions beyond it are rejected with
    /// [`ServiceError::Overloaded`].
    pub queue_depth: usize,
    /// Plan-cache capacity (plans, not bytes).
    pub cache_capacity: usize,
    /// Canonical batch size the per-geometry decisions are pinned
    /// from (see the module docs).
    pub pin_m: usize,
    /// Base solver config; its `policy`/`mapping`/`fused` are
    /// overridden by the pinned decisions per geometry.
    pub solver: GpuSolverConfig,
    /// Latency-objective targets for the report's SLO accounting.
    pub slo: SloConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            window_us: 10.0,
            queue_depth: 64,
            cache_capacity: 32,
            pin_m: 256,
            solver: GpuSolverConfig::default(),
            slo: SloConfig::default(),
        }
    }
}

/// Decisions pinned for one `(n, elem_bytes)` geometry.
#[derive(Debug, Clone, Copy)]
struct Pin {
    k: u32,
    mapping: MappingVariant,
    fused: bool,
    layout: Layout,
}

/// The deterministic engine: device group, plan cache, pinned
/// decisions, and the tick machinery. The threaded
/// [`crate::service::SolveService`] and the modeled
/// [`ServiceCore::run_workload`] both drive this.
#[derive(Debug)]
pub struct ServiceCore {
    group: DeviceGroup,
    cfg: ServiceConfig,
    cache: PlanCache,
    pins: BTreeMap<(usize, usize), Pin>,
    telemetry: Telemetry,
}

/// One solved fused batch plus everything needed for attribution.
struct BatchRun {
    batch: CoalescedBatch,
    cache_hit: bool,
    isolated: bool,
    /// `(kernel_us, scatter_us, cache_hit, result)` per member, in
    /// member order. For non-isolated runs `kernel_us` repeats the
    /// fused kernel time.
    outcomes: Vec<(f64, f64, bool, Result<Solution>)>,
    kernel_us: f64,
    /// Per-device shard execution of the fused kernel (empty for
    /// isolated fallbacks and failed batches).
    devices: Vec<DeviceSpan>,
}

impl ServiceCore {
    /// An engine over `group` with tuning `cfg`.
    pub fn new(group: DeviceGroup, cfg: ServiceConfig) -> Self {
        Self {
            group,
            cache: PlanCache::new(cfg.cache_capacity),
            cfg,
            pins: BTreeMap::new(),
            telemetry: Telemetry::new(),
        }
    }

    /// The telemetry accumulated so far (metrics + event log).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutable access for drivers that record admission-time events
    /// themselves (the threaded worker's shutdown drain).
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Hand the accumulated telemetry to the caller, resetting the
    /// core's sink (the threaded service uses this at shutdown).
    pub fn take_telemetry(&mut self) -> Telemetry {
        std::mem::replace(&mut self.telemetry, Telemetry::new())
    }

    /// The device group solves run on.
    pub fn group(&self) -> &DeviceGroup {
        &self.group
    }

    /// The tuning knobs.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Plan-cache counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The pinned solver config for `(n, elem_bytes)`: plan once at
    /// the canonical `pin_m` geometry, then fix `(k, mapping, fused)`
    /// for every solve at that geometry regardless of batch size.
    pub fn pinned_config(&mut self, n: usize, elem_bytes: usize) -> Result<GpuSolverConfig> {
        let base = self.cfg.solver;
        let pin = match self.pins.get(&(n, elem_bytes)) {
            Some(p) => *p,
            None => {
                let reference = SolvePlan::build(
                    self.group.primary(),
                    &base,
                    self.cfg.pin_m.max(1),
                    n,
                    elem_bytes,
                )?;
                let pin = Pin {
                    k: reference.k,
                    mapping: reference.mapping,
                    fused: reference.fused,
                    layout: reference.layout,
                };
                self.pins.insert((n, elem_bytes), pin);
                pin
            }
        };
        Ok(GpuSolverConfig {
            policy: TransitionPolicy::Fixed(pin.k),
            mapping: pin.mapping,
            fused: pin.fused,
            // The layout decided at pin_m replays verbatim at every
            // batch size (bit-neutrality of coalescing), so the cost
            // model must not re-score at the coalesced geometry.
            cost: CostModel::Legacy,
            layout: LayoutChoice::pin(pin.layout),
            ..base
        })
    }

    /// The group a batch of `m` systems actually shards over: the full
    /// group, or — when `m` is too small to give every device a shard —
    /// just the primary device.
    fn effective_group(&self, m: usize) -> DeviceGroup {
        if m >= self.group.len() {
            self.group.clone()
        } else {
            DeviceGroup::single(self.group.primary().clone())
        }
    }

    /// Solve one payload under the pinned config for its geometry.
    /// Returns the solution, the modeled kernel time, whether the plan
    /// came from the cache, and the per-device shard execution.
    pub fn solve_payload(
        &mut self,
        payload: &Payload,
    ) -> Result<(Solution, f64, bool, Vec<DeviceSpan>)> {
        let n = payload.system_len();
        let bytes = payload.elem_bytes();
        let config = self.pinned_config(n, bytes)?;
        let m = payload.num_systems();
        let group = self.effective_group(m);
        let (plan, hit) = self.cache.lookup(&group, &config, m, n, bytes)?;
        let exec = config.exec;
        match payload {
            Payload::F32(b) => run_plan::<f32>(&group, exec, &plan, b)
                .map(|(x, us, devices)| (Solution::F32(x), us, hit, devices)),
            Payload::F64(b) => run_plan::<f64>(&group, exec, &plan, b)
                .map(|(x, us, devices)| (Solution::F64(x), us, hit, devices)),
        }
    }

    /// Slice a fused solution back into per-member solutions, in
    /// member order.
    fn scatter(batch: &CoalescedBatch, solution: &Solution) -> Vec<Solution> {
        match (&batch.payload, solution) {
            (Payload::F32(merged), Solution::F32(x)) => {
                split_members(batch, merged, x, Solution::F32)
            }
            (Payload::F64(merged), Solution::F64(x)) => {
                split_members(batch, merged, x, Solution::F64)
            }
            _ => unreachable!("solution width always matches its payload"),
        }
    }

    /// Solve one coalesced batch. On a solver fault the batch is
    /// *isolated*: every member re-solves alone under the same pinned
    /// config, so the fault lands only on the member(s) that carry the
    /// bad system and healthy co-tenants still complete.
    fn run_batch(&mut self, batch: CoalescedBatch) -> BatchRun {
        match self.solve_payload(&batch.payload) {
            Ok((solution, kernel_us, cache_hit, devices)) => {
                let pieces = Self::scatter(&batch, &solution);
                let outcomes = batch
                    .members
                    .iter()
                    .zip(pieces)
                    .map(|(mem, piece)| {
                        (kernel_us, copy_us(mem.solution_bytes), cache_hit, Ok(piece))
                    })
                    .collect();
                BatchRun {
                    batch,
                    cache_hit,
                    isolated: false,
                    outcomes,
                    kernel_us,
                    devices,
                }
            }
            Err(fused_err) => self.isolate(batch, fused_err),
        }
    }

    fn isolate(&mut self, batch: CoalescedBatch, fused_err: SimError) -> BatchRun {
        let mut outcomes = Vec::with_capacity(batch.members.len());
        let mut kernel_total = 0.0;
        // Re-extract each member's systems from the fused payload so
        // isolation needs no access to the original requests.
        for mem in &batch.members {
            let solo = member_payload(&batch, mem);
            match solo.and_then(|p| self.solve_payload(&p)) {
                Ok((x, us, hit, _devices)) => {
                    kernel_total += us;
                    outcomes.push((us, copy_us(mem.solution_bytes), hit, Ok(x)));
                }
                Err(e) => outcomes.push((0.0, 0.0, false, Err(e))),
            }
        }
        // If *no* member faults alone, the fused failure was not a
        // data fault (e.g. a plan error) — attribute it to everyone.
        if outcomes.iter().all(|(_, _, _, r)| r.is_ok()) {
            for o in &mut outcomes {
                o.3 = Err(SimError::InvalidPlan(format!(
                    "fused batch failed but every member solves alone: {fused_err}"
                )));
                o.0 = 0.0;
                o.1 = 0.0;
            }
            kernel_total = 0.0;
        }
        BatchRun {
            batch,
            cache_hit: false,
            isolated: true,
            outcomes,
            kernel_us: kernel_total,
            devices: Vec::new(),
        }
    }

    /// Run one tick: coalesce `working` (admitted requests, arrival
    /// order), solve the batches back-to-back starting at `close`, and
    /// attribute spans. `open`/`close` bound the coalescing window on
    /// the modeled axis. Returns the responses (in working-set order),
    /// the batch summaries, and the time the device frees.
    pub fn solve_tick(
        &mut self,
        open_us: f64,
        close_us: f64,
        working: &[SolveRequest],
        batch_base: usize,
    ) -> (Vec<Response>, Vec<BatchSummary>, f64) {
        let mut responses: Vec<Option<Response>> = vec![None; working.len()];
        let mut summaries = Vec::new();
        let tick = self.telemetry.on_tick_open(open_us, working);
        let batches = match coalesce(working) {
            Ok(b) => b,
            Err(e) => {
                // Coalescing itself cannot fail on well-formed
                // requests; if it does, fail the whole tick typed.
                let msg = e.to_string();
                for (slot, req) in working.iter().enumerate() {
                    responses[slot] = Some(Response {
                        id: req.id,
                        result: Err(ServiceError::InvalidRequest(msg.clone())),
                        spans: RequestSpans::default(),
                        batch: None,
                        coalesced_with: 0,
                        cache_hit: false,
                        completed_us: req.arrival_us,
                    });
                }
                self.telemetry.on_tick_close(tick, close_us, 0);
                let out: Vec<Response> =
                    responses.into_iter().map(|r| r.expect("filled")).collect();
                for (slot, r) in out.iter().enumerate() {
                    self.telemetry
                        .on_response(r, working[slot].payload.precision());
                }
                return (out, summaries, close_us);
            }
        };
        self.telemetry.on_tick_close(tick, close_us, batches.len());

        let mut device_free = close_us;
        for (bi, batch) in batches.into_iter().enumerate() {
            let start = device_free;
            let run = self.run_batch(batch);
            let coalesced_with = run.batch.members.len();
            let precision = if run.batch.key.elem_bytes == 4 { "f32" } else { "f64" };
            let cids: Vec<u64> = run.batch.members.iter().map(|m| m.id).collect();
            self.telemetry.on_batch(
                batch_base + bi,
                start,
                run.batch.key.n,
                run.batch.key.elem_bytes,
                precision,
                run.batch.payload.num_systems(),
                &cids,
                run.cache_hit,
                run.isolated,
                run.kernel_us,
                &run.devices,
            );
            let mut elapsed = 0.0; // time into the batch, past `start`
            for (mem, (kernel_us, scatter_us, hit, result)) in
                run.batch.members.iter().zip(run.outcomes)
            {
                // Time queued before the window opened, plus the wait
                // for batches scheduled ahead in the same tick.
                let pre_queue = (open_us - mem.arrival_us).max(0.0) + (start - close_us);
                // Time inside the open window waiting for the close.
                let in_window = close_us - mem.arrival_us.max(open_us);
                let spans;
                let completed;
                let service_result = match result {
                    Ok(x) if run.isolated => {
                        // Members run back-to-back after `start`.
                        spans = RequestSpans {
                            queue_us: pre_queue + elapsed,
                            coalesce_us: in_window,
                            kernel_us,
                            scatter_us,
                        };
                        elapsed += kernel_us + scatter_us;
                        completed = start + elapsed;
                        Ok(x)
                    }
                    Ok(x) => {
                        // One fused kernel, then serialized scatters.
                        let scatter_end = elapsed.max(kernel_us) + scatter_us;
                        spans = RequestSpans {
                            queue_us: pre_queue,
                            coalesce_us: in_window,
                            kernel_us,
                            scatter_us: scatter_end - kernel_us,
                        };
                        elapsed = scatter_end;
                        completed = start + elapsed;
                        Ok(x)
                    }
                    Err(e) => {
                        spans = RequestSpans {
                            queue_us: pre_queue + elapsed,
                            coalesce_us: in_window,
                            kernel_us: 0.0,
                            scatter_us: 0.0,
                        };
                        completed = start + elapsed;
                        Err(map_solver_error(e))
                    }
                };
                responses[mem.slot] = Some(Response {
                    id: mem.id,
                    result: service_result,
                    spans,
                    batch: Some(batch_base + bi),
                    coalesced_with,
                    cache_hit: hit,
                    completed_us: completed,
                });
            }
            device_free = device_free.max(start + elapsed);
            summaries.push(BatchSummary {
                index: batch_base + bi,
                n: run.batch.key.n,
                precision,
                m_total: run.batch.payload.num_systems(),
                request_ids: cids,
                cache_hit: run.cache_hit,
                isolated: run.isolated,
                kernel_us: run.kernel_us,
                start_us: start,
                devices: run.devices,
            });
        }
        let out: Vec<Response> = responses.into_iter().map(|r| r.expect("filled")).collect();
        // Terminal events + attributed-time gauges, in the exact slot
        // order the report builder will sum the responses in — the
        // other half of the bit-exact partition invariant.
        for (slot, r) in out.iter().enumerate() {
            self.telemetry
                .on_response(r, working[slot].payload.precision());
        }
        (out, summaries, device_free)
    }

    /// Run a whole workload on the modeled clock: requests sorted by
    /// arrival feed the bounded queue, ticks open whenever the device
    /// frees with work queued, and every request gets a [`Response`] —
    /// solved or typed-rejected. Fully deterministic.
    pub fn run_workload(&mut self, mut requests: Vec<SolveRequest>) -> ServiceReport {
        requests.sort_by(|a, b| {
            a.arrival_us
                .partial_cmp(&b.arrival_us)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        let window = self.cfg.window_us.max(0.0);
        let depth = self.cfg.queue_depth.max(1);

        let mut responses = Vec::with_capacity(requests.len());
        let mut summaries = Vec::new();
        let mut queue: Vec<SolveRequest> = Vec::new();
        let mut device_free = 0.0f64;
        let mut next = 0usize;
        while next < requests.len() || !queue.is_empty() {
            if queue.is_empty() {
                // Idle: jump to the next arrival.
                let req = requests[next].clone();
                next += 1;
                if let Err(e) = validate(&req) {
                    self.telemetry.on_reject(req.id, req.arrival_us, &e);
                    responses.push(reject(&req, e));
                    continue;
                }
                queue.push(req);
            }
            let open = device_free.max(queue[0].arrival_us);
            let close = open + window;
            // Admit (or bounce) everything arriving by the close.
            while next < requests.len() && requests[next].arrival_us <= close {
                let req = requests[next].clone();
                next += 1;
                if let Err(e) = validate(&req) {
                    self.telemetry.on_reject(req.id, req.arrival_us, &e);
                    responses.push(reject(&req, e));
                } else if queue.len() >= depth {
                    let e = ServiceError::Overloaded { depth };
                    self.telemetry.on_reject(req.id, req.arrival_us, &e);
                    responses.push(reject(&req, e));
                } else {
                    queue.push(req);
                }
            }
            // Drain: the whole queue with a window, one request without.
            let working: Vec<SolveRequest> = if window == 0.0 {
                vec![queue.remove(0)]
            } else {
                std::mem::take(&mut queue)
            };
            let (mut ticked, mut batches, free) =
                self.solve_tick(open, close, &working, summaries.len());
            responses.append(&mut ticked);
            summaries.append(&mut batches);
            device_free = free;
        }
        ServiceReport::build(
            self.group.label(),
            self.cfg.window_us,
            depth,
            responses,
            summaries,
            self.cache.stats(),
            self.cfg.slo,
        )
    }
}

/// Reject a request at admission time (no spans, no modeled work).
fn reject(req: &SolveRequest, err: ServiceError) -> Response {
    Response {
        id: req.id,
        result: Err(err),
        spans: RequestSpans::default(),
        batch: None,
        coalesced_with: 0,
        cache_hit: false,
        completed_us: req.arrival_us,
    }
}

fn validate(req: &SolveRequest) -> std::result::Result<(), ServiceError> {
    if req.payload.num_systems() == 0 || req.payload.system_len() == 0 {
        return Err(ServiceError::InvalidRequest(format!(
            "empty geometry: m = {}, n = {}",
            req.payload.num_systems(),
            req.payload.system_len()
        )));
    }
    Ok(())
}

fn map_solver_error(e: SimError) -> ServiceError {
    ServiceError::Solve(e.to_string())
}

/// Execute a plan over a batch on `group`, returning the solution,
/// the merged report's modeled kernel time, and the per-device shard
/// execution (synthesized from the whole report for a single-device
/// run, where the report carries no shard summaries).
fn run_plan<S: GpuScalar + Send + Sync>(
    group: &DeviceGroup,
    exec: ExecConfig,
    plan: &Arc<ShardedPlan>,
    batch: &SystemBatch<S>,
) -> Result<(Vec<S>, f64, Vec<DeviceSpan>)> {
    let m = batch.num_systems();
    let ex = ShardedExecutor::new(group.clone(), exec);
    ex.run::<S>(plan, batch).map(|(x, report)| {
        let devices = if report.shards.is_empty() {
            vec![DeviceSpan {
                device_index: 0,
                sys_count: m,
                kernel_us: report.total_us,
                completion_us: report.total_us,
            }]
        } else {
            report
                .shards
                .iter()
                .map(|sh| DeviceSpan {
                    device_index: sh.device_index,
                    sys_count: sh.sys_count,
                    kernel_us: sh.kernel_us,
                    completion_us: sh.completion_us,
                })
                .collect()
        };
        (x, report.total_us, devices)
    })
}

/// Extract one member's systems from the fused payload, restored to
/// the member's own storage layout.
fn member_payload(batch: &CoalescedBatch, mem: &crate::coalesce::Member) -> Result<Payload> {
    let take = |e: tridiag_core::TridiagError| SimError::InvalidPlan(e.to_string());
    let range = mem.sys_start..mem.sys_start + mem.sys_count;
    match &batch.payload {
        Payload::F32(b) => {
            let mut systems = Vec::with_capacity(mem.sys_count);
            for sys in range {
                systems.push(b.system(sys).map_err(take)?);
            }
            let solo = SystemBatch::from_systems(systems).map_err(take)?;
            Ok(Payload::F32(solo.to_layout(mem.layout)))
        }
        Payload::F64(b) => {
            let mut systems = Vec::with_capacity(mem.sys_count);
            for sys in range {
                systems.push(b.system(sys).map_err(take)?);
            }
            let solo = SystemBatch::from_systems(systems).map_err(take)?;
            Ok(Payload::F64(solo.to_layout(mem.layout)))
        }
    }
}

/// Slice the fused solution into per-member vectors, each emitted in
/// its request's own storage layout (bit-exact moves, no arithmetic).
fn split_members<S: GpuScalar>(
    batch: &CoalescedBatch,
    merged: &SystemBatch<S>,
    x: &[S],
    wrap: fn(Vec<S>) -> Solution,
) -> Vec<Solution> {
    let n = merged.system_len();
    batch
        .members
        .iter()
        .map(|mem| {
            let mut out = vec![S::default(); mem.sys_count * n];
            for local in 0..mem.sys_count {
                for row in 0..n {
                    out[mem.layout.index(local, row, mem.sys_count, n)] =
                        x[merged.index(mem.sys_start + local, row)];
                }
            }
            wrap(out)
        })
        .collect()
}
