//! Requests, responses and the typed service errors.
//!
//! A [`SolveRequest`] carries one small batch of tridiagonal systems at
//! a single precision; the service answers with a [`Response`] holding
//! either the [`Solution`] vector (in the request's own layout) or a
//! typed [`ServiceError`], plus the per-request latency attribution
//! ([`RequestSpans`]) carved out of the modeled-time axis.

use std::fmt;

use tridiag_core::SystemBatch;
use tridiag_gpu::solution_hash;

/// The systems one request wants solved, tagged by precision.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Single-precision batch.
    F32(SystemBatch<f32>),
    /// Double-precision batch.
    F64(SystemBatch<f64>),
}

impl Payload {
    /// Number of systems in the request.
    pub fn num_systems(&self) -> usize {
        match self {
            Payload::F32(b) => b.num_systems(),
            Payload::F64(b) => b.num_systems(),
        }
    }

    /// Rows per system.
    pub fn system_len(&self) -> usize {
        match self {
            Payload::F32(b) => b.system_len(),
            Payload::F64(b) => b.system_len(),
        }
    }

    /// Scalar width in bytes (4 or 8).
    pub fn elem_bytes(&self) -> usize {
        match self {
            Payload::F32(_) => 4,
            Payload::F64(_) => 8,
        }
    }

    /// Precision label (`"f32"` / `"f64"`).
    pub fn precision(&self) -> &'static str {
        match self {
            Payload::F32(_) => "f32",
            Payload::F64(_) => "f64",
        }
    }

    /// Bytes of one solution download for this payload.
    pub fn solution_bytes(&self) -> usize {
        self.num_systems() * self.system_len() * self.elem_bytes()
    }
}

/// One solve request: an id, a modeled arrival time, and the systems.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// Caller-visible identity, echoed on the [`Response`].
    pub id: u64,
    /// Arrival on the modeled-time axis (µs).
    pub arrival_us: f64,
    /// The systems to solve.
    pub payload: Payload,
}

/// A solved request's output vector, in the request's own layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Solution {
    /// Single-precision solution.
    F32(Vec<f32>),
    /// Double-precision solution.
    F64(Vec<f64>),
}

impl Solution {
    /// Elements in the solution.
    pub fn len(&self) -> usize {
        match self {
            Solution::F32(x) => x.len(),
            Solution::F64(x) => x.len(),
        }
    }

    /// `true` when empty (never, for a successful solve).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bit-exact FNV-1a fingerprint ([`tridiag_gpu::solution_hash`]).
    pub fn hash(&self) -> u64 {
        match self {
            Solution::F32(x) => solution_hash(x),
            Solution::F64(x) => solution_hash(x),
        }
    }
}

/// Per-request latency attribution on the modeled-time axis. The four
/// spans partition the request's latency exactly:
/// `completed_us - arrival_us == queue + coalesce + kernel + scatter`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RequestSpans {
    /// Waiting in the admission queue for a window to open, plus any
    /// wait for co-tenant batches scheduled ahead in the same tick.
    pub queue_us: f64,
    /// Inside an open coalescing window, waiting for it to close
    /// (always 0 when the window size is 0).
    pub coalesce_us: f64,
    /// Modeled kernel time of the (possibly fused) batch this request
    /// rode in.
    pub kernel_us: f64,
    /// Scatter of the fused solution back to this request, including
    /// the serialized downloads of co-batched members ahead of it.
    pub scatter_us: f64,
}

impl RequestSpans {
    /// Total attributed latency (µs).
    pub fn latency_us(&self) -> f64 {
        self.queue_us + self.coalesce_us + self.kernel_us + self.scatter_us
    }
}

/// Typed service failures. `Overloaded` and `ShuttingDown` are
/// admission-time backpressure; `Solve` wraps a solver fault for the
/// specific request(s) that caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded queue was full at submission: back off and retry.
    Overloaded {
        /// The configured queue depth the request bounced off.
        depth: usize,
    },
    /// The service is draining; no new work is admitted.
    ShuttingDown,
    /// The request itself is malformed (empty batch, bad width, …).
    InvalidRequest(String),
    /// The solver faulted on this request's systems (display of the
    /// underlying [`gpu_sim::SimError`]).
    Solve(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { depth } => {
                write!(f, "overloaded: queue depth {depth} reached")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ServiceError::Solve(msg) => write!(f, "solve failed: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The service's answer to one request.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request's id.
    pub id: u64,
    /// The solution, or the typed failure attributed to this request.
    pub result: Result<Solution, ServiceError>,
    /// Latency attribution (all zeros for admission-time rejections).
    pub spans: RequestSpans,
    /// Index of the coalesced batch this request rode in (one per
    /// fused launch, in completion order); `None` when rejected.
    pub batch: Option<usize>,
    /// How many requests shared that batch (1 = solved alone).
    pub coalesced_with: usize,
    /// Whether the batch's plan came out of the plan cache.
    pub cache_hit: bool,
    /// Completion on the modeled-time axis (µs); equals `arrival_us`
    /// for admission-time rejections.
    pub completed_us: f64,
}
