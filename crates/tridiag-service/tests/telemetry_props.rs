//! Property tests of the telemetry subsystem.
//!
//! The determinism contract: telemetry is a pure function of the
//! *workload*, not of the submission order — the modeled driver sorts
//! arrivals, so the same request mix must produce **byte-identical**
//! metrics snapshots and event logs however the input vector is
//! permuted. On top of that, every run must satisfy the exact-partition
//! cross-check (metric-attributed time == report totals, bit-exact),
//! its metrics snapshot must pass the `tridiag.metrics/v1` validator,
//! and its event log must replay cleanly — while injected orphan and
//! duplicate-terminal events must be rejected.

use gpu_sim::{validate_metrics_json, DeviceGroup, DeviceSpec};
use proptest::prelude::*;
use tridiag_core::generators;
use tridiag_service::{
    validate_event_log, validate_request_chains, Payload, ServiceConfig, ServiceCore,
    SolveRequest,
};

fn gtx480_group() -> DeviceGroup {
    DeviceGroup::single(DeviceSpec::gtx480())
}

const NS: [usize; 3] = [64, 128, 256];

/// Build the canonical request list for a mix: ids follow the mix
/// order, so any permutation of the returned vector is the same
/// workload submitted in a different order.
fn requests(mix: &[(usize, usize, u8)]) -> Vec<SolveRequest> {
    mix.iter()
        .enumerate()
        .map(|(i, &(m, n_idx, slot))| SolveRequest {
            id: i as u64,
            arrival_us: slot as f64 * 3.0,
            payload: Payload::F64(generators::random_batch::<f64>(
                1 + m % 3,
                NS[n_idx % NS.len()],
                i as u64,
            )),
        })
        .collect()
}

/// Deterministic Fisher–Yates permutation of `v` driven by `seed`
/// (a splitmix64 stream; no global RNG state).
fn permute<T>(mut v: Vec<T>, mut seed: u64) -> Vec<T> {
    let mut next = move || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

/// One modeled run: metrics snapshot text, event log text, the
/// exact-partition cross-check findings, and the schema findings.
fn run(reqs: Vec<SolveRequest>) -> (String, String, Vec<String>, Vec<String>) {
    let mut core = ServiceCore::new(gtx480_group(), ServiceConfig::default());
    let report = core.run_workload(reqs);
    let snapshot = core.telemetry().metrics.to_json().to_string();
    let log = core.telemetry().to_jsonl();
    let cross = core.telemetry().cross_check(&report);
    let schema = validate_metrics_json(&core.telemetry().metrics.to_json());
    (snapshot, log, cross, schema)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Permuting the submission order changes nothing: metrics
    /// snapshot and event log are byte-identical, and both runs pass
    /// the exact-partition cross-check and the schema validators.
    #[test]
    fn snapshots_are_deterministic_under_permutation(
        mix in proptest::collection::vec((0usize..3, 0usize..3, 0u8..20), 1..10),
        perm_seed in any::<u64>(),
    ) {
        let canonical = requests(&mix);
        let permuted = permute(canonical.clone(), perm_seed);

        let (snap_a, log_a, cross_a, schema_a) = run(canonical);
        let (snap_b, log_b, cross_b, schema_b) = run(permuted);

        prop_assert!(cross_a.is_empty(), "exact-partition broke: {cross_a:#?}");
        prop_assert!(cross_b.is_empty(), "exact-partition broke: {cross_b:#?}");
        prop_assert!(schema_a.is_empty(), "metrics schema: {schema_a:#?}");
        prop_assert!(schema_b.is_empty(), "metrics schema: {schema_b:#?}");
        prop_assert_eq!(snap_a, snap_b, "metrics snapshot depends on submission order");
        prop_assert_eq!(log_a, log_b, "event log depends on submission order");
    }

    /// Every workload's event log replays cleanly, its counts match
    /// the report, and the report's own trace chains every completed
    /// cid exactly once.
    #[test]
    fn every_run_replays_and_chains(
        mix in proptest::collection::vec((0usize..3, 0usize..3, 0u8..20), 1..10)
    ) {
        let mut core = ServiceCore::new(gtx480_group(), ServiceConfig::default());
        let report = core.run_workload(requests(&mix));
        let summary = validate_event_log(&core.telemetry().to_jsonl())
            .unwrap_or_else(|p| panic!("replay failed: {p:#?}"));
        let (completed, rejected, failed) = report.totals();
        prop_assert_eq!(summary.completed.len(), completed);
        prop_assert_eq!(summary.faulted.len(), failed);
        prop_assert_eq!(summary.rejected.len(), rejected);

        let chained = validate_request_chains(&report.trace.to_chrome_json())
            .unwrap_or_else(|p| panic!("chains invalid: {p:#?}"));
        let mut expected = summary.completed.clone();
        expected.sort_unstable();
        prop_assert_eq!(chained, expected);
    }
}

/// The replay validator rejects fabricated lifecycle violations:
/// a terminal for a never-admitted cid, and a duplicated terminal.
#[test]
fn replay_rejects_injected_orphans_and_duplicate_terminals() {
    let mut core = ServiceCore::new(gtx480_group(), ServiceConfig::default());
    core.run_workload(requests(&[(0, 0, 0), (1, 1, 2), (2, 2, 4)]));
    let log = core.telemetry().to_jsonl();
    assert!(validate_event_log(&log).is_ok(), "baseline log must be clean");

    // Orphan: a completion for a cid that was never admitted.
    let orphaned = format!(
        "{log}{}\n",
        r#"{"event":"completion","t_us":99.0,"cid":4096,"batch":null,"precision":"f64","queue_us":0,"coalesce_us":0,"kernel_us":0,"scatter_us":0,"cache_hit":false,"coalesced_with":1}"#
    );
    let problems = validate_event_log(&orphaned).unwrap_err();
    assert!(
        problems.iter().any(|p| p.contains("orphan")),
        "expected an orphan-terminal violation, got {problems:#?}"
    );

    // Duplicate terminal: replay an existing completion line verbatim.
    let completion_line = log
        .lines()
        .find(|l| l.contains("\"completion\""))
        .expect("workload completed at least one request");
    let duplicated = format!("{log}{completion_line}\n");
    let problems = validate_event_log(&duplicated).unwrap_err();
    assert!(
        problems.iter().any(|p| p.contains("duplicate terminal")),
        "expected a duplicate-terminal violation, got {problems:#?}"
    );
}
