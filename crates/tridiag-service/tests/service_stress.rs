//! Concurrency stress for the threaded [`SolveService`]: many client
//! threads against one bounded queue, with no lost or duplicated
//! responses, typed backpressure at the brim, and fault isolation
//! inside fused batches.
//!
//! The singular trick mirrors `tests/failure_injection.rs`: a system
//! whose head pivot is exactly zero faults every engine, so a fused
//! batch containing it faults as a whole — the service must then
//! attribute the failure to the bad request alone while its healthy
//! co-tenants still complete bit-identical to solo solves.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gpu_sim::{DeviceGroup, DeviceSpec};
use tridiag_core::{generators, SystemBatch, TridiagonalSystem};
use tridiag_service::{
    solo_solution, validate_event_log, validate_request_chains, Payload, ServiceConfig,
    ServiceError, SolveService, Ticket,
};

fn zero_head(n: usize) -> TridiagonalSystem<f64> {
    generators::near_singular::<f64>(n, 0, 0.0, 99)
}

fn healthy(m: usize, n: usize, seed: u64) -> Payload {
    Payload::F64(generators::random_batch::<f64>(m, n, seed))
}

fn service_config(window_us: f64, queue_depth: usize) -> ServiceConfig {
    ServiceConfig {
        window_us,
        queue_depth,
        ..ServiceConfig::default()
    }
}

fn group() -> DeviceGroup {
    DeviceGroup::single(DeviceSpec::gtx480())
}

/// N client threads hammering one service: every admitted ticket is
/// answered exactly once, ids are unique, nothing is lost, and every
/// answer matches the solo solve of the same payload.
#[test]
fn concurrent_clients_lose_and_duplicate_nothing() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 6;
    let service = Arc::new(SolveService::start(group(), service_config(8.0, 256)));
    let overloads = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let service = Arc::clone(&service);
        let overloads = Arc::clone(&overloads);
        handles.push(std::thread::spawn(move || {
            let mut answered = Vec::new();
            for i in 0..PER_CLIENT {
                let seed = (c * PER_CLIENT + i) as u64;
                let n = [64usize, 128, 256][i % 3];
                let payload = healthy(1 + i % 3, n, seed);
                match service.submit(payload.clone()) {
                    Ok(ticket) => {
                        let id = ticket.id;
                        let resp = ticket.wait();
                        assert_eq!(resp.id, id, "response routed to the wrong ticket");
                        let got = resp.result.expect("healthy request failed");
                        let solo =
                            solo_solution(&group(), service_config(8.0, 256), &payload).unwrap();
                        assert_eq!(got.hash(), solo.hash(), "client {c} req {i}: answer drifted");
                        // Spans partition the modeled latency exactly.
                        let spans = resp.spans;
                        let total =
                            spans.queue_us + spans.coalesce_us + spans.kernel_us + spans.scatter_us;
                        assert!(
                            (total - spans.latency_us()).abs() < 1e-9,
                            "span partition broke: {spans:?}"
                        );
                        answered.push(id);
                    }
                    Err(ServiceError::Overloaded { .. }) => {
                        overloads.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => panic!("unexpected admission error: {e}"),
                }
            }
            answered
        }));
    }

    let mut all_ids = Vec::new();
    for h in handles {
        all_ids.extend(h.join().expect("client thread panicked"));
    }
    let unique: BTreeSet<_> = all_ids.iter().collect();
    assert_eq!(unique.len(), all_ids.len(), "duplicate response ids");

    let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("clients still hold refs"));
    let stats = service.shutdown();
    let answered = all_ids.len() as u64;
    assert_eq!(
        stats.submitted,
        answered,
        "admitted vs answered mismatch (lost responses)"
    );
    assert_eq!(stats.completed, answered);
    assert_eq!(stats.failed, 0);
    assert_eq!(
        stats.completed + overloads.load(Ordering::Relaxed),
        (CLIENTS * PER_CLIENT) as u64,
        "every submission must be accounted for, answered or bounced"
    );
    assert_eq!(stats.cache.lookups, stats.cache.hits + stats.cache.misses);
}

/// A paused service fills its bounded queue; the overflow submission
/// gets a typed `Overloaded` carrying the configured depth, and after
/// resume the queued requests all still complete.
#[test]
fn bounded_queue_bounces_with_typed_overload() {
    const DEPTH: usize = 4;
    let service = SolveService::start(group(), service_config(8.0, DEPTH));
    service.pause();

    let tickets: Vec<Ticket> = (0..DEPTH)
        .map(|i| service.submit(healthy(1, 64, i as u64)).expect("under depth"))
        .collect();
    assert_eq!(service.queue_len(), DEPTH);

    match service.submit(healthy(1, 64, 1000)) {
        Err(ServiceError::Overloaded { depth }) => assert_eq!(depth, DEPTH),
        other => panic!("expected Overloaded at depth {DEPTH}, got {other:?}"),
    }
    assert_eq!(service.stats().rejected, 1);

    service.resume();
    let mut ids = BTreeSet::new();
    for t in tickets {
        let resp = t.wait();
        assert!(resp.result.is_ok(), "queued request failed after resume");
        // All were queued while paused, so one tick coalesces them.
        assert_eq!(resp.coalesced_with, DEPTH);
        ids.insert(resp.id);
    }
    assert_eq!(ids.len(), DEPTH, "duplicated or lost responses");
    let stats = service.shutdown();
    assert_eq!(stats.completed, DEPTH as u64);
    assert_eq!(stats.rejected, 1);
}

/// Fault isolation inside a fused batch: pausing guarantees the
/// singular request co-batches with two healthy ones; only the bad
/// request gets a typed solve error, and the healthy co-tenants
/// complete bit-identical to solo.
#[test]
fn faulted_coalesced_batch_is_attributed_to_the_bad_request_only() {
    let n = 128;
    let service = SolveService::start(group(), service_config(8.0, 16));
    service.pause();

    let good_a = healthy(2, n, 7);
    let bad = Payload::F64(SystemBatch::from_systems(vec![zero_head(n)]).unwrap());
    let good_b = healthy(1, n, 8);
    let t_a = service.submit(good_a.clone()).unwrap();
    let t_bad = service.submit(bad).unwrap();
    let t_b = service.submit(good_b.clone()).unwrap();
    service.resume();

    let (ra, rbad, rb) = (t_a.wait(), t_bad.wait(), t_b.wait());
    // Same (n, f64) key: all three were fused into one batch.
    for r in [&ra, &rbad, &rb] {
        assert_eq!(r.coalesced_with, 3, "the three requests must co-batch");
        assert_eq!(r.batch, ra.batch, "one fused batch expected");
    }

    match &rbad.result {
        Err(ServiceError::Solve(msg)) => {
            assert!(
                msg.contains("pivot") || msg.contains("singular") || msg.contains("fault"),
                "opaque fault message: {msg}"
            );
        }
        other => panic!("singular request must fail typed, got {other:?}"),
    }
    for (resp, payload, tag) in [(&ra, &good_a, "a"), (&rb, &good_b, "b")] {
        let got = resp
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("healthy co-tenant {tag} failed: {e}"));
        let solo = solo_solution(&group(), service_config(8.0, 16), payload).unwrap();
        assert_eq!(
            got.hash(),
            solo.hash(),
            "healthy co-tenant {tag} drifted from its solo answer"
        );
    }

    let stats = service.shutdown();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 1);
}

/// Shutdown drains: requests still queued when shutdown begins get a
/// typed `ShuttingDown` response instead of hanging their tickets, and
/// later submissions are refused outright.
#[test]
fn shutdown_answers_queued_tickets_with_typed_error() {
    let service = SolveService::start(group(), service_config(8.0, 16));
    service.pause();
    let tickets: Vec<Ticket> = (0..3)
        .map(|i| service.submit(healthy(1, 64, i as u64)).unwrap())
        .collect();
    let stats = service.shutdown();
    for t in tickets {
        match t.wait().result {
            Err(ServiceError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
    }
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.rejected, 3);
}

/// Degenerate-but-representable geometry never strands a ticket: the
/// smallest payload the type system admits (m = 1, n = 1) is either
/// solved or answered with a typed error — the worker must not panic
/// and the ticket must not hang. (A genuinely empty payload is
/// unrepresentable: `SystemBatch` constructors reject m = 0 / n = 0,
/// so admission validation is defense-in-depth with no reachable
/// failure here.)
#[test]
fn degenerate_geometry_is_answered_not_stranded() {
    let service = SolveService::start(group(), service_config(8.0, 16));
    let tiny = Payload::F64(
        SystemBatch::from_raw(
            vec![0.0],
            vec![2.0],
            vec![0.0],
            vec![1.0],
            1,
            1,
            tridiag_core::Layout::Contiguous,
        )
        .unwrap(),
    );
    let resp = service.submit(tiny).expect("representable payload").wait();
    match resp.result {
        Ok(sol) => assert_eq!(sol.len(), 1),
        Err(ServiceError::Solve(_)) => {}
        Err(other) => panic!("expected Ok or a typed solve error, got {other}"),
    }
    service.shutdown();
}

/// The telemetry acceptance proof, end to end under real concurrency:
/// 8 client threads (including one singular request that faults its
/// fused batch), then `shutdown_with_telemetry` hands back the event
/// log and the replay validator proves every admitted request reached
/// **exactly one** terminal event — and the merged Chrome trace
/// derived from the log carries each completed correlation id in
/// exactly one causally-linked queue → coalesce → kernel → scatter
/// span chain.
#[test]
fn event_log_replay_accounts_for_every_admitted_request() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 5;
    let service = Arc::new(SolveService::start(group(), service_config(8.0, 256)));

    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let service = Arc::clone(&service);
        handles.push(std::thread::spawn(move || {
            let mut admitted = 0u64;
            for i in 0..PER_CLIENT {
                let n = [64usize, 128][i % 2];
                // Client 0's second request is singular: its fused
                // batch faults, isolates, and must produce a `fault`
                // terminal for this cid only.
                let payload = if c == 0 && i == 1 {
                    Payload::F64(SystemBatch::from_systems(vec![zero_head(n)]).unwrap())
                } else {
                    healthy(1 + i % 2, n, (c * PER_CLIENT + i) as u64)
                };
                match service.submit(payload) {
                    Ok(ticket) => {
                        let _ = ticket.wait();
                        admitted += 1;
                    }
                    Err(ServiceError::Overloaded { .. }) => {}
                    Err(e) => panic!("unexpected admission error: {e}"),
                }
            }
            admitted
        }));
    }
    let answered: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .sum();

    let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("clients still hold refs"));
    let (stats, telemetry) = service.shutdown_with_telemetry();
    assert_eq!(stats.submitted, answered);

    // Replay the serialized event log: lifecycle invariants hold and
    // the admission/terminal counts match the service's own counters.
    let summary = validate_event_log(&telemetry.to_jsonl())
        .unwrap_or_else(|problems| panic!("event log replay failed: {problems:#?}"));
    assert_eq!(
        summary.admitted.len() as u64,
        stats.submitted,
        "every admitted request must have an admission event"
    );
    assert_eq!(summary.completed.len() as u64, stats.completed);
    assert_eq!(summary.faulted.len() as u64, stats.failed);
    assert_eq!(summary.faulted.len(), 1, "exactly the singular request faults");

    // The merged trace derived from the log chains every completed
    // cid exactly once.
    let trace = telemetry.to_trace("service-stress");
    let chained = validate_request_chains(&trace.to_chrome_json().to_string())
        .unwrap_or_else(|problems| panic!("request chains invalid: {problems:#?}"));
    let mut completed_sorted = summary.completed.clone();
    completed_sorted.sort_unstable();
    assert_eq!(
        chained,
        completed_sorted,
        "trace chains must cover exactly the completed cids"
    );

    // Metrics agree with the counters.
    assert_eq!(telemetry.metrics.counter("requests", "admitted"), stats.submitted);
    assert_eq!(telemetry.metrics.counter("requests", "completed"), stats.completed);
    assert_eq!(telemetry.metrics.counter("requests", "failed"), stats.failed);
}

/// window = 0 disables coalescing even under a stacked queue: each
/// request runs alone, in arrival order.
#[test]
fn zero_window_never_coalesces() {
    let service = SolveService::start(group(), service_config(0.0, 16));
    service.pause();
    let tickets: Vec<Ticket> = (0..4)
        .map(|i| service.submit(healthy(1, 64, i as u64)).unwrap())
        .collect();
    service.resume();
    for t in tickets {
        let resp = t.wait();
        assert!(resp.result.is_ok());
        assert_eq!(resp.coalesced_with, 1, "window=0 must keep requests solo");
    }
    service.shutdown();
}
