//! Coalescing-identity differential harness: a request's answer must
//! not depend on its co-tenants.
//!
//! For randomized mixes of request shapes the coalesced path must be
//! **bit-identical** (FNV-1a solution hashes, same style as
//! `sharded_differential.rs`) to solving each request alone under the
//! service's pinned config, and the coalescer must merge *exactly* the
//! compatible requests: same `(n, precision)` always lands in one
//! batch per tick, different `(n, precision)` never shares one.
//!
//! Also pinned here: the throughput claim the service exists for —
//! with small per-request batches, a non-zero coalescing window beats
//! window = 0 on modeled requests/s — and the report schema.

use gpu_sim::{DeviceGroup, DeviceSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tridiag_core::generators::random_batch;
use tridiag_core::SystemBatch;
use tridiag_service::{
    solo_solution, validate_service_report_json, Payload, ServiceConfig, ServiceCore,
    SolveRequest,
};

const MIXES: usize = 60;
const SHAPE_NS: [usize; 4] = [64, 256, 257, 512];

fn random_payload(rng: &mut StdRng, m: usize, n: usize) -> Payload {
    let seed = rng.gen_range(0u64..1 << 40);
    if rng.gen_bool(0.3) {
        Payload::F32(random_batch::<f32>(m, n, seed))
    } else {
        Payload::F64(random_batch::<f64>(m, n, seed))
    }
}

fn random_mix(rng: &mut StdRng) -> Vec<SolveRequest> {
    let count = rng.gen_range(2usize..7);
    (0..count)
        .map(|i| {
            let m = rng.gen_range(1usize..5);
            let n = SHAPE_NS[rng.gen_range(0usize..SHAPE_NS.len())];
            SolveRequest {
                id: i as u64,
                arrival_us: i as f64 * 0.5,
                payload: random_payload(rng, m, n),
            }
        })
        .collect()
}

fn service_config(window_us: f64) -> ServiceConfig {
    ServiceConfig {
        window_us,
        ..ServiceConfig::default()
    }
}

/// The tentpole property, across >= 50 randomized mixes on one device:
/// every coalesced solution is bit-identical to the solo solve, and
/// batching is exactly the compatibility relation.
#[test]
fn coalesced_solutions_bit_identical_to_solo_across_random_mixes() {
    let group = DeviceGroup::single(DeviceSpec::gtx480());
    let mut rng = StdRng::seed_from_u64(0xC0A1E5CE);
    let mut coalesced_batches = 0usize;
    for mix in 0..MIXES {
        let requests = random_mix(&mut rng);
        let keys: Vec<(usize, usize)> = requests
            .iter()
            .map(|r| (r.payload.system_len(), r.payload.elem_bytes()))
            .collect();
        let mut core = ServiceCore::new(group.clone(), service_config(50.0));
        let report = core.run_workload(requests.clone());
        assert_eq!(report.responses.len(), requests.len(), "mix {mix}");

        for req in &requests {
            let resp = report
                .responses
                .iter()
                .find(|r| r.id == req.id)
                .unwrap_or_else(|| panic!("mix {mix}: no response for request {}", req.id));
            let coalesced = resp
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("mix {mix} request {}: {e}", req.id));
            let solo = solo_solution(&group, service_config(50.0), &req.payload)
                .unwrap_or_else(|e| panic!("mix {mix} request {} solo: {e}", req.id));
            assert_eq!(
                coalesced.hash(),
                solo.hash(),
                "mix {mix} request {}: coalesced answer differs from solo",
                req.id
            );
            assert_eq!(coalesced, &solo, "mix {mix} request {}: bit drift", req.id);
        }

        // Exact-batching: all arrivals land inside the first window, so
        // same-key requests MUST share a batch and different-key
        // requests MUST NOT.
        let batch_of = |id: u64| {
            report
                .responses
                .iter()
                .find(|r| r.id == id)
                .and_then(|r| r.batch)
        };
        for a in 0..requests.len() {
            for b in a + 1..requests.len() {
                let (ba, bb) = (batch_of(requests[a].id), batch_of(requests[b].id));
                if keys[a] == keys[b] {
                    assert_eq!(
                        ba, bb,
                        "mix {mix}: compatible requests {a}/{b} not coalesced"
                    );
                } else {
                    assert_ne!(
                        ba, bb,
                        "mix {mix}: incompatible requests {a}/{b} merged (n/precision differ)"
                    );
                }
            }
        }
        coalesced_batches += report
            .batches
            .iter()
            .filter(|b| b.request_ids.len() > 1)
            .count();

        let problems = validate_service_report_json(&report.to_json());
        assert!(problems.is_empty(), "mix {mix}: {problems:?}");
    }
    assert!(
        coalesced_batches >= MIXES / 4,
        "the suite must actually exercise coalescing (saw {coalesced_batches} fused batches)"
    );
}

/// Same identity on a homogeneous 2-device group: fused batches shard
/// across devices, solo requests (m < devices) fall back to the
/// primary — the answer must still be bit-identical.
#[test]
fn coalesced_solutions_bit_identical_on_a_device_group() {
    let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 2).unwrap();
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for mix in 0..8 {
        let requests = random_mix(&mut rng);
        let mut core = ServiceCore::new(group.clone(), service_config(50.0));
        let report = core.run_workload(requests.clone());
        for req in &requests {
            let resp = report.responses.iter().find(|r| r.id == req.id).unwrap();
            let coalesced = resp.result.as_ref().unwrap();
            let solo = solo_solution(&group, service_config(50.0), &req.payload).unwrap();
            assert_eq!(
                coalesced.hash(),
                solo.hash(),
                "mix {mix} request {} on D=2",
                req.id
            );
        }
    }
}

/// Re-running an identical workload on a warm core must hit the plan
/// cache for every batch and reproduce every hash exactly.
#[test]
fn warm_cache_reproduces_answers_bit_for_bit() {
    let group = DeviceGroup::single(DeviceSpec::gtx480());
    let mut rng = StdRng::seed_from_u64(7);
    let requests = random_mix(&mut rng);
    let mut core = ServiceCore::new(group, service_config(50.0));
    let cold = core.run_workload(requests.clone());
    let warm = core.run_workload(requests);
    let hash_of = |report: &tridiag_service::ServiceReport, id: u64| {
        report
            .responses
            .iter()
            .find(|r| r.id == id)
            .unwrap()
            .result
            .as_ref()
            .unwrap()
            .hash()
    };
    for r in &cold.responses {
        assert_eq!(hash_of(&cold, r.id), hash_of(&warm, r.id), "id {}", r.id);
    }
    assert!(
        warm.batches.iter().all(|b| b.cache_hit),
        "every warm batch must be a plan-cache hit: {:?}",
        warm.batches
    );
    let stats = core.cache_stats();
    assert_eq!(stats.lookups, stats.hits + stats.misses);
    assert!(stats.hits >= warm.batches.len() as u64);
}

/// The regime the service manufactures: with small per-request M, a
/// non-zero coalescing window strictly beats window = 0 on modeled
/// requests/s (launch overhead amortizes, occupancy rises).
#[test]
fn coalescing_window_beats_no_window_on_modeled_throughput() {
    let group = DeviceGroup::single(DeviceSpec::gtx480());
    let make_requests = || -> Vec<SolveRequest> {
        (0..48u64)
            .map(|i| SolveRequest {
                id: i,
                arrival_us: i as f64,
                payload: Payload::F64(random_batch::<f64>(2, 256, 1000 + i)),
            })
            .collect()
    };
    let mut solo_core = ServiceCore::new(group.clone(), service_config(0.0));
    let solo = solo_core.run_workload(make_requests());
    let mut coal_core = ServiceCore::new(group, service_config(16.0));
    let coal = coal_core.run_workload(make_requests());
    let (solo_done, _, _) = solo.totals();
    let (coal_done, _, _) = coal.totals();
    assert_eq!(solo_done, 48);
    assert_eq!(coal_done, 48);
    assert!(
        coal.requests_per_s > solo.requests_per_s,
        "window=16 must beat window=0: {:.0} vs {:.0} req/s",
        coal.requests_per_s,
        solo.requests_per_s
    );
    assert!(
        coal.batches.len() < solo.batches.len(),
        "coalescing must reduce launches: {} vs {}",
        coal.batches.len(),
        solo.batches.len()
    );
    // window=0 means one request per batch, always.
    assert!(solo.batches.iter().all(|b| b.request_ids.len() == 1));
}

/// Mixed layouts don't break identity: a request whose batch is
/// interleaved must come back bit-identical to its solo solve too
/// (the coalescer re-extracts systems, the solver re-lays them out).
#[test]
fn interleaved_request_layout_is_bit_neutral() {
    let group = DeviceGroup::single(DeviceSpec::gtx480());
    let contiguous = random_batch::<f64>(3, 256, 99);
    let interleaved = contiguous.to_layout(tridiag_core::Layout::Interleaved);
    let requests = vec![
        SolveRequest {
            id: 0,
            arrival_us: 0.0,
            payload: Payload::F64(random_batch::<f64>(2, 256, 98)),
        },
        SolveRequest {
            id: 1,
            arrival_us: 0.5,
            payload: Payload::F64(interleaved.clone()),
        },
    ];
    let mut core = ServiceCore::new(group.clone(), service_config(50.0));
    let report = core.run_workload(requests);
    let resp = report.responses.iter().find(|r| r.id == 1).unwrap();
    assert_eq!(resp.coalesced_with, 2, "the two requests must coalesce");
    let solo = solo_solution(
        &group,
        service_config(50.0),
        &Payload::F64(interleaved),
    )
    .unwrap();
    assert_eq!(resp.result.as_ref().unwrap().hash(), solo.hash());
}

/// Sanity: the fused batch really concatenates member systems in
/// arrival order (scatter returns each request its own rows).
#[test]
fn scatter_returns_each_request_its_own_rows() {
    let group = DeviceGroup::single(DeviceSpec::gtx480());
    let b0 = random_batch::<f64>(2, 128, 1);
    let b1 = random_batch::<f64>(3, 128, 2);
    let requests = vec![
        SolveRequest {
            id: 10,
            arrival_us: 0.0,
            payload: Payload::F64(b0.clone()),
        },
        SolveRequest {
            id: 11,
            arrival_us: 0.1,
            payload: Payload::F64(b1.clone()),
        },
    ];
    let mut core = ServiceCore::new(group.clone(), service_config(10.0));
    let report = core.run_workload(requests);
    for (id, batch) in [(10u64, &b0), (11u64, &b1)] {
        let resp = report.responses.iter().find(|r| r.id == id).unwrap();
        let tridiag_service::Solution::F64(x) = resp.result.as_ref().unwrap() else {
            panic!("wrong precision came back");
        };
        assert_eq!(x.len(), batch.total_len());
        // The answer actually solves *this* request's systems.
        let residual = SystemBatch::from_systems(batch.to_systems())
            .unwrap()
            .max_relative_residual(x)
            .unwrap();
        assert!(residual < 1e-9, "id {id}: residual {residual}");
    }
}
