//! Every public error type in the workspace is a real
//! [`std::error::Error`]: boxable as `Box<dyn Error>`, displayable,
//! and round-trippable through `?` in plain-`Result` application code.
//! A typed error that cannot cross an API boundary as `dyn Error` is a
//! usability bug, not a style nit.

use std::error::Error;

use gpu_sim::SimError;
use tridiag_core::TridiagError;
use tridiag_service::ServiceError;

fn boxed(e: impl Error + 'static) -> Box<dyn Error> {
    Box::new(e)
}

#[test]
fn workspace_errors_box_as_dyn_error() {
    let cases: Vec<Box<dyn Error>> = vec![
        boxed(SimError::InvalidPlan("step 3: use-before-def".into())),
        boxed(SimError::InvalidLaunch("zero blocks".into())),
        boxed(TridiagError::EmptySystem),
        boxed(TridiagError::ZeroPivot { row: 7 }),
        boxed(ServiceError::Overloaded { depth: 16 }),
        boxed(ServiceError::ShuttingDown),
        boxed(ServiceError::Solve("kernel fault".into())),
    ];
    for e in &cases {
        // Display must be non-empty and stable enough to embed in
        // messages (`{e}` is how callers surface these).
        assert!(!e.to_string().is_empty());
    }
}

/// The `?` operator lifts each typed error into `Box<dyn Error>` — the
/// shape downstream binaries use.
#[test]
fn question_mark_lifts_into_dyn_error() {
    fn sim() -> Result<(), SimError> {
        Err(SimError::InvalidPlan("peak resident exceeds global memory".into()))
    }
    fn app() -> Result<(), Box<dyn Error>> {
        sim()?;
        Ok(())
    }
    let err = app().unwrap_err();
    assert!(err.to_string().contains("peak resident"));
}
