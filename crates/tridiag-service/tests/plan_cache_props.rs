//! Property tests of the plan cache over the pure planner.
//!
//! The contract: a hit returns a plan *byte-identical* (same
//! `describe()`, same `to_json()` text) to a fresh
//! `ShardedPlan::build`; distinct keys never collide; eviction at
//! capacity only costs recompute, never correctness; and the counters
//! obey `lookups == hits + misses` under any lookup sequence.

use gpu_sim::{DeviceGroup, DeviceSpec};
use proptest::prelude::*;
use tridiag_core::transition::TransitionPolicy;
use tridiag_gpu::solver::GpuSolverConfig;
use tridiag_gpu::ShardedPlan;
use tridiag_service::{config_fingerprint, PlanCache};

fn gtx480_group() -> DeviceGroup {
    DeviceGroup::single(DeviceSpec::gtx480())
}

/// The geometry corpus: small enough to plan fast, varied enough to
/// hit p-Thomas-only, tiled-PCR and partitioned pipelines.
const NS: [usize; 5] = [32, 64, 128, 256, 513];
const BYTES: [usize; 2] = [4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A hit is byte-identical to a fresh build of the same key.
    #[test]
    fn cache_hit_is_byte_identical_to_fresh_build(
        m in 1usize..64,
        n_idx in 0usize..NS.len(),
        b_idx in 0usize..BYTES.len(),
    ) {
        let (group, config) = (gtx480_group(), GpuSolverConfig::default());
        let (n, bytes) = (NS[n_idx], BYTES[b_idx]);
        let mut cache = PlanCache::new(8);
        let (first, hit1) = cache.lookup(&group, &config, m, n, bytes).unwrap();
        let (second, hit2) = cache.lookup(&group, &config, m, n, bytes).unwrap();
        prop_assert!(!hit1, "first lookup must miss");
        prop_assert!(hit2, "second lookup must hit");
        let fresh = ShardedPlan::build(&group, &config, m, n, bytes).unwrap();
        prop_assert_eq!(first.describe(), fresh.describe());
        prop_assert_eq!(second.describe(), fresh.describe());
        prop_assert_eq!(first.to_json().to_string(), fresh.to_json().to_string());
        prop_assert_eq!(second.to_json().to_string(), fresh.to_json().to_string());
    }

    /// Distinct geometry/width keys never alias each other's plans.
    #[test]
    fn distinct_keys_never_collide(
        m1 in 1usize..64, m2 in 1usize..64,
        n1_idx in 0usize..NS.len(), n2_idx in 0usize..NS.len(),
        b1_idx in 0usize..BYTES.len(), b2_idx in 0usize..BYTES.len(),
    ) {
        let key1 = (m1, NS[n1_idx], BYTES[b1_idx]);
        let key2 = (m2, NS[n2_idx], BYTES[b2_idx]);
        prop_assume!(key1 != key2);
        let (group, config) = (gtx480_group(), GpuSolverConfig::default());
        let mut cache = PlanCache::new(8);
        let (p1, _) = cache.lookup(&group, &config, key1.0, key1.1, key1.2).unwrap();
        let (p2, _) = cache.lookup(&group, &config, key2.0, key2.1, key2.2).unwrap();
        prop_assert!(
            p1.m != p2.m || p1.n != p2.n || p1.elem_bytes != p2.elem_bytes,
            "two distinct keys returned one plan"
        );
        // And each matches its own fresh build.
        let f1 = ShardedPlan::build(&group, &config, key1.0, key1.1, key1.2).unwrap();
        prop_assert_eq!(p1.describe(), f1.describe());
        let stats = cache.stats();
        prop_assert_eq!(stats.lookups, 2);
        prop_assert_eq!(stats.misses, 2);
    }

    /// At capacity the LRU entry is evicted; a re-lookup of the victim
    /// misses but rebuilds the identical plan.
    #[test]
    fn eviction_keeps_correctness(
        capacity in 1usize..4,
        ms in proptest::collection::vec(1usize..32, 2..10),
    ) {
        let (group, config) = (gtx480_group(), GpuSolverConfig::default());
        let mut cache = PlanCache::new(capacity);
        for &m in &ms {
            let (plan, _) = cache.lookup(&group, &config, m, 128, 8).unwrap();
            prop_assert_eq!(plan.m, m);
        }
        prop_assert!(cache.len() <= capacity, "capacity must bound the cache");
        let distinct: std::collections::BTreeSet<_> = ms.iter().collect();
        let stats = cache.stats();
        if distinct.len() > capacity {
            prop_assert!(stats.evictions > 0, "over-capacity inserts must evict");
        }
        // Every key still answers correctly, evicted or not.
        for &m in &ms {
            let (plan, _) = cache.lookup(&group, &config, m, 128, 8).unwrap();
            let fresh = ShardedPlan::build(&group, &config, m, 128, 8).unwrap();
            prop_assert_eq!(plan.describe(), fresh.describe());
        }
    }

    /// `lookups == hits + misses` under any sequence.
    #[test]
    fn counters_sum_to_lookups(
        seq in proptest::collection::vec((1usize..16, 0usize..NS.len()), 1..24),
        capacity in 0usize..4,
    ) {
        let (group, config) = (gtx480_group(), GpuSolverConfig::default());
        let mut cache = PlanCache::new(capacity);
        for &(m, n_idx) in &seq {
            cache.lookup(&group, &config, m, NS[n_idx], 8).unwrap();
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.lookups, seq.len() as u64);
        prop_assert_eq!(stats.hits + stats.misses, stats.lookups);
        if capacity == 0 {
            prop_assert_eq!(stats.hits, 0, "a zero-capacity cache can never hit");
        }
    }
}

/// Config fingerprints separate pinned configs from the base config —
/// the service caches plans under `TransitionPolicy::Fixed(k)` pins,
/// which must not alias plans built under the default policy.
#[test]
fn config_fingerprint_separates_pinned_configs() {
    let base = GpuSolverConfig::default();
    let pinned = GpuSolverConfig {
        policy: TransitionPolicy::Fixed(3),
        ..base
    };
    assert_ne!(config_fingerprint(&base), config_fingerprint(&pinned));

    let group = gtx480_group();
    let mut cache = PlanCache::new(8);
    let (p_base, _) = cache.lookup(&group, &base, 256, 64, 8).unwrap();
    let (p_pin, hit) = cache.lookup(&group, &pinned, 256, 64, 8).unwrap();
    assert!(!hit, "different configs must not share a cache entry");
    assert_ne!(
        p_base.reference.k, p_pin.reference.k,
        "the two configs plan different k at this geometry, so aliasing would be wrong"
    );
}

/// Group fingerprints separate device compositions.
#[test]
fn group_fingerprint_separates_compositions() {
    let single = DeviceGroup::single(DeviceSpec::gtx480());
    let dual = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 2).unwrap();
    let other = DeviceGroup::single(DeviceSpec::gtx280());
    assert_ne!(single.fingerprint(), dual.fingerprint());
    assert_ne!(single.fingerprint(), other.fingerprint());
    assert_eq!(
        single.fingerprint(),
        DeviceGroup::single(DeviceSpec::gtx480()).fingerprint()
    );

    let config = GpuSolverConfig::default();
    let mut cache = PlanCache::new(8);
    let (p1, _) = cache.lookup(&single, &config, 8, 128, 8).unwrap();
    let (p2, hit) = cache.lookup(&dual, &config, 8, 128, 8).unwrap();
    assert!(!hit, "different groups must not share a cache entry");
    assert_eq!(p1.num_devices(), 1);
    assert_eq!(p2.num_devices(), 2);
}

/// Verification-on-insert: [`tridiag_service::certify`] rejects a
/// corrupted sharded plan, so [`PlanCache::lookup`] can never cache or
/// return one. A shifted `sys_start` breaks partition contiguity.
#[test]
fn certify_rejects_a_corrupted_sharded_plan() {
    let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 2).unwrap();
    let config = GpuSolverConfig::default();
    let plan = ShardedPlan::build(&group, &config, 64, 512, 8).unwrap();
    assert!(tridiag_service::certify(&group, &plan).is_ok());

    let mut corrupted = plan.clone();
    corrupted.shards[1].sys_start += 1;
    let err = tridiag_service::certify(&group, &corrupted).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("shard-partition"),
        "expected a shard-partition finding, got: {msg}"
    );
}
