//! Multi-device execution: device groups, per-device streams, and the
//! completion timeline.
//!
//! A [`DeviceGroup`] is a registry of (possibly heterogeneous)
//! [`DeviceSpec`]s that a batch can be sharded across. Each device owns
//! one in-order [`DeviceStream`] of modeled async operations — host→
//! device copies, kernel launches, device→host copies — stamped with
//! start/duration on the modeled-time axis. The [`GroupTimeline`]
//! collects one stream per device; because devices run concurrently,
//! the modeled wall-clock of a sharded solve is the **max** of the
//! per-device completion times, never their sum.
//!
//! Copies are modeled as a fixed driver overhead plus bytes over a
//! host-interconnect bandwidth ([`PCIE_BANDWIDTH_GBPS`], PCIe 2.0 x16 —
//! the era-appropriate bus for the paper's GTX480). Kernel durations
//! come from [`crate::timing::time_kernel`] and are recorded by the
//! caller.

use crate::error::{Result, SimError};
use crate::spec::DeviceSpec;

/// Modeled host↔device interconnect bandwidth in GB/s (PCIe 2.0 x16).
pub const PCIE_BANDWIDTH_GBPS: f64 = 8.0;

/// Fixed driver/setup overhead per async copy, in microseconds.
pub const COPY_OVERHEAD_US: f64 = 1.5;

/// Modeled duration of one host↔device copy of `bytes` bytes, in
/// microseconds: fixed overhead plus bytes over the interconnect.
pub fn copy_us(bytes: usize) -> f64 {
    COPY_OVERHEAD_US + bytes as f64 / (PCIE_BANDWIDTH_GBPS * 1e3)
}

/// A registry of simulated devices a batch can be sharded across.
/// Heterogeneous groups (different specs per slot) are allowed; device
/// index is the identity used by shard plans and trace track ids.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceGroup {
    devices: Vec<DeviceSpec>,
}

impl DeviceGroup {
    /// A group from explicit specs. Fails with
    /// [`SimError::InvalidPlan`] when the list is empty or any spec is
    /// internally inconsistent.
    pub fn from_specs(devices: Vec<DeviceSpec>) -> Result<Self> {
        if devices.is_empty() {
            return Err(SimError::InvalidPlan("device group is empty".into()));
        }
        for d in &devices {
            d.validate()
                .map_err(|e| SimError::InvalidPlan(format!("device {}: {e}", d.name)))?;
        }
        Ok(Self { devices })
    }

    /// A single-device group (the degenerate case sharding treats as
    /// the identity).
    pub fn single(spec: DeviceSpec) -> Self {
        Self {
            devices: vec![spec],
        }
    }

    /// `count` identical copies of `spec`. Fails when `count == 0`.
    pub fn homogeneous(spec: DeviceSpec, count: usize) -> Result<Self> {
        Self::from_specs(vec![spec; count])
    }

    /// Number of devices in the group.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Always `false` — construction rejects empty groups.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The device specs, indexed by device id.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// The first device — the one global plan decisions are derived on.
    pub fn primary(&self) -> &DeviceSpec {
        &self.devices[0]
    }

    /// Short human label: `"GTX480 x4"` or `"GTX480+GTX280"`.
    pub fn label(&self) -> String {
        let first = self.devices[0].name;
        if self.devices.iter().all(|d| d.name == first) {
            format!("{first} x{}", self.devices.len())
        } else {
            self.devices
                .iter()
                .map(|d| d.name)
                .collect::<Vec<_>>()
                .join("+")
        }
    }

    /// FNV-1a fingerprint of the group's composition: every device
    /// spec's full debug representation, in slot order. Two groups
    /// with the same ordered specs fingerprint identically, so plans
    /// keyed on this value are shareable across group instances; any
    /// spec difference (clock, SM count, shared-memory size, …) or a
    /// reordering changes the value.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for d in &self.devices {
            for b in format!("{d:?}").bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            // Slot separator so concatenation ambiguity cannot alias
            // two different compositions.
            h ^= 0x1f;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

/// Kind of one in-order stream operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOp {
    /// Host→device coefficient upload ("cudaMemcpyAsync H→D").
    CopyH2D,
    /// A kernel launch (duration from the timing model).
    Launch,
    /// Device→host solution download ("cudaMemcpyAsync D→H").
    CopyD2H,
}

/// One timestamped operation on a device stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamEvent {
    /// Operation kind.
    pub op: StreamOp,
    /// Human label (kernel or buffer name).
    pub name: String,
    /// Start on the modeled-time axis, µs (end of the previous event —
    /// streams execute in order).
    pub start_us: f64,
    /// Duration in µs.
    pub dur_us: f64,
    /// Bytes moved (0 for launches).
    pub bytes: usize,
}

/// One device's in-order stream: every recorded event starts when the
/// previous one ends, exactly like operations queued on a CUDA stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeviceStream {
    /// Recorded events, in issue order.
    pub events: Vec<StreamEvent>,
    cursor: f64,
}

impl DeviceStream {
    /// Append an operation; it starts at the stream's current
    /// completion time. Returns the recorded event.
    pub fn record(
        &mut self,
        op: StreamOp,
        name: impl Into<String>,
        dur_us: f64,
        bytes: usize,
    ) -> &StreamEvent {
        let dur_us = dur_us.max(0.0);
        let ev = StreamEvent {
            op,
            name: name.into(),
            start_us: self.cursor,
            dur_us,
            bytes,
        };
        self.cursor += dur_us;
        self.events.push(ev);
        self.events.last().expect("just pushed")
    }

    /// When the last queued operation finishes (µs).
    pub fn completion_us(&self) -> f64 {
        self.cursor
    }

    /// Block the stream until modeled time `us`: the next recorded
    /// event starts no earlier than `us`. Models a cross-stream
    /// dependency ("cudaStreamWaitEvent") — e.g. a device waiting for
    /// interface values computed on another device. No event is
    /// recorded; the wait shows up as a gap between events. A wait in
    /// the past is a no-op (streams never move backwards).
    pub fn wait_until(&mut self, us: f64) {
        self.cursor = self.cursor.max(us);
    }

    /// Total modeled kernel time on this stream (launch events only),
    /// excluding copies.
    pub fn launch_us(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| e.op == StreamOp::Launch)
            .map(|e| e.dur_us)
            .sum()
    }

    /// Total bytes moved over the interconnect (copy events only).
    pub fn copy_bytes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.op != StreamOp::Launch)
            .map(|e| e.bytes)
            .sum()
    }
}

/// One stream per device of a [`DeviceGroup`]: the completion timeline
/// of a sharded solve. Devices execute concurrently, so wall-clock is
/// the max over streams.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupTimeline {
    streams: Vec<DeviceStream>,
}

impl GroupTimeline {
    /// An empty timeline with one stream per device in `group`.
    pub fn new(group: &DeviceGroup) -> Self {
        Self {
            streams: vec![DeviceStream::default(); group.len()],
        }
    }

    /// The stream of device `device` (panics on an out-of-range index —
    /// indices come from the same group the timeline was built for).
    pub fn stream_mut(&mut self, device: usize) -> &mut DeviceStream {
        &mut self.streams[device]
    }

    /// All streams, indexed by device.
    pub fn streams(&self) -> &[DeviceStream] {
        &self.streams
    }

    /// Modeled wall-clock of the whole group: **max** completion over
    /// devices (they run concurrently), including copy events.
    pub fn wall_clock_us(&self) -> f64 {
        self.streams
            .iter()
            .map(DeviceStream::completion_us)
            .fold(0.0, f64::max)
    }

    /// Modeled kernel wall-clock: max over devices of each device's
    /// total launch time. Comparable to a single-device solve's
    /// `total_us` (which also excludes copies).
    pub fn kernel_wall_clock_us(&self) -> f64 {
        self.streams
            .iter()
            .map(DeviceStream::launch_us)
            .fold(0.0, f64::max)
    }

    /// Sum of all per-device completion times — the serialized cost the
    /// max-over-devices model is *not* (useful as a contrast in tests
    /// and reports).
    pub fn serialized_us(&self) -> f64 {
        self.streams.iter().map(DeviceStream::completion_us).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_construction_and_labels() {
        let g = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 4).unwrap();
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
        assert_eq!(g.label(), "GTX480 x4");
        assert_eq!(g.primary().name, "GTX480");

        let h =
            DeviceGroup::from_specs(vec![DeviceSpec::gtx480(), DeviceSpec::gtx280()]).unwrap();
        assert_eq!(h.label(), "GTX480+GTX280");
        assert_eq!(DeviceGroup::single(DeviceSpec::c2050()).len(), 1);
    }

    #[test]
    fn empty_or_invalid_group_is_a_typed_error() {
        assert!(matches!(
            DeviceGroup::from_specs(vec![]).unwrap_err(),
            SimError::InvalidPlan(_)
        ));
        assert!(matches!(
            DeviceGroup::homogeneous(DeviceSpec::gtx480(), 0).unwrap_err(),
            SimError::InvalidPlan(_)
        ));
        let mut bad = DeviceSpec::gtx480();
        bad.fp64_ratio = 0.0;
        assert!(matches!(
            DeviceGroup::from_specs(vec![bad]).unwrap_err(),
            SimError::InvalidPlan(_)
        ));
    }

    #[test]
    fn stream_events_are_ordered_back_to_back() {
        let mut s = DeviceStream::default();
        s.record(StreamOp::CopyH2D, "h2d:a", 10.0, 1024);
        s.record(StreamOp::Launch, "tiled_pcr", 25.0, 0);
        s.record(StreamOp::CopyD2H, "d2h:x", 5.0, 256);
        assert_eq!(s.events[0].start_us, 0.0);
        assert_eq!(s.events[1].start_us, 10.0);
        assert_eq!(s.events[2].start_us, 35.0);
        assert_eq!(s.completion_us(), 40.0);
        assert_eq!(s.launch_us(), 25.0);
        assert_eq!(s.copy_bytes(), 1280);
    }

    #[test]
    fn wall_clock_is_max_over_devices_not_sum() {
        let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 3).unwrap();
        let mut tl = GroupTimeline::new(&group);
        tl.stream_mut(0).record(StreamOp::Launch, "k", 100.0, 0);
        tl.stream_mut(1).record(StreamOp::Launch, "k", 70.0, 0);
        tl.stream_mut(2).record(StreamOp::Launch, "k", 40.0, 0);
        tl.stream_mut(2).record(StreamOp::CopyD2H, "d2h", 10.0, 64);
        assert_eq!(tl.wall_clock_us(), 100.0);
        assert_eq!(tl.kernel_wall_clock_us(), 100.0);
        assert_eq!(tl.serialized_us(), 220.0);
        assert!(tl.wall_clock_us() < tl.serialized_us());
    }

    #[test]
    fn copy_model_is_monotone_in_bytes() {
        assert!(copy_us(0) > 0.0, "fixed overhead");
        assert!(copy_us(1 << 20) < copy_us(1 << 22));
        // 8 MB at 8 GB/s = 1 ms.
        let us = copy_us(8_000_000);
        assert!((us - (1000.0 + COPY_OVERHEAD_US)).abs() < 1e-9, "{us}");
    }

    #[test]
    fn wait_until_delays_the_next_event_but_never_rewinds() {
        let mut s = DeviceStream::default();
        s.record(StreamOp::Launch, "k", 10.0, 0);
        s.wait_until(25.0);
        assert_eq!(s.completion_us(), 25.0);
        let ev = s.record(StreamOp::CopyD2H, "d2h", 5.0, 64).clone();
        assert_eq!(ev.start_us, 25.0);
        // Waits in the past are no-ops.
        s.wait_until(3.0);
        assert_eq!(s.completion_us(), 30.0);
        // No event is recorded for the wait itself.
        assert_eq!(s.events.len(), 2);
    }

    #[test]
    fn negative_durations_are_clamped() {
        let mut s = DeviceStream::default();
        s.record(StreamOp::Launch, "k", -3.0, 0);
        assert_eq!(s.completion_us(), 0.0);
    }
}
