//! Kernel sanitizer: data-race, out-of-bounds, uninitialized-read and
//! barrier-divergence detection for simulated kernels.
//!
//! The simulator executes blocks (and the lanes within a block-wide
//! memory op) *sequentially*, so a kernel that would race on real
//! hardware still produces deterministic — and plausibly correct —
//! results here. This module closes that gap, playing the role
//! `compute-sanitizer` plays on real devices:
//!
//! - **racecheck** — per-word access history for shared memory between
//!   `__syncthreads()` epochs. Two distinct lanes touching the same
//!   word with at least one write and no intervening barrier is a
//!   hazard ([`SanitizerViolation::SharedRace`]).
//! - **memcheck** — out-of-bounds indices on block-wide loads/stores,
//!   attributed to the offending lane/warp
//!   ([`SanitizerViolation::OutOfBounds`]).
//! - **initcheck** — shadow bitmaps over shared and global words;
//!   reading a word that no store (or host upload) ever wrote is
//!   reported ([`SanitizerViolation::UninitRead`]).
//! - **synccheck** — a barrier reached by a strict subset of the
//!   block's lanes ([`SanitizerViolation::BarrierDivergence`], via
//!   [`crate::exec::BlockCtx::sync_arrive`]).
//!
//! ## The access-history model
//!
//! Each shared word carries `{epoch, first writer, up to two distinct
//! readers}`. Histories are reset *lazily*: the block-wide epoch
//! counter bumps at every barrier and a word whose stamped epoch is
//! stale counts as untouched, so a barrier costs O(1), not O(shared
//! size). Within an epoch the checks are the classic pairwise hazards:
//!
//! - write by lane `L`, previous writer `W != L` → write-after-write;
//! - write by lane `L`, previous reader `R != L` → write-after-read;
//! - read by lane `L`, previous writer `W != L` → read-after-write.
//!
//! Two reader slots suffice: a third distinct reader can only form the
//! same hazard pairs an existing recorded reader already forms.
//! A word reports at most one race per epoch to keep the output
//! readable; every hazard still increments the counters in
//! [`crate::counters::SanitizerCounts`].
//!
//! Lane attribution uses the block-wide op convention: position `i` in
//! an index slice is lane `i` (kernels chunk long index lists by
//! `ctx.threads`, so the position *is* the hardware lane).

use std::collections::HashSet;
use std::fmt;

use crate::counters::SanitizerCounts;
use crate::error::SimError;

/// Which address space an access touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Per-block shared memory.
    Shared,
    /// Device global memory.
    Global,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemSpace::Shared => write!(f, "shared"),
            MemSpace::Global => write!(f, "global"),
        }
    }
}

/// Where a violating access happened: kernel, block, warp, lane and the
/// word address (element index) it touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSite {
    /// Kernel name (from the launch config).
    pub kernel: &'static str,
    /// Block index in the grid.
    pub block: usize,
    /// Warp within the block (`lane / warp_size`).
    pub warp: usize,
    /// Lane within the block-wide op (thread index in the block).
    pub lane: usize,
    /// Element index the access touched.
    pub addr: usize,
    /// Address space.
    pub space: MemSpace,
    /// Global buffer handle index (`None` for shared memory).
    pub buffer: Option<usize>,
}

impl fmt::Display for AccessSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel `{}` block {} warp {} lane {}, {} word {}",
            self.kernel, self.block, self.warp, self.lane, self.space, self.addr
        )?;
        if let Some(b) = self.buffer {
            write!(f, " (buffer {b})")?;
        }
        Ok(())
    }
}

/// The hazard ordering of a shared-memory race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// Two lanes wrote the word in one epoch.
    WriteAfterWrite,
    /// A lane read a word another lane wrote in the same epoch.
    ReadAfterWrite,
    /// A lane wrote a word another lane read in the same epoch.
    WriteAfterRead,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceKind::WriteAfterWrite => write!(f, "write-after-write"),
            RaceKind::ReadAfterWrite => write!(f, "read-after-write"),
            RaceKind::WriteAfterRead => write!(f, "write-after-read"),
        }
    }
}

/// One sanitizer finding, with full attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SanitizerViolation {
    /// Shared-memory data race: two lanes touched the same word in the
    /// same barrier epoch, at least one of them writing.
    SharedRace {
        /// The second (reporting) access.
        site: AccessSite,
        /// Hazard ordering.
        kind: RaceKind,
        /// The lane of the first access.
        other_lane: usize,
    },
    /// An index past the end of the buffer / shared allocation.
    OutOfBounds {
        /// The offending access.
        site: AccessSite,
        /// Length of the addressed region.
        len: usize,
    },
    /// A read of a word no store ever initialized.
    UninitRead {
        /// The offending access.
        site: AccessSite,
    },
    /// A barrier reached by a strict subset of the block's lanes.
    BarrierDivergence {
        /// Kernel name.
        kernel: &'static str,
        /// Block index.
        block: usize,
        /// Which barrier (0-based count within the block).
        barrier_index: u64,
        /// Lowest lane that did not arrive.
        missing_lane: usize,
        /// Lanes that arrived.
        arrived: usize,
        /// Lanes the block has.
        expected: usize,
    },
}

impl fmt::Display for SanitizerViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanitizerViolation::SharedRace {
                site,
                kind,
                other_lane,
            } => write!(f, "{kind} race at {site}, conflicting lane {other_lane}"),
            SanitizerViolation::OutOfBounds { site, len } => {
                write!(f, "out-of-bounds access at {site}, region length {len}")
            }
            SanitizerViolation::UninitRead { site } => {
                write!(f, "read of uninitialized word at {site}")
            }
            SanitizerViolation::BarrierDivergence {
                kernel,
                block,
                barrier_index,
                missing_lane,
                arrived,
                expected,
            } => write!(
                f,
                "divergent barrier {barrier_index} in kernel `{kernel}` block {block}: \
                 {arrived}/{expected} lanes arrived, lane {missing_lane} missing"
            ),
        }
    }
}

/// Per-word shared-memory access history (lazy epoch reset).
#[derive(Debug, Clone, Copy, Default)]
struct WordHist {
    /// Epoch this history belongs to; stale = untouched this epoch.
    epoch: u64,
    /// First lane that wrote the word this epoch (+1; 0 = none).
    writer: u32,
    /// First lane that read the word this epoch (+1; 0 = none).
    reader: u32,
    /// First reader distinct from `reader` (+1; 0 = none).
    reader2: u32,
    /// A race on this word was already reported this epoch.
    reported: bool,
}

/// Per-block sanitizer state, owned by [`crate::exec::BlockCtx`] when
/// the launch's [`crate::exec::ExecConfig::sanitize`] flag is set.
#[derive(Debug)]
pub struct Sanitizer {
    kernel: &'static str,
    block: usize,
    threads: usize,
    warp_size: usize,
    max_violations: usize,
    epoch: u64,
    barriers: u64,
    shared_hist: Vec<WordHist>,
    /// Init shadow for shared memory (one flag per word).
    shared_init: Vec<bool>,
    /// Global (buffer, word) pairs already reported uninitialized.
    global_uninit_seen: HashSet<(usize, usize)>,
    violations: Vec<SanitizerViolation>,
    counts: SanitizerCounts,
}

impl Sanitizer {
    /// Fresh state for one block of `kernel`.
    pub fn new(
        kernel: &'static str,
        block: usize,
        threads: usize,
        warp_size: usize,
        max_violations: usize,
    ) -> Self {
        Self {
            kernel,
            block,
            threads,
            warp_size,
            max_violations,
            // Start at 1 so zero-initialized (stale) histories never
            // match the live epoch.
            epoch: 1,
            barriers: 0,
            shared_hist: Vec::new(),
            shared_init: Vec::new(),
            global_uninit_seen: HashSet::new(),
            violations: Vec::new(),
            counts: SanitizerCounts::default(),
        }
    }

    fn site(&self, lane: usize, addr: usize, space: MemSpace, buffer: Option<usize>) -> AccessSite {
        let lane = if self.threads > 0 { lane % self.threads } else { lane };
        AccessSite {
            kernel: self.kernel,
            block: self.block,
            warp: lane / self.warp_size.max(1),
            lane,
            addr,
            space,
            buffer,
        }
    }

    fn record(&mut self, v: SanitizerViolation) {
        if self.violations.len() < self.max_violations {
            self.violations.push(v);
        }
    }

    /// Grow the tracked shared region after a `shared_alloc`.
    pub fn on_shared_alloc(&mut self, new_len: usize) {
        self.shared_hist.resize(new_len, WordHist::default());
        self.shared_init.resize(new_len, false);
    }

    /// Build the error for an out-of-bounds access (shared or global);
    /// the caller returns it, aborting the launch like the unsanitized
    /// bounds check would.
    pub fn oob(
        &mut self,
        lane: usize,
        addr: usize,
        len: usize,
        space: MemSpace,
        buffer: Option<usize>,
    ) -> SimError {
        self.counts.out_of_bounds += 1;
        let site = self.site(lane, addr, space, buffer);
        let v = SanitizerViolation::OutOfBounds { site, len };
        self.record(v.clone());
        SimError::Sanitizer(v)
    }

    /// Check one block-wide shared access (position in `idx` = lane).
    /// Bounds must already have been validated.
    pub fn shared_access(&mut self, idx: &[usize], is_write: bool) {
        for (lane, &word) in idx.iter().enumerate() {
            let lane = lane % self.threads.max(1);
            let l = lane as u32 + 1;
            let epoch = self.epoch;
            let h = &mut self.shared_hist[word];
            if h.epoch != epoch {
                *h = WordHist {
                    epoch,
                    ..WordHist::default()
                };
            }
            // Hazard detection against the recorded first accessors.
            let mut hazard: Option<(RaceKind, u32)> = None;
            if is_write {
                if h.writer != 0 && h.writer != l {
                    hazard = Some((RaceKind::WriteAfterWrite, h.writer));
                } else if h.reader != 0 && h.reader != l {
                    hazard = Some((RaceKind::WriteAfterRead, h.reader));
                } else if h.reader2 != 0 && h.reader2 != l {
                    hazard = Some((RaceKind::WriteAfterRead, h.reader2));
                }
            } else if h.writer != 0 && h.writer != l {
                hazard = Some((RaceKind::ReadAfterWrite, h.writer));
            }
            if let Some((kind, other)) = hazard {
                self.counts.shared_races += 1;
                if !self.shared_hist[word].reported {
                    self.shared_hist[word].reported = true;
                    let site = self.site(lane, word, MemSpace::Shared, None);
                    self.record(SanitizerViolation::SharedRace {
                        site,
                        kind,
                        other_lane: other as usize - 1,
                    });
                }
            }
            // Update the history and the init shadow.
            let h = &mut self.shared_hist[word];
            if is_write {
                if h.writer == 0 {
                    h.writer = l;
                }
                self.shared_init[word] = true;
            } else {
                if h.reader == 0 {
                    h.reader = l;
                } else if h.reader2 == 0 && h.reader != l {
                    h.reader2 = l;
                }
                if !self.shared_init[word] {
                    // Report once, then treat as initialized so a toy
                    // kernel re-reading the word doesn't flood.
                    self.shared_init[word] = true;
                    self.counts.uninit_reads += 1;
                    let site = self.site(lane, word, MemSpace::Shared, None);
                    self.record(SanitizerViolation::UninitRead { site });
                }
            }
        }
    }

    /// Report a read of a never-written global word (deduplicated per
    /// `(buffer, word)` within the block).
    pub fn global_uninit_read(&mut self, lane: usize, buffer: usize, word: usize) {
        if !self.global_uninit_seen.insert((buffer, word)) {
            return;
        }
        self.counts.uninit_reads += 1;
        let site = self.site(lane, word, MemSpace::Global, Some(buffer));
        self.record(SanitizerViolation::UninitRead { site });
    }

    /// A full-block `__syncthreads()`: close the epoch.
    pub fn barrier(&mut self) {
        self.epoch += 1;
        self.barriers += 1;
    }

    /// A barrier that only `arrived` lanes reached. Any missing lane is
    /// divergence (the real-hardware behavior is a hang or undefined
    /// execution). The epoch still closes so later reports stay sane.
    pub fn barrier_arrive(&mut self, arrived: &[usize]) {
        let mut seen = vec![false; self.threads];
        let mut count = 0usize;
        for &l in arrived {
            if l < self.threads && !seen[l] {
                seen[l] = true;
                count += 1;
            }
        }
        if count < self.threads {
            let missing_lane = seen.iter().position(|&s| !s).unwrap_or(0);
            self.counts.barrier_divergence += 1;
            self.record(SanitizerViolation::BarrierDivergence {
                kernel: self.kernel,
                block: self.block,
                barrier_index: self.barriers,
                missing_lane,
                arrived: count,
                expected: self.threads,
            });
        }
        self.epoch += 1;
        self.barriers += 1;
    }

    /// Violation tallies so far.
    pub fn counts(&self) -> SanitizerCounts {
        self.counts
    }

    /// Drain the recorded violations (called once per block at launch
    /// teardown).
    pub fn take_violations(&mut self) -> Vec<SanitizerViolation> {
        std::mem::take(&mut self.violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn san() -> Sanitizer {
        let mut s = Sanitizer::new("test", 0, 32, 32, 64);
        s.on_shared_alloc(64);
        s
    }

    #[test]
    fn same_lane_rewrites_are_not_races() {
        let mut s = san();
        s.shared_access(&[5], true);
        s.shared_access(&[5], true); // lane 0 again
        s.shared_access(&[5], false);
        assert_eq!(s.counts().shared_races, 0);
    }

    #[test]
    fn write_write_race_detected_with_attribution() {
        let mut s = san();
        // One op, lanes 0 and 1 both write word 7.
        s.shared_access(&[7, 7], true);
        assert_eq!(s.counts().shared_races, 1);
        match &s.take_violations()[0] {
            SanitizerViolation::SharedRace { site, kind, other_lane } => {
                assert_eq!(*kind, RaceKind::WriteAfterWrite);
                assert_eq!(site.lane, 1);
                assert_eq!(*other_lane, 0);
                assert_eq!(site.addr, 7);
            }
            v => panic!("wrong violation {v:?}"),
        }
    }

    #[test]
    fn barrier_separates_epochs() {
        let mut s = san();
        s.shared_access(&[3], true); // lane 0 writes
        s.barrier();
        s.shared_access(&[9, 3], false); // lane 1 reads after the barrier
        assert_eq!(s.counts().shared_races, 0);
    }

    #[test]
    fn read_after_write_without_barrier_races() {
        let mut s = san();
        s.shared_access(&[3], true); // lane 0 writes
        s.shared_access(&[3, 3], false); // lane 1 reads, no barrier
        assert_eq!(s.counts().shared_races, 1);
        assert!(matches!(
            s.take_violations()[0],
            SanitizerViolation::SharedRace {
                kind: RaceKind::ReadAfterWrite,
                ..
            }
        ));
    }

    #[test]
    fn write_after_read_races_even_via_second_reader() {
        let mut s = san();
        s.shared_access(&[4], true); // lane 0 initializes word 4
        s.barrier();
        s.shared_access(&[4, 4], false); // lanes 0,1 read (broadcast, fine)
        assert_eq!(s.counts().shared_races, 0);
        // Lane 0 (the *first* reader itself) writes the word back: only
        // the second recorded reader (lane 1) makes this a hazard.
        s.shared_access(&[4], true);
        assert_eq!(s.counts().shared_races, 1);
        match &s.take_violations()[0] {
            SanitizerViolation::SharedRace {
                kind, other_lane, ..
            } => {
                assert_eq!(*kind, RaceKind::WriteAfterRead);
                assert_eq!(*other_lane, 1);
            }
            v => panic!("wrong violation {v:?}"),
        }
    }

    #[test]
    fn one_report_per_word_per_epoch_but_all_counted() {
        let mut s = san();
        s.shared_access(&[2, 2, 2, 2], true); // 3 racing writers after the first
        assert_eq!(s.counts().shared_races, 3);
        assert_eq!(s.take_violations().len(), 1);
    }

    #[test]
    fn uninit_shared_read_reported_once() {
        let mut s = san();
        s.shared_access(&[11], false);
        s.shared_access(&[11], false);
        assert_eq!(s.counts().uninit_reads, 1);
        assert!(matches!(
            s.take_violations()[0],
            SanitizerViolation::UninitRead { .. }
        ));
    }

    #[test]
    fn global_uninit_dedup() {
        let mut s = san();
        s.global_uninit_read(3, 9, 100);
        s.global_uninit_read(3, 9, 100);
        s.global_uninit_read(3, 9, 101);
        assert_eq!(s.counts().uninit_reads, 2);
    }

    #[test]
    fn divergent_barrier_names_missing_lane() {
        let mut s = Sanitizer::new("div", 2, 8, 4, 64);
        s.barrier(); // full barrier 0
        s.barrier_arrive(&[0, 1, 2, 3, 5, 6, 7]); // lane 4 missing
        assert_eq!(s.counts().barrier_divergence, 1);
        match &s.take_violations()[0] {
            SanitizerViolation::BarrierDivergence {
                barrier_index,
                missing_lane,
                arrived,
                expected,
                block,
                ..
            } => {
                assert_eq!(*barrier_index, 1);
                assert_eq!(*missing_lane, 4);
                assert_eq!(*arrived, 7);
                assert_eq!(*expected, 8);
                assert_eq!(*block, 2);
            }
            v => panic!("wrong violation {v:?}"),
        }
    }

    #[test]
    fn oob_builds_attributed_error() {
        let mut s = san();
        let err = s.oob(33, 4096, 64, MemSpace::Global, Some(2));
        // lane wraps into the block (position 33 of a 32-thread block).
        match err {
            SimError::Sanitizer(SanitizerViolation::OutOfBounds { site, len }) => {
                assert_eq!(site.lane, 1);
                assert_eq!(site.warp, 0);
                assert_eq!(site.addr, 4096);
                assert_eq!(len, 64);
                assert_eq!(site.buffer, Some(2));
            }
            e => panic!("wrong error {e:?}"),
        }
        assert_eq!(s.counts().out_of_bounds, 1);
    }

    #[test]
    fn violation_cap_bounds_reports_not_counts() {
        let mut s = Sanitizer::new("cap", 0, 32, 32, 2);
        s.on_shared_alloc(32);
        for w in 0..8 {
            s.shared_access(&[w, w], true);
        }
        assert_eq!(s.counts().shared_races, 8);
        assert_eq!(s.take_violations().len(), 2);
    }

    #[test]
    fn displays_are_informative() {
        let mut s = san();
        s.shared_access(&[7, 7], true);
        let text = s.take_violations()[0].to_string();
        assert!(text.contains("write-after-write"), "{text}");
        assert!(text.contains("kernel `test`"), "{text}");
        assert!(text.contains("word 7"), "{text}");
    }
}
