//! The analytic timing model: counters → modeled microseconds.
//!
//! The model converts a launch's exact functional counters into time
//! using three first-order terms per *wave* of resident blocks, taking
//! their maximum (the classic bulk-synchronous roofline):
//!
//! 1. **Compute**: FLOPs (and shared-memory replay cycles) divided by
//!    the active SMs' arithmetic throughput at the kernel's precision.
//! 2. **Bandwidth**: segment-padded DRAM traffic divided by the
//!    *achieved* bandwidth, which Little's law caps by the in-flight
//!    request concurrency the wave's resident warps can sustain —
//!    `min(peak, warps × MLP × segment / latency)`. Low occupancy
//!    (Davidson's coarse tiles) therefore directly throttles bandwidth.
//! 3. **Latency floor**: the longest dependent-access chain of any
//!    block, `ceil(rounds / MLP) × dram_latency` — the term that makes
//!    small-M workloads flat in Fig. 12 (adding blocks doesn't lengthen
//!    the chain until bandwidth saturates).
//!
//! Kernel launch overhead is a fixed per-launch cost, which is exactly
//! what the paper's kernel fusion optimisation (Section III-C) removes.
//!
//! Absolute numbers are a model, not a measurement; the reproduction
//! targets the paper's *shapes* (crossover locations, flat regions,
//! who-wins ordering), which depend only on these first-order terms.

use crate::counters::{BlockStats, KernelStats, PhaseStats};
use crate::exec::LaunchResult;
use crate::spec::{DeviceSpec, Precision};

/// Which term bound a kernel's modeled time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// Arithmetic throughput.
    Compute,
    /// DRAM bandwidth (possibly concurrency-throttled).
    Bandwidth,
    /// Dependent-access latency chain.
    Latency,
    /// Fixed launch overhead dominates (tiny kernels).
    Launch,
}

/// Modeled time attributed to one named kernel phase.
///
/// Attribution rule: each of the kernel's three body terms (compute /
/// bandwidth / latency) is split across phases in proportion to the
/// phase's share of the counters that drive that term — flops plus
/// shared/barrier cycles for compute, global transactions for
/// bandwidth, dependent rounds for latency. The phase's headline `us`
/// splits the kernel's *body* time (total minus launch overhead) by
/// the shares of whichever term bounds the kernel, with the last phase
/// absorbing the floating-point remainder so the phase times sum to
/// the body time **exactly**. Launch overhead is a per-launch cost and
/// is deliberately not attributed to any phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Phase label (see [`crate::exec::BlockCtx::phase`]).
    pub label: &'static str,
    /// Share of the kernel's body time attributed to this phase (µs);
    /// sums exactly to `total_us - launch_us` across phases.
    pub us: f64,
    /// Compute-term share (µs).
    pub compute_us: f64,
    /// Bandwidth-term share (µs).
    pub bandwidth_us: f64,
    /// Latency-term share (µs).
    pub latency_us: f64,
    /// The phase's own dominating term.
    pub bound: BoundKind,
    /// The phase's aggregated counters (summed over blocks).
    pub stats: BlockStats,
}

/// Modeled execution time of one kernel launch, with its breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTiming {
    /// Kernel name.
    pub name: &'static str,
    /// Number of scheduling waves.
    pub waves: u32,
    /// Time attributed to compute across waves (µs).
    pub compute_us: f64,
    /// Time attributed to memory traffic across waves (µs).
    pub bandwidth_us: f64,
    /// Time attributed to exposed latency across waves (µs).
    pub latency_us: f64,
    /// Fixed launch overhead (µs).
    pub launch_us: f64,
    /// Total modeled time (µs), including launch overhead.
    pub total_us: f64,
    /// The dominating term.
    pub bound: BoundKind,
    /// Occupancy fraction achieved.
    pub occupancy_fraction: f64,
    /// Per-phase attribution of the body time (empty when the launch
    /// recorded no phase counters, e.g. hand-built stats in tests).
    pub phases: Vec<PhaseTiming>,
}

/// Convert a [`LaunchResult`] into modeled time on `spec`.
pub fn time_kernel(spec: &DeviceSpec, launch: &LaunchResult, precision: Precision) -> KernelTiming {
    let stats = &launch.stats;
    let occ = launch.occupancy;
    let concurrent_blocks = (occ.blocks_per_sm as usize * spec.num_sms as usize).max(1);

    let mut compute_cycles = 0.0f64;
    let mut bandwidth_cycles = 0.0f64;
    let mut latency_cycles = 0.0f64;

    let warps_per_block = launch
        .config
        .threads_per_block
        .div_ceil(spec.warp_size) as f64;
    let ops_per_cycle = spec.ops_per_cycle_sm(precision);
    let mlp = spec.loads_in_flight_per_warp as f64;

    let blocks = stats.blocks;
    let mut waves = 0u32;
    let mut start = 0usize;
    while start < blocks {
        let end = (start + concurrent_blocks).min(blocks);
        waves += 1;
        let wave = start..end;
        let wave_blocks = end - start;
        // The hardware scheduler spreads blocks round-robin across SMs,
        // so a wave of B blocks engages min(B, num_sms) SMs.
        let active_sms = wave_blocks.min(spec.num_sms as usize) as f64;

        // --- compute term -------------------------------------------
        let wave_flops: u64 = stats.flops_per_block[wave.clone()].iter().sum();
        // Shared-memory instructions serialize on the banks; a conflict-
        // free block-wide access costs one cycle per warp, replays add.
        let shared_fraction = wave_blocks as f64 / blocks as f64;
        let shared_cycles = (stats.total.shared_accesses as f64 * warps_per_block
            + stats.total.bank_conflict_replays as f64)
            * shared_fraction;
        let barrier_cycles =
            stats.total.barriers as f64 * shared_fraction * 20.0 / occ.blocks_per_sm as f64;
        let wave_compute =
            wave_flops as f64 / (ops_per_cycle * active_sms) + (shared_cycles + barrier_cycles) / active_sms;

        // --- bandwidth term ------------------------------------------
        let wave_traffic: f64 = {
            // Transactions are tracked in aggregate; attribute to the
            // wave by its share of useful bytes (exact when blocks are
            // homogeneous, which the solver kernels are).
            let wave_bytes: u64 = stats.bytes_per_block[wave.clone()].iter().sum();
            let total_bytes = stats.total.global_bytes().max(1);
            stats.total.global_transactions() as f64 * spec.transaction_bytes as f64
                * (wave_bytes as f64 / total_bytes as f64)
        };
        let resident_warps = occ.warps_per_sm as f64 * active_sms;
        let achievable =
            resident_warps * mlp * spec.transaction_bytes as f64 / spec.dram_latency_cycles as f64;
        let sm_share = (active_sms / spec.num_sms as f64).sqrt().max(1.0 / spec.num_sms as f64);
        let effective_bw = (spec.bytes_per_cycle() * sm_share).min(achievable.max(1e-9));
        let wave_bandwidth = wave_traffic / effective_bw;

        // --- latency floor -------------------------------------------
        let max_rounds = stats.rounds_per_block[wave.clone()]
            .iter()
            .copied()
            .max()
            .unwrap_or(0) as f64;
        let wave_latency = (max_rounds / mlp).ceil() * spec.dram_latency_cycles as f64;

        compute_cycles += wave_compute;
        bandwidth_cycles += wave_bandwidth;
        latency_cycles += wave_latency;
        start = end;
    }

    let compute_us = spec.cycles_to_us(compute_cycles);
    let bandwidth_us = spec.cycles_to_us(bandwidth_cycles);
    let latency_us = spec.cycles_to_us(latency_cycles);
    let launch_us = spec.launch_overhead_us;
    let body_us = compute_us.max(bandwidth_us).max(latency_us);
    let total_us = launch_us + body_us;

    let bound = if body_us < launch_us {
        BoundKind::Launch
    } else if body_us == compute_us {
        BoundKind::Compute
    } else if body_us == bandwidth_us {
        BoundKind::Bandwidth
    } else {
        BoundKind::Latency
    };

    let phases = attribute_phases(
        &stats.phases,
        [compute_us, bandwidth_us, latency_us],
        body_us,
        // The partition target is what callers observe: `total − launch`
        // can differ from `body_us` in the last bit, and the invariant
        // Σ phase.us == total_us − launch_us must hold exactly.
        total_us - launch_us,
        bound,
        ops_per_cycle,
        warps_per_block,
        occ.blocks_per_sm as f64,
    );

    KernelTiming {
        name: launch.name,
        waves,
        compute_us,
        bandwidth_us,
        latency_us,
        launch_us,
        total_us,
        bound,
        occupancy_fraction: occ.fraction(spec),
        phases,
    }
}

/// Split the kernel's three body terms across its phases (see
/// [`PhaseTiming`] for the attribution rule).
#[allow(clippy::too_many_arguments)]
fn attribute_phases(
    phases: &[PhaseStats],
    [compute_us, bandwidth_us, latency_us]: [f64; 3],
    body_us: f64,
    body_target: f64,
    kernel_bound: BoundKind,
    ops_per_cycle: f64,
    warps_per_block: f64,
    blocks_per_sm: f64,
) -> Vec<PhaseTiming> {
    if phases.is_empty() {
        return Vec::new();
    }
    // Per-phase proxies in the same cycle units the wave model uses, so
    // proportional shares reproduce the model's weighting.
    let compute_w: Vec<f64> = phases
        .iter()
        .map(|p| {
            p.stats.flops as f64 / ops_per_cycle
                + p.stats.shared_accesses as f64 * warps_per_block
                + p.stats.bank_conflict_replays as f64
                + p.stats.barriers as f64 * 20.0 / blocks_per_sm
        })
        .collect();
    let bandwidth_w: Vec<f64> = phases
        .iter()
        .map(|p| p.stats.global_transactions() as f64)
        .collect();
    let latency_w: Vec<f64> = phases
        .iter()
        .map(|p| p.stats.global_access_rounds as f64)
        .collect();
    let share = |w: &[f64], i: usize| {
        let sum: f64 = w.iter().sum();
        if sum > 0.0 {
            w[i] / sum
        } else {
            1.0 / w.len() as f64
        }
    };
    // body_us was assigned as the max of the three terms, so exact
    // equality identifies the bounding term's weights.
    let body_w = if body_us == compute_us {
        &compute_w
    } else if body_us == bandwidth_us {
        &bandwidth_w
    } else {
        &latency_w
    };
    let mut out = Vec::with_capacity(phases.len());
    let mut attributed = 0.0f64;
    for (i, p) in phases.iter().enumerate() {
        let c = compute_us * share(&compute_w, i);
        let b = bandwidth_us * share(&bandwidth_w, i);
        let l = latency_us * share(&latency_w, i);
        // Last phase absorbs the fp remainder: Σ us == body_target
        // (i.e. total_us − launch_us) exactly.
        let us = if i + 1 == phases.len() {
            body_target - attributed
        } else {
            body_target * share(body_w, i)
        };
        attributed += us;
        let bound = if c > 0.0 && c >= b && c >= l {
            BoundKind::Compute
        } else if b > 0.0 && b >= l {
            BoundKind::Bandwidth
        } else if l > 0.0 {
            BoundKind::Latency
        } else {
            kernel_bound
        };
        out.push(PhaseTiming {
            label: p.label,
            us,
            compute_us: c,
            bandwidth_us: b,
            latency_us: l,
            bound,
            stats: p.stats,
        });
    }
    // When the absorbing phase's true share is ~0, rounding in the
    // earlier shares can leave it a few ulps negative. Zero it and move
    // the absorber role one phase earlier (trailing zeros add exactly,
    // so the left fold still lands on body_target).
    let mut i = out.len();
    while i >= 2 && out[i - 1].us < 0.0 {
        out[i - 1].us = 0.0;
        let prefix: f64 = out[..i - 2].iter().map(|p| p.us).sum();
        out[i - 2].us = body_target - prefix;
        i -= 1;
    }
    if let Some(first) = out.first_mut() {
        first.us = first.us.max(0.0);
    }
    out
}

/// Helper: total modeled time of a sequence of dependent kernel
/// launches (each pays its own launch overhead — what fusion removes).
pub fn sequence_us(timings: &[KernelTiming]) -> f64 {
    timings.iter().map(|t| t.total_us).sum()
}

/// Summary statistics that benches print alongside times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSummary {
    /// DRAM traffic in MiB (segment-padded).
    pub traffic_mib: f64,
    /// Coalescing efficiency in `[0, 1]`.
    pub coalescing: f64,
    /// FLOPs in millions.
    pub mflops: f64,
}

impl TrafficSummary {
    /// Extract from launch counters.
    pub fn from_stats(spec: &DeviceSpec, stats: &KernelStats) -> Self {
        TrafficSummary {
            traffic_mib: stats.total.global_transactions() as f64 * spec.transaction_bytes as f64
                / (1024.0 * 1024.0),
            coalescing: stats
                .total
                .coalescing_efficiency(spec.transaction_bytes as u64),
            mflops: stats.total.flops as f64 / 1e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{BlockStats, KernelStats};
    use crate::exec::{LaunchConfig, LaunchResult};
    use crate::occupancy::occupancy;

    fn fake_launch(
        spec: &DeviceSpec,
        blocks: usize,
        threads: u32,
        shared_bytes: usize,
        per_block: BlockStats,
    ) -> LaunchResult {
        let mut stats = KernelStats {
            blocks,
            threads_per_block: threads,
            ..Default::default()
        };
        for _ in 0..blocks {
            stats.rounds_per_block.push(per_block.global_access_rounds);
            stats.flops_per_block.push(per_block.flops);
            stats.bytes_per_block.push(per_block.global_bytes());
            stats.total.merge(&per_block);
        }
        LaunchResult {
            name: "fake",
            stats,
            occupancy: occupancy(spec, threads, shared_bytes, 32).unwrap(),
            shared_bytes_per_block: shared_bytes,
            config: LaunchConfig::new("fake", blocks, threads),
            violations: Vec::new(),
            plan: None,
        }
    }

    fn gtx480() -> DeviceSpec {
        DeviceSpec::gtx480()
    }

    fn bandwidth_block(kb: u64) -> BlockStats {
        BlockStats {
            flops: 10,
            global_load_transactions: kb * 1024 / 128,
            global_load_bytes: kb * 1024,
            global_access_rounds: 4,
            ..Default::default()
        }
    }

    #[test]
    fn tiny_kernel_is_launch_bound() {
        let spec = gtx480();
        let lr = fake_launch(
            &spec,
            1,
            32,
            0,
            BlockStats {
                flops: 100,
                global_access_rounds: 1,
                global_load_transactions: 1,
                global_load_bytes: 128,
                ..Default::default()
            },
        );
        let t = time_kernel(&spec, &lr, Precision::F32);
        assert_eq!(t.bound, BoundKind::Launch);
        assert!(t.total_us >= spec.launch_overhead_us);
    }

    #[test]
    fn saturated_grid_is_bandwidth_bound_and_scales_linearly() {
        let spec = gtx480();
        let t1 = time_kernel(
            &spec,
            &fake_launch(&spec, 4096, 256, 0, bandwidth_block(64)),
            Precision::F64,
        );
        let t2 = time_kernel(
            &spec,
            &fake_launch(&spec, 8192, 256, 0, bandwidth_block(64)),
            Precision::F64,
        );
        assert_eq!(t1.bound, BoundKind::Bandwidth);
        let ratio = (t2.total_us - t2.launch_us) / (t1.total_us - t1.launch_us);
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn few_blocks_with_long_chains_are_latency_bound_and_flat() {
        let spec = gtx480();
        let chainy = BlockStats {
            flops: 1000,
            global_load_transactions: 1024,
            global_load_bytes: 1024 * 128,
            global_access_rounds: 1024, // long dependent chain
            ..Default::default()
        };
        let t8 = time_kernel(&spec, &fake_launch(&spec, 8, 64, 0, chainy), Precision::F64);
        let t64 = time_kernel(&spec, &fake_launch(&spec, 64, 64, 0, chainy), Precision::F64);
        assert_eq!(t8.bound, BoundKind::Latency);
        // Same wave count, same chain: flat region.
        assert!((t8.total_us - t64.total_us).abs() / t8.total_us < 0.05);
    }

    #[test]
    fn fp64_compute_slower_than_fp32() {
        let spec = gtx480();
        let hot = BlockStats {
            flops: 4_000_000,
            global_load_transactions: 8,
            global_load_bytes: 1024,
            global_access_rounds: 2,
            ..Default::default()
        };
        let lr = fake_launch(&spec, 120, 256, 0, hot);
        let t32 = time_kernel(&spec, &lr, Precision::F32);
        let t64 = time_kernel(&spec, &lr, Precision::F64);
        assert_eq!(t64.bound, BoundKind::Compute);
        assert!(t64.compute_us > 4.0 * t32.compute_us);
    }

    #[test]
    fn low_occupancy_throttles_bandwidth() {
        let spec = gtx480();
        // Same traffic; one config hogs shared memory (1 block/SM,
        // Davidson-style), the other runs 8 blocks/SM.
        let blk = bandwidth_block(256);
        let coarse = time_kernel(
            &spec,
            &fake_launch(&spec, 120, 128, 40 * 1024, blk),
            Precision::F64,
        );
        let fine = time_kernel(
            &spec,
            &fake_launch(&spec, 120, 128, 5 * 1024, blk),
            Precision::F64,
        );
        assert!(
            coarse.total_us > 1.5 * fine.total_us,
            "coarse {} vs fine {}",
            coarse.total_us,
            fine.total_us
        );
    }

    #[test]
    fn more_waves_more_time() {
        let spec = gtx480();
        let blk = bandwidth_block(32);
        let one_wave = time_kernel(&spec, &fake_launch(&spec, 120, 256, 0, blk), Precision::F32);
        let four_waves =
            time_kernel(&spec, &fake_launch(&spec, 480, 256, 0, blk), Precision::F32);
        assert!(four_waves.waves >= 4 * one_wave.waves);
        assert!(four_waves.total_us > 2.0 * one_wave.total_us);
    }

    #[test]
    fn sequence_sums_launches() {
        let spec = gtx480();
        let lr = fake_launch(&spec, 15, 32, 0, bandwidth_block(1));
        let t = time_kernel(&spec, &lr, Precision::F32);
        let seq = sequence_us(&[t.clone(), t.clone()]);
        assert!((seq - 2.0 * t.total_us).abs() < 1e-9);
        // Two separate launches pay two overheads — fusing into one
        // kernel would save one.
        assert!(seq >= 2.0 * spec.launch_overhead_us);
    }

    #[test]
    fn phase_attribution_sums_exactly_to_body_time() {
        use crate::counters::PhaseStats;
        let spec = gtx480();
        let mut lr = fake_launch(&spec, 4096, 256, 0, bandwidth_block(64));
        // Split the totals 3-way: a load-heavy phase, a compute phase,
        // and a small store phase.
        let t = &lr.stats.total;
        let third = BlockStats {
            flops: t.flops / 2,
            global_load_transactions: t.global_load_transactions / 4,
            global_load_bytes: t.global_load_bytes / 4,
            global_access_rounds: t.global_access_rounds / 2,
            ..Default::default()
        };
        let mut first = *t;
        first.flops -= third.flops;
        first.global_load_transactions -= third.global_load_transactions;
        first.global_load_bytes -= third.global_load_bytes;
        first.global_access_rounds -= third.global_access_rounds;
        lr.stats.phases = vec![
            PhaseStats { label: "load", stats: first },
            PhaseStats { label: "mid", stats: BlockStats::default() },
            PhaseStats { label: "store", stats: third },
        ];
        let timing = time_kernel(&spec, &lr, Precision::F64);
        assert_eq!(timing.phases.len(), 3);
        let sum: f64 = timing.phases.iter().map(|p| p.us).sum();
        // Bit-exact by construction (last phase absorbs the remainder).
        assert_eq!(sum, timing.total_us - timing.launch_us);
        assert!(timing.phases[0].us > timing.phases[2].us);
        // The idle middle phase gets no body time to speak of and
        // inherits the kernel bound.
        assert_eq!(timing.phases[1].bound, timing.bound);
        assert_eq!(timing.phases[0].stats.flops, first.flops);
    }

    #[test]
    fn phaseless_stats_produce_no_phase_timings() {
        let spec = gtx480();
        let lr = fake_launch(&spec, 16, 256, 0, bandwidth_block(4));
        assert!(time_kernel(&spec, &lr, Precision::F32).phases.is_empty());
    }

    #[test]
    fn traffic_summary() {
        let spec = gtx480();
        let lr = fake_launch(&spec, 4, 256, 0, bandwidth_block(128));
        let s = TrafficSummary::from_stats(&spec, &lr.stats);
        assert!((s.traffic_mib - 0.5).abs() < 1e-9);
        assert!((s.coalescing - 1.0).abs() < 1e-9);
        assert!((s.mflops - 4e-5).abs() < 1e-9);
    }
}
