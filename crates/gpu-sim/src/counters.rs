//! Instrumentation counters collected during functional execution.

/// Sanitizer violation tallies (all zero when the sanitizer is off, or
/// when the kernel is clean). Unlike the capped violation *reports* in
/// [`crate::exec::LaunchResult::violations`], these count every hazard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SanitizerCounts {
    /// Shared-memory data races (two lanes, same word, ≥1 write, no
    /// intervening barrier).
    pub shared_races: u64,
    /// Out-of-bounds lanes in block-wide loads/stores.
    pub out_of_bounds: u64,
    /// Reads of never-written shared/global words.
    pub uninit_reads: u64,
    /// Barriers reached by a strict subset of the block's lanes.
    pub barrier_divergence: u64,
}

impl SanitizerCounts {
    /// Elementwise sum.
    pub fn merge(&mut self, o: &SanitizerCounts) {
        self.shared_races += o.shared_races;
        self.out_of_bounds += o.out_of_bounds;
        self.uninit_reads += o.uninit_reads;
        self.barrier_divergence += o.barrier_divergence;
    }

    /// Total violations of every class.
    pub fn total(&self) -> u64 {
        self.shared_races + self.out_of_bounds + self.uninit_reads + self.barrier_divergence
    }

    /// `true` when no violation of any class was counted.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

/// Per-block execution counters, filled in by [`crate::exec::BlockCtx`]
/// as the kernel runs and consumed by the timing model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Arithmetic operations (FLOPs) performed by the block.
    pub flops: u64,
    /// Global-memory load transactions (128-byte segments touched).
    pub global_load_transactions: u64,
    /// Global-memory store transactions.
    pub global_store_transactions: u64,
    /// Useful bytes loaded from global memory (requested, not segment-
    /// padded — the ratio to transactions × segment measures coalescing
    /// efficiency).
    pub global_load_bytes: u64,
    /// Useful bytes stored to global memory.
    pub global_store_bytes: u64,
    /// Warp-wide global access *instructions* issued (dependent rounds
    /// for the latency model).
    pub global_access_rounds: u64,
    /// Shared-memory accesses (warp-wide instructions).
    pub shared_accesses: u64,
    /// Extra shared-memory cycles from bank conflicts (replays).
    pub bank_conflict_replays: u64,
    /// `__syncthreads()` barriers executed.
    pub barriers: u64,
    /// Peak shared memory the block allocated, in bytes.
    pub shared_bytes_peak: u64,
    /// Sanitizer violation tallies (zero when the sanitizer is off).
    pub sanitizer: SanitizerCounts,
}

impl BlockStats {
    /// Elementwise sum (for aggregating a kernel's blocks); peak fields
    /// take the max.
    pub fn merge(&mut self, o: &BlockStats) {
        self.flops += o.flops;
        self.global_load_transactions += o.global_load_transactions;
        self.global_store_transactions += o.global_store_transactions;
        self.global_load_bytes += o.global_load_bytes;
        self.global_store_bytes += o.global_store_bytes;
        self.global_access_rounds += o.global_access_rounds;
        self.shared_accesses += o.shared_accesses;
        self.bank_conflict_replays += o.bank_conflict_replays;
        self.barriers += o.barriers;
        self.shared_bytes_peak = self.shared_bytes_peak.max(o.shared_bytes_peak);
        self.sanitizer.merge(&o.sanitizer);
    }

    /// Total global transactions (loads + stores).
    pub fn global_transactions(&self) -> u64 {
        self.global_load_transactions + self.global_store_transactions
    }

    /// Total useful global traffic in bytes.
    pub fn global_bytes(&self) -> u64 {
        self.global_load_bytes + self.global_store_bytes
    }

    /// Fraction of transferred segment bytes that were actually
    /// requested: 1.0 = perfectly coalesced, → 1/warp_size for fully
    /// strided access.
    pub fn coalescing_efficiency(&self, segment_bytes: u64) -> f64 {
        let moved = self.global_transactions() * segment_bytes;
        if moved == 0 {
            1.0
        } else {
            (self.global_bytes() as f64 / moved as f64).min(1.0)
        }
    }
}

/// Counters of one named kernel phase, aggregated across blocks.
///
/// Phases are declared by [`crate::exec::BlockCtx::phase`]; activity
/// before the first explicit label lands in the reserved
/// [`PRELUDE_PHASE`]. The invariant that keeps the breakdown honest:
/// the summable fields of all phases add up *exactly* to
/// [`KernelStats::total`] (peaks take the max) — see
/// [`KernelStats::phase_sum_mismatches`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseStats {
    /// Phase label (first [`crate::exec::BlockCtx::phase`] argument, or
    /// [`PRELUDE_PHASE`]).
    pub label: &'static str,
    /// Counters accumulated while this phase was current, summed over
    /// blocks. `sanitizer` tallies are whole-block and stay zero here.
    pub stats: BlockStats,
}

/// Reserved label for counters accumulated before the first explicit
/// [`crate::exec::BlockCtx::phase`] call (shared-memory carving,
/// address setup, …).
pub const PRELUDE_PHASE: &str = "prelude";

/// Whole-kernel statistics: aggregate counters plus per-block summaries
/// the wave scheduler needs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// Sum over all blocks.
    pub total: BlockStats,
    /// Per-phase breakdown of `total`, in first-encounter order across
    /// the launch (re-entering a label merges into its entry).
    pub phases: Vec<PhaseStats>,
    /// Per-block dependent-round counts (index = block id).
    pub rounds_per_block: Vec<u64>,
    /// Per-block flop counts.
    pub flops_per_block: Vec<u64>,
    /// Per-block global bytes.
    pub bytes_per_block: Vec<u64>,
    /// Blocks launched.
    pub blocks: usize,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl KernelStats {
    /// Merge one block's per-phase counters into the kernel-level
    /// breakdown (label-keyed, first-encounter order).
    pub fn merge_block_phases(&mut self, block_phases: &[PhaseStats]) {
        for ph in block_phases {
            match self.phases.iter_mut().find(|p| p.label == ph.label) {
                Some(p) => p.stats.merge(&ph.stats),
                None => self.phases.push(ph.clone()),
            }
        }
    }

    /// Cross-check the phase attribution invariant: every summable
    /// counter summed over `phases` must equal its value in `total`
    /// exactly, and the per-phase shared peaks must max to the total
    /// peak. Returns one human-readable line per violated counter
    /// (empty = exact). Sanitizer tallies are whole-block (set after
    /// the block ran) and are excluded.
    pub fn phase_sum_mismatches(&self) -> Vec<String> {
        let mut sum = BlockStats::default();
        for ph in &self.phases {
            sum.merge(&ph.stats);
        }
        let mut out = Vec::new();
        let mut chk = |name: &str, got: u64, want: u64| {
            if got != want {
                out.push(format!("{name}: phases sum to {got}, total is {want}"));
            }
        };
        chk("flops", sum.flops, self.total.flops);
        chk(
            "global_load_transactions",
            sum.global_load_transactions,
            self.total.global_load_transactions,
        );
        chk(
            "global_store_transactions",
            sum.global_store_transactions,
            self.total.global_store_transactions,
        );
        chk("global_load_bytes", sum.global_load_bytes, self.total.global_load_bytes);
        chk(
            "global_store_bytes",
            sum.global_store_bytes,
            self.total.global_store_bytes,
        );
        chk(
            "global_access_rounds",
            sum.global_access_rounds,
            self.total.global_access_rounds,
        );
        chk("shared_accesses", sum.shared_accesses, self.total.shared_accesses);
        chk(
            "bank_conflict_replays",
            sum.bank_conflict_replays,
            self.total.bank_conflict_replays,
        );
        chk("barriers", sum.barriers, self.total.barriers);
        if sum.shared_bytes_peak != self.total.shared_bytes_peak {
            out.push(format!(
                "shared_bytes_peak: phases max to {}, total is {}",
                sum.shared_bytes_peak, self.total.shared_bytes_peak
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = BlockStats {
            flops: 10,
            global_load_transactions: 2,
            global_store_transactions: 1,
            global_load_bytes: 100,
            global_store_bytes: 50,
            global_access_rounds: 3,
            shared_accesses: 4,
            bank_conflict_replays: 1,
            barriers: 2,
            shared_bytes_peak: 1024,
            sanitizer: SanitizerCounts::default(),
        };
        let b = BlockStats {
            flops: 5,
            shared_bytes_peak: 2048,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.flops, 15);
        assert_eq!(a.shared_bytes_peak, 2048);
        assert_eq!(a.global_transactions(), 3);
        assert_eq!(a.global_bytes(), 150);
    }

    #[test]
    fn sanitizer_counts_merge_and_total() {
        let mut a = SanitizerCounts {
            shared_races: 1,
            out_of_bounds: 2,
            uninit_reads: 3,
            barrier_divergence: 4,
        };
        assert!(!a.is_clean());
        assert_eq!(a.total(), 10);
        a.merge(&a.clone());
        assert_eq!(a.total(), 20);
        assert!(SanitizerCounts::default().is_clean());
    }

    #[test]
    fn phase_merge_and_sum_check() {
        let mut ks = KernelStats {
            total: BlockStats {
                flops: 30,
                barriers: 3,
                shared_bytes_peak: 512,
                ..Default::default()
            },
            ..Default::default()
        };
        let block = [
            PhaseStats {
                label: PRELUDE_PHASE,
                stats: BlockStats {
                    shared_bytes_peak: 512,
                    ..Default::default()
                },
            },
            PhaseStats {
                label: "forward",
                stats: BlockStats {
                    flops: 10,
                    barriers: 1,
                    shared_bytes_peak: 512,
                    ..Default::default()
                },
            },
        ];
        ks.merge_block_phases(&block);
        ks.merge_block_phases(&[PhaseStats {
            label: "forward",
            stats: BlockStats {
                flops: 20,
                barriers: 2,
                shared_bytes_peak: 512,
                ..Default::default()
            },
        }]);
        assert_eq!(ks.phases.len(), 2);
        assert_eq!(ks.phases[1].stats.flops, 30);
        assert_eq!(ks.phase_sum_mismatches(), Vec::<String>::new());
        ks.total.flops += 1;
        let bad = ks.phase_sum_mismatches();
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("flops"), "{bad:?}");
    }

    #[test]
    fn coalescing_efficiency_bounds() {
        let s = BlockStats {
            global_load_transactions: 1,
            global_load_bytes: 128,
            ..Default::default()
        };
        assert_eq!(s.coalescing_efficiency(128), 1.0);
        let bad = BlockStats {
            global_load_transactions: 32,
            global_load_bytes: 128,
            ..Default::default()
        };
        assert!((bad.coalescing_efficiency(128) - 128.0 / 4096.0).abs() < 1e-12);
        assert_eq!(BlockStats::default().coalescing_efficiency(128), 1.0);
    }
}
