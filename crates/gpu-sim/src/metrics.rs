//! Typed metrics registry: counters, gauges and fixed-bucket
//! histograms organized into labeled families, with deterministic
//! snapshots (schema `tridiag.metrics/v1`).
//!
//! Everything lives on the modeled axes the rest of the workspace
//! uses — counts are exact `u64`s, accumulated times are `f64`
//! microseconds added in a defined order — so a snapshot is a pure
//! function of the recorded history: same history, byte-identical
//! JSON. Families and labels are stored in `BTreeMap`s, making the
//! snapshot order independent of insertion order (and therefore of
//! thread interleavings that produce the same per-label totals).
//!
//! The registry deliberately has no clock, no sampling and no
//! background aggregation: callers record facts, [`MetricsRegistry::to_json`]
//! reports them verbatim. Exact-accounting cross-checks (e.g. the
//! solve service's "attributed time partitions report totals
//! bit-exactly") are the caller's contract, built *on* gauges whose
//! additions replay the same f64 operations as the report they mirror.

use std::collections::BTreeMap;

use crate::json::schema::Check;
use crate::json::Json;

/// Schema identifier emitted by [`MetricsRegistry::to_json`].
pub const METRICS_SCHEMA: &str = "tridiag.metrics/v1";

/// Default histogram bucket bounds (µs) used when a family is observed
/// before [`MetricsRegistry::declare_histogram`] configured it.
pub const DEFAULT_BOUNDS: &[f64] = &[10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0];

/// A fixed-bucket histogram: `counts[i]` tallies observations `v <=
/// bounds[i]` (first matching bucket); `counts[bounds.len()]` is the
/// overflow bucket. `count`/`sum` aggregate all observations, with
/// `sum` accumulated in observation order.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries; the
    /// last is the overflow bucket).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (f64, observation order).
    pub sum: f64,
}

impl Histogram {
    /// An empty histogram over `bounds` (must be ascending).
    pub fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += v;
    }
}

/// The registry: three kinds of instrument, each a two-level
/// `family -> label -> value` map. See the module docs for the
/// determinism contract.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, BTreeMap<String, u64>>,
    gauges: BTreeMap<String, BTreeMap<String, f64>>,
    bounds: BTreeMap<String, Vec<f64>>,
    histograms: BTreeMap<String, BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increment counter `family/label` by 1.
    pub fn inc(&mut self, family: &str, label: &str) {
        self.add(family, label, 1);
    }

    /// Increment counter `family/label` by `n`.
    pub fn add(&mut self, family: &str, label: &str, n: u64) {
        *self
            .counters
            .entry(family.to_string())
            .or_default()
            .entry(label.to_string())
            .or_insert(0) += n;
    }

    /// Read counter `family/label` (0 when never incremented).
    pub fn counter(&self, family: &str, label: &str) -> u64 {
        self.counters
            .get(family)
            .and_then(|m| m.get(label))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of every label in counter family `family`.
    pub fn counter_total(&self, family: &str) -> u64 {
        self.counters
            .get(family)
            .map(|m| m.values().sum())
            .unwrap_or(0)
    }

    /// Set gauge `family/label` to `v`, replacing any prior value.
    pub fn set_gauge(&mut self, family: &str, label: &str, v: f64) {
        self.gauges
            .entry(family.to_string())
            .or_default()
            .insert(label.to_string(), v);
    }

    /// Add `v` to gauge `family/label` (starts at 0.0). Accumulation
    /// order is the caller's contract — exact-accounting cross-checks
    /// replay the same additions in the same order.
    pub fn add_gauge(&mut self, family: &str, label: &str, v: f64) {
        *self
            .gauges
            .entry(family.to_string())
            .or_default()
            .entry(label.to_string())
            .or_insert(0.0) += v;
    }

    /// Read gauge `family/label` (0.0 when never set).
    pub fn gauge(&self, family: &str, label: &str) -> f64 {
        self.gauges
            .get(family)
            .and_then(|m| m.get(label))
            .copied()
            .unwrap_or(0.0)
    }

    /// Fix the bucket bounds for histogram family `family`. Must be
    /// called before the family's first [`observe`](Self::observe);
    /// undeclared families fall back to [`DEFAULT_BOUNDS`].
    pub fn declare_histogram(&mut self, family: &str, bounds: &[f64]) {
        self.bounds.insert(family.to_string(), bounds.to_vec());
    }

    /// Record one observation into histogram `family/label`.
    pub fn observe(&mut self, family: &str, label: &str, v: f64) {
        let bounds = self
            .bounds
            .get(family)
            .cloned()
            .unwrap_or_else(|| DEFAULT_BOUNDS.to_vec());
        self.histograms
            .entry(family.to_string())
            .or_default()
            .entry(label.to_string())
            .or_insert_with(|| Histogram::new(&bounds))
            .observe(v);
    }

    /// The histogram at `family/label`, if anything was observed.
    pub fn histogram(&self, family: &str, label: &str) -> Option<&Histogram> {
        self.histograms.get(family).and_then(|m| m.get(label))
    }

    /// Counter families with per-label values, sorted, for reports.
    pub fn counter_families(&self) -> impl Iterator<Item = (&str, &BTreeMap<String, u64>)> {
        self.counters.iter().map(|(f, m)| (f.as_str(), m))
    }

    /// Gauge families with per-label values, sorted, for reports.
    pub fn gauge_families(&self) -> impl Iterator<Item = (&str, &BTreeMap<String, f64>)> {
        self.gauges.iter().map(|(f, m)| (f.as_str(), m))
    }

    /// Histogram families with per-label histograms, sorted, for
    /// reports.
    pub fn histogram_families(&self) -> impl Iterator<Item = (&str, &BTreeMap<String, Histogram>)> {
        self.histograms.iter().map(|(f, m)| (f.as_str(), m))
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Deterministic snapshot (schema [`METRICS_SCHEMA`]): families and
    /// labels in lexicographic order, values verbatim.
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(family, labels)| {
                Json::Obj(vec![
                    ("family".into(), Json::str(family.clone())),
                    (
                        "points".into(),
                        Json::Arr(
                            labels
                                .iter()
                                .map(|(label, v)| {
                                    Json::Obj(vec![
                                        ("label".into(), Json::str(label.clone())),
                                        ("value".into(), Json::num(*v as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(family, labels)| {
                Json::Obj(vec![
                    ("family".into(), Json::str(family.clone())),
                    (
                        "points".into(),
                        Json::Arr(
                            labels
                                .iter()
                                .map(|(label, v)| {
                                    Json::Obj(vec![
                                        ("label".into(), Json::str(label.clone())),
                                        ("value".into(), Json::num(*v)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(family, labels)| {
                let points = labels
                    .iter()
                    .map(|(label, h)| {
                        Json::Obj(vec![
                            ("label".into(), Json::str(label.clone())),
                            (
                                "bounds".into(),
                                Json::Arr(h.bounds.iter().map(|&b| Json::num(b)).collect()),
                            ),
                            (
                                "counts".into(),
                                Json::Arr(h.counts.iter().map(|&c| Json::num(c as f64)).collect()),
                            ),
                            ("count".into(), Json::num(h.count as f64)),
                            ("sum".into(), Json::num(h.sum)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("family".into(), Json::str(family.clone())),
                    ("points".into(), Json::Arr(points)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::str(METRICS_SCHEMA)),
            ("counters".into(), Json::Arr(counters)),
            ("gauges".into(), Json::Arr(gauges)),
            ("histograms".into(), Json::Arr(histograms)),
        ])
    }
}

/// Validate a parsed `tridiag.metrics/v1` snapshot. Field shapes via
/// [`Check`], plus the histogram partition invariant: every point's
/// `counts` has `bounds.len() + 1` entries summing exactly to `count`,
/// with strictly ascending bounds. Returns every problem found
/// (empty = valid).
pub fn validate_metrics_json(doc: &Json) -> Vec<String> {
    let mut c = Check::new(doc);
    c.schema(METRICS_SCHEMA);
    for section in ["counters", "gauges", "histograms"] {
        let families = c.req_arr(section);
        for (i, fam) in families.iter().enumerate() {
            let mut fc = c.child(fam, format!("{section}[{i}] "));
            fc.req_str("family");
            let points = fc.req_arr("points");
            for (j, p) in points.iter().enumerate() {
                let mut pc = fc.child(p, format!("points[{j}] "));
                pc.req_str("label");
                match section {
                    "counters" => {
                        pc.req_uint("value");
                    }
                    "gauges" => {
                        pc.req_num("value");
                    }
                    _ => {
                        let bounds: Vec<f64> = pc
                            .req_arr("bounds")
                            .iter()
                            .filter_map(Json::as_num)
                            .collect();
                        pc.ensure(
                            bounds.windows(2).all(|w| w[0] < w[1]),
                            "histogram bounds are not strictly ascending",
                        );
                        let counts: Vec<f64> = pc
                            .req_arr("counts")
                            .iter()
                            .filter_map(Json::as_num)
                            .collect();
                        pc.ensure(
                            counts.len() == bounds.len() + 1,
                            format!(
                                "counts has {} entries, expected bounds + overflow = {}",
                                counts.len(),
                                bounds.len() + 1
                            ),
                        );
                        if let Some(count) = pc.req_uint("count") {
                            let bucket_sum: f64 = counts.iter().sum();
                            pc.ensure(
                                bucket_sum == count as f64,
                                format!("bucket counts sum to {bucket_sum}, count says {count}"),
                            );
                        }
                        pc.req_num("sum");
                    }
                }
                fc.absorb(pc);
            }
            c.absorb(fc);
        }
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn snapshot_is_insertion_order_independent() {
        let mut a = MetricsRegistry::new();
        a.inc("requests", "admitted");
        a.inc("cache", "hit");
        a.observe("latency_us", "f64", 12.0);
        let mut b = MetricsRegistry::new();
        b.observe("latency_us", "f64", 12.0);
        b.inc("cache", "hit");
        b.inc("requests", "admitted");
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }

    #[test]
    fn histogram_buckets_partition_count() {
        let mut m = MetricsRegistry::new();
        m.declare_histogram("size", &[1.0, 4.0, 16.0]);
        for v in [0.5, 1.0, 3.0, 20.0, 100.0] {
            m.observe("size", "all", v);
        }
        let h = m.histogram("size", "all").unwrap();
        assert_eq!(h.counts, vec![2, 1, 0, 2]);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 0.5 + 1.0 + 3.0 + 20.0 + 100.0);
        assert!(validate_metrics_json(&m.to_json()).is_empty());
    }

    #[test]
    fn snapshot_round_trips_and_validates() {
        let mut m = MetricsRegistry::new();
        m.add("requests", "admitted", 7);
        m.set_gauge("clock_us", "device_free", 123.25);
        m.add_gauge("attributed_us", "queue", 1.5);
        m.add_gauge("attributed_us", "queue", 2.25);
        m.observe("latency_us", "f32", 999.0);
        let text = m.to_json().to_string();
        let doc = parse(&text).unwrap();
        assert!(validate_metrics_json(&doc).is_empty());
        assert_eq!(m.gauge("attributed_us", "queue"), 3.75);
        assert_eq!(m.counter_total("requests"), 7);
    }

    #[test]
    fn validator_rejects_corrupt_snapshots() {
        let mut m = MetricsRegistry::new();
        m.observe("size", "all", 3.0);
        let text = m.to_json().to_string();
        // Corrupt the bucket counts so they no longer sum to count.
        let bad = text.replace("\"count\":1", "\"count\":2");
        let problems = validate_metrics_json(&parse(&bad).unwrap());
        assert!(
            problems.iter().any(|p| p.contains("bucket counts sum")),
            "{problems:?}"
        );
        // Wrong schema string.
        let bad = text.replace(METRICS_SCHEMA, "tridiag.metrics/v0");
        assert!(!validate_metrics_json(&parse(&bad).unwrap()).is_empty());
        // Counter value must be a non-negative integer.
        let doc = parse(
            r#"{"schema":"tridiag.metrics/v1","counters":[{"family":"x","points":[{"label":"a","value":-2}]}],"gauges":[],"histograms":[]}"#,
        )
        .unwrap();
        assert!(!validate_metrics_json(&doc).is_empty());
    }
}
