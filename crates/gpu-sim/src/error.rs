//! Error types for the GPU simulator.

use crate::sanitizer::SanitizerViolation;
use std::fmt;

/// Errors raised by kernel launches and in-kernel memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A launch configuration the device cannot run (too many threads
    /// per block, zero-sized grid, shared memory over capacity, ...).
    InvalidLaunch(String),
    /// A global-memory access outside the buffer.
    GlobalOutOfBounds {
        /// Buffer handle index.
        buffer: usize,
        /// Offending element index.
        index: usize,
        /// Buffer length.
        len: usize,
    },
    /// A shared-memory access outside the allocation.
    SharedOutOfBounds {
        /// Offending element index.
        index: usize,
        /// Shared allocation length.
        len: usize,
    },
    /// Shared-memory allocation exceeding the per-block capacity.
    SharedOverflow {
        /// Bytes the allocation would need.
        requested: usize,
        /// Per-block capacity of the device.
        capacity: usize,
    },
    /// Mismatched lane-vector lengths in a warp-wide operation.
    LaneMismatch {
        /// Number of index lanes supplied.
        indices: usize,
        /// Number of value lanes supplied.
        values: usize,
    },
    /// A buffer handle that does not belong to this arena.
    BadBuffer {
        /// The unknown handle's index.
        buffer: usize,
    },
    /// The kernel itself failed (numerical error etc.); carries the
    /// kernel's message.
    KernelFault(String),
    /// A solve plan that cannot be built or executed: empty geometry,
    /// a device-memory footprint beyond capacity, a kernel step whose
    /// buffer bindings point outside the plan's slot table, or a
    /// plan/batch mismatch at execution time. Raised by the planner
    /// and the plan executor instead of panicking.
    InvalidPlan(String),
    /// A sanitizer finding severe enough to abort the launch: every
    /// out-of-bounds access (the functional read would be undefined),
    /// or the first violation of any class under
    /// [`crate::exec::ExecConfig::fail_fast`]. Carries full
    /// kernel/block/warp/lane/address attribution.
    Sanitizer(SanitizerViolation),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch: {msg}"),
            SimError::GlobalOutOfBounds { buffer, index, len } => write!(
                f,
                "global access out of bounds: buffer {buffer}, index {index}, length {len}"
            ),
            SimError::SharedOutOfBounds { index, len } => {
                write!(f, "shared access out of bounds: index {index}, length {len}")
            }
            SimError::SharedOverflow {
                requested,
                capacity,
            } => write!(
                f,
                "shared memory overflow: requested {requested} bytes, capacity {capacity}"
            ),
            SimError::LaneMismatch { indices, values } => write!(
                f,
                "warp op lane mismatch: {indices} indices vs {values} values"
            ),
            SimError::BadBuffer { buffer } => write!(f, "unknown buffer handle {buffer}"),
            SimError::KernelFault(msg) => write!(f, "kernel fault: {msg}"),
            SimError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            SimError::Sanitizer(v) => write!(f, "sanitizer: {v}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias for simulator operations.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_contain_context() {
        assert!(SimError::InvalidLaunch("x".into()).to_string().contains("invalid launch"));
        assert!(SimError::GlobalOutOfBounds {
            buffer: 1,
            index: 9,
            len: 4
        }
        .to_string()
        .contains("index 9"));
        assert!(SimError::SharedOverflow {
            requested: 100,
            capacity: 48
        }
        .to_string()
        .contains("100"));
    }
}
