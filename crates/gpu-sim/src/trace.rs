//! Span/event trace recorder with a Chrome-trace exporter.
//!
//! The observability layer's data model: a [`Trace`] is a flat list of
//! timestamped events on a modeled-time axis (microseconds, the same
//! unit [`crate::timing`] produces). Two event kinds cover everything
//! the solver pipeline needs:
//!
//! - **spans** (`ph: "X"` complete events) for anything with duration —
//!   a whole solve, one kernel launch, one phase inside a kernel;
//!   hierarchy is expressed by containment (Perfetto nests `X` events
//!   on the same track by `ts`/`dur` nesting);
//! - **instants** (`ph: "i"`) for decisions — the transition rule's
//!   choice of `k`, the grid-mapping choice, buffer setup — with their
//!   inputs attached as `args`.
//!
//! [`Trace::to_chrome_json`] serializes to the Chrome trace-event JSON
//! object format (`{"traceEvents": [...]}`), loadable in
//! `chrome://tracing` and Perfetto. [`validate_chrome_json`] is the
//! schema gate used by tests and the CLI profile smoke run: it parses
//! with [`crate::json`] and checks event-array well-formedness,
//! monotonic timestamps, and `B`/`E` pairing.

use crate::json::schema::Check;
use crate::json::{parse, Json};

/// Event kind, mapped to a Chrome trace-event `ph` value on export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span with duration (`ph: "X"`).
    Complete,
    /// A zero-duration marker (`ph: "i"`).
    Instant,
}

/// One trace event on the modeled-time axis.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (span or marker label).
    pub name: String,
    /// Category string (Chrome `cat`), used for filtering in the UI —
    /// e.g. `"solver"`, `"kernel"`, `"phase"`.
    pub cat: &'static str,
    /// Kind (span vs instant).
    pub kind: EventKind,
    /// Start timestamp in modeled microseconds.
    pub ts_us: f64,
    /// Duration in modeled microseconds (0 for instants).
    pub dur_us: f64,
    /// Track id (Chrome `tid`); events on one track nest by containment.
    pub tid: u32,
    /// Structured arguments shown in the UI's detail pane.
    pub args: Vec<(String, Json)>,
}

/// An in-memory trace: named process plus events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Process name shown in the viewer.
    pub process: String,
    /// Events, in the order they were recorded.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Empty trace for `process`.
    pub fn new(process: impl Into<String>) -> Self {
        Self {
            process: process.into(),
            events: Vec::new(),
        }
    }

    /// Record a span (complete event) on track `tid`.
    pub fn span(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        tid: u32,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, Json)>,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            kind: EventKind::Complete,
            ts_us,
            dur_us: dur_us.max(0.0),
            tid,
            args,
        });
    }

    /// Record an instant marker on track `tid`.
    pub fn instant(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        tid: u32,
        ts_us: f64,
        args: Vec<(String, Json)>,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            kind: EventKind::Instant,
            ts_us,
            dur_us: 0.0,
            tid,
            args,
        });
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Export as a Chrome trace-event JSON object
    /// (`{"traceEvents": [...]}`). Events are sorted by timestamp
    /// (stable, so same-`ts` parents stay ahead of their children) and
    /// prefixed with a process-name metadata record; timestamps are in
    /// microseconds as the format requires.
    pub fn to_chrome_json(&self) -> String {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by(|&a, &b| {
            self.events[a]
                .ts_us
                .partial_cmp(&self.events[b].ts_us)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut events = Vec::with_capacity(self.events.len() + 1);
        events.push(Json::Obj(vec![
            ("name".into(), Json::str("process_name")),
            ("ph".into(), Json::str("M")),
            ("pid".into(), Json::num(1)),
            ("tid".into(), Json::num(0)),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), Json::str(self.process.clone()))]),
            ),
        ]));
        for &i in &order {
            let e = &self.events[i];
            let mut fields = vec![
                ("name".into(), Json::str(e.name.clone())),
                ("cat".into(), Json::str(e.cat)),
                (
                    "ph".into(),
                    Json::str(match e.kind {
                        EventKind::Complete => "X",
                        EventKind::Instant => "i",
                    }),
                ),
                ("ts".into(), Json::num(e.ts_us)),
                ("pid".into(), Json::num(1)),
                ("tid".into(), Json::num(e.tid)),
            ];
            if e.kind == EventKind::Complete {
                fields.insert(4, ("dur".into(), Json::num(e.dur_us)));
            } else {
                fields.push(("s".into(), Json::str("t")));
            }
            if !e.args.is_empty() {
                fields.push(("args".into(), Json::Obj(e.args.clone())));
            }
            events.push(Json::Obj(fields));
        }
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(events)),
            ("displayTimeUnit".into(), Json::str("ns")),
        ])
        .to_string()
    }
}

fn event_problems(
    i: usize,
    e: &Json,
    last_ts: &mut f64,
    open: &mut Vec<(f64, String)>,
    out: &mut Vec<String>,
) {
    let mut c = Check::with_ctx(e, format!("event {i}: "));
    let Some(ph) = c.req_str("ph") else {
        out.extend(c.finish());
        return;
    };
    if ph == "M" {
        return; // metadata records carry no timestamp
    }
    c.req_str("name");
    let Some(ts) = c.req_num("ts") else {
        out.extend(c.finish());
        return;
    };
    c.ensure(
        ts.is_finite() && ts >= 0.0,
        format!("ts {ts} is not a finite non-negative number"),
    );
    c.ensure(ts >= *last_ts, format!("ts {ts} decreases below {}", *last_ts));
    *last_ts = last_ts.max(ts);
    match ph {
        "X" => match e.get("dur").and_then(Json::as_num) {
            Some(d) if d.is_finite() && d >= 0.0 => {}
            _ => c.problem("X event needs finite non-negative \"dur\""),
        },
        "B" => {
            let name = e.get("name").and_then(Json::as_str).unwrap_or("");
            open.push((ts, name.to_string()));
        }
        "E" => {
            if open.pop().is_none() {
                c.problem("E event without matching B");
            }
        }
        "i" | "I" => {}
        other => c.problem(format!("unknown ph {other:?}")),
    }
    out.extend(c.finish());
}

/// Validate a Chrome trace-event JSON document: it must parse, expose
/// an event array (top-level array or a `traceEvents` field), and
/// every event must be well-formed — string `name`/`ph`, finite
/// non-negative monotonically non-decreasing `ts`, `dur` on `X`
/// events, matched `B`/`E` pairs. Returns every problem found (empty =
/// valid).
pub fn validate_chrome_json(text: &str) -> Result<(), Vec<String>> {
    let doc = match parse(text) {
        Ok(d) => d,
        Err(e) => return Err(vec![e.to_string()]),
    };
    let events = match &doc {
        Json::Arr(items) => items.as_slice(),
        obj @ Json::Obj(_) => match obj.get("traceEvents").and_then(Json::as_arr) {
            Some(items) => items,
            None => return Err(vec!["top-level object has no \"traceEvents\" array".into()]),
        },
        _ => return Err(vec!["top level is neither an array nor an object".into()]),
    };
    let mut out = Vec::new();
    let mut last_ts = 0.0f64;
    let mut open: Vec<(f64, String)> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        if !matches!(e, Json::Obj(_)) {
            out.push(format!("event {i}: not an object"));
            continue;
        }
        event_problems(i, e, &mut last_ts, &mut open, &mut out);
    }
    for (ts, name) in &open {
        out.push(format!("B event {name:?} at ts {ts} never closed"));
    }
    if out.is_empty() {
        Ok(())
    } else {
        Err(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("test-solver");
        t.span("solve", "solver", 0, 0.0, 100.0, vec![("k".into(), Json::num(3))]);
        t.instant(
            "transition",
            "solver",
            0,
            0.0,
            vec![("m".into(), Json::num(64)), ("policy".into(), Json::str("heuristic"))],
        );
        t.span("launch:tiled_pcr", "kernel", 0, 0.0, 60.0, vec![]);
        t.span("phase:window_load", "phase", 0, 5.0, 20.0, vec![]);
        t.span("launch:p_thomas", "kernel", 0, 60.0, 40.0, vec![]);
        t
    }

    #[test]
    fn export_validates_and_round_trips() {
        let text = sample().to_chrome_json();
        validate_chrome_json(&text).unwrap();
        let doc = parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // metadata + 5 recorded events
        assert_eq!(events.len(), 6);
        // Sorted by ts and stable: solve span leads.
        assert_eq!(events[1].get("name").unwrap().as_str(), Some("solve"));
        assert_eq!(events[1].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[1].get("dur").unwrap().as_num(), Some(100.0));
        // Re-serialize → identical text (determinism).
        assert_eq!(doc.to_string(), text);
    }

    #[test]
    fn events_are_sorted_monotonically() {
        let mut t = Trace::new("x");
        t.span("late", "kernel", 0, 50.0, 10.0, vec![]);
        t.span("early", "kernel", 0, 1.0, 10.0, vec![]);
        let text = t.to_chrome_json();
        validate_chrome_json(&text).unwrap();
        let doc = parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events[1].get("name").unwrap().as_str(), Some("early"));
    }

    #[test]
    fn validator_catches_schema_violations() {
        // Not JSON at all.
        assert!(validate_chrome_json("not json").is_err());
        // No event array.
        assert!(validate_chrome_json("{\"foo\":1}").is_err());
        // X without dur.
        let bad = r#"[{"name":"a","ph":"X","ts":0,"pid":1,"tid":0}]"#;
        let errs = validate_chrome_json(bad).unwrap_err();
        assert!(errs[0].contains("dur"), "{errs:?}");
        // Decreasing ts.
        let bad = r#"[{"name":"a","ph":"i","ts":5,"s":"t"},{"name":"b","ph":"i","ts":2,"s":"t"}]"#;
        assert!(validate_chrome_json(bad).is_err());
        // Unmatched B.
        let bad = r#"[{"name":"a","ph":"B","ts":0}]"#;
        let errs = validate_chrome_json(bad).unwrap_err();
        assert!(errs[0].contains("never closed"), "{errs:?}");
        // E without B.
        let bad = r#"[{"name":"a","ph":"E","ts":0}]"#;
        assert!(validate_chrome_json(bad).is_err());
        // Matched B/E pass.
        let ok = r#"[{"name":"a","ph":"B","ts":0},{"name":"a","ph":"E","ts":3}]"#;
        validate_chrome_json(ok).unwrap();
    }

    #[test]
    fn negative_duration_is_clamped_on_record() {
        let mut t = Trace::new("x");
        t.span("s", "kernel", 0, 0.0, -5.0, vec![]);
        assert_eq!(t.events[0].dur_us, 0.0);
        validate_chrome_json(&t.to_chrome_json()).unwrap();
    }
}
