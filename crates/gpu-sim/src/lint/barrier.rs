//! Barrier pass: structural sync matching.
//!
//! Every barrier event carries the number of distinct lanes that
//! arrive. A strict subset is divergence — on hardware,
//! `__syncthreads()` inside non-uniform control flow hangs or
//! undefines execution. The pass also totals the barrier count for
//! the cross-check against the dynamic `barriers` counter.

use super::{DiagClass, DiagSink, Prediction, Severity};
use crate::plan::{AccessPlan, PlanEvent};

pub(crate) fn run(plan: &AccessPlan, sink: &mut DiagSink, pred: &mut Prediction) {
    for block in &plan.blocks {
        for ev in &block.events {
            if let PlanEvent::Barrier {
                phase,
                arrived,
                expected,
            } = ev
            {
                pred.barriers += 1;
                if arrived < expected {
                    sink.push(
                        DiagClass::BarrierDivergence,
                        Severity::Error,
                        block.block_id,
                        phase,
                        format!("sync({arrived}/{expected})"),
                        format!(
                            "barrier reached by {arrived} of {expected} lanes — subset arrival \
                             hangs or undefines execution on hardware"
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{lint, DiagClass, LintConfig};
    use crate::plan::AccessPlan;

    #[test]
    fn full_barriers_are_counted_not_flagged() {
        let mut plan = AccessPlan::synthetic("s", 64, 8);
        let b = plan.block_mut(0);
        b.push_barrier("a", 64, 64);
        b.push_barrier("b", 64, 64);
        let r = lint(&plan, &LintConfig::default());
        assert!(r.is_clean());
        assert_eq!(r.prediction.barriers, 2);
    }

    #[test]
    fn subset_arrival_is_divergence() {
        let mut plan = AccessPlan::synthetic("s", 64, 8);
        plan.block_mut(0).push_barrier("fold", 63, 64);
        let r = lint(&plan, &LintConfig::default());
        assert_eq!(r.diagnostics.len(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.class, DiagClass::BarrierDivergence);
        assert_eq!(d.phase, "fold");
        assert!(d.expr.contains("63/64"), "{}", d.expr);
    }
}
