//! Bounds pass: interval checks of every affine piece against the
//! addressed region, plus the shared-footprint prediction.
//!
//! An affine piece's element range is `[min_elem, max_elem]` — a two-
//! endpoint computation, no enumeration. Each access records the
//! length of the region it addressed (`bound`): the buffer length for
//! global ops, the shared extent at issue time for shared ops. A piece
//! whose interval escapes `[0, bound)` is a proven out-of-bounds
//! access for some lane.
//!
//! The pass also folds `shared_alloc` events into the predicted peak
//! shared footprint (`max (base + len) · elem` over blocks), mirroring
//! [`crate::exec::BlockCtx::shared_alloc`]'s accounting.

use super::{DiagClass, DiagSink, Prediction, Severity};
use crate::plan::{AccessPlan, PlanEvent};

pub(crate) fn run(plan: &AccessPlan, sink: &mut DiagSink, pred: &mut Prediction) {
    for block in &plan.blocks {
        let mut peak_elems = 0usize;
        for ev in &block.events {
            match ev {
                PlanEvent::SharedAlloc { base, len, .. } => {
                    peak_elems = peak_elems.max(base + len);
                }
                PlanEvent::Access(a) => {
                    for p in &a.pieces {
                        if p.lanes == 0 {
                            continue;
                        }
                        let (mn, mx) = (p.min_elem(), p.max_elem());
                        if mn < 0 || mx >= a.bound as i64 {
                            let space = if a.kind.is_global() { "global" } else { "shared" };
                            sink.push(
                                DiagClass::OutOfBounds,
                                Severity::Error,
                                block.block_id,
                                a.phase,
                                a.expr(),
                                format!(
                                    "{space} index range [{mn}, {mx}] escapes region of length {}",
                                    a.bound
                                ),
                            );
                            break;
                        }
                    }
                }
                PlanEvent::Barrier { .. } => {}
            }
        }
        pred.shared_bytes_peak = pred
            .shared_bytes_peak
            .max((peak_elems * plan.elem_bytes) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::super::{lint, LintConfig};
    use crate::plan::{AccessKind, AccessPlan};

    #[test]
    fn in_bounds_plan_is_clean_and_predicts_peak() {
        let mut plan = AccessPlan::synthetic("b", 32, 8);
        let b = plan.block_mut(0);
        b.push_alloc("main", 0, 64);
        b.push_alloc("main", 64, 32);
        let idx: Vec<usize> = (0..32).map(|l| l + 64).collect();
        b.push_access(AccessKind::SharedStore, "main", None, 96, &idx);
        let r = lint(&plan, &LintConfig::default());
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.prediction.shared_bytes_peak, 96 * 8);
    }

    #[test]
    fn escaping_interval_is_flagged() {
        let mut plan = AccessPlan::synthetic("b", 32, 8);
        let b = plan.block_mut(0);
        b.push_alloc("load", 0, 64);
        let idx: Vec<usize> = (0..32).map(|l| l * 3).collect(); // max 93 ≥ 64
        b.push_access(AccessKind::SharedLoad, "load", None, 64, &idx);
        let r = lint(&plan, &LintConfig::default());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.class == super::DiagClass::OutOfBounds)
            .expect("oob diagnostic");
        assert_eq!(d.phase, "load");
        assert!(d.message.contains("[0, 93]"), "{}", d.message);
        assert!(d.message.contains("length 64"), "{}", d.message);
    }
}
