//! Coalescing pass: exact 128-byte transaction counts from affine
//! pieces, and stride > 1 global-traffic diagnostics.
//!
//! The transaction count of one warp access is the number of distinct
//! `segment_bytes`-aligned segments the warp's lanes touch
//! ([`crate::memory::warp_transactions`]). For an affine piece the
//! segment ids form a closed shape:
//!
//! - stride 0 — every lane hits one segment: **1**;
//! - `|stride| · elem ≤ segment` — consecutive lanes move less than a
//!   segment per step, so the touched segments are the *full interval*
//!   `[floor(min·e/seg), floor(max·e/seg)]`;
//! - `|stride| · elem > segment` — lanes can skip segments, and with a
//!   warp bounded at 32 lanes enumeration is exact and O(32).
//!
//! Warps holding several pieces (ragged tails, clamp lanes) take the
//! exact union of the per-piece segment sets. The result is equal —
//! provably, and checked by the golden cross-check — to what the
//! dynamic counter measures.

use super::{floor_div, DiagClass, DiagSink, LintConfig, Prediction, Severity};
use crate::plan::{AccessPlan, PlanEvent, PlannedAccess};

/// Exact transaction count for one block-wide access (all warps).
pub fn access_transactions(
    a: &PlannedAccess,
    warp_size: usize,
    elem_bytes: usize,
    segment_bytes: usize,
) -> u64 {
    let e = elem_bytes as i128;
    let seg = segment_bytes as i128;
    let mut total = 0u64;
    let mut w0 = 0usize;
    while w0 < a.lanes {
        let w1 = (w0 + warp_size).min(a.lanes);
        let mut segs: Vec<i128> = Vec::new();
        for p in &a.pieces {
            let lo = p.lane0.max(w0);
            let hi = (p.lane0 + p.lanes).min(w1);
            if lo >= hi {
                continue;
            }
            let x0 = (lo - p.lane0) as i128;
            let x1 = (hi - p.lane0) as i128; // exclusive
            let s = p.stride as i128;
            let b = p.base as i128;
            let first = b + s * x0;
            let last = b + s * (x1 - 1);
            if s == 0 {
                segs.push(floor_div(first * e, seg));
            } else if s.abs() * e <= seg {
                // No segment can be skipped: full contiguous id range.
                let (mn, mx) = (first.min(last), first.max(last));
                let s0 = floor_div(mn * e, seg);
                let s1 = floor_div(mx * e, seg);
                segs.extend(s0..=s1);
            } else {
                for x in x0..x1 {
                    segs.push(floor_div((b + s * x) * e, seg));
                }
            }
        }
        segs.sort_unstable();
        segs.dedup();
        total += segs.len() as u64;
        w0 = w1;
    }
    total
}

/// Fewest transactions `lanes` active lanes could cost (perfectly
/// coalesced, aligned) — the denominator in diagnostics, and the
/// memory term of the planner's transaction cost model (an access
/// that hits this bound exactly is provably coalesced).
pub fn coalesced_minimum(
    lanes: usize,
    warp_size: usize,
    elem_bytes: usize,
    segment_bytes: usize,
) -> u64 {
    let per_full = (warp_size * elem_bytes).div_ceil(segment_bytes) as u64;
    let full = (lanes / warp_size) as u64;
    let rem = lanes % warp_size;
    full * per_full
        + if rem > 0 {
            (rem * elem_bytes).div_ceil(segment_bytes) as u64
        } else {
            0
        }
}

pub(crate) fn run(plan: &AccessPlan, cfg: &LintConfig, sink: &mut DiagSink, pred: &mut Prediction) {
    for block in &plan.blocks {
        for ev in &block.events {
            let a = match ev {
                PlanEvent::Access(a) if a.kind.is_global() => a,
                _ => continue,
            };
            let t = access_transactions(a, plan.warp_size, plan.elem_bytes, plan.segment_bytes);
            let bytes = (a.lanes * plan.elem_bytes) as u64;
            if a.kind.is_store() {
                pred.global_store_transactions += t;
                pred.global_store_bytes += bytes;
            } else {
                pred.global_load_transactions += t;
                pred.global_load_bytes += bytes;
            }
            pred.global_access_rounds += 1;
            if let Some(p) = a
                .pieces
                .iter()
                .find(|p| p.lanes >= 2 && p.stride.abs() > cfg.global_stride_threshold)
            {
                let min_t =
                    coalesced_minimum(a.lanes, plan.warp_size, plan.elem_bytes, plan.segment_bytes);
                sink.push(
                    DiagClass::UncoalescedGlobal,
                    Severity::Error,
                    block.block_id,
                    a.phase,
                    a.expr(),
                    format!(
                        "stride-{} global {} costs {} transactions for {} lanes \
                         (coalesced minimum {})",
                        p.stride.abs(),
                        a.kind,
                        t,
                        a.lanes,
                        min_t
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::warp_transactions_dense;
    use crate::plan::{compress, AccessKind};

    fn access(idx: &[usize]) -> PlannedAccess {
        PlannedAccess {
            kind: AccessKind::GlobalLoad,
            phase: "t",
            buffer: Some(0),
            bound: usize::MAX,
            lanes: idx.len(),
            pieces: compress(idx),
        }
    }

    /// The closed form must agree with the dynamic per-warp counter on
    /// every index shape kernels produce.
    #[test]
    fn closed_form_matches_dynamic_counter() {
        let shapes: Vec<Vec<usize>> = vec![
            (0..32).collect(),                         // aligned unit stride
            (1..33).collect(),                         // misaligned
            (0..32).map(|l| l * 2).collect(),          // stride 2
            (0..32).map(|l| l * 17 + 3).collect(),     // prime stride
            (0..32).map(|l| l * 512).collect(),        // huge stride
            (0..32).rev().collect(),                   // negative stride
            vec![7; 32],                               // broadcast
            (0..40).collect(),                         // spills into 2nd warp
            vec![0, 1, 2, 3, 100, 101, 102, 4000],     // multi-piece
            (0..13).map(|l| 5 + l * 3).collect(),      // ragged tail
            (0..64).map(|l| (l % 7) * 19).collect(),   // many short pieces
        ];
        for idx in shapes {
            for eb in [4usize, 8] {
                let a = access(&idx);
                let mut dynamic = 0u64;
                for warp in idx.chunks(32) {
                    dynamic += warp_transactions_dense(warp, eb, 128);
                }
                assert_eq!(
                    access_transactions(&a, 32, eb, 128),
                    dynamic,
                    "idx={idx:?} eb={eb}"
                );
            }
        }
    }

    #[test]
    fn coalesced_minimum_math() {
        assert_eq!(coalesced_minimum(32, 32, 4, 128), 1);
        assert_eq!(coalesced_minimum(32, 32, 8, 128), 2);
        assert_eq!(coalesced_minimum(64, 32, 8, 128), 4);
        assert_eq!(coalesced_minimum(33, 32, 4, 128), 2);
        assert_eq!(coalesced_minimum(1, 32, 8, 128), 1);
    }
}
