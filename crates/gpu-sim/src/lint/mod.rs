//! Static kernel lint: symbolic passes over an [`AccessPlan`] that
//! prove memory-structure properties without executing anything.
//!
//! Five passes run over the affine IR recorded (or hand-built) in
//! [`crate::plan`]:
//!
//! - [`coalesce`] — computes the **exact** number of 128-byte global
//!   transactions per warp access as a closed form over the affine
//!   pieces, and flags any stride > 1 global traffic.
//! - [`bank`] — computes n-way shared-memory bank conflicts from the
//!   word stride modulo the bank count (`degree = ceil(L / (banks /
//!   gcd(|word_stride|, banks)))`), and flags conflicts at or above a
//!   configurable degree.
//! - [`barrier`] — checks structural sync matching: a barrier reached
//!   by a strict subset of the block's lanes is divergence.
//! - [`race`] — segments each block's events into barrier epochs and
//!   runs a GCD/interval overlap test (a linear Diophantine solve)
//!   between every write and the epoch's other accesses; a solution on
//!   *distinct* lanes is a data race. This is the static mirror of the
//!   dynamic sanitizer's racecheck, but it proves the property for the
//!   whole affine family instead of the executed indices only.
//! - [`bounds`] — interval-checks every piece's element range against
//!   the addressed region's length (buffer length or shared extent).
//!
//! The passes double as a counter *model*: [`Prediction`] accumulates
//! the exact transaction/replay/barrier totals the passes derive, and
//! [`Prediction::cross_check`] compares them — field by field, exact
//! equality — against the dynamically measured
//! [`BlockStats`](struct@crate::counters::BlockStats). The golden-counter
//! suite runs this cross-check for every kernel at several geometries:
//! a mismatch means the static math or the dynamic counter is wrong,
//! which keeps both honest.

pub mod bank;
pub mod barrier;
pub mod bounds;
pub mod coalesce;
pub mod race;

use crate::counters::{BlockStats, KernelStats};
use crate::plan::AccessPlan;
use std::collections::HashMap;
use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Structurally suspicious but possibly intended.
    Warning,
    /// A proven property violation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which pass produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagClass {
    /// Global access with element stride > 1 (uncoalesced traffic).
    UncoalescedGlobal,
    /// Shared access serialized by an n-way bank conflict.
    BankConflict,
    /// Two affine ranges overlap on distinct lanes in one barrier
    /// epoch with at least one write.
    SharedRace,
    /// A barrier a strict subset of the block's lanes reaches.
    BarrierDivergence,
    /// An index range exceeding the addressed region.
    OutOfBounds,
}

impl fmt::Display for DiagClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagClass::UncoalescedGlobal => write!(f, "uncoalesced-global"),
            DiagClass::BankConflict => write!(f, "bank-conflict"),
            DiagClass::SharedRace => write!(f, "shared-race"),
            DiagClass::BarrierDivergence => write!(f, "barrier-divergence"),
            DiagClass::OutOfBounds => write!(f, "out-of-bounds"),
        }
    }
}

/// One lint finding with full attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Diagnostic class (which pass fired).
    pub class: DiagClass,
    /// Severity.
    pub severity: Severity,
    /// Kernel the plan belongs to.
    pub kernel: &'static str,
    /// Block id of the first occurrence.
    pub block: usize,
    /// Phase label of the offending event.
    pub phase: &'static str,
    /// The affine index expression (or barrier shape) at fault.
    pub expr: String,
    /// Human-readable explanation, including the predicted cost or the
    /// overlap witness.
    pub message: String,
    /// How many events across all blocks produced this same
    /// (class, phase, expression) finding.
    pub occurrences: u64,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] kernel `{}` block {} phase `{}`: {} — {}",
            self.severity, self.class, self.kernel, self.block, self.phase, self.message, self.expr
        )?;
        if self.occurrences > 1 {
            write!(f, " ({} occurrences)", self.occurrences)?;
        }
        Ok(())
    }
}

/// Lint pass thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintConfig {
    /// Conflict degree at which the bank pass diagnoses. The default
    /// (32) only fires on full serialization: the shipped f64 kernels
    /// legitimately carry benign 2-way conflicts (8-byte elements on
    /// 4-byte banks), which the replay *prediction* still counts
    /// exactly. Lower it to hunt milder conflicts.
    pub bank_conflict_threshold: u64,
    /// Element stride magnitude above which a global access is
    /// diagnosed as uncoalesced (default 1: stride-1 and broadcast are
    /// fine, anything wider is flagged).
    pub global_stride_threshold: i64,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self {
            bank_conflict_threshold: 32,
            global_stride_threshold: 1,
        }
    }
}

/// The counter totals the passes predict, structured to compare 1:1
/// with [`BlockStats`] aggregated over blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Prediction {
    /// Global load transactions (distinct 128-byte segments per warp).
    pub global_load_transactions: u64,
    /// Global store transactions.
    pub global_store_transactions: u64,
    /// Useful bytes loaded (lanes × element size).
    pub global_load_bytes: u64,
    /// Useful bytes stored.
    pub global_store_bytes: u64,
    /// Global access instructions (one per `ld`/`st`).
    pub global_access_rounds: u64,
    /// Shared access instructions (one per `sh_ld`/`sh_st`).
    pub shared_accesses: u64,
    /// Bank-conflict replay cycles.
    pub bank_conflict_replays: u64,
    /// Barriers executed.
    pub barriers: u64,
    /// Peak shared bytes per block (max over blocks).
    pub shared_bytes_peak: u64,
}

impl Prediction {
    /// Compare against dynamically measured totals; returns one line
    /// per mismatching counter (empty = exact agreement).
    pub fn cross_check(&self, measured: &BlockStats) -> Vec<String> {
        let mut mismatches = Vec::new();
        let mut chk = |name: &str, s: u64, d: u64| {
            if s != d {
                mismatches.push(format!("{name}: static {s} != dynamic {d}"));
            }
        };
        chk(
            "global_load_transactions",
            self.global_load_transactions,
            measured.global_load_transactions,
        );
        chk(
            "global_store_transactions",
            self.global_store_transactions,
            measured.global_store_transactions,
        );
        chk(
            "global_load_bytes",
            self.global_load_bytes,
            measured.global_load_bytes,
        );
        chk(
            "global_store_bytes",
            self.global_store_bytes,
            measured.global_store_bytes,
        );
        chk(
            "global_access_rounds",
            self.global_access_rounds,
            measured.global_access_rounds,
        );
        chk("shared_accesses", self.shared_accesses, measured.shared_accesses);
        chk(
            "bank_conflict_replays",
            self.bank_conflict_replays,
            measured.bank_conflict_replays,
        );
        chk("barriers", self.barriers, measured.barriers);
        chk(
            "shared_bytes_peak",
            self.shared_bytes_peak,
            measured.shared_bytes_peak,
        );
        mismatches
    }
}

/// The result of linting one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct LintReport {
    /// Kernel name.
    pub kernel: &'static str,
    /// Blocks in the analyzed plan.
    pub grid_blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Plan events analyzed.
    pub events: usize,
    /// Findings, deduplicated by (class, phase, expression).
    pub diagnostics: Vec<Diagnostic>,
    /// Exact counter predictions derived from the plan.
    pub prediction: Prediction,
}

impl LintReport {
    /// `true` when no pass found anything.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Compare the predicted counters against a launch's measured
    /// stats; returns `kernel: counter: static != dynamic` lines.
    pub fn cross_check(&self, stats: &KernelStats) -> Vec<String> {
        self.prediction
            .cross_check(&stats.total)
            .into_iter()
            .map(|m| format!("{}: {}", self.kernel, m))
            .collect()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lint `{}`: {} blocks x {} threads, {} events, {} diagnostic(s)",
            self.kernel,
            self.grid_blocks,
            self.threads_per_block,
            self.events,
            self.diagnostics.len()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Diagnostic collector with (class, phase, expr) deduplication: the
/// first occurrence keeps its block attribution, repeats only bump the
/// count — a kernel re-issuing the same bad expression every step
/// reads as one finding, not hundreds.
pub(crate) struct DiagSink {
    kernel: &'static str,
    order: Vec<Diagnostic>,
    index: HashMap<(DiagClass, &'static str, String), usize>,
}

impl DiagSink {
    fn new(kernel: &'static str) -> Self {
        Self {
            kernel,
            order: Vec::new(),
            index: HashMap::new(),
        }
    }

    pub(crate) fn push(
        &mut self,
        class: DiagClass,
        severity: Severity,
        block: usize,
        phase: &'static str,
        expr: String,
        message: String,
    ) {
        let key = (class, phase, expr.clone());
        if let Some(&i) = self.index.get(&key) {
            self.order[i].occurrences += 1;
            return;
        }
        self.index.insert(key, self.order.len());
        self.order.push(Diagnostic {
            class,
            severity,
            kernel: self.kernel,
            block,
            phase,
            expr,
            message,
            occurrences: 1,
        });
    }

    fn finish(self) -> Vec<Diagnostic> {
        self.order
    }
}

/// Floor division on `i128` (Rust's `/` truncates toward zero).
pub(crate) fn floor_div(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && (a < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division on `i128`.
pub(crate) fn ceil_div(a: i128, b: i128) -> i128 {
    -floor_div(-a, b)
}

/// Run all five passes over a plan.
pub fn lint(plan: &AccessPlan, cfg: &LintConfig) -> LintReport {
    let mut sink = DiagSink::new(plan.kernel);
    let mut pred = Prediction::default();
    coalesce::run(plan, cfg, &mut sink, &mut pred);
    bank::run(plan, cfg, &mut sink, &mut pred);
    bounds::run(plan, &mut sink, &mut pred);
    barrier::run(plan, &mut sink, &mut pred);
    race::run(plan, &mut sink);
    LintReport {
        kernel: plan.kernel,
        grid_blocks: plan.grid_blocks,
        threads_per_block: plan.threads_per_block,
        events: plan.num_events(),
        diagnostics: sink.finish(),
        prediction: pred,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_and_ceil_division() {
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(floor_div(-7, 2), -4);
        assert_eq!(floor_div(7, -2), -4);
        assert_eq!(floor_div(-7, -2), 3);
        assert_eq!(floor_div(6, 3), 2);
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(-7, 2), -3);
        assert_eq!(ceil_div(6, 3), 2);
    }

    #[test]
    fn sink_dedups_by_class_phase_expr() {
        let mut s = DiagSink::new("k");
        for block in 0..5 {
            s.push(
                DiagClass::BankConflict,
                Severity::Error,
                block,
                "load",
                "sh_ld { x }".into(),
                "32-way".into(),
            );
        }
        s.push(
            DiagClass::BankConflict,
            Severity::Error,
            0,
            "store",
            "sh_ld { x }".into(),
            "32-way".into(),
        );
        let out = s.finish();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].occurrences, 5);
        assert_eq!(out[0].block, 0);
        assert_eq!(out[1].phase, "store");
    }
}
