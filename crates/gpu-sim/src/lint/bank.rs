//! Bank-conflict pass: n-way shared-memory conflict degrees from the
//! word stride modulo the bank count.
//!
//! A shared word is 4 bytes; element `i` of an `e`-byte type starts at
//! word `⌊i·e/4⌋`, and the serving bank is that word mod `banks`.
//! For an affine piece with element stride `s` the word stride is
//! `W = s·e/4`; lanes repeat banks with period `banks / gcd(|W|,
//! banks)`, so a warp fragment of `L` lanes serializes into
//! `degree = ceil(L / period)` cycles (`degree − 1` replays). A warp
//! holding several pieces is evaluated by exact ≤32-lane enumeration
//! with distinct-word deduplication — lanes sharing a *word* broadcast
//! and never conflict, matching
//! [`crate::memory::shared_conflict_cycles`] cycle for cycle.

use super::{DiagClass, DiagSink, LintConfig, Prediction, Severity};
use crate::plan::{AccessPlan, PlanEvent, PlannedAccess};

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Conflict cycles of the warp fragment covering lanes `[w0, w1)` of
/// access `a` (1 = conflict-free).
fn fragment_cycles(a: &PlannedAccess, w0: usize, w1: usize, elem_bytes: usize, banks: u32) -> u64 {
    let covering: Vec<_> = a
        .pieces
        .iter()
        .filter(|p| p.lane0 < w1 && p.lane0 + p.lanes > w0)
        .collect();
    if covering.is_empty() {
        return 1;
    }
    // Fast path: a single piece spanning the fragment with a word
    // stride that is a whole number of 4-byte words.
    if covering.len() == 1
        && (covering[0].stride.unsigned_abs() as usize * elem_bytes).is_multiple_of(4)
        && elem_bytes.is_multiple_of(4)
    {
        let p = covering[0];
        let lanes = (p.lane0 + p.lanes).min(w1) - p.lane0.max(w0);
        if p.stride == 0 {
            return 1; // one word, broadcast
        }
        let w = p.stride.unsigned_abs() * (elem_bytes as u64 / 4);
        let period = banks as u64 / gcd(w, banks as u64);
        return (lanes as u64).div_ceil(period);
    }
    // Exact enumeration: distinct words, then the busiest bank.
    let mut words: Vec<i128> = Vec::new();
    for p in covering {
        let lo = p.lane0.max(w0);
        let hi = (p.lane0 + p.lanes).min(w1);
        for x in (lo - p.lane0)..(hi - p.lane0) {
            let e = p.base as i128 + p.stride as i128 * x as i128;
            words.push(super::floor_div(e * elem_bytes as i128, 4));
        }
    }
    words.sort_unstable();
    words.dedup();
    let mut per_bank = vec![0u64; banks as usize];
    for w in words {
        per_bank[w.rem_euclid(banks as i128) as usize] += 1;
    }
    per_bank.into_iter().max().unwrap_or(0).max(1)
}

pub(crate) fn run(plan: &AccessPlan, cfg: &LintConfig, sink: &mut DiagSink, pred: &mut Prediction) {
    for block in &plan.blocks {
        for ev in &block.events {
            let a = match ev {
                PlanEvent::Access(a) if !a.kind.is_global() => a,
                _ => continue,
            };
            pred.shared_accesses += 1;
            let mut worst = 1u64;
            let mut w0 = 0usize;
            while w0 < a.lanes {
                let w1 = (w0 + plan.warp_size).min(a.lanes);
                let cycles = fragment_cycles(a, w0, w1, plan.elem_bytes, plan.banks);
                pred.bank_conflict_replays += cycles - 1;
                worst = worst.max(cycles);
                w0 = w1;
            }
            if worst >= cfg.bank_conflict_threshold && worst > 1 {
                sink.push(
                    DiagClass::BankConflict,
                    Severity::Error,
                    block.block_id,
                    a.phase,
                    a.expr(),
                    format!(
                        "{}-way bank conflict: shared {} serializes into {} cycles per warp",
                        worst, a.kind, worst
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::shared_conflict_cycles_dense;
    use crate::plan::{compress, AccessKind};

    fn access(idx: &[usize]) -> PlannedAccess {
        PlannedAccess {
            kind: AccessKind::SharedLoad,
            phase: "t",
            buffer: None,
            bound: usize::MAX,
            lanes: idx.len(),
            pieces: compress(idx),
        }
    }

    /// The closed form (and the enumeration fallback) must agree with
    /// the dynamic per-warp counter on every shape kernels produce.
    #[test]
    fn degrees_match_dynamic_counter() {
        let shapes: Vec<Vec<usize>> = vec![
            (0..32).collect(),                              // unit stride
            (0..32).map(|l| l * 2).collect(),               // 2-way f32
            (0..32).map(|l| l * 32).collect(),              // 32-way
            (0..32).map(|l| l * 16).collect(),              // 16-way f32
            (0..32).map(|l| l * 3).collect(),               // coprime stride
            vec![7; 32],                                    // broadcast
            (0..32).map(|l| l + l / 32).collect(),          // padded
            (0..24).map(|l| 100 + l * 5).collect(),         // ragged offset
            vec![0, 2, 4, 6, 3, 3, 3, 64, 96, 128],         // multi-piece
            (0..32).rev().map(|l| l * 2).collect(),         // negative stride
            (0..48).map(|l| l * 2).collect(),               // two warps
        ];
        for idx in shapes {
            for eb in [4usize, 8] {
                let a = access(&idx);
                let mut dynamic = 0u64;
                for warp in idx.chunks(32) {
                    dynamic += shared_conflict_cycles_dense(warp, eb, 32) - 1;
                }
                let mut stat = 0u64;
                let mut w0 = 0;
                while w0 < a.lanes {
                    let w1 = (w0 + 32).min(a.lanes);
                    stat += fragment_cycles(&a, w0, w1, eb, 32) - 1;
                    w0 = w1;
                }
                assert_eq!(stat, dynamic, "idx={idx:?} eb={eb}");
            }
        }
    }

    #[test]
    fn f64_stride_one_is_two_way() {
        let idx: Vec<usize> = (0..32).collect();
        assert_eq!(fragment_cycles(&access(&idx), 0, 32, 8, 32), 2);
    }

    #[test]
    fn stride_32_fully_serializes() {
        let idx: Vec<usize> = (0..32).map(|l| l * 32).collect();
        assert_eq!(fragment_cycles(&access(&idx), 0, 32, 4, 32), 32);
    }
}
