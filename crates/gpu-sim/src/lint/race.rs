//! Race pass: barrier-epoch hazard detection by exact affine overlap.
//!
//! Within one barrier epoch, two accesses to shared memory race when
//! some element is touched by two *distinct lanes* with at least one
//! write — the same definition the dynamic sanitizer checks word by
//! word, but proved here for the whole affine family at once.
//!
//! Two pieces `base₁ + s₁·x (lane l₁+x)` and `base₂ + s₂·y (lane
//! l₂+y)` collide when the linear Diophantine equation `s₁·x − s₂·y =
//! base₂ − base₁` has a solution inside both lane ranges. Solvability
//! is a GCD test; the solution family is `x = x₀ + (s₂/g)·t`, and
//! intersecting the two range constraints gives a `t`-interval. The
//! lane difference along the family is itself affine in `t`, so the
//! *distinct-lane* requirement (a lane re-touching its own element is
//! not a race — e.g. a thread reloading the slot it just wrote) is one
//! more closed-form check, not an enumeration.
//!
//! Stores are additionally checked against themselves: duplicate
//! targets within one block-wide store are a write-after-write race on
//! real hardware (the simulator's "last lane wins" is a determinism
//! fiction).

use super::{DiagClass, DiagSink, Severity};
use crate::plan::{AccessPlan, AffinePiece, PlanEvent, PlannedAccess};

/// Extended GCD: returns `(g, u, v)` with `a·u + b·v = g > 0`.
/// Requires `a` and `b` not both zero.
fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        if a < 0 {
            (-a, -1, 0)
        } else {
            (a, 1, 0)
        }
    } else {
        let (g, u, v) = egcd(b, a % b);
        (g, v, u - (a / b) * v)
    }
}

/// The `t`-interval where `0 ≤ x0 + d·t ≤ n−1` (`d ≠ 0`).
fn t_range(x0: i128, d: i128, n: i128) -> Option<(i128, i128)> {
    let (lo, hi) = if d > 0 {
        (super::ceil_div(-x0, d), super::floor_div(n - 1 - x0, d))
    } else {
        (super::ceil_div(x0 - (n - 1), -d), super::floor_div(x0, -d))
    };
    (lo <= hi).then_some((lo, hi))
}

/// Does any element of `p` coincide with an element of `q` on
/// *distinct* lanes? Returns a witness `(element, lane_p, lane_q)`.
fn piece_overlap(p: &AffinePiece, q: &AffinePiece) -> Option<(i64, usize, usize)> {
    let (b1, s1, n1, l1) = (p.base as i128, p.stride as i128, p.lanes as i128, p.lane0 as i128);
    let (b2, s2, n2, l2) = (q.base as i128, q.stride as i128, q.lanes as i128, q.lane0 as i128);
    if n1 == 0 || n2 == 0 {
        return None;
    }
    let witness =
        |x: i128, y: i128| Some(((b1 + s1 * x) as i64, (l1 + x) as usize, (l2 + y) as usize));
    match (s1 == 0, s2 == 0) {
        (true, true) => {
            if b1 != b2 {
                return None;
            }
            if l1 != l2 {
                witness(0, 0)
            } else if n2 > 1 {
                witness(0, 1)
            } else if n1 > 1 {
                witness(1, 0)
            } else {
                None
            }
        }
        (true, false) => {
            let num = b1 - b2;
            if num % s2 != 0 {
                return None;
            }
            let y = num / s2;
            if y < 0 || y >= n2 {
                return None;
            }
            if l1 != l2 + y {
                witness(0, y)
            } else if n1 > 1 {
                witness(1, y)
            } else {
                None
            }
        }
        (false, true) => {
            let num = b2 - b1;
            if num % s1 != 0 {
                return None;
            }
            let x = num / s1;
            if x < 0 || x >= n1 {
                return None;
            }
            if l1 + x != l2 {
                witness(x, 0)
            } else if n2 > 1 {
                witness(x, 1)
            } else {
                None
            }
        }
        (false, false) => {
            // s1·x − s2·y = b2 − b1; family x = x0 + (−s2/g)t,
            // y = y0 + (−s1/g)t.
            let c = b2 - b1;
            let (g, u, v) = egcd(s1, -s2);
            if c % g != 0 {
                return None;
            }
            let x0 = u * (c / g);
            let y0 = v * (c / g);
            let dx = -s2 / g;
            let dy = -s1 / g;
            let (lo1, hi1) = t_range(x0, dx, n1)?;
            let (lo2, hi2) = t_range(y0, dy, n2)?;
            let (tlo, thi) = (lo1.max(lo2), hi1.min(hi2));
            if tlo > thi {
                return None;
            }
            // Lane difference along the family: d0 + dd·t; a race
            // needs a t where it is nonzero.
            let d0 = (l1 + x0) - (l2 + y0);
            let dd = dx - dy;
            let t = if d0 + dd * tlo != 0 {
                tlo
            } else if dd != 0 && tlo < thi {
                tlo + 1 // dd ≠ 0 ⇒ at most one root ⇒ tlo+1 is nonzero
            } else {
                return None; // every in-range collision is same-lane
            };
            witness(x0 + dx * t, y0 + dy * t)
        }
    }
}

/// First distinct-lane overlap between two accesses (`same_op` checks
/// an access against itself without repeating symmetric pairs).
fn access_overlap(
    later: &PlannedAccess,
    earlier: &PlannedAccess,
    same_op: bool,
) -> Option<(i64, usize, usize)> {
    for (i, p) in later.pieces.iter().enumerate() {
        let start = if same_op { i } else { 0 };
        for q in &earlier.pieces[start..] {
            if let Some(w) = piece_overlap(p, q) {
                return Some(w);
            }
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn report(
    sink: &mut DiagSink,
    block_id: usize,
    kind: &str,
    later: &PlannedAccess,
    earlier: &PlannedAccess,
    elem: i64,
    lane_a: usize,
    lane_b: usize,
) {
    sink.push(
        DiagClass::SharedRace,
        Severity::Error,
        block_id,
        later.phase,
        later.expr(),
        format!(
            "{kind} race: lanes {lane_a} and {lane_b} touch shared word {elem} in the same \
             barrier epoch (conflicting access in phase `{}`: {})",
            earlier.phase,
            earlier.expr()
        ),
    );
}

pub(crate) fn run(plan: &AccessPlan, sink: &mut DiagSink) {
    for block in &plan.blocks {
        let mut reads: Vec<&PlannedAccess> = Vec::new();
        let mut writes: Vec<&PlannedAccess> = Vec::new();
        for ev in &block.events {
            match ev {
                PlanEvent::Barrier { .. } => {
                    reads.clear();
                    writes.clear();
                }
                PlanEvent::SharedAlloc { .. } => {}
                PlanEvent::Access(a) if !a.kind.is_global() => {
                    if a.kind.is_store() {
                        if let Some((e, la, lb)) = access_overlap(a, a, true) {
                            report(sink, block.block_id, "write-after-write", a, a, e, la, lb);
                        }
                        for w in &writes {
                            if let Some((e, la, lb)) = access_overlap(a, w, false) {
                                report(sink, block.block_id, "write-after-write", a, w, e, la, lb);
                            }
                        }
                        for r in &reads {
                            if let Some((e, la, lb)) = access_overlap(a, r, false) {
                                report(sink, block.block_id, "write-after-read", a, r, e, la, lb);
                            }
                        }
                        writes.push(a);
                    } else {
                        for w in &writes {
                            if let Some((e, la, lb)) = access_overlap(a, w, false) {
                                report(sink, block.block_id, "read-after-write", a, w, e, la, lb);
                            }
                        }
                        reads.push(a);
                    }
                }
                PlanEvent::Access(_) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{lint, DiagClass, LintConfig};
    use super::*;
    use crate::plan::{AccessKind, AccessPlan};

    fn piece(lane0: usize, lanes: usize, base: i64, stride: i64) -> AffinePiece {
        AffinePiece {
            lane0,
            lanes,
            base,
            stride,
        }
    }

    #[test]
    fn overlap_requires_distinct_lanes() {
        // Lane l writes element 2l, lane l reads element 2l: collisions
        // exist but always on the same lane — not a race.
        assert_eq!(
            piece_overlap(&piece(0, 32, 0, 2), &piece(0, 32, 0, 2)),
            None
        );
        // Same mapping expressed with an offset lane range still
        // aligns lane-for-lane.
        assert_eq!(
            piece_overlap(&piece(1, 31, 2, 2), &piece(0, 32, 0, 2)),
            None
        );
        // A one-element shift makes writer and reader distinct lanes.
        let w = piece_overlap(&piece(0, 31, 1, 1), &piece(0, 32, 0, 1)).expect("race");
        assert_ne!(w.1, w.2);
    }

    #[test]
    fn parity_disjoint_strides_never_collide() {
        // Evens vs odds at stride 2: gcd test refutes instantly.
        assert_eq!(
            piece_overlap(&piece(0, 32, 0, 2), &piece(0, 32, 1, 2)),
            None
        );
        // gcd(6,4) = 2 does not divide 1.
        assert_eq!(
            piece_overlap(&piece(0, 8, 0, 6), &piece(0, 8, 1, 4)),
            None
        );
    }

    #[test]
    fn diophantine_family_skips_same_lane_root() {
        // 6x = 4y + 2: x=y=1 collides on the *same* lane (elem 6), but
        // the family also contains x=3,y=4 (elem 18) on distinct lanes.
        let w = piece_overlap(&piece(0, 8, 0, 6), &piece(0, 8, 2, 4)).expect("race");
        assert_ne!(w.1, w.2);
        assert_eq!(w.0 % 6, 0);
        assert_eq!((w.0 - 2) % 4, 0);
    }

    #[test]
    fn broadcast_write_is_intra_op_waw() {
        let mut plan = AccessPlan::synthetic("r", 32, 8);
        let b = plan.block_mut(0);
        b.push_alloc("main", 0, 64);
        b.push_access(AccessKind::SharedStore, "main", None, 64, &[5; 4]);
        let r = lint(&plan, &LintConfig::default());
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.class == DiagClass::SharedRace
                && d.message.contains("write-after-write")));
    }

    #[test]
    fn barrier_separates_epochs() {
        let idx: Vec<usize> = (0..32).collect();
        let shifted: Vec<usize> = (0..32).map(|l| (l + 1) % 32).collect();
        let build = |with_barrier: bool| {
            let mut plan = AccessPlan::synthetic("r", 32, 8);
            let b = plan.block_mut(0);
            b.push_alloc("main", 0, 32);
            b.push_access(AccessKind::SharedStore, "store", None, 32, &idx);
            if with_barrier {
                b.push_barrier("store", 32, 32);
            }
            b.push_access(AccessKind::SharedLoad, "load", None, 32, &shifted);
            lint(&plan, &LintConfig::default())
        };
        let racy = build(false);
        let diag = racy
            .diagnostics
            .iter()
            .find(|d| d.class == DiagClass::SharedRace)
            .expect("missing-barrier race");
        assert!(diag.message.contains("read-after-write"), "{}", diag.message);
        assert_eq!(diag.phase, "load");
        assert!(build(true).is_clean());
    }

    #[test]
    fn same_lane_reload_is_not_a_race() {
        // Store then reload your own slot without a barrier: fine.
        let idx: Vec<usize> = (0..32).map(|l| l * 2).collect();
        let mut plan = AccessPlan::synthetic("r", 32, 8);
        let b = plan.block_mut(0);
        b.push_alloc("main", 0, 64);
        b.push_access(AccessKind::SharedStore, "main", None, 64, &idx);
        b.push_access(AccessKind::SharedLoad, "main", None, 64, &idx);
        assert!(lint(&plan, &LintConfig::default()).is_clean());
    }

    #[test]
    fn write_after_read_detected() {
        let idx: Vec<usize> = (0..32).collect();
        let shifted: Vec<usize> = (0..32).map(|l| (l + 5) % 32).collect();
        let mut plan = AccessPlan::synthetic("r", 32, 8);
        let b = plan.block_mut(0);
        b.push_alloc("main", 0, 32);
        b.push_access(AccessKind::SharedLoad, "gather", None, 32, &shifted);
        b.push_access(AccessKind::SharedStore, "scatter", None, 32, &idx);
        let r = lint(&plan, &LintConfig::default());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.class == DiagClass::SharedRace)
            .expect("WAR race");
        assert!(d.message.contains("write-after-read"), "{}", d.message);
        assert_eq!(d.phase, "scatter");
    }
}
