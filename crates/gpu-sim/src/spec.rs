//! Device specifications.
//!
//! A [`DeviceSpec`] carries the architectural parameters the timing
//! model and occupancy calculator need. The primary preset is the
//! NVIDIA GTX480 the paper benchmarks on; GTX280 and Tesla C2050
//! presets exercise the "portable to virtually all GPUs" claim of
//! Section III-A.

/// Floating-point width of a kernel's data, used for throughput and
/// traffic accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 4-byte IEEE single.
    F32,
    /// 8-byte IEEE double.
    F64,
}

impl Precision {
    /// Bytes per element.
    pub fn bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }
}

/// Architectural parameters of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"GTX480"`.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub num_sms: u32,
    /// Scalar cores (FP32 lanes) per SM.
    pub cores_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: usize,
    /// Maximum shared memory a single block may allocate.
    pub max_shared_per_block: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbps: f64,
    /// DRAM round-trip latency in core cycles.
    pub dram_latency_cycles: u32,
    /// Global-memory transaction size in bytes (L1 line).
    pub transaction_bytes: usize,
    /// Shared-memory banks.
    pub shared_banks: u32,
    /// FP32 fused-multiply-add throughput per SM per cycle.
    pub fp32_ops_per_cycle_sm: f64,
    /// FP64 throughput as a fraction of FP32 (GeForce Fermi: 1/8).
    pub fp64_ratio: f64,
    /// Fixed kernel-launch overhead in microseconds (driver + setup).
    pub launch_overhead_us: f64,
    /// Outstanding global loads a warp can keep in flight (MLP).
    pub loads_in_flight_per_warp: u32,
    /// Global (DRAM) memory capacity in bytes — the budget a solve
    /// plan's device buffer footprint is validated against.
    pub global_mem_bytes: usize,
}

impl DeviceSpec {
    /// The NVIDIA GTX480 (GF100, Fermi) used in the paper's evaluation.
    pub fn gtx480() -> Self {
        DeviceSpec {
            name: "GTX480",
            num_sms: 15,
            cores_per_sm: 32,
            warp_size: 32,
            clock_ghz: 1.401,
            shared_mem_per_sm: 48 * 1024,
            max_shared_per_block: 48 * 1024,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1024,
            registers_per_sm: 32768,
            dram_bandwidth_gbps: 177.4,
            dram_latency_cycles: 400,
            transaction_bytes: 128,
            shared_banks: 32,
            fp32_ops_per_cycle_sm: 32.0,
            fp64_ratio: 1.0 / 8.0,
            launch_overhead_us: 5.0,
            loads_in_flight_per_warp: 4,
            global_mem_bytes: 1536 * 1024 * 1024,
        }
    }

    /// The GT200-class GTX280 (pre-Fermi: 16 KiB shared memory, no L1).
    pub fn gtx280() -> Self {
        DeviceSpec {
            name: "GTX280",
            num_sms: 30,
            cores_per_sm: 8,
            warp_size: 32,
            clock_ghz: 1.296,
            shared_mem_per_sm: 16 * 1024,
            max_shared_per_block: 16 * 1024,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            max_threads_per_block: 512,
            registers_per_sm: 16384,
            dram_bandwidth_gbps: 141.7,
            dram_latency_cycles: 550,
            transaction_bytes: 64,
            shared_banks: 16,
            fp32_ops_per_cycle_sm: 8.0,
            fp64_ratio: 1.0 / 12.0,
            launch_overhead_us: 7.0,
            loads_in_flight_per_warp: 3,
            global_mem_bytes: 1024 * 1024 * 1024,
        }
    }

    /// The Tesla C2050 (Fermi compute part: full-rate FP64 ÷ 2).
    pub fn c2050() -> Self {
        DeviceSpec {
            name: "C2050",
            num_sms: 14,
            cores_per_sm: 32,
            warp_size: 32,
            clock_ghz: 1.15,
            shared_mem_per_sm: 48 * 1024,
            max_shared_per_block: 48 * 1024,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1024,
            registers_per_sm: 32768,
            dram_bandwidth_gbps: 144.0,
            dram_latency_cycles: 400,
            transaction_bytes: 128,
            shared_banks: 32,
            fp32_ops_per_cycle_sm: 32.0,
            fp64_ratio: 0.5,
            launch_overhead_us: 5.0,
            loads_in_flight_per_warp: 4,
            global_mem_bytes: 3 * 1024 * 1024 * 1024,
        }
    }

    /// Peak FLOP/s for a precision.
    pub fn peak_flops(&self, precision: Precision) -> f64 {
        let ratio = match precision {
            Precision::F32 => 1.0,
            Precision::F64 => self.fp64_ratio,
        };
        self.num_sms as f64 * self.fp32_ops_per_cycle_sm * ratio * self.clock_ghz * 1e9
    }

    /// Arithmetic throughput per SM per cycle for a precision.
    pub fn ops_per_cycle_sm(&self, precision: Precision) -> f64 {
        match precision {
            Precision::F32 => self.fp32_ops_per_cycle_sm,
            Precision::F64 => self.fp32_ops_per_cycle_sm * self.fp64_ratio,
        }
    }

    /// DRAM bytes per core cycle, whole device.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth_gbps * 1e9 / (self.clock_ghz * 1e9)
    }

    /// Maximum resident threads across the device — the "parallelism P"
    /// of the paper's Table II cost model.
    pub fn parallelism(&self) -> u64 {
        self.num_sms as u64 * self.max_threads_per_sm as u64
    }

    /// Convert core cycles to microseconds.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e3)
    }

    /// Basic internal consistency (used by constructors in tests).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_sms == 0 || self.warp_size == 0 || self.max_threads_per_block == 0 {
            return Err("zero-sized device dimension".into());
        }
        if self.max_shared_per_block > self.shared_mem_per_sm {
            return Err("per-block shared memory exceeds per-SM capacity".into());
        }
        if !(self.fp64_ratio > 0.0 && self.fp64_ratio <= 1.0) {
            return Err("fp64 ratio must be in (0, 1]".into());
        }
        if self.global_mem_bytes == 0 {
            return Err("zero global memory capacity".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for spec in [DeviceSpec::gtx480(), DeviceSpec::gtx280(), DeviceSpec::c2050()] {
            spec.validate().unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn gtx480_headline_numbers() {
        let d = DeviceSpec::gtx480();
        // 15 SMs × 32 cores × 2 × 1.401 GHz ≈ 1.345 TFLOP/s FP32 (FMA counted
        // as one op here, so half that).
        let peak32 = d.peak_flops(Precision::F32);
        assert!((peak32 - 672.5e9).abs() / peak32 < 0.01);
        // GeForce Fermi FP64 is 1/8 FP32.
        assert!((d.peak_flops(Precision::F64) / peak32 - 0.125).abs() < 1e-12);
        assert_eq!(d.parallelism(), 15 * 1536);
    }

    #[test]
    fn bytes_per_cycle_sane() {
        let d = DeviceSpec::gtx480();
        // 177.4 GB/s at 1.401 GHz ≈ 126.6 B/cycle.
        assert!((d.bytes_per_cycle() - 126.6).abs() < 1.0);
    }

    #[test]
    fn cycles_to_us_round_trip() {
        let d = DeviceSpec::gtx480();
        let us = d.cycles_to_us(1_401_000.0);
        assert!((us - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::F32.bytes(), 4);
        assert_eq!(Precision::F64.bytes(), 8);
    }

    #[test]
    fn validate_rejects_nonsense() {
        let mut d = DeviceSpec::gtx480();
        d.fp64_ratio = 0.0;
        assert!(d.validate().is_err());
        let mut d = DeviceSpec::gtx480();
        d.max_shared_per_block = d.shared_mem_per_sm + 1;
        assert!(d.validate().is_err());
    }
}
