//! The affine access-plan IR: a symbolic record of *how* a kernel
//! touches memory, independent of the data it moves.
//!
//! Every block-wide memory operation in this workspace indexes memory
//! with expressions that are affine in the lane id — `base + stride·l`
//! over a contiguous lane range — or a short concatenation of such
//! runs (a ragged tail, a clamp lane, a carry splice). The IR captures
//! each operation as a list of [`AffinePiece`]s plus its barrier and
//! allocation structure, which is exactly enough for the static lint
//! passes in [`crate::lint`](mod@crate::lint) to *prove* coalescing, bank-conflict,
//! race, bounds and barrier properties as closed forms — no execution,
//! no data.
//!
//! Plans come from two sources:
//!
//! 1. **Recording.** [`crate::exec::ExecConfig::record_plan`] makes the
//!    executor compress every `ld`/`st`/`sh_ld`/`sh_st` index slice
//!    into affine pieces (losslessly — [`compress`] is exact, not a
//!    fit) and attach the result to
//!    [`crate::exec::LaunchResult::plan`]. Since kernels compute their
//!    index vectors from `(block_id, threads, n, k, …)` and never from
//!    loaded data, the recorded plan at a geometry *is* the kernel's
//!    access plan at that geometry.
//! 2. **Hand-building.** Tests and negative suites construct plans
//!    directly via [`AccessPlan::synthetic`] and the `push_*` methods
//!    on [`BlockPlan`].
//!
//! The same-trip [`crate::lint`](mod@crate::lint) passes recompute transaction and
//! replay counts from the pieces alone; the golden-counter suite then
//! asserts those static predictions equal the dynamically measured
//! [`crate::counters::KernelStats`] — a mismatch means one of the two
//! models is wrong, which keeps both honest.

use std::fmt;

/// One maximal affine run of lanes within a block-wide access:
/// lane `lane0 + x` touches element `base + stride·x` for
/// `x ∈ [0, lanes)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffinePiece {
    /// First lane (position in the block-wide op) this piece covers.
    pub lane0: usize,
    /// Number of consecutive lanes covered (≥ 1).
    pub lanes: usize,
    /// Element index accessed by lane `lane0`.
    pub base: i64,
    /// Element-index step per lane (0 = broadcast).
    pub stride: i64,
}

impl AffinePiece {
    /// Element index accessed by relative lane `x` (`x < self.lanes`).
    #[inline]
    pub fn elem(&self, x: usize) -> i64 {
        self.base + self.stride * x as i64
    }

    /// Smallest element index the piece touches.
    pub fn min_elem(&self) -> i64 {
        if self.stride < 0 {
            self.elem(self.lanes - 1)
        } else {
            self.base
        }
    }

    /// Largest element index the piece touches.
    pub fn max_elem(&self) -> i64 {
        if self.stride < 0 {
            self.base
        } else {
            self.elem(self.lanes - 1)
        }
    }
}

impl fmt::Display for AffinePiece {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lanes == 1 {
            write!(f, "l={}: {}", self.lane0, self.base)
        } else if self.stride == 0 {
            write!(
                f,
                "l in [{},{}): {}",
                self.lane0,
                self.lane0 + self.lanes,
                self.base
            )
        } else {
            write!(
                f,
                "l in [{},{}): {} {} {}*(l-{})",
                self.lane0,
                self.lane0 + self.lanes,
                self.base,
                if self.stride < 0 { "-" } else { "+" },
                self.stride.abs(),
                self.lane0
            )
        }
    }
}

/// Losslessly compress an index slice (position = lane) into maximal
/// affine runs. Exact: expanding the pieces reproduces `idx` verbatim.
pub fn compress(idx: &[usize]) -> Vec<AffinePiece> {
    let mut pieces = Vec::new();
    let mut i = 0usize;
    while i < idx.len() {
        if i + 1 == idx.len() {
            pieces.push(AffinePiece {
                lane0: i,
                lanes: 1,
                base: idx[i] as i64,
                stride: 0,
            });
            break;
        }
        let stride = idx[i + 1] as i64 - idx[i] as i64;
        let mut j = i + 1;
        while j + 1 < idx.len() && idx[j + 1] as i64 - idx[j] as i64 == stride {
            j += 1;
        }
        pieces.push(AffinePiece {
            lane0: i,
            lanes: j - i + 1,
            base: idx[i] as i64,
            stride,
        });
        i = j + 1;
    }
    pieces
}

/// The kind of memory operation a [`PlannedAccess`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Global load (`ctx.ld`).
    GlobalLoad,
    /// Global store (`ctx.st`).
    GlobalStore,
    /// Shared load (`ctx.sh_ld`).
    SharedLoad,
    /// Shared store (`ctx.sh_st`).
    SharedStore,
}

impl AccessKind {
    /// Does this access touch global memory (vs shared)?
    pub fn is_global(self) -> bool {
        matches!(self, AccessKind::GlobalLoad | AccessKind::GlobalStore)
    }

    /// Does this access write (vs read)?
    pub fn is_store(self) -> bool {
        matches!(self, AccessKind::GlobalStore | AccessKind::SharedStore)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::GlobalLoad => write!(f, "ld"),
            AccessKind::GlobalStore => write!(f, "st"),
            AccessKind::SharedLoad => write!(f, "sh_ld"),
            AccessKind::SharedStore => write!(f, "sh_st"),
        }
    }
}

/// One block-wide memory operation in a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedAccess {
    /// Operation kind.
    pub kind: AccessKind,
    /// Phase label active when the access was issued (see
    /// [`crate::exec::BlockCtx::phase`]).
    pub phase: &'static str,
    /// Global buffer handle index (`None` for shared memory).
    pub buffer: Option<usize>,
    /// Length of the addressed region in elements — the buffer length
    /// for global accesses, the shared extent at issue time for shared
    /// accesses. The bounds pass checks pieces against this.
    pub bound: usize,
    /// Active lanes in the op (`idx.len()` at record time).
    pub lanes: usize,
    /// The affine index expression, as maximal lane runs.
    pub pieces: Vec<AffinePiece>,
}

impl PlannedAccess {
    /// Render the index expression for diagnostics.
    pub fn expr(&self) -> String {
        let target = match self.buffer {
            Some(b) => format!("{}[buf {}]", self.kind, b),
            None => format!("{}[shared]", self.kind),
        };
        let pieces: Vec<String> = self.pieces.iter().map(|p| p.to_string()).collect();
        format!("{} {{ {} }}", target, pieces.join("; "))
    }
}

/// One event in a block's plan, in program order.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanEvent {
    /// A block-wide memory operation.
    Access(PlannedAccess),
    /// A barrier; `arrived < expected` models divergent arrival
    /// (`sync_arrive` with a strict lane subset).
    Barrier {
        /// Phase label active at the barrier.
        phase: &'static str,
        /// Lanes that arrived (distinct).
        arrived: usize,
        /// Lanes the block has.
        expected: usize,
    },
    /// A `shared_alloc` carving `len` elements at offset `base`.
    SharedAlloc {
        /// Phase label active at the allocation.
        phase: &'static str,
        /// Offset of the carved region (elements).
        base: usize,
        /// Length of the carved region (elements).
        len: usize,
    },
}

/// The recorded/declared plan of a single thread block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPlan {
    /// Block index in the grid.
    pub block_id: usize,
    /// Events in program order.
    pub events: Vec<PlanEvent>,
}

impl BlockPlan {
    /// Append an access, compressing `idx` into affine pieces.
    pub fn push_access(
        &mut self,
        kind: AccessKind,
        phase: &'static str,
        buffer: Option<usize>,
        bound: usize,
        idx: &[usize],
    ) {
        self.events.push(PlanEvent::Access(PlannedAccess {
            kind,
            phase,
            buffer,
            bound,
            lanes: idx.len(),
            pieces: compress(idx),
        }));
    }

    /// Append an access from explicit pieces (for synthetic plans whose
    /// expressions need not come from an index vector).
    pub fn push_access_pieces(
        &mut self,
        kind: AccessKind,
        phase: &'static str,
        buffer: Option<usize>,
        bound: usize,
        pieces: Vec<AffinePiece>,
    ) {
        let lanes = pieces.iter().map(|p| p.lanes).sum();
        self.events.push(PlanEvent::Access(PlannedAccess {
            kind,
            phase,
            buffer,
            bound,
            lanes,
            pieces,
        }));
    }

    /// Append a barrier.
    pub fn push_barrier(&mut self, phase: &'static str, arrived: usize, expected: usize) {
        self.events.push(PlanEvent::Barrier {
            phase,
            arrived,
            expected,
        });
    }

    /// Append a shared allocation.
    pub fn push_alloc(&mut self, phase: &'static str, base: usize, len: usize) {
        self.events.push(PlanEvent::SharedAlloc { phase, base, len });
    }
}

/// A whole launch's access plan: one [`BlockPlan`] per block plus the
/// device parameters the lint math needs.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessPlan {
    /// Kernel name (from the launch config).
    pub kernel: &'static str,
    /// Blocks in the grid.
    pub grid_blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Element size in bytes (4 = f32, 8 = f64).
    pub elem_bytes: usize,
    /// Warp size (lanes per memory instruction).
    pub warp_size: usize,
    /// Global transaction segment size in bytes.
    pub segment_bytes: usize,
    /// Shared-memory banks.
    pub banks: u32,
    /// Per-block plans, index = block id.
    pub blocks: Vec<BlockPlan>,
}

impl AccessPlan {
    /// A one-block plan skeleton with GTX480-class memory parameters
    /// (warp 32, 128-byte segments, 32 banks) for hand-built tests.
    pub fn synthetic(kernel: &'static str, threads: usize, elem_bytes: usize) -> Self {
        Self {
            kernel,
            grid_blocks: 1,
            threads_per_block: threads,
            elem_bytes,
            warp_size: 32,
            segment_bytes: 128,
            banks: 32,
            blocks: vec![BlockPlan {
                block_id: 0,
                events: Vec::new(),
            }],
        }
    }

    /// Mutable access to block `i`'s plan.
    pub fn block_mut(&mut self, i: usize) -> &mut BlockPlan {
        &mut self.blocks[i]
    }

    /// Total events across all blocks (plan size, for reports).
    pub fn num_events(&self) -> usize {
        self.blocks.iter().map(|b| b.events.len()).sum()
    }
}

/// Phase label in force before any [`crate::exec::BlockCtx::phase`]
/// call — the same reserved label the dynamic counters use
/// ([`crate::counters::PRELUDE_PHASE`]), so static lint attribution
/// and the per-phase counter breakdown agree on naming.
pub const DEFAULT_PHASE: &str = crate::counters::PRELUDE_PHASE;

/// Per-block plan recorder owned by [`crate::exec::BlockCtx`] when
/// [`crate::exec::ExecConfig::record_plan`] is set.
#[derive(Debug)]
pub struct PlanRecorder {
    plan: BlockPlan,
    phase: &'static str,
}

impl PlanRecorder {
    /// Fresh recorder for one block.
    pub fn new(block_id: usize) -> Self {
        Self {
            plan: BlockPlan {
                block_id,
                events: Vec::new(),
            },
            phase: DEFAULT_PHASE,
        }
    }

    /// Switch the active phase label.
    pub fn set_phase(&mut self, phase: &'static str) {
        self.phase = phase;
    }

    /// Record a memory operation.
    pub fn access(&mut self, kind: AccessKind, buffer: Option<usize>, bound: usize, idx: &[usize]) {
        let phase = self.phase;
        self.plan.push_access(kind, phase, buffer, bound, idx);
    }

    /// Record a barrier (`arrived == expected` for a full `sync`).
    pub fn barrier(&mut self, arrived: usize, expected: usize) {
        let phase = self.phase;
        self.plan.push_barrier(phase, arrived, expected);
    }

    /// Record a shared allocation.
    pub fn alloc(&mut self, base: usize, len: usize) {
        let phase = self.phase;
        self.plan.push_alloc(phase, base, len);
    }

    /// Finish recording and yield the block's plan.
    pub fn finish(self) -> BlockPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expand(pieces: &[AffinePiece]) -> Vec<(usize, i64)> {
        let mut out = Vec::new();
        for p in pieces {
            for x in 0..p.lanes {
                out.push((p.lane0 + x, p.elem(x)));
            }
        }
        out
    }

    #[test]
    fn compress_is_lossless() {
        let cases: Vec<Vec<usize>> = vec![
            vec![],
            vec![7],
            (0..32).collect(),
            (0..32).map(|l| l * 2 + 5).collect(),
            (0..32).rev().collect(),
            vec![3, 3, 3, 3],
            vec![0, 1, 2, 10, 12, 14, 7],
            vec![5, 5, 6, 7, 8, 0],
        ];
        for idx in cases {
            let pieces = compress(&idx);
            let flat = expand(&pieces);
            assert_eq!(flat.len(), idx.len());
            for (lane, (l, e)) in flat.iter().enumerate() {
                assert_eq!(*l, lane);
                assert_eq!(*e, idx[lane] as i64, "lane {lane} of {idx:?}");
            }
        }
    }

    #[test]
    fn compress_finds_maximal_runs() {
        let idx: Vec<usize> = (0..32).collect();
        assert_eq!(
            compress(&idx),
            vec![AffinePiece {
                lane0: 0,
                lanes: 32,
                base: 0,
                stride: 1
            }]
        );
        // A strided run, then a clamped tail of repeats.
        let idx = vec![0, 4, 8, 12, 99, 99, 99];
        let pieces = compress(&idx);
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].stride, 4);
        assert_eq!(pieces[0].lanes, 4);
        assert_eq!(pieces[1].stride, 0);
        assert_eq!(pieces[1].lanes, 3);
        assert_eq!(pieces[1].lane0, 4);
    }

    #[test]
    fn piece_extrema_handle_negative_stride() {
        let p = AffinePiece {
            lane0: 0,
            lanes: 8,
            base: 70,
            stride: -10,
        };
        assert_eq!(p.min_elem(), 0);
        assert_eq!(p.max_elem(), 70);
    }

    #[test]
    fn expressions_render_for_diagnostics() {
        let p = AffinePiece {
            lane0: 4,
            lanes: 28,
            base: 128,
            stride: 2,
        };
        assert_eq!(p.to_string(), "l in [4,32): 128 + 2*(l-4)");
        let a = PlannedAccess {
            kind: AccessKind::GlobalLoad,
            phase: "load",
            buffer: Some(3),
            bound: 4096,
            lanes: 28,
            pieces: vec![p],
        };
        assert_eq!(a.expr(), "ld[buf 3] { l in [4,32): 128 + 2*(l-4) }");
    }

    #[test]
    fn recorder_builds_a_block_plan() {
        let mut r = PlanRecorder::new(2);
        r.access(AccessKind::GlobalLoad, Some(0), 256, &[0, 1, 2, 3]);
        r.set_phase("store");
        r.barrier(32, 32);
        r.access(AccessKind::SharedStore, None, 64, &[0, 2, 4]);
        r.alloc(0, 64);
        let b = r.finish();
        assert_eq!(b.block_id, 2);
        assert_eq!(b.events.len(), 4);
        match &b.events[0] {
            PlanEvent::Access(a) => {
                assert_eq!(a.phase, DEFAULT_PHASE);
                assert!(a.kind.is_global());
                assert!(!a.kind.is_store());
            }
            e => panic!("wrong event {e:?}"),
        }
        match &b.events[2] {
            PlanEvent::Access(a) => {
                assert_eq!(a.phase, "store");
                assert_eq!(a.pieces[0].stride, 2);
            }
            e => panic!("wrong event {e:?}"),
        }
    }
}
