//! Global-memory access analysis: coalescing, plus the word-granular
//! initialization shadow the sanitizer's initcheck uses.
//!
//! Fermi-class GPUs service a warp's global access as one transaction
//! per distinct 128-byte segment the warp's lanes touch. Adjacent lanes
//! touching adjacent elements therefore cost `warp_size × elem /128`
//! transactions (fully coalesced), while lanes striding by a large pitch
//! cost one transaction *each* — the difference between the paper's
//! interleaved and contiguous p-Thomas layouts (Section III-B).

/// Word-granular initialization shadow for one buffer: which elements a
/// store (or host upload) has ever written. `Full` is the common case —
/// buffers uploaded from host data — and costs nothing; `Partial` is a
/// bitmap, one bit per element, for device-side allocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitMask {
    /// Every word is initialized (host-uploaded buffers).
    Full,
    /// Bitmap of initialized words (`bit i` = element `i` written).
    Partial(Vec<u64>),
}

impl InitMask {
    /// A mask with every word uninitialized (fresh `cudaMalloc`).
    pub fn uninit(len: usize) -> Self {
        InitMask::Partial(vec![0u64; len.div_ceil(64)])
    }

    /// Is element `i` initialized?
    #[inline]
    pub fn is_set(&self, i: usize) -> bool {
        match self {
            InitMask::Full => true,
            InitMask::Partial(bits) => bits[i / 64] & (1u64 << (i % 64)) != 0,
        }
    }

    /// Mark element `i` initialized.
    #[inline]
    pub fn set(&mut self, i: usize) {
        if let InitMask::Partial(bits) = self {
            bits[i / 64] |= 1u64 << (i % 64);
        }
    }
}

/// Count the transactions a single warp-wide access costs: the number
/// of distinct `segment_bytes`-aligned segments covered by the given
/// element indices (`elem_bytes` each). `None` lanes are inactive
/// (predicated off) and cost nothing.
pub fn warp_transactions(
    lane_elem_indices: &[Option<usize>],
    elem_bytes: usize,
    segment_bytes: usize,
) -> u64 {
    debug_assert!(segment_bytes.is_power_of_two());
    debug_assert!(
        lane_elem_indices.len() <= 64,
        "a warp access has at most warp_size (<= 64) lanes"
    );
    // Warps touch a handful of segments; a tiny sorted set beats hashing.
    let mut segments: [u64; 64] = [u64::MAX; 64];
    let mut count = 0usize;
    for idx in lane_elem_indices.iter().flatten() {
        let seg = (idx * elem_bytes / segment_bytes) as u64;
        if !segments[..count].contains(&seg) {
            if count < segments.len() {
                segments[count] = seg;
            }
            count += 1;
        }
    }
    count as u64
}

/// Useful bytes a warp-wide access moves (active lanes × element size).
pub fn warp_useful_bytes(lane_elem_indices: &[Option<usize>], elem_bytes: usize) -> u64 {
    lane_elem_indices.iter().flatten().count() as u64 * elem_bytes as u64
}

/// Shared-memory bank-conflict analysis: returns the number of
/// *processing cycles* the access takes (1 = conflict-free; `d` = d-way
/// conflict serialised into `d` replays). Lanes reading the **same**
/// address broadcast and do not conflict.
pub fn shared_conflict_cycles(
    lane_elem_indices: &[Option<usize>],
    elem_bytes: usize,
    banks: u32,
) -> u64 {
    debug_assert!(banks.is_power_of_two());
    debug_assert!(
        lane_elem_indices.len() <= 64,
        "a warp access has at most warp_size (<= 64) lanes"
    );
    // bank of an element = (byte_addr / 4) % banks; a conflict is two
    // lanes on the same bank with *different* words. A warp has at most
    // 64 lanes, so fixed-size scratch + linear scans beat any hashing
    // (this function runs once per warp access — the simulator's
    // hottest path).
    let mut seen_words: [u64; 64] = [0; 64];
    let mut seen_count = 0usize;
    let mut per_bank: [u8; 64] = [0; 64];
    let mask = (banks - 1) as u64;
    for idx in lane_elem_indices.iter().flatten() {
        let word = (idx * elem_bytes / 4) as u64;
        if !seen_words[..seen_count].contains(&word) {
            seen_words[seen_count] = word;
            seen_count += 1;
            per_bank[(word & mask) as usize] += 1;
        }
    }
    per_bank.iter().map(|&c| c as u64).max().unwrap_or(0).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes(v: impl IntoIterator<Item = usize>) -> Vec<Option<usize>> {
        v.into_iter().map(Some).collect()
    }

    #[test]
    fn init_mask_tracks_words() {
        let mut m = InitMask::uninit(130);
        assert!(!m.is_set(0) && !m.is_set(129));
        m.set(0);
        m.set(64);
        m.set(129);
        assert!(m.is_set(0) && m.is_set(64) && m.is_set(129));
        assert!(!m.is_set(1) && !m.is_set(65) && !m.is_set(128));
        let full = InitMask::Full;
        assert!(full.is_set(12345));
    }

    #[test]
    fn contiguous_f32_warp_is_one_transaction() {
        // 32 lanes × 4 B = 128 B = one segment (when aligned).
        let idx = lanes(0..32);
        assert_eq!(warp_transactions(&idx, 4, 128), 1);
    }

    #[test]
    fn contiguous_f64_warp_is_two_transactions() {
        let idx = lanes(0..32);
        assert_eq!(warp_transactions(&idx, 8, 128), 2);
    }

    #[test]
    fn misaligned_contiguous_costs_one_extra() {
        let idx = lanes(1..33); // crosses a segment boundary
        assert_eq!(warp_transactions(&idx, 4, 128), 2);
    }

    #[test]
    fn large_stride_is_fully_serialised() {
        // Stride 512 elements (2 KiB in f32): one segment per lane.
        let idx = lanes((0..32).map(|l| l * 512));
        assert_eq!(warp_transactions(&idx, 4, 128), 32);
        assert_eq!(warp_transactions(&idx, 8, 128), 32);
    }

    #[test]
    fn permutation_within_segment_still_one_transaction() {
        // Coalescing is address-set based, not order based.
        let mut v: Vec<usize> = (0..32).collect();
        v.reverse();
        assert_eq!(warp_transactions(&lanes(v), 4, 128), 1);
    }

    #[test]
    fn inactive_lanes_cost_nothing() {
        let mut idx = lanes(0..32);
        for lane in idx.iter_mut().skip(1) {
            *lane = None;
        }
        assert_eq!(warp_transactions(&idx, 4, 128), 1);
        assert_eq!(warp_useful_bytes(&idx, 4), 4);
        let none: Vec<Option<usize>> = vec![None; 32];
        assert_eq!(warp_transactions(&none, 4, 128), 0);
    }

    #[test]
    fn useful_bytes_counts_active_lanes() {
        assert_eq!(warp_useful_bytes(&lanes(0..32), 8), 256);
    }

    #[test]
    fn shared_conflict_free_contiguous() {
        assert_eq!(shared_conflict_cycles(&lanes(0..32), 4, 32), 1);
    }

    #[test]
    fn shared_stride_two_f32_is_two_way() {
        let idx = lanes((0..32).map(|l| l * 2));
        assert_eq!(shared_conflict_cycles(&idx, 4, 32), 2);
    }

    #[test]
    fn shared_stride_32_is_fully_serialised() {
        let idx = lanes((0..32).map(|l| l * 32));
        assert_eq!(shared_conflict_cycles(&idx, 4, 32), 32);
    }

    #[test]
    fn shared_broadcast_is_free() {
        let idx = lanes(std::iter::repeat_n(7, 32));
        assert_eq!(shared_conflict_cycles(&idx, 4, 32), 1);
    }

    #[test]
    fn shared_f64_stride_one_two_way_on_32_banks() {
        // 8-byte elements at stride 1: words 0,1 | 2,3 | ... lanes 0 and
        // 16 share bank 0 with different words → 2-way.
        let idx = lanes(0..32);
        assert_eq!(shared_conflict_cycles(&idx, 8, 32), 2);
    }

    #[test]
    fn empty_access_costs_one_cycle_floor() {
        let none: Vec<Option<usize>> = vec![None; 32];
        assert_eq!(shared_conflict_cycles(&none, 4, 32), 1);
    }
}

/// [`warp_transactions`] for a fully-active warp (no predication) —
/// avoids the `Option` wrapping on the simulator's hottest path.
pub fn warp_transactions_dense(lane_elem_indices: &[usize], elem_bytes: usize, segment_bytes: usize) -> u64 {
    debug_assert!(segment_bytes.is_power_of_two());
    debug_assert!(lane_elem_indices.len() <= 64);
    let mut segments: [u64; 64] = [u64::MAX; 64];
    let mut count = 0usize;
    for &idx in lane_elem_indices {
        let seg = (idx * elem_bytes / segment_bytes) as u64;
        if !segments[..count].contains(&seg) {
            segments[count] = seg;
            count += 1;
        }
    }
    count as u64
}

/// [`shared_conflict_cycles`] for a fully-active warp.
pub fn shared_conflict_cycles_dense(lane_elem_indices: &[usize], elem_bytes: usize, banks: u32) -> u64 {
    debug_assert!(banks.is_power_of_two());
    debug_assert!(lane_elem_indices.len() <= 64);
    let mut seen_words: [u64; 64] = [0; 64];
    let mut seen_count = 0usize;
    let mut per_bank: [u8; 64] = [0; 64];
    let mask = (banks - 1) as u64;
    for &idx in lane_elem_indices {
        let word = (idx * elem_bytes / 4) as u64;
        if !seen_words[..seen_count].contains(&word) {
            seen_words[seen_count] = word;
            seen_count += 1;
            per_bank[(word & mask) as usize] += 1;
        }
    }
    per_bank.iter().map(|&c| c as u64).max().unwrap_or(0).max(1)
}

#[cfg(test)]
mod dense_tests {
    use super::*;

    #[test]
    fn dense_variants_agree_with_masked() {
        let idx: Vec<usize> = (0..32).map(|l| l * 3 + 5).collect();
        let masked: Vec<Option<usize>> = idx.iter().map(|&i| Some(i)).collect();
        for eb in [4usize, 8] {
            assert_eq!(
                warp_transactions_dense(&idx, eb, 128),
                warp_transactions(&masked, eb, 128)
            );
            assert_eq!(
                shared_conflict_cycles_dense(&idx, eb, 32),
                shared_conflict_cycles(&masked, eb, 32)
            );
        }
    }
}
