//! # gpu-sim
//!
//! A functional GPU execution simulator with an analytic timing model —
//! the hardware substrate for reproducing *"A Scalable Tridiagonal
//! Solver for GPUs"* (ICPP 2011) without a physical GTX480.
//!
//! ## What "functional simulator" means here
//!
//! Kernels written against [`exec::BlockKernel`] **really execute**:
//! every load, store and arithmetic result is bit-exact, so numerical
//! outputs can be tested against host references. While executing, the
//! engine counts the micro-architectural events that first-order GPU
//! performance is made of:
//!
//! - global-memory **transactions** via a per-warp coalescing analyzer
//!   ([`memory::warp_transactions`]),
//! - shared-memory **bank conflicts** ([`memory::shared_conflict_cycles`]),
//! - FLOPs, barriers, and dependent global-access **rounds**.
//!
//! A [`sanitizer`] (opt-in via [`exec::ExecConfig`] and
//! [`exec::launch_with`]) additionally checks the accesses the way
//! `compute-sanitizer` would: shared-memory races between barriers,
//! out-of-bounds lanes, uninitialized reads and divergent barriers.
//!
//! Orthogonally, [`exec::ExecConfig::record_plan`] captures every
//! access as an affine index expression in a small IR ([`plan`]); the
//! static [`lint`](mod@lint) passes then *prove* coalescing, bank-conflict,
//! barrier, race and bounds properties from the expressions alone and
//! predict the transaction counters in closed form — predictions the
//! golden-counter suite cross-checks against the dynamic counters.
//!
//! [`occupancy::occupancy`] computes residency from the block footprint
//! and [`timing::time_kernel`] turns counters + residency into modeled
//! microseconds with a three-term wave model (compute / bandwidth /
//! latency-chain) plus fixed launch overhead.
//!
//! ## Example
//!
//! ```
//! use gpu_sim::exec::{launch, BlockCtx, BlockKernel, GpuMemory, LaunchConfig, BufId};
//! use gpu_sim::spec::{DeviceSpec, Precision};
//! use gpu_sim::timing::time_kernel;
//!
//! /// y[i] = a * x[i] (one block-sized chunk each).
//! struct Saxpy { a: f32, x: BufId, y: BufId, n: usize }
//!
//! impl BlockKernel<f32> for Saxpy {
//!     fn run_block(&self, ctx: &mut BlockCtx<'_, f32>) -> gpu_sim::error::Result<()> {
//!         let base = ctx.block_id * ctx.threads;
//!         let count = ctx.threads.min(self.n.saturating_sub(base));
//!         if count == 0 { return Ok(()); }
//!         let idx: Vec<usize> = (base..base + count).collect();
//!         let mut v = Vec::new();
//!         ctx.ld(self.x, &idx, &mut v)?;
//!         for e in &mut v { *e *= self.a; }
//!         ctx.flops(count as u64);
//!         ctx.st(self.y, &idx, &v)
//!     }
//! }
//!
//! let spec = DeviceSpec::gtx480();
//! let mut mem = GpuMemory::new();
//! let x = mem.alloc_from(vec![2.0f32; 4096]);
//! let y = mem.alloc(4096);
//! let cfg = LaunchConfig::new("saxpy", 4096 / 256, 256);
//! let result = launch(&spec, &cfg, &Saxpy { a: 3.0, x, y, n: 4096 }, &mut mem).unwrap();
//! assert_eq!(mem.read(y).unwrap()[17], 6.0);
//! let t = time_kernel(&spec, &result, Precision::F32);
//! assert!(t.total_us > 0.0);
//! ```

#![warn(missing_docs)]

pub mod counters;
pub mod error;
pub mod exec;
pub mod group;
pub mod json;
pub mod lint;
pub mod memory;
pub mod metrics;
pub mod occupancy;
pub mod plan;
pub mod sanitizer;
pub mod spec;
pub mod timing;
pub mod trace;

pub use counters::{BlockStats, KernelStats, PhaseStats, SanitizerCounts, PRELUDE_PHASE};
pub use error::{Result, SimError};
pub use exec::{
    launch, launch_with, BlockCtx, BlockKernel, BufId, Elem, ExecConfig, GpuMemory, LaunchConfig,
    LaunchResult,
};
pub use group::{DeviceGroup, DeviceStream, GroupTimeline, StreamEvent, StreamOp};
pub use lint::{lint, Diagnostic, DiagClass, LintConfig, LintReport, Prediction, Severity};
pub use plan::{AccessKind, AccessPlan, AffinePiece, BlockPlan, PlanEvent, PlannedAccess};
pub use sanitizer::{AccessSite, MemSpace, RaceKind, SanitizerViolation};
pub use occupancy::{occupancy, Limiter, Occupancy};
pub use spec::{DeviceSpec, Precision};
pub use timing::{time_kernel, BoundKind, KernelTiming, PhaseTiming};
pub use json::Json;
pub use metrics::{validate_metrics_json, Histogram, MetricsRegistry, METRICS_SCHEMA};
pub use trace::{validate_chrome_json, Trace, TraceEvent};
