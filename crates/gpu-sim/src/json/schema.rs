//! Shared building blocks for the strict "collect all findings" JSON
//! validators (`tridiag.solve_plan/v1`, `tridiag.sharded_plan/v1`,
//! `tridiag.service_report/v1`, `tridiag.metrics/v1`,
//! `tridiag.events/v1`, Chrome traces).
//!
//! Every validator in the workspace follows the same shape: walk a
//! parsed [`Json`] document, push a human-readable problem string for
//! every violation, return the full list (empty = valid). [`Check`]
//! centralizes the field-shape half of that work — presence, type,
//! integer-ness, enum membership — so each validator is left with only
//! its domain invariants (partition coverage, counter cross-sums,
//! span/total equalities).

use super::Json;

/// A field-shape checker over one JSON object, accumulating problems.
///
/// `ctx` is prefixed to every problem (e.g. `"shards[3] "`), matching
/// the attribution style the hand-rolled validators used. Accessors
/// return `Some(value)` only when the field exists *and* has the right
/// shape; otherwise they record a problem and return `None`, letting
/// callers chain domain checks on the happy path.
pub struct Check<'a> {
    doc: &'a Json,
    ctx: String,
    problems: Vec<String>,
}

impl<'a> Check<'a> {
    /// Checker over `doc` with no context prefix.
    pub fn new(doc: &'a Json) -> Check<'a> {
        Check::with_ctx(doc, "")
    }

    /// Checker over `doc`, prefixing every problem with `ctx`.
    pub fn with_ctx(doc: &'a Json, ctx: impl Into<String>) -> Check<'a> {
        Check {
            doc,
            ctx: ctx.into(),
            problems: Vec::new(),
        }
    }

    /// The document under inspection.
    pub fn doc(&self) -> &'a Json {
        self.doc
    }

    /// Record a problem (context prefix applied).
    pub fn problem(&mut self, msg: impl Into<String>) {
        self.problems.push(format!("{}{}", self.ctx, msg.into()));
    }

    /// Record `msg` unless `ok` holds.
    pub fn ensure(&mut self, ok: bool, msg: impl Into<String>) {
        if !ok {
            self.problem(msg);
        }
    }

    /// Require `doc.schema == expected`.
    pub fn schema(&mut self, expected: &str) -> &mut Self {
        match self.doc.get("schema").and_then(Json::as_str) {
            Some(s) if s == expected => {}
            Some(other) => self.problem(format!("schema is {other:?}, expected {expected:?}")),
            None => self.problem("missing string field \"schema\"".to_string()),
        }
        self
    }

    /// Require a string field.
    pub fn req_str(&mut self, key: &str) -> Option<&'a str> {
        match self.doc.get(key).and_then(Json::as_str) {
            Some(s) => Some(s),
            None => {
                self.problem(format!("missing string field {key:?}"));
                None
            }
        }
    }

    /// Require several string fields at once (values discarded).
    pub fn req_strs(&mut self, keys: &[&str]) {
        for key in keys {
            self.req_str(key);
        }
    }

    /// Require a string field drawn from `allowed`. The problem message
    /// names the offending value and the allowed set.
    pub fn str_enum(&mut self, key: &str, allowed: &[&str]) -> Option<&'a str> {
        match self.doc.get(key).and_then(Json::as_str) {
            Some(s) if allowed.contains(&s) => Some(s),
            Some(other) => {
                let list = allowed
                    .iter()
                    .map(|a| format!("{a:?}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                self.problem(format!("field {key:?} is {other:?}, expected one of {list}"));
                None
            }
            None => {
                self.problem(format!("missing string field {key:?}"));
                None
            }
        }
    }

    /// Require a numeric field.
    pub fn req_num(&mut self, key: &str) -> Option<f64> {
        match self.doc.get(key).and_then(Json::as_num) {
            Some(v) => Some(v),
            None => {
                self.problem(format!("missing numeric field {key:?}"));
                None
            }
        }
    }

    /// Require a non-negative integer-valued number.
    pub fn req_uint(&mut self, key: &str) -> Option<u64> {
        match self.doc.get(key).and_then(Json::as_num) {
            Some(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
            Some(v) => {
                self.problem(format!("field {key:?} is not a non-negative integer: {v}"));
                None
            }
            None => {
                self.problem(format!("missing numeric field {key:?}"));
                None
            }
        }
    }

    /// Require several non-negative integer fields at once.
    pub fn req_uints(&mut self, keys: &[&str]) {
        for key in keys {
            self.req_uint(key);
        }
    }

    /// Require a strictly positive integer-valued number.
    pub fn req_pos_int(&mut self, key: &str) -> Option<u64> {
        match self.doc.get(key).and_then(Json::as_num) {
            Some(v) if v > 0.0 && v.fract() == 0.0 => Some(v as u64),
            _ => {
                self.problem(format!("missing positive integer {key:?}"));
                None
            }
        }
    }

    /// Require a finite number `>= min`.
    pub fn num_ge(&mut self, key: &str, min: f64) -> Option<f64> {
        match self.doc.get(key).and_then(Json::as_num) {
            Some(v) if v.is_finite() && v >= min => Some(v),
            Some(v) => {
                self.problem(format!("field {key:?} must be a finite number >= {min}, got {v}"));
                None
            }
            None => {
                self.problem(format!("missing numeric field {key:?}"));
                None
            }
        }
    }

    /// Require a boolean field.
    pub fn req_bool(&mut self, key: &str) -> Option<bool> {
        match self.doc.get(key) {
            Some(Json::Bool(b)) => Some(*b),
            _ => {
                self.problem(format!("missing boolean field {key:?}"));
                None
            }
        }
    }

    /// Require an array field; a missing or non-array field records a
    /// problem and yields an empty slice so iteration still type-checks.
    pub fn req_arr(&mut self, key: &str) -> &'a [Json] {
        match self.doc.get(key).and_then(Json::as_arr) {
            Some(items) => items,
            None => {
                self.problem(format!("missing array field {key:?}"));
                &[]
            }
        }
    }

    /// Require an object field.
    pub fn req_obj(&mut self, key: &str) -> Option<&'a Json> {
        match self.doc.get(key) {
            Some(obj @ Json::Obj(_)) => Some(obj),
            _ => {
                self.problem(format!("missing object field {key:?}"));
                None
            }
        }
    }

    /// Child checker over `doc` with `ctx` appended to this checker's
    /// prefix; fold it back in with [`Check::absorb`].
    pub fn child(&self, doc: &'a Json, ctx: impl Into<String>) -> Check<'a> {
        Check::with_ctx(doc, format!("{}{}", self.ctx, ctx.into()))
    }

    /// Merge a child checker's problems (already prefixed) into this one.
    pub fn absorb(&mut self, child: Check<'a>) {
        self.problems.extend(child.problems);
    }

    /// Merge externally produced problems, applying a context prefix.
    pub fn absorb_with(&mut self, prefix: &str, problems: Vec<String>) {
        for p in problems {
            self.problems.push(format!("{}{prefix}{p}", self.ctx));
        }
    }

    /// `true` when no problems were recorded so far.
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }

    /// Consume the checker, returning every problem found.
    pub fn finish(self) -> Vec<String> {
        self.problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn clean_document_yields_no_problems() {
        let doc = parse(r#"{"schema":"x/v1","name":"a","count":3,"on":true,"items":[1]}"#).unwrap();
        let mut c = Check::new(&doc);
        c.schema("x/v1");
        assert_eq!(c.req_str("name"), Some("a"));
        assert_eq!(c.req_uint("count"), Some(3));
        assert_eq!(c.req_bool("on"), Some(true));
        assert_eq!(c.req_arr("items").len(), 1);
        assert!(c.finish().is_empty());
    }

    #[test]
    fn every_shape_violation_is_collected() {
        let doc = parse(r#"{"schema":"y/v1","count":-1,"kind":"zebra"}"#).unwrap();
        let mut c = Check::new(&doc);
        c.schema("x/v1");
        c.req_str("name");
        c.req_uint("count");
        c.str_enum("kind", &["horse", "donkey"]);
        c.req_bool("on");
        c.req_arr("items");
        c.req_obj("meta");
        c.req_pos_int("count");
        c.num_ge("count", 0.0);
        let problems = c.finish();
        assert_eq!(problems.len(), 9, "{problems:?}");
        assert!(problems[0].contains("expected \"x/v1\""));
        assert!(problems.iter().any(|p| p.contains("\"kind\" is \"zebra\"")));
    }

    #[test]
    fn context_prefixes_compose_through_children() {
        let doc = parse(r#"{"shards":[{"n":"oops"}]}"#).unwrap();
        let mut c = Check::new(&doc);
        let shards = c.req_arr("shards");
        for (i, sh) in shards.iter().enumerate() {
            let mut child = c.child(sh, format!("shards[{i}] "));
            child.req_uint("n");
            c.absorb(child);
        }
        let problems = c.finish();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].starts_with("shards[0] "), "{problems:?}");
    }

    #[test]
    fn absorb_with_prefixes_nested_validator_output() {
        let doc = parse("{}").unwrap();
        let mut c = Check::new(&doc);
        c.absorb_with("reference: ", vec!["missing field \"x\"".into()]);
        assert_eq!(c.finish(), vec!["reference: missing field \"x\""]);
    }
}
