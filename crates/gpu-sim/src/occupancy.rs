//! Occupancy calculation — how many blocks/warps stay resident per SM.
//!
//! The paper leans on occupancy twice: tiled PCR's small footprint
//! "enables higher occupancy and as such larger number of thread blocks
//! can be scheduled per SM" (Section III-A), while Davidson-style
//! coarse-grained tiling "suffers from large shared memory requirement
//! \[and\] fewer concurrent thread blocks" (Section V). This module is a
//! faithful CUDA-occupancy-calculator-style model: resident blocks per
//! SM are the minimum over four resource limits.

use crate::error::{Result, SimError};
use crate::spec::DeviceSpec;

/// What capped the resident block count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// `max_threads_per_sm / threads_per_block`.
    Threads,
    /// `max_blocks_per_sm`.
    Blocks,
    /// Shared memory per SM / per block.
    SharedMemory,
    /// Register file / (regs per thread × threads per block).
    Registers,
}

/// Residency of one kernel configuration on one SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupancy {
    /// Blocks resident simultaneously on one SM.
    pub blocks_per_sm: u32,
    /// Warps resident simultaneously on one SM.
    pub warps_per_sm: u32,
    /// Which resource is the binding constraint.
    pub limiter: Limiter,
}

impl Occupancy {
    /// Occupancy as a fraction of the device's maximum resident warps.
    pub fn fraction(&self, spec: &DeviceSpec) -> f64 {
        let max_warps = spec.max_threads_per_sm / spec.warp_size;
        self.warps_per_sm as f64 / max_warps as f64
    }
}

/// Compute the residency of a kernel with the given per-block resource
/// footprint.
///
/// # Errors
/// [`SimError::InvalidLaunch`] if a single block already exceeds a
/// device limit (too many threads, too much shared memory, too many
/// registers), i.e. the kernel cannot launch at all.
pub fn occupancy(
    spec: &DeviceSpec,
    threads_per_block: u32,
    shared_bytes_per_block: usize,
    regs_per_thread: u32,
) -> Result<Occupancy> {
    if threads_per_block == 0 {
        return Err(SimError::InvalidLaunch("zero threads per block".into()));
    }
    if threads_per_block > spec.max_threads_per_block {
        return Err(SimError::InvalidLaunch(format!(
            "{threads_per_block} threads/block exceeds device limit {}",
            spec.max_threads_per_block
        )));
    }
    if shared_bytes_per_block > spec.max_shared_per_block {
        return Err(SimError::InvalidLaunch(format!(
            "{shared_bytes_per_block} B shared/block exceeds device limit {}",
            spec.max_shared_per_block
        )));
    }
    let regs_per_block = regs_per_thread as u64 * threads_per_block as u64;
    if regs_per_block > spec.registers_per_sm as u64 {
        return Err(SimError::InvalidLaunch(format!(
            "{regs_per_block} registers/block exceeds SM register file {}",
            spec.registers_per_sm
        )));
    }

    let by_threads = spec.max_threads_per_sm / threads_per_block;
    let by_blocks = spec.max_blocks_per_sm;
    let by_shared = spec
        .shared_mem_per_sm
        .checked_div(shared_bytes_per_block)
        .map_or(u32::MAX, |v| v as u32);
    let by_regs = (spec.registers_per_sm as u64)
        .checked_div(regs_per_block)
        .map_or(u32::MAX, |v| v as u32);

    let mut blocks = by_threads;
    let mut limiter = Limiter::Threads;
    for (cand, lim) in [
        (by_blocks, Limiter::Blocks),
        (by_shared, Limiter::SharedMemory),
        (by_regs, Limiter::Registers),
    ] {
        if cand < blocks {
            blocks = cand;
            limiter = lim;
        }
    }
    if blocks == 0 {
        // A single block fits (checked above) but not concurrently with
        // anything else — still runs, one at a time.
        blocks = 1;
    }
    let warps = blocks * threads_per_block.div_ceil(spec.warp_size);
    Ok(Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        limiter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gtx480() -> DeviceSpec {
        DeviceSpec::gtx480()
    }

    #[test]
    fn small_blocks_limited_by_block_slots() {
        // 64-thread blocks, no shared memory: 1536/64 = 24 by threads,
        // but only 8 block slots.
        let o = occupancy(&gtx480(), 64, 0, 16).unwrap();
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.limiter, Limiter::Blocks);
        assert_eq!(o.warps_per_sm, 16);
    }

    #[test]
    fn large_blocks_limited_by_threads() {
        let o = occupancy(&gtx480(), 512, 0, 16).unwrap();
        assert_eq!(o.blocks_per_sm, 3);
        assert_eq!(o.limiter, Limiter::Threads);
        assert_eq!(o.warps_per_sm, 48);
        assert!((o.fraction(&gtx480()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_limits_coarse_tiles() {
        // The Davidson-style coarse tile: a block hogging 40 KiB of
        // shared memory leaves room for only one block per SM.
        let o = occupancy(&gtx480(), 256, 40 * 1024, 16).unwrap();
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, Limiter::SharedMemory);
        // Versus a fine tile of 6 KiB: 8 blocks resident.
        let o2 = occupancy(&gtx480(), 256, 6 * 1024, 16).unwrap();
        assert_eq!(o2.blocks_per_sm, 6); // 1536 / 256 threads is the cap here
        assert_eq!(o2.limiter, Limiter::Threads);
        assert!(o2.fraction(&gtx480()) > 4.0 * o.fraction(&gtx480()));
    }

    #[test]
    fn register_pressure_limits() {
        let o = occupancy(&gtx480(), 512, 0, 63).unwrap();
        assert_eq!(o.limiter, Limiter::Registers);
        assert_eq!(o.blocks_per_sm, 1); // 32768/(63*512) = 1
    }

    #[test]
    fn impossible_launches_rejected() {
        assert!(occupancy(&gtx480(), 0, 0, 16).is_err());
        assert!(occupancy(&gtx480(), 2048, 0, 16).is_err());
        assert!(occupancy(&gtx480(), 32, 49 * 1024, 16).is_err());
        assert!(occupancy(&gtx480(), 1024, 0, 64).is_err()); // 65536 regs
    }

    #[test]
    fn single_heavy_block_still_runs() {
        // Exactly at the shared-memory capacity: one block at a time.
        let o = occupancy(&gtx480(), 128, 48 * 1024, 16).unwrap();
        assert_eq!(o.blocks_per_sm, 1);
    }

    #[test]
    fn warp_rounding() {
        // 48 threads = 2 warps (rounded up).
        let o = occupancy(&gtx480(), 48, 0, 16).unwrap();
        assert_eq!(o.warps_per_sm, o.blocks_per_sm * 2);
    }

    #[test]
    fn gtx280_smaller_shared_memory() {
        let d = DeviceSpec::gtx280();
        assert!(occupancy(&d, 128, 20 * 1024, 16).is_err());
        let o = occupancy(&d, 128, 8 * 1024, 16).unwrap();
        assert_eq!(o.blocks_per_sm, 2);
    }
}
