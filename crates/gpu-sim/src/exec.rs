//! The block-synchronous kernel execution engine.
//!
//! Kernels are written in explicit SIMT style: a [`BlockKernel`]
//! describes what *one thread block* does, and every memory operation is
//! block-wide — a slice of per-thread indices (one per active thread,
//! chunked into warps internally). This keeps the functional semantics
//! exact, makes coalescing/bank-conflict analysis cheap and precise, and
//! matches how the paper's kernels are actually structured (lockstep
//! phases separated by `__syncthreads()`).
//!
//! Blocks execute sequentially on the host, which is one of the valid
//! CUDA interleavings: CUDA guarantees nothing about cross-block
//! ordering within a launch, and no kernel in this workspace
//! communicates across blocks. Determinism is total — every run of a
//! kernel produces identical results *and* identical counters.

use crate::counters::{BlockStats, KernelStats, PhaseStats, PRELUDE_PHASE};
use crate::error::{Result, SimError};
use crate::memory::{shared_conflict_cycles_dense, warp_transactions_dense, InitMask};
use crate::occupancy::{occupancy, Occupancy};
use crate::plan::{AccessKind, AccessPlan, PlanRecorder};
use crate::sanitizer::{MemSpace, Sanitizer, SanitizerViolation};
use crate::spec::DeviceSpec;
use std::fmt::Debug;

/// Element types storable in simulated GPU memory.
pub trait Elem: Copy + Default + Debug + PartialEq + Send + Sync + 'static {
    /// Size in bytes, used for traffic accounting.
    const BYTES: usize;
}

impl Elem for f32 {
    const BYTES: usize = 4;
}
impl Elem for f64 {
    const BYTES: usize = 8;
}
impl Elem for u32 {
    const BYTES: usize = 4;
}

/// Handle to a global-memory buffer in a [`GpuMemory`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufId(usize);

/// Simulated device global memory: an arena of typed buffers.
///
/// Every buffer carries a word-granular [`InitMask`] shadow recording
/// which elements have ever been written — by a kernel store or a host
/// upload. The sanitizer's initcheck reads it; maintenance is cheap
/// enough to run unconditionally, so the shadow stays accurate even
/// when only some launches are sanitized.
#[derive(Debug, Default)]
pub struct GpuMemory<S: Elem> {
    buffers: Vec<Vec<S>>,
    init: Vec<InitMask>,
    resident_bytes: usize,
    peak_resident_bytes: usize,
}

impl<S: Elem> GpuMemory<S> {
    /// Empty arena.
    pub fn new() -> Self {
        Self {
            buffers: Vec::new(),
            init: Vec::new(),
            resident_bytes: 0,
            peak_resident_bytes: 0,
        }
    }

    fn account_alloc(&mut self, len: usize) {
        self.resident_bytes += len * S::BYTES;
        self.peak_resident_bytes = self.peak_resident_bytes.max(self.resident_bytes);
    }

    /// Allocate a buffer of `len` elements. Functionally zero-filled
    /// (deterministic), but *uninitialized* to the sanitizer — like
    /// `cudaMalloc`, whose contents are undefined.
    pub fn alloc(&mut self, len: usize) -> BufId {
        self.buffers.push(vec![S::default(); len]);
        self.init.push(InitMask::uninit(len));
        self.account_alloc(len);
        BufId(self.buffers.len() - 1)
    }

    /// Upload host data ("cudaMemcpy host→device"); fully initialized.
    pub fn alloc_from(&mut self, data: Vec<S>) -> BufId {
        self.account_alloc(data.len());
        self.buffers.push(data);
        self.init.push(InitMask::Full);
        BufId(self.buffers.len() - 1)
    }

    /// Release a buffer ("cudaFree"): its storage is dropped and its
    /// bytes leave the resident set, but the `BufId` index slot is kept
    /// so later allocations keep their identities (any access through
    /// the freed id fails as out-of-bounds on a zero-length buffer).
    pub fn free(&mut self, id: BufId) -> Result<()> {
        let buf = self
            .buffers
            .get_mut(id.0)
            .ok_or(SimError::BadBuffer { buffer: id.0 })?;
        self.resident_bytes = self.resident_bytes.saturating_sub(buf.len() * S::BYTES);
        *buf = Vec::new();
        self.init[id.0] = InitMask::uninit(0);
        Ok(())
    }

    /// Bytes currently allocated across live (un-freed) buffers.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// High-water mark of [`Self::resident_bytes`] over the arena's
    /// lifetime — the quantity a plan verifier's liveness-based peak
    /// prediction must match exactly.
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_resident_bytes
    }

    /// Is element `i` of `id` initialized (host-uploaded or stored to)?
    pub fn is_word_init(&self, id: BufId, i: usize) -> bool {
        self.init.get(id.0).is_some_and(|m| m.is_set(i))
    }

    /// Read back a buffer ("cudaMemcpy device→host").
    pub fn read(&self, id: BufId) -> Result<&[S]> {
        self.buffers
            .get(id.0)
            .map(|v| v.as_slice())
            .ok_or(SimError::BadBuffer { buffer: id.0 })
    }

    /// Length of a buffer.
    pub fn len(&self, id: BufId) -> Result<usize> {
        Ok(self.read(id)?.len())
    }

    /// `true` if the arena holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// Host-side mutable access (outside kernels; e.g. to refresh an RHS
    /// between solves without re-alloc).
    pub fn write(&mut self, id: BufId, data: &[S]) -> Result<()> {
        let buf = self
            .buffers
            .get_mut(id.0)
            .ok_or(SimError::BadBuffer { buffer: id.0 })?;
        if buf.len() != data.len() {
            return Err(SimError::LaneMismatch {
                indices: buf.len(),
                values: data.len(),
            });
        }
        buf.copy_from_slice(data);
        self.init[id.0] = InitMask::Full;
        Ok(())
    }
}

/// Execution options orthogonal to the launch geometry — the sanitizer
/// toggles and the access-plan recorder. Pass to [`launch_with`];
/// [`launch`] uses the default (everything off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Run the kernel under the sanitizer (see [`crate::sanitizer`]).
    pub sanitize: bool,
    /// Abort the launch with [`SimError::Sanitizer`] at the first
    /// violation instead of collecting them into
    /// [`LaunchResult::violations`]. Out-of-bounds accesses always
    /// abort regardless.
    pub fail_fast: bool,
    /// Cap on *recorded* violation reports per block (counters in
    /// [`crate::counters::SanitizerCounts`] are never capped).
    pub max_violations: usize,
    /// Record every access's affine index expression into an
    /// [`AccessPlan`] attached to [`LaunchResult::plan`], as input for
    /// the static lint passes in [`crate::lint`](mod@crate::lint).
    pub record_plan: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            sanitize: false,
            fail_fast: false,
            max_violations: 64,
            record_plan: false,
        }
    }
}

impl ExecConfig {
    /// Sanitizer on, collect-all mode.
    pub fn sanitized() -> Self {
        Self {
            sanitize: true,
            ..Self::default()
        }
    }

    /// Sanitizer on, abort at the first violation.
    pub fn fail_fast() -> Self {
        Self {
            sanitize: true,
            fail_fast: true,
            ..Self::default()
        }
    }

    /// Plan recording on (sanitizer off).
    pub fn planned() -> Self {
        Self {
            record_plan: true,
            ..Self::default()
        }
    }

    /// Everything on: sanitizer plus plan recording — the `--check`
    /// configuration.
    pub fn checked() -> Self {
        Self {
            sanitize: true,
            record_plan: true,
            ..Self::default()
        }
    }
}

/// Launch configuration (the `<<<grid, block>>>` pair plus a register
/// estimate for the occupancy model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Kernel name for reports.
    pub name: &'static str,
    /// Number of thread blocks.
    pub grid_blocks: usize,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Registers per thread (occupancy input; nvcc would report this).
    pub regs_per_thread: u32,
}

impl LaunchConfig {
    /// Convenience constructor.
    pub fn new(name: &'static str, grid_blocks: usize, threads_per_block: u32) -> Self {
        Self {
            name,
            grid_blocks,
            threads_per_block,
            regs_per_thread: 32,
        }
    }

    /// Override the register estimate.
    pub fn with_regs(mut self, regs: u32) -> Self {
        self.regs_per_thread = regs;
        self
    }
}

/// What one thread block may do: the body of the simulated kernel.
pub trait BlockKernel<S: Elem> {
    /// Execute one block. All global/shared accesses go through `ctx`.
    fn run_block(&self, ctx: &mut BlockCtx<'_, S>) -> Result<()>;
}

/// Per-block execution context handed to [`BlockKernel::run_block`].
pub struct BlockCtx<'a, S: Elem> {
    /// This block's index in the grid.
    pub block_id: usize,
    /// Total blocks in the grid.
    pub grid_blocks: usize,
    /// Threads in this block.
    pub threads: usize,
    mem: &'a mut GpuMemory<S>,
    shared: Vec<S>,
    warp_size: usize,
    transaction_bytes: usize,
    banks: u32,
    max_shared_bytes: usize,
    stats: BlockStats,
    cur_phase: &'static str,
    phase_stats: Vec<PhaseStats>,
    san: Option<Sanitizer>,
    rec: Option<PlanRecorder>,
}

impl<'a, S: Elem> BlockCtx<'a, S> {
    /// Apply one counter update to both the block total and the current
    /// phase's entry — the mechanism behind the exact per-phase
    /// breakdown invariant ([`KernelStats::phase_sum_mismatches`]).
    fn bump(&mut self, f: impl Fn(&mut BlockStats)) {
        f(&mut self.stats);
        let cur = self.cur_phase;
        let idx = match self.phase_stats.iter().position(|p| p.label == cur) {
            Some(i) => i,
            None => {
                self.phase_stats.push(PhaseStats {
                    label: cur,
                    stats: BlockStats::default(),
                });
                self.phase_stats.len() - 1
            }
        };
        f(&mut self.phase_stats[idx].stats);
    }

    /// Block-wide global load: `idx[t]` is the element index thread `t`
    /// reads. `idx.len()` may be any count up to the block size (tail
    /// threads simply idle). Counts one dependent access round, and one
    /// transaction per distinct 128-byte segment per warp.
    pub fn ld(&mut self, buf: BufId, idx: &[usize], out: &mut Vec<S>) -> Result<()> {
        self.account_global(buf, idx, true)?;
        if let Some(rec) = self.rec.as_mut() {
            rec.access(AccessKind::GlobalLoad, Some(buf.0), self.mem.buffers[buf.0].len(), idx);
        }
        if let Some(san) = self.san.as_mut() {
            let mask = &self.mem.init[buf.0];
            for (lane, &i) in idx.iter().enumerate() {
                if !mask.is_set(i) {
                    san.global_uninit_read(lane, buf.0, i);
                }
            }
        }
        let data = self.mem.read(buf)?;
        out.clear();
        out.reserve(idx.len());
        for &i in idx {
            out.push(data[i]);
        }
        Ok(())
    }

    /// Block-wide global store: thread `t` writes `vals[t]` to
    /// `idx[t]`. Duplicate indices within one store are a data race in
    /// real CUDA; here the last lane deterministically wins.
    pub fn st(&mut self, buf: BufId, idx: &[usize], vals: &[S]) -> Result<()> {
        if idx.len() != vals.len() {
            return Err(SimError::LaneMismatch {
                indices: idx.len(),
                values: vals.len(),
            });
        }
        self.account_global(buf, idx, false)?;
        if let Some(rec) = self.rec.as_mut() {
            rec.access(AccessKind::GlobalStore, Some(buf.0), self.mem.buffers[buf.0].len(), idx);
        }
        let data = self
            .mem
            .buffers
            .get_mut(buf.0)
            .ok_or(SimError::BadBuffer { buffer: buf.0 })?;
        for (&i, &v) in idx.iter().zip(vals) {
            data[i] = v;
        }
        let mask = &mut self.mem.init[buf.0];
        for &i in idx {
            mask.set(i);
        }
        Ok(())
    }

    fn account_global(&mut self, buf: BufId, idx: &[usize], is_load: bool) -> Result<()> {
        let len = self.mem.len(buf)?;
        if let Some(pos) = idx.iter().position(|&i| i >= len) {
            if let Some(san) = self.san.as_mut() {
                return Err(san.oob(pos, idx[pos], len, MemSpace::Global, Some(buf.0)));
            }
            return Err(SimError::GlobalOutOfBounds {
                buffer: buf.0,
                index: idx[pos],
                len,
            });
        }
        if idx.len() > self.threads {
            return Err(SimError::InvalidLaunch(format!(
                "{} lanes exceed block size {}",
                idx.len(),
                self.threads
            )));
        }
        let mut transactions = 0u64;
        for warp in idx.chunks(self.warp_size) {
            transactions += warp_transactions_dense(warp, S::BYTES, self.transaction_bytes);
        }
        let bytes = idx.len() as u64 * S::BYTES as u64;
        self.bump(|s| {
            if is_load {
                s.global_load_transactions += transactions;
                s.global_load_bytes += bytes;
            } else {
                s.global_store_transactions += transactions;
                s.global_store_bytes += bytes;
            }
            s.global_access_rounds += 1;
        });
        Ok(())
    }

    /// Allocate `len` elements of shared memory; returns the base offset
    /// within the block's shared array. Mirrors `extern __shared__`
    /// carving.
    pub fn shared_alloc(&mut self, len: usize) -> Result<usize> {
        let base = self.shared.len();
        let new_bytes = (base + len) * S::BYTES;
        if new_bytes > self.max_shared_bytes {
            return Err(SimError::SharedOverflow {
                requested: new_bytes,
                capacity: self.max_shared_bytes,
            });
        }
        self.shared.resize(base + len, S::default());
        self.bump(|s| s.shared_bytes_peak = s.shared_bytes_peak.max(new_bytes as u64));
        if let Some(san) = self.san.as_mut() {
            san.on_shared_alloc(base + len);
        }
        if let Some(rec) = self.rec.as_mut() {
            rec.alloc(base, len);
        }
        Ok(base)
    }

    /// Block-wide shared load with bank-conflict accounting.
    pub fn sh_ld(&mut self, idx: &[usize], out: &mut Vec<S>) -> Result<()> {
        self.account_shared(idx)?;
        if let Some(rec) = self.rec.as_mut() {
            rec.access(AccessKind::SharedLoad, None, self.shared.len(), idx);
        }
        if let Some(san) = self.san.as_mut() {
            san.shared_access(idx, false);
        }
        out.clear();
        out.reserve(idx.len());
        for &i in idx {
            out.push(self.shared[i]);
        }
        Ok(())
    }

    /// Block-wide shared store with bank-conflict accounting.
    pub fn sh_st(&mut self, idx: &[usize], vals: &[S]) -> Result<()> {
        if idx.len() != vals.len() {
            return Err(SimError::LaneMismatch {
                indices: idx.len(),
                values: vals.len(),
            });
        }
        self.account_shared(idx)?;
        if let Some(rec) = self.rec.as_mut() {
            rec.access(AccessKind::SharedStore, None, self.shared.len(), idx);
        }
        if let Some(san) = self.san.as_mut() {
            san.shared_access(idx, true);
        }
        for (&i, &v) in idx.iter().zip(vals) {
            self.shared[i] = v;
        }
        Ok(())
    }

    /// Direct (host-speed) view of shared memory for *functional* reads
    /// within already-accounted phases — e.g. the per-thread serial part
    /// of a fused kernel whose traffic was accounted at the vector ops.
    pub fn shared_slice(&self) -> &[S] {
        &self.shared
    }

    fn account_shared(&mut self, idx: &[usize]) -> Result<()> {
        if let Some(pos) = idx.iter().position(|&i| i >= self.shared.len()) {
            let len = self.shared.len();
            if let Some(san) = self.san.as_mut() {
                return Err(san.oob(pos, idx[pos], len, MemSpace::Shared, None));
            }
            return Err(SimError::SharedOutOfBounds {
                index: idx[pos],
                len,
            });
        }
        let mut replays = 0u64;
        for warp in idx.chunks(self.warp_size) {
            replays += shared_conflict_cycles_dense(warp, S::BYTES, self.banks) - 1;
        }
        self.bump(|s| {
            s.shared_accesses += 1;
            s.bank_conflict_replays += replays;
        });
        Ok(())
    }

    /// `__syncthreads()` — every lane of the block arrives.
    pub fn sync(&mut self) {
        self.bump(|s| s.barriers += 1);
        if let Some(rec) = self.rec.as_mut() {
            rec.barrier(self.threads, self.threads);
        }
        if let Some(san) = self.san.as_mut() {
            san.barrier();
        }
    }

    /// A barrier only the given lanes reach — how divergent kernels
    /// misuse `__syncthreads()` inside non-uniform control flow. Under
    /// the sanitizer a strict subset of the block's lanes is reported
    /// as [`SanitizerViolation::BarrierDivergence`]; without it this is
    /// identical to [`BlockCtx::sync`] (the simulator cannot hang).
    pub fn sync_arrive(&mut self, arrived: &[usize]) {
        self.bump(|s| s.barriers += 1);
        if let Some(rec) = self.rec.as_mut() {
            let mut seen = vec![false; self.threads];
            let mut count = 0usize;
            for &l in arrived {
                if l < self.threads && !seen[l] {
                    seen[l] = true;
                    count += 1;
                }
            }
            rec.barrier(count, self.threads);
        }
        if let Some(san) = self.san.as_mut() {
            san.barrier_arrive(arrived);
        }
    }

    /// Label the phase subsequent accesses belong to. Counters bumped
    /// after this call are attributed to `label` in
    /// [`KernelStats::phases`] (in addition to the totals); activity
    /// before the first call lands in
    /// [`crate::counters::PRELUDE_PHASE`]. The label also tags plan
    /// recording and lint attribution when
    /// [`ExecConfig::record_plan`] is on.
    pub fn phase(&mut self, label: &'static str) {
        self.cur_phase = label;
        if let Some(rec) = self.rec.as_mut() {
            rec.set_phase(label);
        }
    }

    /// Account `n` floating-point operations (block-wide total).
    pub fn flops(&mut self, n: u64) {
        self.bump(|s| s.flops += n);
    }

    /// Counters accumulated so far (final values are returned by
    /// [`launch`]).
    pub fn stats(&self) -> &BlockStats {
        &self.stats
    }
}

/// Result of a kernel launch: functional effects live in the
/// [`GpuMemory`], performance effects here.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchResult {
    /// Kernel name (from the config).
    pub name: &'static str,
    /// Aggregated counters.
    pub stats: KernelStats,
    /// Residency achieved (from the worst block's shared footprint).
    pub occupancy: Occupancy,
    /// Shared memory per block in bytes (max over blocks).
    pub shared_bytes_per_block: usize,
    /// Echo of the launch configuration.
    pub config: LaunchConfig,
    /// Sanitizer violation reports, capped per block by
    /// [`ExecConfig::max_violations`]; empty when the sanitizer was off
    /// or the kernel is clean. Uncapped tallies live in
    /// `stats.total.sanitizer`.
    pub violations: Vec<SanitizerViolation>,
    /// The recorded affine access plan (input for [`crate::lint`](mod@crate::lint));
    /// `None` unless [`ExecConfig::record_plan`] was set.
    pub plan: Option<AccessPlan>,
}

/// Launch `kernel` over `cfg.grid_blocks` blocks against `mem` with the
/// default [`ExecConfig`] (sanitizer off).
///
/// Functionally exact: after this returns, `mem` holds precisely what a
/// real device would. Counters are exact per the access-level model.
pub fn launch<S: Elem, K: BlockKernel<S>>(
    spec: &DeviceSpec,
    cfg: &LaunchConfig,
    kernel: &K,
    mem: &mut GpuMemory<S>,
) -> Result<LaunchResult> {
    launch_with(spec, cfg, &ExecConfig::default(), kernel, mem)
}

/// [`launch`] with explicit [`ExecConfig`] execution options — the
/// entry point for sanitized runs.
pub fn launch_with<S: Elem, K: BlockKernel<S>>(
    spec: &DeviceSpec,
    cfg: &LaunchConfig,
    exec: &ExecConfig,
    kernel: &K,
    mem: &mut GpuMemory<S>,
) -> Result<LaunchResult> {
    if cfg.grid_blocks == 0 {
        return Err(SimError::InvalidLaunch("empty grid".into()));
    }
    if cfg.threads_per_block == 0 || cfg.threads_per_block > spec.max_threads_per_block {
        return Err(SimError::InvalidLaunch(format!(
            "{} threads/block unsupported (max {})",
            cfg.threads_per_block, spec.max_threads_per_block
        )));
    }

    let mut stats = KernelStats {
        blocks: cfg.grid_blocks,
        threads_per_block: cfg.threads_per_block,
        rounds_per_block: Vec::with_capacity(cfg.grid_blocks),
        flops_per_block: Vec::with_capacity(cfg.grid_blocks),
        bytes_per_block: Vec::with_capacity(cfg.grid_blocks),
        ..Default::default()
    };
    let mut shared_peak = 0usize;
    let mut violations: Vec<SanitizerViolation> = Vec::new();
    let mut plan = exec.record_plan.then(|| AccessPlan {
        kernel: cfg.name,
        grid_blocks: cfg.grid_blocks,
        threads_per_block: cfg.threads_per_block as usize,
        elem_bytes: S::BYTES,
        warp_size: spec.warp_size as usize,
        segment_bytes: spec.transaction_bytes,
        banks: spec.shared_banks,
        blocks: Vec::with_capacity(cfg.grid_blocks),
    });

    for block_id in 0..cfg.grid_blocks {
        let mut ctx = BlockCtx {
            block_id,
            grid_blocks: cfg.grid_blocks,
            threads: cfg.threads_per_block as usize,
            mem,
            shared: Vec::new(),
            warp_size: spec.warp_size as usize,
            transaction_bytes: spec.transaction_bytes,
            banks: spec.shared_banks,
            max_shared_bytes: spec.max_shared_per_block,
            stats: BlockStats::default(),
            cur_phase: PRELUDE_PHASE,
            phase_stats: Vec::new(),
            san: exec.sanitize.then(|| {
                Sanitizer::new(
                    cfg.name,
                    block_id,
                    cfg.threads_per_block as usize,
                    spec.warp_size as usize,
                    exec.max_violations,
                )
            }),
            rec: exec.record_plan.then(|| PlanRecorder::new(block_id)),
        };
        kernel.run_block(&mut ctx)?;
        stats.merge_block_phases(&ctx.phase_stats);
        let mut b = ctx.stats;
        if let (Some(plan), Some(rec)) = (plan.as_mut(), ctx.rec) {
            plan.blocks.push(rec.finish());
        }
        if let Some(mut san) = ctx.san {
            b.sanitizer = san.counts();
            let mut v = san.take_violations();
            if exec.fail_fast && !v.is_empty() {
                return Err(SimError::Sanitizer(v.remove(0)));
            }
            violations.append(&mut v);
        }
        shared_peak = shared_peak.max(b.shared_bytes_peak as usize);
        stats.rounds_per_block.push(b.global_access_rounds);
        stats.flops_per_block.push(b.flops);
        stats.bytes_per_block.push(b.global_bytes());
        stats.total.merge(&b);
    }

    let occ = occupancy(spec, cfg.threads_per_block, shared_peak, cfg.regs_per_thread)?;
    Ok(LaunchResult {
        name: cfg.name,
        stats,
        occupancy: occ,
        shared_bytes_per_block: shared_peak,
        config: cfg.clone(),
        violations,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Kernel: out[i] = in[i] * 2 over one block-sized chunk per block.
    struct DoubleKernel {
        input: BufId,
        output: BufId,
        n: usize,
    }

    impl BlockKernel<f64> for DoubleKernel {
        fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
            let base = ctx.block_id * ctx.threads;
            let count = ctx.threads.min(self.n.saturating_sub(base));
            if count == 0 {
                return Ok(());
            }
            let idx: Vec<usize> = (base..base + count).collect();
            let mut vals = Vec::new();
            ctx.ld(self.input, &idx, &mut vals)?;
            for v in &mut vals {
                *v *= 2.0;
            }
            ctx.flops(count as u64);
            ctx.st(self.output, &idx, &vals)?;
            Ok(())
        }
    }

    fn gtx480() -> DeviceSpec {
        DeviceSpec::gtx480()
    }

    #[test]
    fn functional_result_exact() {
        let mut mem = GpuMemory::new();
        let n = 1000;
        let input = mem.alloc_from((0..n).map(|i| i as f64).collect());
        let output = mem.alloc(n);
        let cfg = LaunchConfig::new("double", n.div_ceil(256), 256);
        let k = DoubleKernel { input, output, n };
        let res = launch(&gtx480(), &cfg, &k, &mut mem).unwrap();
        let out = mem.read(output).unwrap();
        for (i, v) in out.iter().enumerate().take(n) {
            assert_eq!(*v, 2.0 * i as f64);
        }
        assert_eq!(res.stats.blocks, 4);
        assert_eq!(res.stats.total.flops, n as u64);
    }

    #[test]
    fn coalesced_traffic_counts() {
        let mut mem = GpuMemory::new();
        let n = 256;
        let input = mem.alloc_from(vec![1.0f64; n]);
        let output = mem.alloc(n);
        let cfg = LaunchConfig::new("double", 1, 256);
        let k = DoubleKernel { input, output, n };
        let res = launch(&gtx480(), &cfg, &k, &mut mem).unwrap();
        // 256 aligned f64 lanes = 8 warps × 2 segments, for ld and st.
        assert_eq!(res.stats.total.global_load_transactions, 16);
        assert_eq!(res.stats.total.global_store_transactions, 16);
        assert_eq!(res.stats.total.global_load_bytes, 2048);
        assert_eq!(res.stats.total.global_access_rounds, 2);
        assert!((res.stats.total.coalescing_efficiency(128) - 1.0).abs() < 1e-12);
    }

    /// Kernel demonstrating strided (uncoalesced) access.
    struct StridedKernel {
        input: BufId,
        stride: usize,
    }
    impl BlockKernel<f64> for StridedKernel {
        fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
            let idx: Vec<usize> = (0..ctx.threads).map(|t| t * self.stride).collect();
            let mut vals = Vec::new();
            ctx.ld(self.input, &idx, &mut vals)?;
            Ok(())
        }
    }

    #[test]
    fn strided_access_blows_up_transactions() {
        let mut mem = GpuMemory::new();
        let input = mem.alloc(32 * 64);
        let cfg = LaunchConfig::new("strided", 1, 32);
        let res = launch(
            &gtx480(),
            &cfg,
            &StridedKernel { input, stride: 64 },
            &mut mem,
        )
        .unwrap();
        assert_eq!(res.stats.total.global_load_transactions, 32);
        assert!(res.stats.total.coalescing_efficiency(128) < 0.07);
    }

    /// Kernel exercising shared memory and barriers.
    struct SharedReverse {
        buf: BufId,
    }
    impl BlockKernel<f64> for SharedReverse {
        fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
            let t = ctx.threads;
            let sh = ctx.shared_alloc(t)?;
            let idx: Vec<usize> = (0..t).collect();
            let mut vals = Vec::new();
            ctx.ld(self.buf, &idx, &mut vals)?;
            let sh_idx: Vec<usize> = idx.iter().map(|i| sh + i).collect();
            ctx.sh_st(&sh_idx, &vals)?;
            ctx.sync();
            let rev: Vec<usize> = (0..t).map(|i| sh + t - 1 - i).collect();
            ctx.sh_ld(&rev, &mut vals)?;
            ctx.st(self.buf, &idx, &vals)?;
            Ok(())
        }
    }

    #[test]
    fn shared_memory_and_barriers() {
        let mut mem = GpuMemory::new();
        let buf = mem.alloc_from((0..64).map(|i| i as f64).collect());
        let cfg = LaunchConfig::new("rev", 1, 64);
        let res = launch(&gtx480(), &cfg, &SharedReverse { buf }, &mut mem).unwrap();
        let out = mem.read(buf).unwrap();
        for (i, v) in out.iter().enumerate().take(64) {
            assert_eq!(*v, (63 - i) as f64);
        }
        assert_eq!(res.stats.total.barriers, 1);
        assert_eq!(res.stats.total.shared_accesses, 2);
        assert_eq!(res.shared_bytes_per_block, 64 * 8);
        // f64 stride-1: 2-way conflicts on both store and reversed load.
        assert!(res.stats.total.bank_conflict_replays > 0);
    }

    /// Kernel with explicit phases around the SharedReverse structure.
    struct PhasedReverse {
        buf: BufId,
    }
    impl BlockKernel<f64> for PhasedReverse {
        fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
            let t = ctx.threads;
            let sh = ctx.shared_alloc(t)?; // before any phase() → prelude
            let idx: Vec<usize> = (0..t).collect();
            let mut vals = Vec::new();
            ctx.phase("load");
            ctx.ld(self.buf, &idx, &mut vals)?;
            let sh_idx: Vec<usize> = idx.iter().map(|i| sh + i).collect();
            ctx.sh_st(&sh_idx, &vals)?;
            ctx.sync();
            ctx.phase("store");
            let rev: Vec<usize> = (0..t).map(|i| sh + t - 1 - i).collect();
            ctx.sh_ld(&rev, &mut vals)?;
            ctx.flops(t as u64);
            ctx.st(self.buf, &idx, &vals)?;
            Ok(())
        }
    }

    #[test]
    fn phase_labels_split_counters_exactly() {
        let mut mem = GpuMemory::new();
        let buf = mem.alloc_from((0..64).map(|i| i as f64).collect());
        let cfg = LaunchConfig::new("phased", 2, 32);
        let res = launch(&gtx480(), &cfg, &PhasedReverse { buf }, &mut mem).unwrap();
        let labels: Vec<_> = res.stats.phases.iter().map(|p| p.label).collect();
        assert_eq!(labels, vec![PRELUDE_PHASE, "load", "store"]);
        let prelude = &res.stats.phases[0].stats;
        assert_eq!(prelude.shared_bytes_peak, 32 * 8);
        assert_eq!(prelude.global_access_rounds, 0);
        let load = &res.stats.phases[1].stats;
        assert_eq!(load.global_load_transactions, res.stats.total.global_load_transactions);
        assert_eq!(load.barriers, res.stats.total.barriers);
        assert_eq!(load.flops, 0);
        let store = &res.stats.phases[2].stats;
        assert_eq!(store.flops, res.stats.total.flops);
        assert_eq!(store.global_store_bytes, res.stats.total.global_store_bytes);
        assert_eq!(res.stats.phase_sum_mismatches(), Vec::<String>::new());
    }

    #[test]
    fn unphased_kernel_lands_in_prelude() {
        let mut mem = GpuMemory::new();
        let n = 256;
        let input = mem.alloc_from(vec![1.0f64; n]);
        let output = mem.alloc(n);
        let cfg = LaunchConfig::new("double", 1, 256);
        let k = DoubleKernel { input, output, n };
        let res = launch(&gtx480(), &cfg, &k, &mut mem).unwrap();
        assert_eq!(res.stats.phases.len(), 1);
        assert_eq!(res.stats.phases[0].label, PRELUDE_PHASE);
        assert_eq!(res.stats.phases[0].stats, res.stats.total);
        assert_eq!(res.stats.phase_sum_mismatches(), Vec::<String>::new());
    }

    #[test]
    fn recorded_plan_lints_clean_and_predicts_counters() {
        let mut mem = GpuMemory::new();
        let buf = mem.alloc_from((0..64).map(|i| i as f64).collect());
        let cfg = LaunchConfig::new("rev", 1, 64);
        let res = launch_with(
            &gtx480(),
            &cfg,
            &ExecConfig::planned(),
            &SharedReverse { buf },
            &mut mem,
        )
        .unwrap();
        let plan = res.plan.as_ref().expect("plan recorded");
        assert_eq!(plan.kernel, "rev");
        assert_eq!(plan.blocks.len(), 1);
        let report = crate::lint::lint(plan, &crate::lint::LintConfig::default());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.cross_check(&res.stats), Vec::<String>::new());
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut mem = GpuMemory::new();
        let input = mem.alloc(8);
        let cfg = LaunchConfig::new("oob", 1, 32);
        let err = launch(
            &gtx480(),
            &cfg,
            &StridedKernel { input, stride: 2 },
            &mut mem,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::GlobalOutOfBounds { .. }));
    }

    #[test]
    fn shared_overflow_detected() {
        struct Hog;
        impl BlockKernel<f64> for Hog {
            fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
                ctx.shared_alloc(7000)?; // 56 KB > 48 KB
                Ok(())
            }
        }
        let mut mem = GpuMemory::<f64>::new();
        let cfg = LaunchConfig::new("hog", 1, 32);
        assert!(matches!(
            launch(&gtx480(), &cfg, &Hog, &mut mem).unwrap_err(),
            SimError::SharedOverflow { .. }
        ));
    }

    #[test]
    fn launch_validation() {
        let mut mem = GpuMemory::<f64>::new();
        let input = mem.alloc(32);
        let k = StridedKernel { input, stride: 1 };
        assert!(launch(&gtx480(), &LaunchConfig::new("x", 0, 32), &k, &mut mem).is_err());
        assert!(launch(&gtx480(), &LaunchConfig::new("x", 1, 0), &k, &mut mem).is_err());
        assert!(launch(&gtx480(), &LaunchConfig::new("x", 1, 2048), &k, &mut mem).is_err());
    }

    #[test]
    fn memory_arena_tracks_resident_and_peak_bytes() {
        let mut mem = GpuMemory::<f64>::new();
        assert_eq!(mem.resident_bytes(), 0);
        let a = mem.alloc(100); // 800 bytes
        let b = mem.alloc_from(vec![0.0; 50]); // +400 = 1200
        assert_eq!(mem.resident_bytes(), 1200);
        assert_eq!(mem.peak_resident_bytes(), 1200);
        mem.free(a).unwrap();
        assert_eq!(mem.resident_bytes(), 400);
        assert_eq!(mem.peak_resident_bytes(), 1200, "peak is a high-water mark");
        let c = mem.alloc(25); // +200 = 600, below the old peak
        assert_eq!(mem.resident_bytes(), 600);
        assert_eq!(mem.peak_resident_bytes(), 1200);
        // Freed ids stay stable: the slot is kept, reads see length 0.
        assert_eq!(mem.len(a).unwrap(), 0);
        assert_ne!(b, c);
        // Double-free is harmless; freeing a bogus id is a typed error.
        mem.free(a).unwrap();
        assert!(mem.free(BufId(99)).is_err());
        assert_eq!(mem.resident_bytes(), 600);
    }

    #[test]
    fn memory_arena_host_ops() {
        let mut mem = GpuMemory::<f32>::new();
        assert!(mem.is_empty());
        let a = mem.alloc(4);
        assert_eq!(mem.len(a).unwrap(), 4);
        mem.write(a, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(mem.read(a).unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(mem.write(a, &[1.0]).is_err());
        assert!(mem.read(BufId(9)).is_err());
    }
}

#[cfg(test)]
mod shared_slice_tests {
    use super::*;

    /// `shared_slice` exposes the functional content for serial phases
    /// whose traffic was already accounted by the vector ops.
    struct PeekKernel {
        buf: BufId,
    }
    impl BlockKernel<f64> for PeekKernel {
        fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
            let base = ctx.shared_alloc(4)?;
            ctx.sh_st(&[base, base + 1, base + 2, base + 3], &[1.0, 2.0, 3.0, 4.0])?;
            let sum: f64 = ctx.shared_slice()[base..base + 4].iter().sum();
            ctx.st(self.buf, &[0], &[sum])?;
            Ok(())
        }
    }

    #[test]
    fn shared_slice_reads_functional_state() {
        let mut mem = GpuMemory::new();
        let buf = mem.alloc(1);
        let cfg = LaunchConfig::new("peek", 1, 32);
        launch(&DeviceSpec::gtx480(), &cfg, &PeekKernel { buf }, &mut mem).unwrap();
        assert_eq!(mem.read(buf).unwrap()[0], 10.0);
    }
}
