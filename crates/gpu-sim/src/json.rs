//! Minimal hand-rolled JSON tree: writer with correct string escaping
//! and a strict recursive-descent parser.
//!
//! The offline dependency allowlist has no serde, so everything in the
//! workspace that needs machine-readable output (the Chrome-trace
//! exporter, `solve --json`, the `BENCH_solver.json` perf baseline)
//! goes through this module. It is deliberately small: a [`Json`] value
//! enum, `Display` for serialization, [`parse`] for round-trips and
//! validation. Numbers are `f64` (all our payloads fit); object keys
//! keep insertion order so output is deterministic.

use std::collections::BTreeMap;
use std::fmt;

pub mod schema;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (serialized via the shortest `f64` form; integral
    /// values print without a fractional part).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list (insertion order kept —
    /// determinism matters for committed baselines and golden tests).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: `Json::Str` from anything stringy.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: `Json::Num` from any integer or float.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Object field lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, or `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, or `None` for non-numbers.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, or `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no Inf/NaN; null is the least-bad spelling.
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse error: a message plus the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            msg: msg.into(),
            at: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            self.err(format!("expected {text:?}"))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("bad \\u escape");
                            };
                            self.pos += 4;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return self.err("bad escape"),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the lead byte.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| JsonError {
                            msg: "invalid UTF-8".into(),
                            at: start,
                        })?;
                    let c = s.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return self.err("unescaped control character");
                    }
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(n) => Ok(Json::Num(n)),
            Err(_) => self.err(format!("bad number {text:?}")),
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                let mut seen: BTreeMap<String, ()> = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    if seen.insert(key.clone(), ()).is_some() {
                        return self.err(format!("duplicate key {key:?}"));
                    }
                    self.skip_ws();
                    self.expect(b':')?;
                    let v = self.value()?;
                    fields.push((key, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after value");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_value_kind() {
        let v = Json::Obj(vec![
            ("s".into(), Json::str("a \"quoted\"\nline\\path")),
            ("n".into(), Json::num(42)),
            ("f".into(), Json::num(1.5)),
            ("neg".into(), Json::num(-3e-4)),
            ("b".into(), Json::Bool(true)),
            ("z".into(), Json::Null),
            (
                "arr".into(),
                Json::Arr(vec![Json::num(1), Json::str("x"), Json::Arr(vec![])]),
            ),
            ("obj".into(), Json::Obj(vec![])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::num(1024).to_string(), "1024");
        assert_eq!(Json::num(0.25).to_string(), "0.25");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,\"a\":2}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parses_whitespace_escapes_and_unicode() {
        let v = parse(" { \"k\" : [ 1 , \"\\u00e9\\t\" , true ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap()[1].as_str().unwrap(),
            "é\t"
        );
        assert_eq!(v.get("k").unwrap().as_arr().unwrap()[0].as_num(), Some(1.0));
    }
}
