//! Negative lint tests: seeded bad access plans (and two deliberately
//! bad kernels recorded end-to-end) that each violate exactly one
//! property, asserting the matching pass fires its diagnostic — and
//! only its diagnostic — with correct kernel/phase attribution.

use gpu_sim::exec::launch_with;
use gpu_sim::plan::AccessKind;
use gpu_sim::{
    lint, AccessPlan, BlockCtx, BlockKernel, DeviceSpec, DiagClass, ExecConfig, GpuMemory,
    LaunchConfig, LintConfig, LintReport, Result, Severity,
};

fn lint_default(plan: &AccessPlan) -> LintReport {
    lint(plan, &LintConfig::default())
}

/// Exactly one diagnostic of `class`, and return it.
fn the_one(report: &LintReport, class: DiagClass) -> &gpu_sim::Diagnostic {
    assert_eq!(
        report.diagnostics.len(),
        1,
        "expected exactly one diagnostic, got {:#?}",
        report.diagnostics
    );
    let d = &report.diagnostics[0];
    assert_eq!(d.class, class);
    assert_eq!(d.severity, Severity::Error);
    d
}

// ---------------------------------------------------------------------
// Seeded plans, one per diagnostic class.
// ---------------------------------------------------------------------

#[test]
fn stride_2_global_load_fires_uncoalesced() {
    let mut plan = AccessPlan::synthetic("gather_k", 32, 8);
    let idx: Vec<usize> = (0..32).map(|l| l * 2).collect();
    plan.block_mut(0)
        .push_access(AccessKind::GlobalLoad, "gather", Some(0), 1 << 20, &idx);
    let r = lint_default(&plan);
    let d = the_one(&r, DiagClass::UncoalescedGlobal);
    assert_eq!(d.kernel, "gather_k");
    assert_eq!(d.phase, "gather");
    assert!(d.expr.contains("ld"), "{}", d.expr);
    assert!(d.expr.contains("2*"), "{}", d.expr);
    assert!(d.message.contains("stride-2"), "{}", d.message);
    // Stride-2 f64 touches 64 elements = 512 B = 4 segments; coalesced
    // minimum for 32 × 8 B is 2 — both numbers appear in the message.
    assert!(d.message.contains("costs 4 transactions"), "{}", d.message);
    assert!(d.message.contains("minimum 2"), "{}", d.message);
    assert_eq!(r.prediction.global_load_transactions, 4);
}

#[test]
fn two_way_bank_conflict_fires_only_at_lowered_threshold() {
    // f64 at unit stride: element l starts at word 2l — a benign 2-way
    // conflict every f64 kernel carries.
    let mut plan = AccessPlan::synthetic("axpy_k", 32, 8);
    let idx: Vec<usize> = (0..32).collect();
    plan.block_mut(0)
        .push_access(AccessKind::SharedLoad, "fold", None, 64, &idx);

    // Default threshold (32): prediction counts the replay, no finding.
    let relaxed = lint_default(&plan);
    assert!(relaxed.is_clean(), "{relaxed}");
    assert_eq!(relaxed.prediction.bank_conflict_replays, 1);

    // Hunting mode: threshold 2 turns the same plan into a finding.
    let strict = lint(
        &plan,
        &LintConfig {
            bank_conflict_threshold: 2,
            ..LintConfig::default()
        },
    );
    let d = the_one(&strict, DiagClass::BankConflict);
    assert_eq!(d.kernel, "axpy_k");
    assert_eq!(d.phase, "fold");
    assert!(d.message.contains("2-way"), "{}", d.message);
}

#[test]
fn thirty_two_way_bank_conflict_fires_at_default_threshold() {
    // f64 stride 16: word stride 32 ≡ 0 (mod 32) — full serialization.
    let mut plan = AccessPlan::synthetic("transpose_k", 32, 8);
    let idx: Vec<usize> = (0..32).map(|l| l * 16).collect();
    plan.block_mut(0)
        .push_access(AccessKind::SharedStore, "scatter", None, 512, &idx);
    let r = lint_default(&plan);
    let d = the_one(&r, DiagClass::BankConflict);
    assert_eq!(d.phase, "scatter");
    assert!(d.expr.contains("sh_st"), "{}", d.expr);
    assert!(d.message.contains("32-way"), "{}", d.message);
    assert_eq!(r.prediction.bank_conflict_replays, 31);
}

#[test]
fn missing_barrier_between_overlapping_write_and_read_is_a_race() {
    let t = 32usize;
    let write: Vec<usize> = (0..t).collect();
    let read: Vec<usize> = (0..t).map(|l| (l + 1) % t).collect();

    // Producer writes [0, 32), consumer reads the shifted range with no
    // barrier in between: lane l reads the word lane l+1 wrote.
    let mut racy = AccessPlan::synthetic("shift_k", t, 8);
    let b = racy.block_mut(0);
    b.push_alloc("produce", 0, t);
    b.push_access(AccessKind::SharedStore, "produce", None, t, &write);
    b.push_access(AccessKind::SharedLoad, "consume", None, t, &read);
    let r = lint_default(&racy);
    let d = the_one(&r, DiagClass::SharedRace);
    assert_eq!(d.kernel, "shift_k");
    assert_eq!(d.phase, "consume", "attributed to the later access");
    assert!(d.message.contains("read-after-write"), "{}", d.message);
    assert!(d.message.contains("phase `produce`"), "{}", d.message);

    // The identical plan with the barrier is clean.
    let mut fixed = AccessPlan::synthetic("shift_k", t, 8);
    let b = fixed.block_mut(0);
    b.push_alloc("produce", 0, t);
    b.push_access(AccessKind::SharedStore, "produce", None, t, &write);
    b.push_barrier("produce", t, t);
    b.push_access(AccessKind::SharedLoad, "consume", None, t, &read);
    assert!(lint_default(&fixed).is_clean());
}

#[test]
fn overlapping_affine_writes_without_barrier_are_a_waw_race() {
    // Two stores in one epoch whose ranges intersect on distinct lanes:
    // lane l writes 2l, then lane l writes 3l — element 6 is hit by
    // lane 3 and lane 2.
    let mut plan = AccessPlan::synthetic("overlap_k", 16, 8);
    let b = plan.block_mut(0);
    b.push_alloc("main", 0, 64);
    let first: Vec<usize> = (0..16).map(|l| l * 2).collect();
    let second: Vec<usize> = (0..16).map(|l| l * 3).collect();
    b.push_access(AccessKind::SharedStore, "main", None, 64, &first);
    b.push_access(AccessKind::SharedStore, "main", None, 64, &second);
    let r = lint_default(&plan);
    let d = the_one(&r, DiagClass::SharedRace);
    assert!(d.message.contains("write-after-write"), "{}", d.message);
}

#[test]
fn shared_oob_extent_fires_out_of_bounds() {
    let mut plan = AccessPlan::synthetic("spill_k", 32, 8);
    let b = plan.block_mut(0);
    b.push_alloc("load", 0, 64);
    // Max element 2·31 = 62 + offset 8 = 70 ≥ 64.
    let idx: Vec<usize> = (0..32).map(|l| 8 + l * 2).collect();
    b.push_access(AccessKind::SharedLoad, "load", None, 64, &idx);
    let r = lint_default(&plan);
    let d = the_one(&r, DiagClass::OutOfBounds);
    assert_eq!(d.kernel, "spill_k");
    assert_eq!(d.phase, "load");
    assert!(d.message.contains("[8, 70]"), "{}", d.message);
    assert!(d.message.contains("length 64"), "{}", d.message);
}

#[test]
fn subset_barrier_arrival_fires_divergence() {
    let mut plan = AccessPlan::synthetic("ragged_k", 64, 8);
    plan.block_mut(0).push_barrier("reduce", 63, 64);
    let r = lint_default(&plan);
    let d = the_one(&r, DiagClass::BarrierDivergence);
    assert_eq!(d.kernel, "ragged_k");
    assert_eq!(d.phase, "reduce");
    assert!(d.expr.contains("63/64"), "{}", d.expr);
}

#[test]
fn repeated_bad_expression_dedups_into_one_finding() {
    // The same stride-2 load issued 50 times (a streaming loop) is one
    // diagnostic with an occurrence count, not 50 findings.
    let mut plan = AccessPlan::synthetic("stream_k", 32, 8);
    let idx: Vec<usize> = (0..32).map(|l| l * 2).collect();
    for _ in 0..50 {
        plan.block_mut(0)
            .push_access(AccessKind::GlobalLoad, "stream", Some(0), 1 << 20, &idx);
    }
    let r = lint_default(&plan);
    let d = the_one(&r, DiagClass::UncoalescedGlobal);
    assert_eq!(d.occurrences, 50);
}

// ---------------------------------------------------------------------
// End-to-end: bad kernels recorded by the harness, not hand-seeded.
// ---------------------------------------------------------------------

/// Reads global memory at element stride 8 — the classic
/// array-of-structs mistake.
struct StridedLoadKernel {
    buf: gpu_sim::BufId,
}
impl BlockKernel<f64> for StridedLoadKernel {
    fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
        ctx.phase("gather");
        let idx: Vec<usize> = (0..ctx.threads).map(|t| t * 8).collect();
        let mut out = Vec::new();
        ctx.ld(self.buf, &idx, &mut out)?;
        Ok(())
    }
}

#[test]
fn recorded_strided_kernel_fires_uncoalesced_with_exact_prediction() {
    let mut mem = GpuMemory::<f64>::new();
    let buf = mem.alloc(32 * 8);
    let cfg = LaunchConfig::new("aos_gather", 1, 32);
    let res = launch_with(
        &DeviceSpec::gtx480(),
        &cfg,
        &ExecConfig::planned(),
        &StridedLoadKernel { buf },
        &mut mem,
    )
    .unwrap();
    let plan = res.plan.expect("plan recorded");
    let r = lint_default(&plan);
    let d = the_one(&r, DiagClass::UncoalescedGlobal);
    assert_eq!(d.kernel, "aos_gather");
    assert_eq!(d.phase, "gather");
    assert!(d.message.contains("stride-8"), "{}", d.message);
    // A bad kernel still cross-checks exactly: the diagnostics and the
    // counter model are independent outputs of the same pass.
    assert_eq!(r.cross_check(&res.stats), Vec::<String>::new());
}

/// The missing-barrier producer/consumer bug, recorded end-to-end: the
/// static race pass must convict it from the affine plan alone.
struct MissingBarrierKernel;
impl BlockKernel<f64> for MissingBarrierKernel {
    fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
        let t = ctx.threads;
        let base = ctx.shared_alloc(t)?;
        ctx.phase("produce");
        let idx: Vec<usize> = (0..t).map(|i| base + i).collect();
        ctx.sh_st(&idx, &vec![2.0; t])?;
        // BUG: no ctx.sync() before the shifted read.
        ctx.phase("consume");
        let shifted: Vec<usize> = (0..t).map(|i| base + (i + 1) % t).collect();
        let mut out = Vec::new();
        ctx.sh_ld(&shifted, &mut out)?;
        Ok(())
    }
}

#[test]
fn recorded_missing_barrier_kernel_fires_static_race() {
    let mut mem = GpuMemory::<f64>::new();
    let cfg = LaunchConfig::new("missing_barrier", 1, 32);
    let res = launch_with(
        &DeviceSpec::gtx480(),
        &cfg,
        &ExecConfig::planned(),
        &MissingBarrierKernel,
        &mut mem,
    )
    .unwrap();
    let r = lint_default(&res.plan.expect("plan recorded"));
    let d = the_one(&r, DiagClass::SharedRace);
    assert_eq!(d.kernel, "missing_barrier");
    assert_eq!(d.phase, "consume");
    assert!(d.message.contains("read-after-write"), "{}", d.message);
}
