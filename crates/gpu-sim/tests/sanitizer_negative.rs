//! Negative sanitizer tests: toy kernels that each commit exactly one
//! class of violation, asserting the sanitizer catches it with full
//! kernel/block/lane/address attribution — and that the same kernels
//! run silently with the sanitizer off.

use gpu_sim::exec::launch_with;
use gpu_sim::sanitizer::{MemSpace, RaceKind, SanitizerViolation};
use gpu_sim::{
    launch, BlockCtx, BlockKernel, BufId, DeviceSpec, ExecConfig, GpuMemory, LaunchConfig, Result,
    SimError,
};

fn spec() -> DeviceSpec {
    DeviceSpec::gtx480()
}

/// Writes the same shared word from two lanes without a barrier.
struct RacyWriteKernel;
impl BlockKernel<f64> for RacyWriteKernel {
    fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
        let base = ctx.shared_alloc(ctx.threads)?;
        // Lanes 0 and 1 both store to `base + 5`.
        let idx: Vec<usize> = (0..ctx.threads)
            .map(|t| if t == 1 { base + 5 } else { base + t })
            .collect();
        let vals = vec![1.0; ctx.threads];
        ctx.sh_st(&idx, &vals)?;
        ctx.sync();
        Ok(())
    }
}

#[test]
fn shared_write_write_race_is_reported() {
    let mut mem = GpuMemory::<f64>::new();
    let cfg = LaunchConfig::new("racy_write", 1, 32);
    let res = launch_with(&spec(), &cfg, &ExecConfig::sanitized(), &RacyWriteKernel, &mut mem)
        .unwrap();
    assert_eq!(res.stats.total.sanitizer.shared_races, 1);
    match &res.violations[0] {
        SanitizerViolation::SharedRace {
            site,
            kind,
            other_lane,
        } => {
            assert_eq!(site.kernel, "racy_write");
            assert_eq!(site.block, 0);
            assert_eq!(site.space, MemSpace::Shared);
            assert_eq!(site.addr, 5); // base is 0 for the first alloc
            // Lane 5's in-order store lands first, lane 1 dupes it...
            // position order: lane 1 writes base+5 before lane 5 does.
            assert_eq!(*kind, RaceKind::WriteAfterWrite);
            assert_eq!(site.lane, 5);
            assert_eq!(*other_lane, 1);
        }
        v => panic!("wrong violation: {v}"),
    }
    // Same kernel, sanitizer off: silent, zero counts.
    let mut mem2 = GpuMemory::<f64>::new();
    let res2 = launch(&spec(), &cfg, &RacyWriteKernel, &mut mem2).unwrap();
    assert!(res2.violations.is_empty());
    assert!(res2.stats.total.sanitizer.is_clean());
}

/// Reads a word another lane wrote in the same epoch (missing
/// `__syncthreads()` between producer and consumer).
struct MissingBarrierKernel;
impl BlockKernel<f64> for MissingBarrierKernel {
    fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
        let t = ctx.threads;
        let base = ctx.shared_alloc(t)?;
        let idx: Vec<usize> = (0..t).map(|i| base + i).collect();
        let vals = vec![2.0; t];
        ctx.sh_st(&idx, &vals)?;
        // BUG: no ctx.sync() before the shifted read.
        let shifted: Vec<usize> = (0..t).map(|i| base + (i + 1) % t).collect();
        let mut out = Vec::new();
        ctx.sh_ld(&shifted, &mut out)?;
        Ok(())
    }
}

#[test]
fn missing_barrier_read_is_a_race_fixed_by_sync() {
    let mut mem = GpuMemory::<f64>::new();
    let cfg = LaunchConfig::new("missing_barrier", 1, 32);
    let res = launch_with(
        &spec(),
        &cfg,
        &ExecConfig::sanitized(),
        &MissingBarrierKernel,
        &mut mem,
    )
    .unwrap();
    // Every lane reads its neighbour's fresh word: 32 RAW hazards.
    assert_eq!(res.stats.total.sanitizer.shared_races, 32);
    assert!(matches!(
        res.violations[0],
        SanitizerViolation::SharedRace {
            kind: RaceKind::ReadAfterWrite,
            ..
        }
    ));

    /// The corrected kernel: identical but for the barrier.
    struct Fixed;
    impl BlockKernel<f64> for Fixed {
        fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
            let t = ctx.threads;
            let base = ctx.shared_alloc(t)?;
            let idx: Vec<usize> = (0..t).map(|i| base + i).collect();
            ctx.sh_st(&idx, &vec![2.0; t])?;
            ctx.sync();
            let shifted: Vec<usize> = (0..t).map(|i| base + (i + 1) % t).collect();
            let mut out = Vec::new();
            ctx.sh_ld(&shifted, &mut out)?;
            Ok(())
        }
    }
    let mut mem2 = GpuMemory::<f64>::new();
    let res2 = launch_with(&spec(), &cfg, &ExecConfig::sanitized(), &Fixed, &mut mem2).unwrap();
    assert!(res2.violations.is_empty(), "{:?}", res2.violations);
    assert!(res2.stats.total.sanitizer.is_clean());
}

/// Global load one element past the end of the buffer.
struct GlobalOobKernel {
    buf: BufId,
    n: usize,
}
impl BlockKernel<f64> for GlobalOobKernel {
    fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
        // The classic off-by-one: lane t reads element t+1.
        let idx: Vec<usize> = (0..ctx.threads.min(self.n)).map(|t| t + 1).collect();
        let mut out = Vec::new();
        ctx.ld(self.buf, &idx, &mut out)?;
        Ok(())
    }
}

#[test]
fn global_oob_aborts_with_lane_attribution() {
    let mut mem = GpuMemory::<f64>::new();
    let buf = mem.alloc_from(vec![0.0; 32]);
    let cfg = LaunchConfig::new("global_oob", 1, 32);
    let err = launch_with(
        &spec(),
        &cfg,
        &ExecConfig::sanitized(),
        &GlobalOobKernel { buf, n: 32 },
        &mut mem,
    )
    .unwrap_err();
    match err {
        SimError::Sanitizer(SanitizerViolation::OutOfBounds { site, len }) => {
            assert_eq!(site.kernel, "global_oob");
            assert_eq!(site.lane, 31); // the last lane walks off the end
            assert_eq!(site.warp, 0);
            assert_eq!(site.addr, 32);
            assert_eq!(site.space, MemSpace::Global);
            assert_eq!(site.buffer, Some(0));
            assert_eq!(len, 32);
        }
        e => panic!("wrong error: {e}"),
    }
    // Without the sanitizer the legacy (unattributed) error fires.
    let mut mem2 = GpuMemory::<f64>::new();
    let buf2 = mem2.alloc_from(vec![0.0; 32]);
    let err2 = launch(&spec(), &cfg, &GlobalOobKernel { buf: buf2, n: 32 }, &mut mem2).unwrap_err();
    assert!(matches!(err2, SimError::GlobalOutOfBounds { .. }));
}

/// Shared store past the allocation.
struct SharedOobKernel;
impl BlockKernel<f64> for SharedOobKernel {
    fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
        let base = ctx.shared_alloc(16)?;
        let idx: Vec<usize> = (0..ctx.threads).map(|t| base + t).collect(); // 16..32 out
        ctx.sh_st(&idx, &vec![1.0; ctx.threads])?;
        Ok(())
    }
}

#[test]
fn shared_oob_aborts_with_lane_attribution() {
    let mut mem = GpuMemory::<f64>::new();
    let cfg = LaunchConfig::new("shared_oob", 1, 32);
    let err = launch_with(&spec(), &cfg, &ExecConfig::sanitized(), &SharedOobKernel, &mut mem)
        .unwrap_err();
    match err {
        SimError::Sanitizer(SanitizerViolation::OutOfBounds { site, len }) => {
            assert_eq!(site.kernel, "shared_oob");
            assert_eq!(site.lane, 16);
            assert_eq!(site.addr, 16);
            assert_eq!(site.space, MemSpace::Shared);
            assert_eq!(site.buffer, None);
            assert_eq!(len, 16);
        }
        e => panic!("wrong error: {e}"),
    }
}

/// Reads a freshly-allocated global buffer that nothing ever wrote.
struct UninitGlobalKernel {
    buf: BufId,
}
impl BlockKernel<f64> for UninitGlobalKernel {
    fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
        let idx: Vec<usize> = (0..ctx.threads).collect();
        let mut out = Vec::new();
        ctx.ld(self.buf, &idx, &mut out)?;
        Ok(())
    }
}

#[test]
fn uninit_global_read_is_reported_per_word() {
    let mut mem = GpuMemory::<f64>::new();
    let buf = mem.alloc(64); // cudaMalloc semantics: uninitialized
    let cfg = LaunchConfig::new("uninit_global", 1, 32);
    let res = launch_with(
        &spec(),
        &cfg,
        &ExecConfig::sanitized(),
        &UninitGlobalKernel { buf },
        &mut mem,
    )
    .unwrap();
    assert_eq!(res.stats.total.sanitizer.uninit_reads, 32);
    match &res.violations[0] {
        SanitizerViolation::UninitRead { site } => {
            assert_eq!(site.kernel, "uninit_global");
            assert_eq!(site.space, MemSpace::Global);
            assert_eq!(site.buffer, Some(0));
            assert_eq!(site.addr, 0);
        }
        v => panic!("wrong violation: {v}"),
    }

    // Writing the buffer first (e.g. a prior kernel's store) clears it.
    struct WriteThenRead {
        buf: BufId,
    }
    impl BlockKernel<f64> for WriteThenRead {
        fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
            let idx: Vec<usize> = (0..ctx.threads).collect();
            ctx.st(self.buf, &idx, &vec![1.0; ctx.threads])?;
            let mut out = Vec::new();
            ctx.ld(self.buf, &idx, &mut out)?;
            Ok(())
        }
    }
    let mut mem2 = GpuMemory::<f64>::new();
    let buf2 = mem2.alloc(64);
    let res2 = launch_with(
        &spec(),
        &cfg,
        &ExecConfig::sanitized(),
        &WriteThenRead { buf: buf2 },
        &mut mem2,
    )
    .unwrap();
    assert!(res2.stats.total.sanitizer.is_clean(), "{:?}", res2.violations);
}

/// Reads shared memory before anything stored to it.
struct UninitSharedKernel;
impl BlockKernel<f64> for UninitSharedKernel {
    fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
        let base = ctx.shared_alloc(ctx.threads)?;
        let idx: Vec<usize> = (0..ctx.threads).map(|t| base + t).collect();
        let mut out = Vec::new();
        ctx.sh_ld(&idx, &mut out)?;
        Ok(())
    }
}

#[test]
fn uninit_shared_read_is_reported() {
    let mut mem = GpuMemory::<f64>::new();
    let cfg = LaunchConfig::new("uninit_shared", 1, 32);
    let res = launch_with(
        &spec(),
        &cfg,
        &ExecConfig::sanitized(),
        &UninitSharedKernel,
        &mut mem,
    )
    .unwrap();
    assert_eq!(res.stats.total.sanitizer.uninit_reads, 32);
    assert!(matches!(
        &res.violations[0],
        SanitizerViolation::UninitRead { site } if site.space == MemSpace::Shared
    ));
}

/// Half the block skips the barrier (divergent control flow).
struct DivergentKernel;
impl BlockKernel<f64> for DivergentKernel {
    fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
        let half: Vec<usize> = (0..ctx.threads / 2).collect();
        ctx.sync_arrive(&half);
        Ok(())
    }
}

#[test]
fn divergent_barrier_is_reported_with_missing_lane() {
    let mut mem = GpuMemory::<f64>::new();
    let cfg = LaunchConfig::new("divergent", 2, 64);
    let res = launch_with(&spec(), &cfg, &ExecConfig::sanitized(), &DivergentKernel, &mut mem)
        .unwrap();
    assert_eq!(res.stats.total.sanitizer.barrier_divergence, 2); // one per block
    match &res.violations[0] {
        SanitizerViolation::BarrierDivergence {
            kernel,
            block,
            barrier_index,
            missing_lane,
            arrived,
            expected,
        } => {
            assert_eq!(*kernel, "divergent");
            assert_eq!(*block, 0);
            assert_eq!(*barrier_index, 0);
            assert_eq!(*missing_lane, 32);
            assert_eq!(*arrived, 32);
            assert_eq!(*expected, 64);
        }
        v => panic!("wrong violation: {v}"),
    }
    // Barriers still count in the stats either way.
    assert_eq!(res.stats.total.barriers, 2);
}

#[test]
fn fail_fast_aborts_on_first_violation() {
    let mut mem = GpuMemory::<f64>::new();
    let cfg = LaunchConfig::new("racy_write", 1, 32);
    let err = launch_with(&spec(), &cfg, &ExecConfig::fail_fast(), &RacyWriteKernel, &mut mem)
        .unwrap_err();
    assert!(
        matches!(
            err,
            SimError::Sanitizer(SanitizerViolation::SharedRace { .. })
        ),
        "{err}"
    );
    let text = err.to_string();
    assert!(text.contains("sanitizer"), "{text}");
    assert!(text.contains("racy_write"), "{text}");
}

#[test]
fn violation_reports_are_capped_but_counts_are_not() {
    let mut mem = GpuMemory::<f64>::new();
    let buf = mem.alloc(4096);
    let cfg = LaunchConfig::new("uninit_global", 4, 32);
    struct WideUninit {
        buf: BufId,
    }
    impl BlockKernel<f64> for WideUninit {
        fn run_block(&self, ctx: &mut BlockCtx<'_, f64>) -> Result<()> {
            let mut out = Vec::new();
            for round in 0..8 {
                let idx: Vec<usize> = (0..ctx.threads)
                    .map(|t| (ctx.block_id * 8 + round) * ctx.threads + t)
                    .collect();
                ctx.ld(self.buf, &idx, &mut out)?;
            }
            Ok(())
        }
    }
    let exec = ExecConfig {
        max_violations: 3,
        ..ExecConfig::sanitized()
    };
    let res = launch_with(&spec(), &cfg, &exec, &WideUninit { buf }, &mut mem).unwrap();
    assert_eq!(res.stats.total.sanitizer.uninit_reads, 4 * 8 * 32);
    assert_eq!(res.violations.len(), 4 * 3); // 3 reports per block
}
