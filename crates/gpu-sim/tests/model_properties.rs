//! Property tests for the simulator's analytic models: the coalescing
//! analyzer, the bank-conflict model and the occupancy calculator obey
//! the monotonicity/invariance laws the real hardware does.

use gpu_sim::memory::{
    shared_conflict_cycles, shared_conflict_cycles_dense, warp_transactions,
    warp_transactions_dense,
};
use gpu_sim::{occupancy, DeviceSpec};
use proptest::prelude::*;

fn lane_vec() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..10_000, 1..=32)
}

proptest! {
    /// Coalescing is a property of the address *set*: permutation
    /// invariant.
    #[test]
    fn transactions_permutation_invariant(mut lanes in lane_vec(), seed in any::<u64>()) {
        let before = warp_transactions_dense(&lanes, 8, 128);
        // Deterministic shuffle.
        let n = lanes.len();
        for i in (1..n).rev() {
            let j = (seed as usize).wrapping_mul(i).wrapping_add(17) % (i + 1);
            lanes.swap(i, j);
        }
        prop_assert_eq!(warp_transactions_dense(&lanes, 8, 128), before);
    }

    /// Adding a lane can only add transactions (or reuse a segment).
    #[test]
    fn transactions_monotone_in_lanes(lanes in lane_vec(), extra in 0usize..10_000) {
        prop_assume!(lanes.len() < 32);
        let before = warp_transactions_dense(&lanes, 4, 128);
        let mut more = lanes.clone();
        more.push(extra);
        let after = warp_transactions_dense(&more, 4, 128);
        prop_assert!(after >= before);
        prop_assert!(after <= before + 1);
    }

    /// A warp of w aligned-contiguous f32 lanes is optimal: exactly
    /// ceil(w·4/128) transactions, and no other address set of the same
    /// cardinality does better.
    #[test]
    fn contiguous_is_optimal(start in 0usize..1000, lanes in lane_vec()) {
        let w = lanes.len();
        let contiguous: Vec<usize> = (start * 32..start * 32 + w).collect();
        let best = warp_transactions_dense(&contiguous, 4, 128);
        prop_assert!(best <= w.div_ceil(32) as u64 + 1);
        prop_assert!(warp_transactions_dense(&lanes, 4, 128) >= 1);
    }

    /// Dense and masked analyzers always agree on fully-active warps.
    #[test]
    fn dense_equals_masked(lanes in lane_vec(), elem in prop::sample::select(vec![4usize, 8])) {
        let masked: Vec<Option<usize>> = lanes.iter().map(|&l| Some(l)).collect();
        prop_assert_eq!(
            warp_transactions_dense(&lanes, elem, 128),
            warp_transactions(&masked, elem, 128)
        );
        prop_assert_eq!(
            shared_conflict_cycles_dense(&lanes, elem, 32),
            shared_conflict_cycles(&masked, elem, 32)
        );
    }

    /// Conflict degree is bounded by the lane count and at least 1, and
    /// a broadcast (all same address) is always conflict-free.
    #[test]
    fn conflict_bounds(lanes in lane_vec(), addr in 0usize..1000) {
        let c = shared_conflict_cycles_dense(&lanes, 4, 32);
        prop_assert!(c >= 1);
        prop_assert!(c <= lanes.len() as u64);
        let broadcast = vec![addr; lanes.len()];
        prop_assert_eq!(shared_conflict_cycles_dense(&broadcast, 4, 32), 1);
    }

    /// Occupancy never improves when a block's footprint grows.
    #[test]
    fn occupancy_monotone(
        threads in prop::sample::select(vec![32u32, 64, 128, 192, 256, 512]),
        shared_kb in 0usize..40,
        regs in 8u32..40,
    ) {
        let spec = DeviceSpec::gtx480();
        let base = occupancy(&spec, threads, shared_kb * 1024, regs).unwrap();
        if let Ok(more_shared) = occupancy(&spec, threads, (shared_kb + 4) * 1024, regs) {
            prop_assert!(more_shared.blocks_per_sm <= base.blocks_per_sm);
        }
        if let Ok(more_regs) = occupancy(&spec, threads, shared_kb * 1024, regs + 8) {
            prop_assert!(more_regs.blocks_per_sm <= base.blocks_per_sm);
        }
        prop_assert!(base.warps_per_sm >= threads.div_ceil(spec.warp_size));
        prop_assert!(base.fraction(&spec) <= 1.0 + 1e-12);
    }
}
