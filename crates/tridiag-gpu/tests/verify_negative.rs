//! Negative suite for the plan verifier: hand-corrupt a known-good
//! plan one way per diagnostic class and demand [`verify_plan`] /
//! [`verify_sharded_plan`] catches each with the right
//! [`FindingKind`] *and* the right step index — a verifier that fires
//! without attribution is barely better than one that stays silent.
//!
//! The base plan is 64 x 512 f64 on the GTX480: the split pipeline
//! (tiled PCR then pThomas), 11 slots, two launches — enough structure
//! to break in every direction. Step indices are located by matching,
//! not hard-coded, so planner layout changes don't rot the suite.

use gpu_sim::{DeviceGroup, DeviceSpec, ExecConfig, SimError};
use tridiag_core::generators::random_batch;
use tridiag_core::Layout;
use tridiag_gpu::plan::{BufferDecl, KernelOp, Step};
use tridiag_gpu::solver::{GpuSolverConfig, GpuTridiagSolver};
use tridiag_gpu::{verify_plan, verify_sharded_plan, FindingKind, PlanExecutor, SolvePlan};

fn base_plan() -> (DeviceSpec, SolvePlan) {
    let device = DeviceSpec::gtx480();
    let solver = GpuTridiagSolver::new(device.clone(), GpuSolverConfig::default());
    let plan = solver.plan_geometry(64, 512, 8).unwrap();
    assert_eq!(
        plan.launches().count(),
        2,
        "the negative suite expects the split pipeline at 64x512 f64"
    );
    (device, plan)
}

fn step_index(plan: &SolvePlan, pred: impl Fn(&Step) -> bool) -> usize {
    plan.steps.iter().position(pred).expect("expected step missing from the base plan")
}

fn tiled_launch_at(plan: &SolvePlan) -> usize {
    step_index(plan, |s| {
        matches!(s, Step::Launch(l) if matches!(l.op, KernelOp::TiledPcr { .. }))
    })
}

fn thomas_launch_at(plan: &SolvePlan) -> usize {
    step_index(plan, |s| {
        matches!(s, Step::Launch(l) if matches!(l.op, KernelOp::PThomas { .. }))
    })
}

/// The one finding of `kind`, with its attribution checked.
fn expect_finding(
    report: &tridiag_gpu::VerifyReport,
    kind: FindingKind,
    step: Option<usize>,
) -> String {
    let f = report
        .findings
        .iter()
        .find(|f| f.kind == kind)
        .unwrap_or_else(|| panic!("expected a {kind} finding, got: {:?}", report.findings));
    assert_eq!(f.step, step, "wrong step attribution for {kind}");
    f.to_string()
}

#[test]
fn use_before_def_fires_at_the_reading_launch() {
    let (device, base) = base_plan();
    let at = tiled_launch_at(&base);
    let mut plan = base.clone();
    if let Step::Launch(l) = &mut plan.steps[at] {
        if let KernelOp::TiledPcr { input, .. } = &mut l.op {
            // c' scratch: declared, but allocated only after this launch.
            input[0] = 9;
        }
    }
    let report = verify_plan(&device, &plan);
    let msg = expect_finding(&report, FindingKind::UseBeforeDef, Some(at));
    assert!(msg.contains("before it is created"), "unexpected message: {msg}");
}

#[test]
fn unwritten_scratch_read_fires_at_the_reading_launch() {
    let (device, base) = base_plan();
    let at = tiled_launch_at(&base);
    let mut plan = base.clone();
    if let Step::Launch(l) = &mut plan.steps[at] {
        if let KernelOp::TiledPcr { input, .. } = &mut l.op {
            // x: allocated before the launch, but nothing wrote it yet.
            input[0] = 4;
        }
    }
    let report = verify_plan(&device, &plan);
    let msg = expect_finding(&report, FindingKind::UnwrittenScratchRead, Some(at));
    assert!(msg.contains("no prior step wrote"), "unexpected message: {msg}");
}

#[test]
fn duplicate_def_fires_at_the_second_definition() {
    let (device, base) = base_plan();
    let x_alloc = step_index(&base, |s| matches!(s, Step::Alloc { slot: 4 }));
    let mut plan = base.clone();
    plan.steps.insert(x_alloc + 1, Step::Alloc { slot: 4 });
    let report = verify_plan(&device, &plan);
    expect_finding(&report, FindingKind::DuplicateDef, Some(x_alloc + 1));
}

#[test]
fn layout_mismatch_fires_at_the_convert_back() {
    let (device, base) = base_plan();
    let back_at = step_index(&base, |s| matches!(s, Step::ConvertBack { .. }));
    let mut plan = base.clone();
    if let Step::ConvertBack { from } = &mut plan.steps[back_at] {
        *from = match *from {
            Layout::Contiguous => Layout::Interleaved,
            Layout::Interleaved => Layout::Contiguous,
        };
    }
    let report = verify_plan(&device, &plan);
    expect_finding(&report, FindingKind::LayoutMismatch, Some(back_at));
}

#[test]
fn alias_hazard_fires_when_an_output_aliases_an_input() {
    let (device, base) = base_plan();
    let at = thomas_launch_at(&base);
    let mut plan = base.clone();
    if let Step::Launch(l) = &mut plan.steps[at] {
        if let KernelOp::PThomas { a, x, .. } = &mut l.op {
            *x = *a;
        }
    }
    let report = verify_plan(&device, &plan);
    let msg = expect_finding(&report, FindingKind::AliasHazard, Some(at));
    assert!(msg.contains("both input and output"), "unexpected message: {msg}");
}

#[test]
fn dangling_slot_fires_for_an_allocated_but_unused_buffer() {
    let (device, base) = base_plan();
    let x_alloc = step_index(&base, |s| matches!(s, Step::Alloc { slot: 4 }));
    let mut plan = base.clone();
    plan.buffers.push(BufferDecl { name: "orphan", elems: 64 });
    let orphan = plan.buffers.len() - 1;
    plan.steps.insert(x_alloc, Step::Alloc { slot: orphan });
    let report = verify_plan(&device, &plan);
    let msg = expect_finding(&report, FindingKind::DanglingSlot, Some(x_alloc));
    assert!(msg.contains("orphan"), "unexpected message: {msg}");
}

#[test]
fn slot_out_of_range_fires_at_the_binding_step() {
    let (device, base) = base_plan();
    let down_at = step_index(&base, |s| matches!(s, Step::Download { .. }));
    let mut plan = base.clone();
    if let Step::Download { slot } = &mut plan.steps[down_at] {
        *slot = 99;
    }
    let report = verify_plan(&device, &plan);
    let msg = expect_finding(&report, FindingKind::SlotOutOfRange, Some(down_at));
    assert!(msg.contains("99"), "unexpected message: {msg}");
}

#[test]
fn peak_memory_overflow_fires_at_the_peak_step() {
    let (_, base) = base_plan();
    let mut tiny = DeviceSpec::gtx480();
    tiny.global_mem_bytes = 1024;
    let report = verify_plan(&tiny, &base);
    let f = report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::PeakMemoryOverflow)
        .expect("expected a peak-memory-overflow finding");
    assert_eq!(
        f.step, report.prediction.peak_step,
        "overflow must be attributed to the step where the peak is reached"
    );
    assert!(f.message.contains("global memory"), "unexpected message: {}", f.message);
}

#[test]
fn shard_partition_violations_fire_with_shard_attribution() {
    let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 2).unwrap();
    let solver = GpuTridiagSolver::new(DeviceSpec::gtx480(), GpuSolverConfig::default());
    let base = solver.plan_geometry_group(&group, 64, 512, 8).unwrap();

    // A gap: shard 1 starts one system late.
    let mut plan = base.clone();
    plan.shards[1].sys_start += 1;
    let report = verify_sharded_plan(&group, &plan);
    let f = report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::ShardPartition)
        .expect("expected a shard-partition finding");
    assert_eq!(f.shard, Some(1));

    // An overlap: shard 1 re-claims shard 0's last system.
    let mut plan = base.clone();
    plan.shards[1].sys_start -= 1;
    plan.shards[1].sys_count += 1;
    let report = verify_sharded_plan(&group, &plan);
    assert!(
        report.findings.iter().any(|f| f.kind == FindingKind::ShardPartition),
        "an overlapping partition must be rejected: {:?}",
        report.findings
    );
}

#[test]
fn shard_consistency_violations_fire_for_unpinned_decisions() {
    let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 2).unwrap();
    let solver = GpuTridiagSolver::new(DeviceSpec::gtx480(), GpuSolverConfig::default());
    let base = solver.plan_geometry_group(&group, 64, 512, 8).unwrap();

    // k drifting above the pinned reference decision.
    let mut plan = base.clone();
    plan.shards[0].plan.k += 1;
    let report = verify_sharded_plan(&group, &plan);
    let f = report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::ShardConsistency)
        .expect("expected a shard-consistency finding");
    assert_eq!(f.shard, Some(0));

    // Fusion flipping off the pin.
    let mut plan = base.clone();
    plan.shards[1].plan.fused = !plan.shards[1].plan.fused;
    let report = verify_sharded_plan(&group, &plan);
    assert!(
        report.findings.iter().any(|f| f.kind == FindingKind::ShardConsistency),
        "a fusion flip must be rejected: {:?}",
        report.findings
    );
}

/// The executor refuses to run a plan the verifier rejects — the gate
/// is load-bearing, not advisory.
#[test]
fn executor_refuses_an_uncertified_plan() {
    let (device, base) = base_plan();
    let at = tiled_launch_at(&base);
    let mut plan = base.clone();
    if let Step::Launch(l) = &mut plan.steps[at] {
        if let KernelOp::TiledPcr { input, .. } = &mut l.op {
            // Slot 4 (x) exists at launch time, so the executor's own
            // structural validate() passes — only the verifier's
            // dataflow pass can see the read of unwritten scratch.
            input[0] = 4;
        }
    }
    let batch = random_batch::<f64>(64, 512, 7);
    let mut exec = PlanExecutor::new(device, ExecConfig::default());
    let err = exec.run(&plan, &batch).unwrap_err();
    match err {
        SimError::InvalidPlan(msg) => {
            assert!(msg.contains("static verification"), "unexpected error: {msg}");
            assert!(msg.contains("unwritten-scratch-read"), "unexpected error: {msg}");
        }
        other => panic!("expected InvalidPlan, got {other:?}"),
    }
}

/// A corrupted plan never reaches the kernels through the sharded path
/// either.
#[test]
fn sharded_executor_refuses_an_uncertified_plan() {
    let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 2).unwrap();
    let solver = GpuTridiagSolver::new(DeviceSpec::gtx480(), GpuSolverConfig::default());
    let mut plan = solver.plan_geometry_group(&group, 64, 512, 8).unwrap();
    plan.shards[1].sys_start += 1;
    let batch = random_batch::<f64>(64, 512, 7);
    let exec = tridiag_gpu::ShardedExecutor::new(group.clone(), ExecConfig::default());
    let err = exec.run(&plan, &batch).unwrap_err();
    match err {
        SimError::InvalidPlan(msg) => {
            assert!(msg.contains("static verification"), "unexpected error: {msg}");
            assert!(msg.contains("shard-partition"), "unexpected error: {msg}");
        }
        other => panic!("expected InvalidPlan, got {other:?}"),
    }
}
