//! Property tests of the kernels: for arbitrary shapes, mappings and
//! tile scales, the simulated GPU pipeline is *bit-exact* against the
//! host algorithms and its traffic counters obey the paper's accounting.

use gpu_sim::{launch, DeviceSpec, GpuMemory, LaunchConfig};
use proptest::prelude::*;
use tridiag_core::generators::random_batch;
use tridiag_core::pcr;
use tridiag_gpu::buffers::upload;
use tridiag_gpu::kernels::p_thomas::{AddrMap, PThomasKernel};
use tridiag_gpu::kernels::tiled_pcr::TiledPcrKernel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tiled PCR on the simulator equals host PCR bit-for-bit for any
    /// shape, step count, sub-tile scale and grid mapping.
    #[test]
    fn tiled_pcr_kernel_bit_exact(
        m in 1usize..5,
        n in 32usize..300,
        k in 1u32..5,
        c in 1usize..4,
        mapping in 0usize..3,
        seed in any::<u64>(),
    ) {
        prop_assume!((1usize << k) <= n);
        let host = random_batch::<f64>(m, n, seed);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let out = [mem.alloc(m * n), mem.alloc(m * n), mem.alloc(m * n), mem.alloc(m * n)];
        let st = c << k;
        let (assignments, threads) = match mapping {
            0 => (TiledPcrKernel::assign_block_per_system(m, n), 1u32 << k),
            1 => (TiledPcrKernel::assign_block_group_per_system(m, n, 3), 1u32 << k),
            _ => (TiledPcrKernel::assign_multi_system_per_block(m, n, 2), 2u32 << k),
        };
        let blocks = assignments.len();
        let kernel = TiledPcrKernel {
            input: [dev.a, dev.b, dev.c, dev.d],
            output: out,
            n,
            k,
            sub_tile: st,
            assignments,
        };
        let cfg = LaunchConfig::new("tiled_pcr", blocks, threads);
        launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).unwrap();
        for sys in 0..m {
            let reference = pcr::reduce(&host.system(sys).unwrap(), k).unwrap();
            let (ra, rb, rc, rd) = reference.arrays();
            for row in 0..n {
                let g = sys * n + row;
                prop_assert_eq!(mem.read(out[0]).unwrap()[g], ra[row]);
                prop_assert_eq!(mem.read(out[1]).unwrap()[g], rb[row]);
                prop_assert_eq!(mem.read(out[2]).unwrap()[g], rc[row]);
                prop_assert_eq!(mem.read(out[3]).unwrap()[g], rd[row]);
            }
        }
    }

    /// p-Thomas solves arbitrary interleaved batches, and its useful
    /// traffic is exactly 9 element-moves per row (4 coefficient loads,
    /// c'/d' store + reload, x store).
    #[test]
    fn p_thomas_traffic_accounting(
        m in 1usize..200,
        n in 1usize..80,
        seed in any::<u64>(),
    ) {
        let host = random_batch::<f64>(m, n, seed)
            .to_layout(tridiag_core::Layout::Interleaved);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let cp = mem.alloc(m * n);
        let dp = mem.alloc(m * n);
        let kernel = PThomasKernel {
            a: dev.a, b: dev.b, c: dev.c, d: dev.d,
            c_prime: cp, d_prime: dp, x: dev.x,
            map: AddrMap::Interleaved { m, n },
        };
        let tpb = 128u32.min(m as u32).max(1);
        let cfg = LaunchConfig::new("p_thomas", m.div_ceil(tpb as usize), tpb);
        let res = launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).unwrap();
        prop_assert!(host.max_relative_residual(mem.read(dev.x).unwrap()).unwrap() < 1e-8);
        let rows = (m * n) as u64;
        prop_assert_eq!(res.stats.total.global_bytes(), 9 * rows * 8);
    }
}
