//! Trace-merge invariants for sharded execution.
//!
//! The merged trace must (a) serialize to valid Chrome JSON, (b) carry
//! one kernel track per device, and (c) preserve phase attribution
//! bit-exactly: inside every kernel span, the phase spans sum to the
//! kernel duration minus the launch-overhead span with `f64 ==` — the
//! timing model's own invariant — because the merge copies per-shard
//! durations verbatim instead of recomputing them.

use gpu_sim::trace::{validate_chrome_json, EventKind, TraceEvent};
use gpu_sim::{DeviceGroup, DeviceSpec};
use std::collections::BTreeSet;
use tridiag_core::generators::random_batch;
use tridiag_gpu::solver::GpuTridiagSolver;
use tridiag_gpu::GpuSolveReport;

const DEVICES: usize = 2;

fn sharded_report() -> GpuSolveReport {
    let (m, n) = (8usize, 256usize);
    let batch = random_batch::<f64>(m, n, 7);
    let solver = GpuTridiagSolver::gtx480();
    let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), DEVICES).unwrap();
    let (_, report) = solver.solve_batch_group(&group, &batch).unwrap();
    report
}

fn spans(report: &GpuSolveReport) -> Vec<&TraceEvent> {
    report
        .trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Complete)
        .collect()
}

#[test]
fn merged_trace_is_valid_chrome_json() {
    let report = sharded_report();
    let text = report.trace.to_chrome_json();
    if let Err(problems) = validate_chrome_json(&text) {
        panic!("merged trace fails Chrome validation: {problems:?}");
    }
}

#[test]
fn merged_trace_has_one_kernel_track_per_device() {
    let report = sharded_report();
    let kernel_tids: BTreeSet<u32> = spans(&report)
        .iter()
        .filter(|e| e.name.starts_with("kernel:"))
        .map(|e| e.tid)
        .collect();
    let expected: BTreeSet<u32> = (0..DEVICES as u32).collect();
    assert_eq!(kernel_tids, expected, "one kernel track per device");
    // Each device track also carries its modeled host<->device copies.
    for d in 0..DEVICES as u32 {
        let copies = spans(&report)
            .iter()
            .filter(|e| e.tid == d && e.cat == "copy")
            .count();
        assert!(copies >= 2, "device {d}: expected h2d + d2h copy spans");
    }
    // The root span lives on track 0 and bounds the whole timeline.
    let root = spans(&report)
        .into_iter()
        .find(|e| e.name == "sharded_solve")
        .expect("root sharded_solve span");
    assert_eq!(root.tid, 0);
    let end = report
        .trace
        .events
        .iter()
        .map(|e| e.ts_us + e.dur_us)
        .fold(0.0f64, f64::max);
    assert_eq!(root.ts_us + root.dur_us, end, "root span bounds the trace");
}

#[test]
fn phase_spans_sum_bit_exactly_within_each_kernel_span() {
    let report = sharded_report();
    let all = spans(&report);
    let kernels: Vec<&&TraceEvent> = all
        .iter()
        .filter(|e| e.name.starts_with("kernel:"))
        .collect();
    assert!(!kernels.is_empty());
    for k in kernels {
        // Children: same track, contained in the kernel span. (Only a
        // zero-duration span could straddle the boundary into an
        // adjacent kernel, and those contribute nothing to the sums.)
        let contained = |e: &&&TraceEvent| {
            e.tid == k.tid
                && e.ts_us >= k.ts_us
                && e.ts_us + e.dur_us <= k.ts_us + k.dur_us
        };
        let launch = all
            .iter()
            .filter(|e| e.name == "launch_overhead")
            .find(contained)
            .unwrap_or_else(|| panic!("{}: missing launch_overhead child", k.name));
        let phase_sum: f64 = all
            .iter()
            .filter(|e| e.name.starts_with("phase:"))
            .filter(contained)
            .map(|e| e.dur_us)
            .sum();
        // The timing model guarantees Σ phase.us == total − launch with
        // f64 equality (the last phase absorbs the fp remainder), and
        // the merge copies durations verbatim — so the merged trace
        // must reproduce that decomposition bit-exactly.
        assert_eq!(
            phase_sum,
            k.dur_us - launch.dur_us,
            "{} on tid {}: phase sum {} != span {} - launch {}",
            k.name,
            k.tid,
            phase_sum,
            k.dur_us,
            launch.dur_us
        );
    }
}
