//! Chrome-trace schema and round-trip tests for the solver's tracing
//! layer: a solve must emit a structurally valid trace-event document
//! (monotonic timestamps, complete `X` events, known phase letters)
//! that parses and re-serializes byte-identically, and its JSON report
//! must embed the same trace.

use gpu_sim::{validate_chrome_json, Json};
use tridiag_core::generators::random_batch;
use tridiag_core::transition::TransitionPolicy;
use tridiag_gpu::solver::solve_batch_gtx480;
use tridiag_gpu::{GpuSolverConfig, GpuTridiagSolver};

fn event_names(doc: &Json) -> Vec<String> {
    doc.get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array")
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .map(str::to_owned)
        .collect()
}

#[test]
fn solve_trace_validates_and_round_trips() {
    let batch = random_batch::<f64>(8, 128, 11);
    let (x, report) = solve_batch_gtx480(&batch).unwrap();
    let resid = batch.max_relative_residual(&x).unwrap();
    assert!(resid < 1e-9, "residual {resid}");
    assert!(
        report.is_phase_sum_clean(),
        "{:?}",
        report.phase_sum_mismatches
    );
    assert!(!report.trace.is_empty());

    let text = report.trace.to_chrome_json();
    validate_chrome_json(&text).unwrap_or_else(|probs| panic!("invalid trace: {probs:#?}"));

    // Round-trip: parse and re-serialize to the identical string, so
    // committed traces diff cleanly.
    let doc = gpu_sim::json::parse(&text).unwrap();
    assert_eq!(doc.to_string(), text, "trace JSON round-trip changed");

    // Span hierarchy: one solve root, the decision instants, and a
    // kernel span with phase children for every launched kernel.
    let names = event_names(&doc);
    assert!(names.iter().any(|n| n == "solve"), "{names:?}");
    for required in ["transition_rule", "grid_mapping", "buffer_setup"] {
        assert!(names.iter().any(|n| n == required), "missing {required}");
    }
    let kernel_spans = names.iter().filter(|n| n.starts_with("kernel:")).count();
    assert_eq!(kernel_spans, report.kernels.len());
    assert!(
        names.iter().any(|n| n.starts_with("phase:")),
        "no phase child spans in {names:?}"
    );
}

#[test]
fn k0_trace_covers_the_pthomas_only_pipeline() {
    // Fixed(0) skips PCR entirely: the trace must still carry the
    // decision instants and exactly one kernel span.
    let batch = random_batch::<f64>(32, 64, 13);
    let config = GpuSolverConfig {
        policy: TransitionPolicy::Fixed(0),
        ..Default::default()
    };
    let solver = GpuTridiagSolver::new(gpu_sim::DeviceSpec::gtx480(), config);
    let (x, report) = solver.solve_batch(&batch).unwrap();
    let resid = batch.max_relative_residual(&x).unwrap();
    assert!(resid < 1e-9, "residual {resid}");
    assert_eq!(report.k, 0);
    assert!(report.is_phase_sum_clean());

    let text = report.trace.to_chrome_json();
    validate_chrome_json(&text).unwrap_or_else(|probs| panic!("invalid trace: {probs:#?}"));
    let doc = gpu_sim::json::parse(&text).unwrap();
    let names = event_names(&doc);
    assert_eq!(
        names.iter().filter(|n| n.starts_with("kernel:")).count(),
        report.kernels.len()
    );
}

#[test]
fn report_json_embeds_trace_and_phase_tables() {
    let batch = random_batch::<f32>(4, 128, 17);
    let (_, report) = solve_batch_gtx480(&batch).unwrap();
    let v = report.to_json();
    assert_eq!(v.get("precision").and_then(Json::as_str), Some("f32"));
    let kernels = v.get("kernels").and_then(Json::as_arr).unwrap();
    assert_eq!(kernels.len(), report.kernels.len());
    for k in kernels {
        let phases = k.get("phases").and_then(Json::as_arr).unwrap();
        assert!(!phases.is_empty(), "kernel without phase table");
        for p in phases {
            assert!(p.get("label").and_then(Json::as_str).is_some());
            assert!(p.get("us").and_then(Json::as_num).is_some());
            assert!(p.get("bound").and_then(Json::as_str).is_some());
        }
    }
    // The embedded trace is the same document the exporter writes.
    let embedded = v.get("trace").unwrap().to_string();
    assert_eq!(embedded, report.trace.to_chrome_json());
}
