//! Golden-counter snapshots: every kernel's instrumentation counters
//! (flops, global transactions/bytes, access rounds, shared accesses,
//! bank-conflict replays, barriers, peak shared bytes) pinned to exact
//! values at fixed (N, M, k).
//!
//! These are change detectors for the *cost model's inputs*: an edit
//! that alters how a kernel touches memory or synchronizes shows up
//! here even when the numerics stay bit-identical. On an intentional
//! change, re-run with `--nocapture` and copy the printed actual line
//! into the golden.

use gpu_sim::{launch, BlockStats, DeviceSpec, GpuMemory, LaunchConfig};
use std::collections::HashMap;
use tridiag_core::generators::random_batch;
use tridiag_core::Layout;
use tridiag_gpu::buffers::upload;
use tridiag_gpu::kernels::cr_shared::CrSharedKernel;
use tridiag_gpu::kernels::fused::FusedKernel;
use tridiag_gpu::kernels::p_thomas::{AddrMap, PThomasKernel};
use tridiag_gpu::kernels::pcr_shared::PcrSharedKernel;
use tridiag_gpu::kernels::tiled_pcr::TiledPcrKernel;

/// One-line canonical rendering of the counters under test.
fn snapshot(t: &BlockStats) -> String {
    format!(
        "flops={} gld_t={} gst_t={} gld_b={} gst_b={} rounds={} sh={} replays={} barriers={} shmem={}",
        t.flops,
        t.global_load_transactions,
        t.global_store_transactions,
        t.global_load_bytes,
        t.global_store_bytes,
        t.global_access_rounds,
        t.shared_accesses,
        t.bank_conflict_replays,
        t.barriers,
        t.shared_bytes_peak,
    )
}

fn check(name: &str, total: &BlockStats, golden: &str) {
    let actual = snapshot(total);
    println!("{name}: {actual}");
    assert_eq!(actual, golden, "{name} counters drifted");
}

#[test]
fn pcr_shared_counters() {
    let (m, n) = (4usize, 128usize);
    let host = random_batch::<f64>(m, n, 41);
    let mut mem = GpuMemory::new();
    let dev = upload(&mut mem, &host);
    let kernel = PcrSharedKernel {
        input: [dev.a, dev.b, dev.c, dev.d],
        x: dev.x,
        n,
        steps: None,
    };
    let cfg = LaunchConfig::new("pcr_shared", m, 128);
    let res = launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).unwrap();
    check(
        "pcr_shared m=4 n=128 f64",
        &res.stats.total,
        "flops=50688 gld_t=128 gst_t=32 gld_b=16384 gst_b=4096 rounds=20 sh=256 replays=1024 barriers=60 shmem=8192",
    );
}

#[test]
fn cr_shared_counters() {
    let (m, n) = (2usize, 256usize);
    let host = random_batch::<f64>(m, n, 43);
    let mut mem = GpuMemory::new();
    let dev = upload(&mut mem, &host);
    let kernel = CrSharedKernel {
        input: [dev.a, dev.b, dev.c, dev.d],
        x: dev.x,
        n,
        padded: true,
    };
    let cfg = LaunchConfig::new("cr_shared", m, 128);
    let res = launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).unwrap();
    check(
        "cr_shared m=2 n=256 f64 padded",
        &res.stats.total,
        "flops=9652 gld_t=128 gst_t=32 gld_b=16384 gst_b=4096 rounds=20 sh=256 replays=448 barriers=30 shmem=8416",
    );
}

#[test]
fn tiled_pcr_counters() {
    let (m, n, k, c) = (3usize, 100usize, 3u32, 2usize);
    let host = random_batch::<f64>(m, n, 47);
    let mut mem = GpuMemory::new();
    let dev = upload(&mut mem, &host);
    let out = [
        mem.alloc(m * n),
        mem.alloc(m * n),
        mem.alloc(m * n),
        mem.alloc(m * n),
    ];
    let assignments = TiledPcrKernel::assign_block_per_system(m, n);
    let blocks = assignments.len();
    let kernel = TiledPcrKernel {
        input: [dev.a, dev.b, dev.c, dev.d],
        output: out,
        n,
        k,
        sub_tile: c << k,
        assignments,
    };
    let cfg = LaunchConfig::new("tiled_pcr", blocks, 1 << k);
    let res = launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).unwrap();
    check(
        "tiled_pcr m=3 n=100 k=3 c=2 (11a)",
        &res.stats.total,
        "flops=14112 gld_t=180 gst_t=180 gld_b=9600 gst_b=9600 rounds=312 sh=3705 replays=45 barriers=255 shmem=1696",
    );
}

#[test]
fn p_thomas_counters() {
    let (m, n) = (64usize, 64usize);
    let host = random_batch::<f64>(m, n, 53).to_layout(Layout::Interleaved);
    let mut mem = GpuMemory::new();
    let dev = upload(&mut mem, &host);
    let cp = mem.alloc(dev.total());
    let dp = mem.alloc(dev.total());
    let kernel = PThomasKernel {
        a: dev.a,
        b: dev.b,
        c: dev.c,
        d: dev.d,
        c_prime: cp,
        d_prime: dp,
        x: dev.x,
        map: AddrMap::Interleaved { m, n },
    };
    let cfg = LaunchConfig::new("p_thomas", 2, 32);
    let res = launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).unwrap();
    check(
        "p_thomas m=64 n=64 f64 interleaved",
        &res.stats.total,
        "flops=40960 gld_t=1536 gst_t=768 gld_b=196608 gst_b=98304 rounds=1152 sh=0 replays=0 barriers=0 shmem=0",
    );
}

#[test]
fn fused_counters() {
    let (m, n, k, c) = (2usize, 200usize, 3u32, 2usize);
    let host = random_batch::<f64>(m, n, 59);
    let mut mem = GpuMemory::new();
    let dev = upload(&mut mem, &host);
    let cp = mem.alloc(m * n);
    let dp = mem.alloc(m * n);
    let kernel = FusedKernel {
        input: [dev.a, dev.b, dev.c, dev.d],
        c_prime: cp,
        d_prime: dp,
        x: dev.x,
        n,
        k,
        sub_tile: c << k,
        m,
    };
    let cfg = LaunchConfig::new("fused", m, 1 << k);
    let res = launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).unwrap();
    check(
        "fused m=2 n=200 k=3 c=2 f64",
        &res.stats.total,
        "flops=21472 gld_t=300 gst_t=150 gld_b=19200 gst_b=9600 rounds=450 sh=4174 replays=6 barriers=288 shmem=1408",
    );
}

/// The static mirror of the snapshots above: for every kernel in the
/// zoo, at every geometry, the lint passes' closed-form counter
/// predictions must equal the dynamically measured [`BlockStats`]
/// exactly — and the shipped kernels must produce zero diagnostics.
#[test]
fn static_predictions_match_dynamic_counters_across_the_zoo() {
    let entries = tridiag_gpu::zoo::run_zoo().unwrap();
    let mut per_kernel: HashMap<&str, usize> = HashMap::new();
    for e in &entries {
        *per_kernel.entry(e.kernel).or_default() += 1;
        assert!(
            e.report.is_clean(),
            "{} [{}]: unexpected diagnostics {:#?}",
            e.kernel,
            e.geometry,
            e.report.diagnostics
        );
        assert!(
            e.mismatches.is_empty(),
            "{} [{}]: static/dynamic counter mismatches {:#?}",
            e.kernel,
            e.geometry,
            e.mismatches
        );
        // The cross-check is not vacuous: the prediction carries real
        // traffic for every kernel.
        assert!(e.report.prediction.global_load_transactions > 0, "{}", e.kernel);
        assert_eq!(
            e.report.prediction.global_load_transactions,
            e.stats.total.global_load_transactions
        );
    }
    for (kernel, count) in per_kernel {
        assert!(count >= 3, "{kernel}: only {count} geometries in the zoo");
    }
}

#[test]
fn window_multi_slot_counters() {
    let (m, n, k) = (6usize, 96usize, 2u32);
    let host = random_batch::<f32>(m, n, 61);
    let mut mem = GpuMemory::new();
    let dev = upload(&mut mem, &host);
    let out = [
        mem.alloc(m * n),
        mem.alloc(m * n),
        mem.alloc(m * n),
        mem.alloc(m * n),
    ];
    let assignments = TiledPcrKernel::assign_multi_system_per_block(m, n, 3);
    let blocks = assignments.len();
    let kernel = TiledPcrKernel {
        input: [dev.a, dev.b, dev.c, dev.d],
        output: out,
        n,
        k,
        sub_tile: 2 << k,
        assignments,
    };
    let cfg = LaunchConfig::new("window_multi_slot", blocks, 3 << k);
    let res = launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).unwrap();
    check(
        "tiled_pcr m=6 n=96 k=2 q=3 f32 (11c)",
        &res.stats.total,
        "flops=17472 gld_t=384 gst_t=384 gld_b=9216 gst_b=9216 rounds=384 sh=3324 replays=960 barriers=236 shmem=1200",
    );
}
