//! Golden phase-attribution tests: every zoo kernel's per-phase
//! counters must sum *exactly* to its `KernelStats` totals, every
//! counter must land in an explicitly labelled phase (never the
//! `"prelude"` catch-all), and the modeled per-phase microseconds must
//! sum bit-exactly to the kernel body time.
//!
//! These pin the invariant the profiler depends on: phase attribution
//! is a partition of the existing counters, not an estimate alongside
//! them.

use gpu_sim::PRELUDE_PHASE;
use std::collections::BTreeMap;
use tridiag_gpu::zoo::run_zoo;

/// Expected phase-label vocabulary per kernel. A label showing up that
/// is not in this set means a kernel grew an unnamed phase (or counters
/// leaked into `"prelude"`); update the golden when adding phases
/// intentionally.
fn golden_labels(kernel: &str) -> &'static [&'static str] {
    match kernel {
        "pcr_shared" => &["setup", "load", "pcr_step", "finish", "store"],
        "cr_shared" => &["setup", "load", "forward", "apex_bsub", "store"],
        "tiled_pcr" | "window_multi_slot" => &[
            "window_init",
            "window_load",
            "splice",
            "pcr_level",
            "carry_init",
            "emit",
            "carry_roll",
            "flush",
        ],
        "p_thomas" => &["forward", "backward"],
        "fused" => &[
            "window_init",
            "window_load",
            "splice",
            "pcr_level",
            "window_read",
            "cprime_store",
            "backward",
        ],
        other => panic!("unexpected zoo kernel {other}"),
    }
}

#[test]
fn zoo_phase_counters_partition_totals_exactly() {
    let entries = run_zoo().expect("zoo runs");
    assert_eq!(entries.len(), 18, "six kernels x three geometries");

    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for e in &entries {
        *seen.entry(e.kernel).or_insert(0) += 1;
        let ctx = format!("{} [{}]", e.kernel, e.geometry);

        // 1. Per-phase counters sum exactly to the kernel totals.
        let mismatches = e.stats.phase_sum_mismatches();
        assert!(mismatches.is_empty(), "{ctx}: {mismatches:?}");
        assert!(!e.stats.phases.is_empty(), "{ctx}: no phases recorded");

        // 2. Complete coverage: nothing fell into the prelude, and
        //    every observed label is in the kernel's golden vocabulary.
        let allowed = golden_labels(e.kernel);
        for p in &e.stats.phases {
            assert_ne!(
                p.label, PRELUDE_PHASE,
                "{ctx}: counters recorded before the first phase label"
            );
            assert!(
                allowed.contains(&p.label),
                "{ctx}: phase {:?} not in golden label set {allowed:?}",
                p.label
            );
        }

        // 3. Modeled phase times partition the body time bit-exactly
        //    (launch overhead is deliberately unattributed).
        let body = e.timing.total_us - e.timing.launch_us;
        let sum: f64 = e.timing.phases.iter().map(|p| p.us).sum();
        assert_eq!(sum, body, "{ctx}: phase us sum {sum} != body {body}");
        assert_eq!(
            e.timing.phases.len(),
            e.stats.phases.len(),
            "{ctx}: one PhaseTiming per PhaseStats"
        );
        for p in &e.timing.phases {
            assert!(p.us >= 0.0, "{ctx}: negative phase time {}", p.us);
        }
    }
    for (kernel, count) in seen {
        assert_eq!(count, 3, "{kernel}: expected three geometries");
    }
}
