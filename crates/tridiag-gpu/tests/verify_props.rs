//! Property tests of the plan verifier: every plan the planner builds
//! — any geometry, precision, device, device count — certifies clean,
//! and when executed the static [`PlanPrediction`] matches the
//! measured transfer/launch/peak-memory stats *exactly*. The verifier
//! and the planner are developed against each other; these properties
//! pin that contract.

use gpu_sim::{DeviceGroup, DeviceSpec};
use proptest::prelude::*;
use tridiag_core::generators::random_batch;
use tridiag_gpu::solver::{GpuSolverConfig, GpuTridiagSolver};
use tridiag_gpu::{verify_plan, verify_sharded_plan};

fn device_by_index(which: usize) -> DeviceSpec {
    match which % 3 {
        0 => DeviceSpec::gtx480(),
        1 => DeviceSpec::gtx280(),
        _ => DeviceSpec::c2050(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any planner-built single-device plan certifies clean, and its
    /// certificate's transfer totals obey the pipeline's arithmetic
    /// (4 coefficient uploads, 1 solution download).
    #[test]
    fn planner_built_plans_certify_clean(
        m in 1usize..96,
        n in 32usize..2048,
        which in 0usize..3,
        f32_width in any::<bool>(),
    ) {
        let device = device_by_index(which);
        let bytes = if f32_width { 4 } else { 8 };
        let solver = GpuTridiagSolver::new(device.clone(), GpuSolverConfig::default());
        let plan = solver.plan_geometry(m, n, bytes).unwrap();
        let report = verify_plan(&device, &plan);
        prop_assert!(
            report.is_clean(),
            "planner emitted an uncertifiable plan: {:?}",
            report.findings
        );
        prop_assert_eq!(report.prediction.h2d_total_bytes, 4 * m * n * bytes);
        prop_assert_eq!(report.prediction.d2h_total_bytes, m * n * bytes);
        prop_assert!(report.prediction.peak_resident_bytes <= device.global_mem_bytes);
        // Every slot the plan declares is defined exactly once and used.
        for (slot, lv) in report.liveness.iter().enumerate() {
            prop_assert!(lv.def_step.is_some(), "slot {slot} never defined");
            prop_assert!(lv.last_use_step.is_some(), "slot {slot} never used");
        }
    }

    /// Executing a planner-built plan measures *exactly* what the
    /// certificate predicted: same per-step transfers, same launch
    /// counts, same peak resident bytes — bit-for-bit, f32 and f64.
    #[test]
    fn prediction_matches_execution_exactly(
        m in 1usize..48,
        n in 32usize..768,
        which in 0usize..3,
        f32_width in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let device = device_by_index(which);
        let solver = GpuTridiagSolver::new(device, GpuSolverConfig::default());
        let (clean, mismatches) = if f32_width {
            let batch = random_batch::<f32>(m, n, seed);
            let (_, report) = solver.solve_batch(&batch).unwrap();
            (report.is_verify_clean(), report.verify_mismatches.clone())
        } else {
            let batch = random_batch::<f64>(m, n, seed);
            let (_, report) = solver.solve_batch(&batch).unwrap();
            (report.is_verify_clean(), report.verify_mismatches.clone())
        };
        prop_assert!(clean, "certificate diverged from the run: {mismatches:?}");
    }

    /// Any planner-built sharded plan (D in {1, 2, 4}, homogeneous)
    /// certifies clean — every shard *and* the cross-device partition
    /// and pinned-decision invariants — and the executed run matches
    /// every shard's certificate.
    #[test]
    fn sharded_plans_certify_clean_and_match_execution(
        m_per_dev in 1usize..24,
        n in 32usize..512,
        d in prop::sample::select(vec![1usize, 2, 4]),
        which in 0usize..3,
        seed in any::<u64>(),
    ) {
        let device = device_by_index(which);
        let m = m_per_dev * d;
        let group = DeviceGroup::homogeneous(device.clone(), d).unwrap();
        let solver = GpuTridiagSolver::new(device, GpuSolverConfig::default());
        let plan = solver.plan_geometry_group(&group, m, n, 8).unwrap();
        let report = verify_sharded_plan(&group, &plan);
        prop_assert!(
            report.is_clean(),
            "planner emitted an uncertifiable sharded plan: {:?}",
            report.messages()
        );
        prop_assert_eq!(report.shards.len(), d);

        let batch = random_batch::<f64>(m, n, seed);
        let (_, run) = solver.solve_batch_group(&group, &batch).unwrap();
        prop_assert!(
            run.is_verify_clean(),
            "sharded certificate diverged from the run: {:?}",
            run.verify_mismatches
        );
    }
}

/// A heterogeneous group still certifies: the weaker device may clamp
/// its shard's k below the pin, which is a documented deviation, not a
/// finding.
#[test]
fn heterogeneous_groups_certify_clean() {
    let group =
        DeviceGroup::from_specs(vec![DeviceSpec::gtx480(), DeviceSpec::gtx280()]).unwrap();
    let solver = GpuTridiagSolver::new(DeviceSpec::gtx480(), GpuSolverConfig::default());
    let plan = solver.plan_geometry_group(&group, 32, 1024, 8).unwrap();
    let report = verify_sharded_plan(&group, &plan);
    assert!(report.is_clean(), "findings: {:?}", report.messages());
}
