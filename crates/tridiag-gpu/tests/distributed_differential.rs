//! Differential harness for the distributed single-system solve:
//! split(D) ∘ reduced-solve ∘ back-substitute ≈ single-device.
//!
//! For a sweep of single-system sizes and `D ∈ {1, 2, 4}` on a
//! homogeneous GTX480 group:
//!
//! * `D == 1` must be the **identity path** — bit-exact solutions,
//!   pinned via FNV-1a hashes, with no distributed summary on the
//!   report.
//! * `D >= 2` performs a genuinely different (but exact-in-reals)
//!   factorization — the modified-Thomas partial elimination — so the
//!   comparison is against a condition-derived tolerance, not bits,
//!   and the residual must stay at single-device levels.
//! * Counters must **reconcile**: each chunk's flops are exactly three
//!   standalone interior solves (one per right-hand side y/u/w) plus
//!   `4·Li` back-substitution flops; the reduced solve's counters equal
//!   a standalone `m = 1, n = 2D` run; gather/scatter PCIe bytes match
//!   their closed forms.
//!
//! The capacity claim of the tentpole is also pinned here: an `N` whose
//! single-device plan is a typed `InvalidPlan` (footprint beyond global
//! memory, message naming the distributed option) must *solve* at
//! `D >= 2` on the same devices.

use gpu_sim::{DeviceGroup, DeviceSpec, ExecConfig, SimError};
use tridiag_core::generators::random_batch;
use tridiag_gpu::solver::{GpuSolverConfig, GpuTridiagSolver};
use tridiag_gpu::{solution_hash, GpuScalar, PlanExecutor};

const SEED: u64 = 42;
const DEVICE_COUNTS: [usize; 3] = [1, 2, 4];
/// Single-system sizes: interface-only chunks (n = 2D) through sizes
/// where every chunk runs the full tiled-PCR + p-Thomas pipeline.
const SWEEP_F64: [usize; 5] = [8, 256, 1024, 4096, 16384];
const SWEEP_F32: [usize; 2] = [512, 4096];

/// Worst absolute element deviation between two solutions.
fn worst_abs<S: GpuScalar>(a: &[S], b: &[S]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs().to_f64())
        .fold(0.0f64, f64::max)
}

/// Flops of one standalone `m = 1, n` solve on a GTX480, measured off
/// the executor's dynamic counters (they are structural — data
/// independent — so any batch works).
fn standalone_flops<S: GpuScalar>(n: usize) -> u64 {
    let solver = GpuTridiagSolver::gtx480();
    let plan = solver
        .plan_geometry(1, n, <S as gpu_sim::Elem>::BYTES)
        .unwrap();
    let batch = random_batch::<S>(1, n, SEED ^ 0x5eed);
    let mut ex = PlanExecutor::new(DeviceSpec::gtx480(), ExecConfig::default());
    ex.run(&plan, &batch).unwrap();
    ex.stats.iter().map(|s| s.total.flops).sum()
}

fn check_point<S: GpuScalar + Send + Sync>(prec: &str, n: usize, tol: f64) {
    let ctx = format!("{prec} n={n}");
    let batch = random_batch::<S>(1, n, SEED);
    let solver = GpuTridiagSolver::gtx480();
    let (base, base_report) = solver.solve_batch(&batch).unwrap();
    let base_resid = batch.max_relative_residual(&base).unwrap();
    for d in DEVICE_COUNTS {
        let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), d).unwrap();
        if n < 2 * d {
            let err = solver.solve_batch_split(&group, &batch).unwrap_err();
            assert!(
                matches!(err, SimError::InvalidPlan(_)),
                "{ctx} D={d}: expected InvalidPlan, got {err:?}"
            );
            continue;
        }
        let (x, report) = solver.solve_batch_split(&group, &batch).unwrap();
        if d == 1 {
            // Identity path: bit-exact, pinned by hash, no distributed
            // machinery on the report.
            assert_eq!(base, x, "{ctx} D=1: identity path must be bit-exact");
            assert_eq!(
                solution_hash(&base),
                solution_hash(&x),
                "{ctx} D=1: hash diverges"
            );
            assert!(report.distributed.is_none(), "{ctx} D=1");
            assert_eq!(report.total_us, base_report.total_us, "{ctx} D=1");
            continue;
        }
        // D >= 2: a different exact factorization — condition-derived
        // tolerance on elements, residual at single-device levels.
        let worst = worst_abs(&base, &x);
        assert!(
            worst < tol,
            "{ctx} D={d}: max abs deviation {worst:.3e} exceeds {tol:.1e}"
        );
        let resid = batch.max_relative_residual(&x).unwrap();
        assert!(
            resid < tol.max(base_resid * 1e3),
            "{ctx} D={d}: residual {resid:.3e} (single device {base_resid:.3e})"
        );
        // Counter reconciliation against standalone runs.
        let dist = report.distributed.as_ref().expect("distributed summary");
        assert_eq!(dist.devices, d, "{ctx} D={d}");
        assert_eq!(dist.reduced_n, 2 * d, "{ctx} D={d}");
        assert_eq!(
            dist.reduced_flops,
            standalone_flops::<S>(2 * d),
            "{ctx} D={d}: reduced solve must cost exactly one m=1 n=2D run"
        );
        let eb = <S as gpu_sim::Elem>::BYTES as u64;
        assert_eq!(dist.gather_bytes, d as u64 * 8 * eb, "{ctx} D={d}: gather");
        assert_eq!(dist.scatter_bytes, d as u64 * 2 * eb, "{ctx} D={d}: scatter");
        assert_eq!(report.shards.len(), d, "{ctx} D={d}");
        let mut covered = 0usize;
        for (j, sh) in report.shards.iter().enumerate() {
            assert_eq!(sh.sys_start, covered, "{ctx} D={d} chunk {j}: contiguous");
            covered += sh.sys_count;
            let li = sh.sys_count - 2;
            let expected = if li == 0 {
                0
            } else {
                3 * standalone_flops::<S>(li) + 4 * li as u64
            };
            assert_eq!(
                sh.flops, expected,
                "{ctx} D={d} chunk {j}: 3 interior solves of n={li} + 4·Li back-sub"
            );
        }
        assert_eq!(covered, n, "{ctx} D={d}: chunks must cover the system");
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn distributed_solves_match_single_device_across_the_sweep() {
    for n in SWEEP_F64 {
        check_point::<f64>("f64", n, 1e-9);
    }
    for n in SWEEP_F32 {
        check_point::<f32>("f32", n, 1e-2);
    }
}

/// The capacity claim: an `N` the single-device planner rejects as too
/// large — with a typed error naming the distributed option — solves
/// at `D ∈ {2, 4}` on the *same* devices, within tolerance.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn too_large_single_system_solves_when_split() {
    let mut small = DeviceSpec::gtx480();
    small.global_mem_bytes = 2 << 20; // 2 MiB: fits ~N/2 but not N below
    let n = 32768usize;
    let solver = GpuTridiagSolver::new(small.clone(), GpuSolverConfig::default());
    let err = solver.plan_geometry(1, n, 8).unwrap_err();
    match &err {
        SimError::InvalidPlan(msg) => {
            assert!(msg.contains("global memory"), "unexpected error: {msg}");
            assert!(
                msg.contains("split across devices with a distributed plan"),
                "the OOM error must name the distributed option: {msg}"
            );
            assert!(msg.contains("solve --split-n"), "unexpected error: {msg}");
        }
        other => panic!("expected InvalidPlan, got {other:?}"),
    }
    let batch = random_batch::<f64>(1, n, SEED);
    // A CPU-side reference for the deviation check: the same solve on a
    // full-memory device (the numerics don't depend on the spec).
    let (reference, _) = GpuTridiagSolver::gtx480().solve_batch(&batch).unwrap();
    for d in [2usize, 4] {
        let group = DeviceGroup::homogeneous(small.clone(), d).unwrap();
        let (x, report) = solver.solve_batch_split(&group, &batch).unwrap();
        let worst = worst_abs(&reference, &x);
        assert!(worst < 1e-9, "D={d}: max abs deviation {worst:.3e}");
        assert!(batch.max_relative_residual(&x).unwrap() < 1e-9, "D={d}");
        let dist = report.distributed.as_ref().expect("distributed summary");
        assert_eq!(dist.devices, d);
    }
}

/// The scaling claim the committed bench entry rests on: at a large
/// `N`, `D = 4` beats `D = 2` on modeled wall-clock, and both keep the
/// wall-clock below the serialized sum (real overlap, not bookkeeping).
#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn four_way_split_beats_two_way_at_large_n() {
    let n = 1usize << 15;
    let batch = random_batch::<f64>(1, n, SEED);
    let solver = GpuTridiagSolver::gtx480();
    let mut wall = Vec::new();
    for d in [2usize, 4] {
        let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), d).unwrap();
        let (_, report) = solver.solve_batch_split(&group, &batch).unwrap();
        let dist = report.distributed.as_ref().expect("distributed summary");
        assert!(
            dist.wall_clock_us < dist.serialized_us,
            "D={d}: wall-clock {} must be below the serialized sum {}",
            dist.wall_clock_us,
            dist.serialized_us
        );
        wall.push(dist.wall_clock_us);
    }
    assert!(
        wall[1] < wall[0],
        "D=4 wall-clock {} us must beat D=2 {} us at n={n}",
        wall[1],
        wall[0]
    );
}
