//! Property tests of the shard partitioner and the sharded planner.
//!
//! The contract under test: `partition_systems(m, d)` assigns every
//! system index to exactly one contiguous shard, shard sizes are
//! balanced within ±1, and the degenerate geometries (`m == 0`,
//! `m < d`, `d == 0`) are typed `InvalidPlan` errors — never panics,
//! never empty shards. On top of that, `ShardedPlan::build` must pin
//! the reference device's decisions into every shard, re-clamped per
//! device for heterogeneous groups.

use gpu_sim::{DeviceGroup, DeviceSpec, SimError};
use proptest::prelude::*;
use tridiag_gpu::solver::GpuSolverConfig;
use tridiag_gpu::{partition_systems, ShardedPlan};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every system index lands in exactly one shard, shards are
    /// contiguous and in order, and sizes are balanced within ±1.
    #[test]
    fn every_index_in_exactly_one_balanced_shard(
        m in 1usize..4097,
        d in 1usize..9,
    ) {
        prop_assume!(m >= d);
        let shards = partition_systems(m, d).unwrap();
        prop_assert_eq!(shards.len(), d);
        let mut cursor = 0usize;
        for &(start, count) in &shards {
            prop_assert_eq!(start, cursor, "shards must be contiguous and ordered");
            prop_assert!(count > 0, "no shard may be empty");
            cursor += count;
        }
        prop_assert_eq!(cursor, m, "shards must cover all m systems");
        let max = shards.iter().map(|s| s.1).max().unwrap();
        let min = shards.iter().map(|s| s.1).min().unwrap();
        prop_assert!(max - min <= 1, "balance within +-1: max {} min {}", max, min);
    }

    /// `d == 1` is the identity partition.
    #[test]
    fn single_device_partition_is_identity(m in 1usize..4097) {
        prop_assert_eq!(partition_systems(m, 1).unwrap(), vec![(0, m)]);
    }

    /// Degenerate geometries are typed errors, not panics.
    #[test]
    fn degenerate_partitions_are_typed_errors(
        m in 0usize..8,
        d in 0usize..9,
    ) {
        let result = partition_systems(m, d);
        if d == 0 || m == 0 || m < d {
            prop_assert!(matches!(result, Err(SimError::InvalidPlan(_))));
        } else {
            prop_assert!(result.is_ok());
        }
    }

    /// Sharded plans over random mixed-device groups always build, keep
    /// the partition invariants, and never let a shard's PCR depth
    /// exceed what its own device can hold (heterogeneous re-clamp).
    #[test]
    fn mixed_device_groups_build_valid_sharded_plans(
        m in 2usize..65,
        n_exp in 6u32..12,
        picks in prop::collection::vec(0usize..3, 1..5),
        seed in any::<u64>(),
    ) {
        let n = 1usize << n_exp;
        let specs: Vec<DeviceSpec> = picks
            .iter()
            .map(|&p| match p {
                0 => DeviceSpec::gtx480(),
                1 => DeviceSpec::gtx280(),
                _ => DeviceSpec::c2050(),
            })
            .collect();
        prop_assume!(m >= specs.len());
        let _ = seed; // plans are deterministic; seed only varies the case mix
        let group = DeviceGroup::from_specs(specs).unwrap();
        let config = GpuSolverConfig::default();
        let plan = ShardedPlan::build(&group, &config, m, n, 8).unwrap();
        prop_assert_eq!(plan.shards.len(), group.len());
        let mut cursor = 0usize;
        for (i, shard) in plan.shards.iter().enumerate() {
            prop_assert_eq!(shard.device_index, i);
            prop_assert_eq!(shard.sys_start, cursor);
            cursor += shard.sys_count;
            prop_assert_eq!(shard.plan.m, shard.sys_count);
            prop_assert_eq!(shard.plan.n, n);
            // Pinned-then-reclamped: never above the reference depth.
            prop_assert!(shard.plan.k <= plan.reference.k);
        }
        prop_assert_eq!(cursor, m);
        // Validate the serialized form against its own schema checker.
        let problems = tridiag_gpu::validate_sharded_plan_json(&plan.to_json());
        prop_assert!(problems.is_empty(), "schema drift: {:?}", problems);
    }
}

#[test]
fn sharded_plan_rejects_more_devices_than_systems() {
    let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 4).unwrap();
    let config = GpuSolverConfig::default();
    let err = ShardedPlan::build(&group, &config, 2, 512, 8).unwrap_err();
    assert!(matches!(err, SimError::InvalidPlan(_)), "got {err:?}");
    let err = ShardedPlan::build(&group, &config, 0, 512, 8).unwrap_err();
    assert!(matches!(err, SimError::InvalidPlan(_)), "got {err:?}");
}
