//! Differential bit-identity harness: shard(D) ∘ merge ≡ single-device.
//!
//! For every point of the Fig. 12/13 sweep and `D ∈ {1, 2, 4}` on a
//! homogeneous GTX480 group, the sharded solve must reproduce the
//! single-device solve **element-for-element** (bit-exact solutions,
//! checked both directly and via FNV-1a hashes) and
//! **counter-for-counter**: the partition-invariant counters — FLOPs,
//! global-memory transactions, global bytes — summed over the per-shard
//! summaries must equal the single-device totals exactly. `D == 1` must
//! be the identity path (same report, same modeled time). The one
//! unshardable point (`m = 1`) must reject `D > 1` with a typed
//! `InvalidPlan`.
//!
//! The timing model is also pinned here: the merged report's wall-clock
//! is the max over devices, so `D = 4` must be strictly faster than
//! `D = 1` on the largest sweep point.

use gpu_sim::{DeviceGroup, DeviceSpec, ExecConfig, SimError};
use tridiag_core::generators::random_batch;
use tridiag_gpu::solver::GpuTridiagSolver;
use tridiag_gpu::{solution_hash, GpuScalar, PlanExecutor};

/// The Fig. 12/13 sweep — the same 11 points the golden plan snapshots
/// and the committed perf baseline cover.
const SWEEP: &[(&str, &str, usize, usize)] = &[
    ("fig12", "f64", 64, 512),
    ("fig12", "f64", 256, 512),
    ("fig12", "f64", 1024, 512),
    ("fig12", "f64", 64, 2048),
    ("fig12", "f64", 256, 2048),
    ("fig13", "f64", 2048, 64),
    ("fig13", "f64", 256, 256),
    ("fig13", "f64", 16, 1024),
    ("fig13", "f64", 1, 16384),
    ("fig12", "f32", 256, 512),
    ("fig13", "f32", 16, 1024),
];

const SEED: u64 = 42;
const DEVICE_COUNTS: [usize; 3] = [1, 2, 4];

/// Single-device ground truth: solution, modeled time, and the exact
/// dynamic counter totals straight off the executor's `KernelStats`.
struct Baseline<S> {
    x: Vec<S>,
    total_us: f64,
    flops: u64,
    global_transactions: u64,
    global_bytes: u64,
}

fn single_device<S: GpuScalar>(m: usize, n: usize) -> Baseline<S> {
    let batch = random_batch::<S>(m, n, SEED);
    let solver = GpuTridiagSolver::gtx480();
    let plan = solver
        .plan_geometry(m, n, <S as gpu_sim::Elem>::BYTES)
        .unwrap();
    let mut ex = PlanExecutor::new(DeviceSpec::gtx480(), ExecConfig::default());
    let (x, report) = ex.run(&plan, &batch).unwrap();
    Baseline {
        x,
        total_us: report.total_us,
        flops: ex.stats.iter().map(|s| s.total.flops).sum(),
        global_transactions: ex.stats.iter().map(|s| s.total.global_transactions()).sum(),
        global_bytes: ex.stats.iter().map(|s| s.total.global_bytes()).sum(),
    }
}

fn check_point<S: GpuScalar + Send + Sync>(label: &str, prec: &str, m: usize, n: usize) {
    let ctx = format!("{label} {prec} m={m} n={n}");
    let base = single_device::<S>(m, n);
    let solver = GpuTridiagSolver::gtx480();
    for d in DEVICE_COUNTS {
        let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), d).unwrap();
        let batch = random_batch::<S>(m, n, SEED);
        if m < d {
            let err = solver.solve_batch_group(&group, &batch).unwrap_err();
            assert!(
                matches!(err, SimError::InvalidPlan(_)),
                "{ctx} D={d}: expected InvalidPlan, got {err:?}"
            );
            continue;
        }
        let (x, report) = solver.solve_batch_group(&group, &batch).unwrap();
        // Element-for-element…
        assert_eq!(base.x, x, "{ctx} D={d}: solutions diverge");
        // …and as the pinned fingerprint.
        assert_eq!(
            solution_hash(&base.x),
            solution_hash(&x),
            "{ctx} D={d}: hash diverges"
        );
        assert!(report.is_sanitizer_clean(), "{ctx} D={d}");
        assert!(report.is_phase_sum_clean(), "{ctx} D={d}");
        if d == 1 {
            // Identity: the single-device path, byte for byte.
            assert!(report.shards.is_empty(), "{ctx} D=1");
            assert_eq!(report.total_us, base.total_us, "{ctx} D=1");
            continue;
        }
        // Counter-for-counter: partition-invariant counters summed over
        // shards equal the single-device totals exactly.
        assert_eq!(report.shards.len(), d, "{ctx} D={d}");
        let flops: u64 = report.shards.iter().map(|s| s.flops).sum();
        let gtxn: u64 = report.shards.iter().map(|s| s.global_transactions).sum();
        let gbytes: u64 = report.shards.iter().map(|s| s.global_bytes).sum();
        assert_eq!(flops, base.flops, "{ctx} D={d}: flops");
        assert_eq!(gtxn, base.global_transactions, "{ctx} D={d}: transactions");
        assert_eq!(gbytes, base.global_bytes, "{ctx} D={d}: global bytes");
        // Wall-clock model: max over devices' kernel time, never a sum,
        // and never slower than one device doing everything.
        let max_kernel = report
            .shards
            .iter()
            .map(|s| s.kernel_us)
            .fold(0.0f64, f64::max);
        let sum_kernel: f64 = report.shards.iter().map(|s| s.kernel_us).sum();
        assert_eq!(report.total_us, max_kernel, "{ctx} D={d}");
        assert!(report.total_us < sum_kernel, "{ctx} D={d}: max, not sum");
        assert!(
            report.total_us <= base.total_us + 1e-9,
            "{ctx} D={d}: sharded {} us slower than single {} us",
            report.total_us,
            base.total_us
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn sharded_solves_are_bit_identical_across_the_sweep() {
    for &(label, prec, m, n) in SWEEP {
        match prec {
            "f32" => check_point::<f32>(label, prec, m, n),
            _ => check_point::<f64>(label, prec, m, n),
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn four_devices_strictly_beat_one_on_the_largest_point() {
    // The largest sweep point: m = 256, n = 2048, f64.
    let (m, n) = (256usize, 2048usize);
    let batch = random_batch::<f64>(m, n, SEED);
    let solver = GpuTridiagSolver::gtx480();
    let (_, r1) = solver.solve_batch(&batch).unwrap();
    let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 4).unwrap();
    let (_, r4) = solver.solve_batch_group(&group, &batch).unwrap();
    assert!(
        r4.total_us < r1.total_us,
        "D=4 modeled wall-clock {} us must be strictly below D=1 {} us",
        r4.total_us,
        r1.total_us
    );
}
