//! Differential suite for interleaved-layout GPU solves: the CPU
//! reference is `cpu_ref::solve_batch_interleaved` — the lane-parallel
//! Thomas sweep over the *same* interleaved arrays the GPU kernel
//! reads — not the sequential per-system solver.
//!
//! The GPU p-Thomas kernel and the CPU lane sweep order the row-0 and
//! reciprocal arithmetic differently, so the comparison is
//! tolerance-based (the probe batches are diagonally dominant, where
//! Thomas is backward-stable), not bit-based. Bit-level guarantees for
//! the elided path live in `layout_cost.rs`.

use tridiag_core::generators::random_batch;
use tridiag_core::Layout;
use tridiag_gpu::solver::{GpuSolverConfig, GpuTridiagSolver, LayoutChoice};
use tridiag_gpu::GpuScalar;

/// Max |Δ|/max(1, |ref|) between the GPU solve of an interleaved batch
/// and the CPU interleaved reference, both in interleaved order.
fn gpu_vs_interleaved_ref<S: GpuScalar>(m: usize, n: usize, seed: u64) -> f64 {
    let batch = random_batch::<S>(m, n, seed).to_layout(Layout::Interleaved);
    let reference = cpu_ref::solve_batch_interleaved(&batch).unwrap();
    let solver = GpuTridiagSolver::new(
        gpu_sim::DeviceSpec::gtx480(),
        GpuSolverConfig {
            layout: LayoutChoice::Interleaved,
            ..Default::default()
        },
    );
    let (x, report) = solver.solve_batch(&batch).unwrap();
    assert_eq!(
        report.plan.layout,
        Layout::Interleaved,
        "m={m} n={n}: forced-interleaved solve planned the wrong layout"
    );
    assert_eq!(x.len(), reference.len());
    x.iter()
        .zip(&reference)
        .map(|(a, b)| {
            let (a, b) = (a.to_f64(), b.to_f64());
            (a - b).abs() / b.abs().max(1.0)
        })
        .fold(0.0f64, f64::max)
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn interleaved_gpu_solves_match_the_cpu_lane_reference_f64() {
    for &(m, n) in &[(64usize, 512usize), (1024, 512), (2048, 64), (37, 129), (1, 1024)] {
        let err = gpu_vs_interleaved_ref::<f64>(m, n, 42);
        assert!(err < 1e-12, "m={m} n={n}: relative error {err:.3e}");
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn interleaved_gpu_solves_match_the_cpu_lane_reference_f32() {
    for &(m, n) in &[(64usize, 512usize), (256, 256), (33, 65)] {
        let err = gpu_vs_interleaved_ref::<f32>(m, n, 7);
        assert!(err < 1e-4, "m={m} n={n}: relative error {err:.3e}");
    }
}

/// Auto-layout solves that land on the interleaved path get the same
/// reference treatment: convert the contiguous host batch, compare the
/// GPU solution (contiguous order) against the interleaved reference
/// element-by-element through the layout index map.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn auto_interleaved_points_match_the_reference_through_the_index_map() {
    for &(m, n) in &[(1024usize, 512usize), (2048, 64)] {
        let contig = random_batch::<f64>(m, n, 42);
        let solver = GpuTridiagSolver::gtx480();
        let (x, report) = solver.solve_batch(&contig).unwrap();
        assert_eq!(report.plan.layout, Layout::Interleaved, "m={m} n={n}");
        let reference =
            cpu_ref::solve_batch_interleaved(&contig.to_layout(Layout::Interleaved)).unwrap();
        let mut err = 0.0f64;
        for sys in 0..m {
            for row in 0..n {
                let a = x[sys * n + row];
                let b = reference[row * m + sys];
                err = err.max((a - b).abs() / b.abs().max(1.0));
            }
        }
        assert!(err < 1e-12, "m={m} n={n}: relative error {err:.3e}");
    }
}
